//! A served census, end to end in one process: spawn the TCP service,
//! stream 10k random tables through the protocol client, and print
//! the heavy-hitter classes — the `facepoint serve` / `facepoint
//! client` flow (wire spec: `docs/PROTOCOL.md`) without leaving the
//! program.
//!
//! ```text
//! cargo run --release --example served_census
//! ```

use facepoint::engine::{Engine, EngineConfig};
use facepoint::serve::{Client, Server, ServerConfig};
use facepoint::truth::TruthTable;
use facepoint::SignatureSet;
use rand::{RngExt, SeedableRng};
use std::time::Duration;

const TOTAL: usize = 10_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- The server side: an engine behind a TCP acceptor. -----------
    let engine = Engine::builder()
        .config(EngineConfig {
            cache_capacity: 1 << 14,
            ..EngineConfig::with_set(SignatureSet::all())
        })
        .build()
        .unwrap();
    let server = Server::bind("127.0.0.1:0", engine, ServerConfig::default())?;
    let addr = server.local_addr()?;
    let shutdown = server.shutdown_handle();
    let serving = std::thread::spawn(move || server.run());
    println!("serving on {addr}");

    // --- The client side: 10k random 6-variable tables, batched. -----
    // A third are repeats, so the census has classes worth ranking
    // (and the server's dedup fast path gets traffic).
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xCE2505);
    let mut lines: Vec<String> = Vec::with_capacity(TOTAL);
    for i in 0..TOTAL {
        let line = if i % 3 == 2 {
            lines[rng.random_range(0..lines.len())].clone()
        } else {
            let f = TruthTable::random(6, &mut rng)?;
            format!("6:{}", f.to_hex())
        };
        lines.push(line);
    }
    let mut client = Client::connect(addr)?;
    let info = client.server_info();
    println!(
        "connected: protocol v{} set {} workers {}",
        info.version, info.set, info.workers
    );
    for chunk in lines.chunks(1024) {
        client.submit_batch(chunk.iter().map(String::as_str))?;
    }
    let snap = client.wait_drained(Duration::from_secs(120))?;
    println!(
        "census drained: {} submitted, {} classes",
        snap.submitted, snap.classes
    );
    assert_eq!(snap.submitted as usize, TOTAL);
    assert_eq!(snap.backlog, 0);

    println!("top classes:");
    for class in client.top(8)? {
        println!(
            "  {:032x}  size {:>6}  representative {}",
            class.key, class.size, class.representative
        );
    }
    println!("server stats: {}", client.stats()?);
    client.quit()?;

    // --- Graceful shutdown returns the same census as a one-shot run.
    shutdown.shutdown();
    let report = serving.join().expect("server thread")?.expect("report");
    println!(
        "final: {} functions -> {} classes",
        report.classification.num_functions(),
        report.classification.num_classes()
    );
    assert_eq!(report.classification.num_functions(), TOTAL);
    Ok(())
}
