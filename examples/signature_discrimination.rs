//! Why face characteristics alone are not enough — the demonstration
//! behind the paper's Fig. 4, run live.
//!
//! Exhaustively scans all 65 536 functions of four variables, groups them
//! by cofactor signatures (`OCV1 + OCV2`), and measures how often the
//! point characteristics (`OIV`, `OSV`, `OSDV`) split groups that
//! cofactors cannot.
//!
//! ```text
//! cargo run --release --example signature_discrimination
//! ```

use facepoint::exact::exact_classify;
use facepoint::{Classifier, SignatureSet, TruthTable};

fn count(fns: &[TruthTable], set: SignatureSet) -> usize {
    Classifier::new(set).classify(fns.to_vec()).num_classes()
}

fn main() {
    let all: Vec<TruthTable> = (0u64..65536)
        .map(|bits| TruthTable::from_u64(4, bits).expect("4 variables"))
        .collect();

    let exact = exact_classify(&all).num_classes();
    println!(
        "all 4-variable functions: {} | exact NPN classes: {exact}",
        all.len()
    );
    println!();
    println!(
        "{:<22} {:>9} {:>14}",
        "signature set", "#classes", "vs exact"
    );
    println!("{}", "-".repeat(47));
    let sets: Vec<(&str, SignatureSet)> = vec![
        ("OCV1", SignatureSet::OCV1),
        ("OCV1+OCV2", SignatureSet::OCV1 | SignatureSet::OCV2),
        ("OIV", SignatureSet::OIV),
        ("OSV", SignatureSet::OSV),
        ("OIV+OSV", SignatureSet::OIV | SignatureSet::OSV),
        (
            "OCV1+OCV2+OIV",
            SignatureSet::OCV1 | SignatureSet::OCV2 | SignatureSet::OIV,
        ),
        (
            "OIV+OSV+OSDV",
            SignatureSet::OIV | SignatureSet::OSV | SignatureSet::OSDV,
        ),
        ("All", SignatureSet::all()),
        ("All+Walsh (ext.)", SignatureSet::all_extended()),
    ];
    for (name, set) in sets {
        let c = count(&all, set);
        let pct = 100.0 * c as f64 / exact as f64;
        println!("{name:<22} {c:>9} {pct:>13.1}%");
    }
    println!();
    println!("The exact count for n = 4 is a classical constant: 222 classes.");
    println!("Face signatures saturate below it; adding the point signatures");
    println!("closes the gap — the paper's Fig. 4 argument, exhaustively.");
}
