//! Quickstart: signatures, classification, and exactness in ten minutes.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use facepoint::exact::{exact_npn_canonical, npn_match};
use facepoint::sig::{ocv1, oiv, osv1};
use facepoint::{Classifier, NpnTransform, Permutation, SignatureSet, TruthTable};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Truth tables -------------------------------------------------
    let maj = TruthTable::majority(3);
    println!("3-input majority: 0x{} = {}", maj.to_hex(), maj.to_binary());

    // --- 2. NPN transforms -----------------------------------------------
    // g(x0,x1,x2) = ¬maj(x2, ¬x0, x1): permute and negate.
    let t = NpnTransform::new(Permutation::from_slice(&[2, 0, 1])?, 0b010, true);
    let g = t.apply(&maj);
    println!("a transform of it:  0x{}", g.to_hex());

    // --- 3. Signature vectors (the paper's Table I) ----------------------
    println!("OCV1(maj) = {:?}   (face characteristic)", ocv1(&maj));
    println!(
        "OIV(maj)  = {:?}         (point-face characteristic)",
        oiv(&maj)
    );
    println!("OSV1(maj) = {:?}      (point characteristic)", osv1(&maj));
    // Signatures are NPN-invariant:
    assert_eq!(oiv(&maj), oiv(&g));
    assert_eq!(osv1(&maj), osv1(&g.negated()));

    // --- 4. Classification (Algorithm 1) ----------------------------------
    let fns = vec![
        maj.clone(),
        g.clone(),
        TruthTable::parity(3),
        TruthTable::projection(3, 0)?,
        TruthTable::from_hex(3, "96")?, // parity again, by its table
    ];
    let classifier = Classifier::new(SignatureSet::all());
    let classes = classifier.classify(fns.clone());
    println!(
        "\nclassified {} functions into {} NPN classes:",
        classes.num_functions(),
        classes.num_classes()
    );
    for class in classes.classes() {
        println!(
            "  class {}: representative 0x{}, {} member(s)",
            class.id(),
            class.representative().to_hex(),
            class.size()
        );
    }

    // --- 5. Exactness ------------------------------------------------------
    // The signature classifier's verdict agrees with the exact canonical
    // form here:
    assert_eq!(exact_npn_canonical(&maj), exact_npn_canonical(&g));
    // And the matcher produces a witness transform:
    let witness = npn_match(&maj, &g).expect("equivalent by construction");
    assert_eq!(witness.apply(&maj), g);
    println!("\nwitness transform maj → g: {witness}");
    Ok(())
}
