//! A guided tour of the paper's Section III: each theorem demonstrated
//! on concrete functions, with the signature values printed so you can
//! see *why* it holds.
//!
//! ```text
//! cargo run --release --example theorem_tour
//! ```

use facepoint::exact::npn_orbit_size;
use facepoint::sig::{oiv, osdv0, osdv1, osv0, osv1, theorems};
use facepoint::{NpnTransform, Permutation, TruthTable};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(42);

    println!("=== Theorem 1: OIV is invariant under NPN transforms ===");
    let f = TruthTable::from_hex(4, "1ee1")?;
    let t = NpnTransform::new(Permutation::from_slice(&[3, 0, 2, 1])?, 0b0110, true);
    let g = t.apply(&f);
    println!("f = {f}   OIV = {:?}", oiv(&f));
    println!("g = t(f) = {g}   OIV = {:?}", oiv(&g));
    assert!(theorems::theorem1_oiv_invariant(&f, &t));
    println!("equal ✓ (influence counts sensitive pairs across a face —");
    println!("negation mirrors the face, permutation relabels it)\n");

    println!("=== Theorem 2: OSV/OSV0/OSV1 are invariant under PN transforms ===");
    let pn = NpnTransform::new(Permutation::from_slice(&[1, 2, 3, 0])?, 0b1010, false);
    let h = pn.apply(&f);
    println!("OSV1(f) = {:?}", osv1(&f));
    println!("OSV1(h) = {:?}", osv1(&h));
    assert!(theorems::theorem2_osv_invariant(&f, &pn));
    println!("equal ✓ (input transforms permute the hypercube graph)\n");

    println!("=== Theorem 3: output negation swaps OSV0 ↔ OSV1 ===");
    let neg = f.negated();
    println!("f  : OSV0 = {:?}  OSV1 = {:?}", osv0(&f), osv1(&f));
    println!("¬f : OSV0 = {:?}  OSV1 = {:?}", osv0(&neg), osv1(&neg));
    assert_eq!(osv0(&f), osv1(&neg));
    assert_eq!(osv1(&f), osv0(&neg));
    println!("swapped ✓ (1-minterms of f are the 0-minterms of ¬f; local");
    println!("sensitivities are unchanged because adjacency is unchanged)\n");

    println!("=== Theorem 4: the same laws govern OSDV ===");
    println!("OSDV1(f)  = {}", osdv1(&f));
    println!("OSDV0(¬f) = {}", osdv0(&neg));
    assert!(theorems::theorem4_osdv_invariant(
        &f,
        &NpnTransform::phase(4, 0, true)
    ));
    println!("equal ✓\n");

    println!("=== The bridging identity: Σ sen = 2·Σ inf ===");
    for _ in 0..3 {
        let r = TruthTable::random(5, &mut rng)?;
        assert!(theorems::sensitivity_influence_identity(&r));
        println!("holds for random {r} ✓");
    }
    println!();

    println!("=== Why classification by orbit matters ===");
    for (name, func) in [
        ("majority-3", TruthTable::majority(3)),
        ("parity-3", TruthTable::parity(3)),
        ("random 4-var", TruthTable::from_hex(4, "37c8")?),
    ] {
        println!(
            "{name:<14} orbit size {:>4} (of {} possible transforms)",
            npn_orbit_size(&func),
            facepoint::exact::factorial(func.num_vars()) << (func.num_vars() + 1),
        );
    }
    println!();
    println!("Small orbits = heavy symmetry = expensive canonical forms —");
    println!("and exactly the inputs where signature hashing shines.");
    Ok(())
}
