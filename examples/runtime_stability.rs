//! A miniature of the paper's Fig. 5: classifier runtime versus workload
//! size and structure.
//!
//! Classifies batches of random functions and batches of *symmetry-heavy*
//! functions (phase/permutation variants of majority and parity) with our
//! signature classifier and with the Zhou20 canonical-form baseline. The
//! signature classifier's time per function is flat across both; the
//! canonical-form method slows down dramatically on the symmetric batch —
//! its enumeration space explodes exactly where the workload is most
//! regular.
//!
//! ```text
//! cargo run --release --example runtime_stability
//! ```

use facepoint::exact::baselines::{CanonicalClassifier, Zhou20};
use facepoint::{Classifier, NpnTransform, SignatureSet, TruthTable};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn random_batch(n: usize, count: usize, seed: u64) -> Vec<TruthTable> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| TruthTable::random(n, &mut rng).expect("n <= 16"))
        .collect()
}

fn symmetric_batch(n: usize, count: usize, seed: u64) -> Vec<TruthTable> {
    let mut rng = StdRng::seed_from_u64(seed);
    let seeds = [TruthTable::majority(n), TruthTable::parity(n)];
    (0..count)
        .map(|i| NpnTransform::random(n, &mut rng).apply(&seeds[i % 2]))
        .collect()
}

fn time_per_fn(fns: &[TruthTable], run: impl FnOnce(&[TruthTable])) -> f64 {
    let start = Instant::now();
    run(fns);
    start.elapsed().as_secs_f64() * 1e6 / fns.len() as f64
}

fn main() {
    let n = 7;
    let count = 2000;
    println!("per-function classification cost (µs), n = {n}, {count} functions/batch");
    println!();
    println!("{:<18} {:>12} {:>12}", "batch", "ours", "zhou20");
    println!("{}", "-".repeat(44));
    for (name, fns) in [
        ("random", random_batch(n, count, 11)),
        ("symmetric", symmetric_batch(n, count, 13)),
    ] {
        let ours = Classifier::new(SignatureSet::all());
        let t_ours = time_per_fn(&fns, |f| {
            ours.classify(f.to_vec());
        });
        let t_zhou = time_per_fn(&fns, |f| {
            Zhou20::default().classify(f);
        });
        println!("{name:<18} {t_ours:>12.2} {t_zhou:>12.2}");
    }
    println!();
    println!("Ours is flat across batches (bitwise signatures + hash, no");
    println!("canonicalization search); the hybrid baseline pays for symmetry.");
}
