//! The paper's end-to-end pipeline on a single circuit: build an
//! arithmetic block, enumerate cuts, harvest the cut functions, classify
//! them, and check the signature classification against exact ground
//! truth — Section V-A of the paper in one program.
//!
//! ```text
//! cargo run --release --example cut_classification
//! ```

use facepoint::aig::{generators, Aig, Extractor};
use facepoint::core::PartitionComparison;
use facepoint::exact::exact_classify;
use facepoint::{Classifier, SignatureSet};

fn report(name: &str, circuit: &Aig) {
    println!(
        "circuit: {name}, {} inputs, {} AND gates",
        circuit.num_inputs(),
        circuit.num_ands()
    );
    for support in 3..=6usize {
        // Harvest all distinct cut functions with exactly this support.
        let fns = Extractor::for_support(support).extract(circuit);
        if fns.is_empty() {
            continue;
        }
        // Classify with the paper's full signature set…
        let ours = Classifier::new(SignatureSet::all()).classify(fns.clone());
        // …and with cofactors only, to see the point characteristics earn
        // their keep.
        let faces_only =
            Classifier::new(SignatureSet::OCV1 | SignatureSet::OCV2).classify(fns.clone());
        // Exact ground truth via bucket + matcher.
        let exact = exact_classify(&fns);

        let cmp = PartitionComparison::compare(ours.labels(), exact.labels());
        println!(
            "  support {support}: {:>4} functions | exact {:>4} | ours {:>4} ({}) | OCV-only {:>4}",
            fns.len(),
            exact.num_classes(),
            ours.num_classes(),
            if cmp.is_exact() { "exact " } else { "merged" },
            faces_only.num_classes(),
        );
    }
    println!();
}

fn main() {
    // A 16-bit ripple-carry adder — the EPFL `adder`'s little sibling.
    report("16-bit adder", &generators::ripple_carry_adder(16));
    // Irregular control logic and a shifter for contrast.
    report(
        "random control logic",
        &generators::random_logic(14, 300, 0xC0FFEE),
    );
    report("4-stage barrel shifter", &generators::barrel_shifter(4));

    // Per circuit the cut functions are regular enough for cofactors to
    // cope. The differences the paper's Table II reports appear at suite
    // scale, where thousands of distinct functions meet:
    let fns = facepoint::aig::cut_workload(5, 8000);
    let exact = exact_classify(&fns);
    println!(
        "whole suite, support 5: {} functions, {} exact classes",
        fns.len(),
        exact.num_classes()
    );
    for (name, set) in [
        ("OIV", SignatureSet::OIV),
        ("OCV1", SignatureSet::OCV1),
        ("OCV1+OCV2", SignatureSet::OCV1 | SignatureSet::OCV2),
        ("All (face+point)", SignatureSet::all()),
    ] {
        let c = Classifier::new(set).classify(fns.clone());
        let cmp = PartitionComparison::compare(c.labels(), exact.labels());
        println!(
            "  {name:<18} {:>5} classes ({} merged)",
            c.num_classes(),
            cmp.merged_classes
        );
    }
    println!();
    println!("Face signatures alone merge distinct classes; the face+point MSV");
    println!("tracks the exact count — the paper's core claim, end to end.");
}
