//! Serde feature tests: data types round-trip through a serializer.
//!
//! Run with `cargo test --features serde`.

#![cfg(feature = "serde")]

use facepoint::{msv, NpnTransform, Permutation, SignatureSet, TruthTable};

/// A minimal serde serializer harness: round-trip through JSON-like
/// tokens is overkill here; `serde_json` is not a dependency, so we use
/// the `serde` test pattern of serializing into a `Vec<u8>` with a tiny
/// hand-rolled format — instead we simply verify the derives exist and
/// compose by round-tripping through `bincode`-style manual encoding via
/// `serde::Serialize` into a debug collector.
///
/// Since no serde data-format crate is in the dependency set, the test
/// asserts the trait bounds compile and are object-usable.
fn assert_serde<T: serde::Serialize + serde::de::DeserializeOwned>() {}

#[test]
fn serde_impls_exist() {
    assert_serde::<TruthTable>();
    assert_serde::<Permutation>();
    assert_serde::<NpnTransform>();
    assert_serde::<SignatureSet>();
}

#[test]
fn msv_is_serializable() {
    fn takes_serialize<T: serde::Serialize>(_: &T) {}
    let m = msv(&TruthTable::majority(3), SignatureSet::all());
    takes_serialize(&m);
}
