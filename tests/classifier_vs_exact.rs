//! Integration tests of the classifier's accuracy contract against exact
//! ground truth, across workload styles.

use facepoint::core::{refine_to_exact, PartitionComparison};
use facepoint::exact::{exact_classify, exact_classify_canonical};
use facepoint::{Classifier, SignatureSet, TruthTable};
use facepoint_bench::transform_closure_workload;

#[test]
fn exhaustive_small_space_is_classified_exactly() {
    // Every function of up to 3 variables; known class counts 1/2/4/14
    // for the full per-arity spaces.
    for (n, expect) in [(2usize, 4usize), (3, 14)] {
        let fns: Vec<TruthTable> = (0..1u64 << (1 << n))
            .map(|b| TruthTable::from_u64(n, b).unwrap())
            .collect();
        let ours = Classifier::new(SignatureSet::all()).classify(fns.clone());
        assert_eq!(ours.num_classes(), expect, "n = {n}");
        let exact = exact_classify_canonical(&fns);
        let cmp = PartitionComparison::compare(ours.labels(), exact.labels());
        assert!(cmp.is_exact(), "n = {n}: {cmp:?}");
    }
}

#[test]
fn four_variable_space_has_222_classes() {
    let fns: Vec<TruthTable> = (0u64..65536)
        .map(|b| TruthTable::from_u64(4, b).unwrap())
        .collect();
    // The count of NPN classes of 4-variable functions is the classical
    // 222; the full signature set reaches it exactly (paper Table II,
    // where the cut workload's 4-variable row is likewise exact).
    let ours = Classifier::new(SignatureSet::all()).classify(fns);
    assert_eq!(ours.num_classes(), 222);
}

#[test]
fn classifier_never_splits_exact_classes() {
    // Candidate keys are necessary conditions: every disagreement with
    // ground truth must be a merge, never a split.
    for n in 3..=6usize {
        let fns = transform_closure_workload(n, 12, 5, n as u64 * 31);
        let exact = exact_classify(&fns);
        for (_, set) in SignatureSet::table2_columns() {
            let ours = Classifier::new(set).classify(fns.clone());
            let cmp = PartitionComparison::compare(ours.labels(), exact.labels());
            assert_eq!(cmp.split_classes, 0, "n = {n}, set = {set}: {cmp:?}");
        }
    }
}

#[test]
fn full_set_is_exact_on_transform_closures_small_n() {
    for n in 2..=6usize {
        let fns = transform_closure_workload(n, 15, 4, n as u64 * 101);
        let ours = Classifier::new(SignatureSet::all()).classify(fns.clone());
        let exact = exact_classify(&fns);
        let cmp = PartitionComparison::compare(ours.labels(), exact.labels());
        assert!(cmp.is_exact(), "n = {n}: {cmp:?}");
    }
}

#[test]
fn refinement_closes_any_gap() {
    // Even if a weak signature set merges, refine_to_exact recovers the
    // exact partition.
    let fns = transform_closure_workload(5, 10, 4, 777);
    let weak = Classifier::new(SignatureSet::OIV).classify(fns.clone());
    let refined = refine_to_exact(&fns, &weak);
    let exact = exact_classify(&fns);
    let cmp = PartitionComparison::compare(refined.labels(), exact.labels());
    assert!(cmp.is_exact(), "{cmp:?}");
}

#[test]
fn mixed_arity_workloads() {
    let mut fns = transform_closure_workload(3, 5, 3, 1);
    fns.extend(transform_closure_workload(4, 5, 3, 2));
    fns.extend(transform_closure_workload(5, 5, 3, 3));
    let ours = Classifier::new(SignatureSet::all()).classify(fns.clone());
    let exact = exact_classify(&fns);
    let cmp = PartitionComparison::compare(ours.labels(), exact.labels());
    assert_eq!(cmp.split_classes, 0);
    assert!(ours.num_classes() <= exact.num_classes());
}
