//! Heavy exhaustive validation over the complete 4-variable function
//! space (65 536 functions, 222 NPN classes).
//!
//! The partition-equality test is tagged `#[ignore]` because it runs the
//! exhaustive canonicalizer on every function (~a minute in release);
//! run it with `cargo test --release -- --ignored`.

use facepoint::exact::{canonical_u64, exact_classify_canonical};
use facepoint::{Classifier, SignatureSet, TruthTable};

fn all_4var() -> Vec<TruthTable> {
    (0u64..65536)
        .map(|b| TruthTable::from_u64(4, b).unwrap())
        .collect()
}

#[test]
fn classifier_class_count_is_222() {
    let fns = all_4var();
    let c = Classifier::new(SignatureSet::all()).classify(fns);
    assert_eq!(c.num_classes(), 222);
}

#[test]
#[ignore = "runs the exhaustive canonicalizer on 65 536 functions"]
fn classifier_partition_equals_exhaustive_partition() {
    let fns = all_4var();
    let ours = Classifier::new(SignatureSet::all()).classify(fns.clone());
    let exact = exact_classify_canonical(&fns);
    assert_eq!(exact.num_classes(), 222);
    // Partition equality via per-class fingerprints: both labelings must
    // induce the same grouping of indices.
    let mut ours_to_exact = vec![usize::MAX; ours.num_classes()];
    for i in 0..fns.len() {
        let o = ours.label(i);
        let e = exact.label(i);
        if ours_to_exact[o] == usize::MAX {
            ours_to_exact[o] = e;
        } else {
            assert_eq!(ours_to_exact[o], e, "function {i} splits a class");
        }
    }
    // Injectivity: no two of our classes map to one exact class.
    let mut seen = vec![false; exact.num_classes()];
    for &e in &ours_to_exact {
        assert!(!seen[e], "two candidate classes merged one exact class");
        seen[e] = true;
    }
}

#[test]
#[ignore = "canonicalizes 65 536 functions"]
fn canonical_u64_has_222_images_on_4var() {
    use std::collections::HashSet;
    let images: HashSet<u64> = (0u64..65536).map(|b| canonical_u64(b, 4)).collect();
    assert_eq!(images.len(), 222);
}
