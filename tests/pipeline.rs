//! End-to-end pipeline test: synthetic circuits → cut enumeration →
//! dedup'd truth tables → signature classification → exact verification —
//! the complete Section V flow of the paper, asserted.

use facepoint::aig::{cut_workload, generators, synthetic_suite, Aig, Extractor};
use facepoint::core::PartitionComparison;
use facepoint::exact::exact_classify;
use facepoint::{Classifier, SignatureSet};

#[test]
fn suite_to_classes_round_trip() {
    for n in 3..=5usize {
        let fns = cut_workload(n, 2000);
        assert!(!fns.is_empty(), "workload n = {n} must not be empty");
        let ours = Classifier::new(SignatureSet::all()).classify(fns.clone());
        let exact = exact_classify(&fns);
        let cmp = PartitionComparison::compare(ours.labels(), exact.labels());
        // On cut workloads of this arity the full signature set is exact
        // (paper Table II rows n ≤ 7).
        assert!(cmp.is_exact(), "n = {n}: {cmp:?}");
    }
}

#[test]
fn table2_column_monotonicity_on_cut_workload() {
    // Stronger signature sets can only split candidate classes further.
    let fns = cut_workload(5, 3000);
    let count = |set: SignatureSet| Classifier::new(set).classify(fns.clone()).num_classes();
    let oiv = count(SignatureSet::OIV);
    let osv = count(SignatureSet::OSV);
    let oiv_osv = count(SignatureSet::OIV | SignatureSet::OSV);
    let all = count(SignatureSet::all());
    assert!(oiv <= oiv_osv, "adding OSV can only split");
    assert!(osv <= oiv_osv);
    assert!(oiv_osv <= all);
}

#[test]
fn aiger_round_trip_through_pipeline() {
    // Serialize a generated circuit, read it back, and verify the
    // harvested functions are identical.
    let original = generators::array_multiplier(4);
    let text = original.to_aiger();
    let reparsed = Aig::from_aiger(&text).expect("own output parses");
    let ex = Extractor::for_support(4);
    assert_eq!(ex.extract(&original), ex.extract(&reparsed));
}

#[test]
fn suite_circuits_behave() {
    // Light smoke check over the full suite: cut extraction runs and
    // produces plausible, deduplicated functions on every circuit.
    for bench in synthetic_suite() {
        let fns = Extractor::for_support(4).extract(&bench.aig);
        let set: std::collections::HashSet<_> = fns.iter().collect();
        assert_eq!(set.len(), fns.len(), "{}: dedup within circuit", bench.name);
        for f in &fns {
            assert_eq!(f.num_vars(), 4, "{}: support filter", bench.name);
            assert_eq!(f.support_size(), 4, "{}: shrunk support", bench.name);
        }
    }
}

#[test]
fn classifier_handles_workload_scale() {
    // A few thousand 6-variable cut functions classify quickly and the
    // parallel driver agrees with the sequential one.
    let fns = cut_workload(6, 5000);
    let seq = Classifier::new(SignatureSet::all()).classify(fns.clone());
    let par = Classifier::new(SignatureSet::all())
        .with_threads(4)
        .classify(fns);
    assert_eq!(seq.num_classes(), par.num_classes());
    assert_eq!(seq.labels(), par.labels());
}
