//! Integration tests pinning the paper's worked examples — Figures 1–4
//! and Table I — through the public facade API.

use facepoint::exact::{are_npn_equivalent, exact_npn_canonical};
use facepoint::sig::{ocv1, ocv2, oiv, osdv, osdv1, osv, osv0, osv1, theorems};
use facepoint::{NpnTransform, Permutation, SignatureSet, TruthTable};

/// `f1` of Fig. 1a: the 3-input majority.
fn f1() -> TruthTable {
    TruthTable::majority(3)
}

/// `f3` of Fig. 1c: the projection onto one variable (see DESIGN.md —
/// recovered from its published signature values).
fn f3() -> TruthTable {
    TruthTable::projection(3, 2).unwrap()
}

#[test]
fn figure1_f1_and_f2_are_npn_equivalent() {
    // Fig. 1b shows *an* NPN-equivalent transform of majority; any
    // transform must stay in the class and have an isomorphic induced
    // subgraph (equal signature vectors).
    let t = NpnTransform::new(Permutation::from_slice(&[1, 2, 0]).unwrap(), 0b101, true);
    let f2 = t.apply(&f1());
    assert!(are_npn_equivalent(&f1(), &f2));
    assert_eq!(oiv(&f1()), oiv(&f2));
    assert_eq!(exact_npn_canonical(&f1()), exact_npn_canonical(&f2));
}

#[test]
fn figure1_f2_and_f3_are_not_equivalent() {
    assert!(!are_npn_equivalent(&f1(), &f3()));
    // Their signatures already witness it.
    assert_ne!(oiv(&f1()), oiv(&f3()));
    assert_ne!(osv(&f1()), osv(&f3()));
}

#[test]
fn table1_complete_row_check() {
    let f1 = f1();
    let f3 = f3();
    assert_eq!(ocv1(&f1), vec![1, 1, 1, 3, 3, 3]);
    assert_eq!(ocv1(&f3), vec![0, 2, 2, 2, 2, 4]);
    assert_eq!(ocv2(&f1), vec![0, 0, 0, 1, 1, 1, 1, 1, 1, 2, 2, 2]);
    assert_eq!(ocv2(&f3), vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2]);
    assert_eq!(oiv(&f1), vec![2, 2, 2]);
    assert_eq!(oiv(&f3), vec![0, 0, 4]);
    assert_eq!(osv1(&f1), vec![0, 2, 2, 2]);
    assert_eq!(osv1(&f3), vec![1, 1, 1, 1]);
    assert_eq!(osv0(&f1), vec![0, 2, 2, 2]);
    assert_eq!(osv0(&f3), vec![1, 1, 1, 1]);
    assert_eq!(osv(&f1), vec![0, 0, 2, 2, 2, 2, 2, 2]);
    assert_eq!(osv(&f3), vec![1; 8]);
    assert_eq!(
        osdv1(&f1).flatten(),
        vec![0, 0, 0, 0, 0, 0, 0, 3, 0, 0, 0, 0]
    );
    assert_eq!(
        osdv1(&f3).flatten(),
        vec![0, 0, 0, 4, 2, 0, 0, 0, 0, 0, 0, 0]
    );
    assert_eq!(
        osdv(&f1).flatten(),
        vec![0, 0, 1, 0, 0, 0, 6, 6, 3, 0, 0, 0]
    );
    assert_eq!(
        osdv(&f3).flatten(),
        vec![0, 0, 0, 12, 12, 4, 0, 0, 0, 0, 0, 0]
    );
}

#[test]
fn figure3_balanced_swap_structure() {
    // Fig. 3: NPN-equivalent balanced functions whose OSV0/OSV1 swap. An
    // output negation of any balanced function with asymmetric split
    // vectors exhibits the swap; the MSV still collides (Theorem 3's
    // handling).
    let f = TruthTable::from_hex(4, "1ee1").unwrap(); // balanced
    assert!(f.is_balanced());
    let g = f.negated();
    assert_eq!(osv0(&f), osv1(&g));
    assert_eq!(osv1(&f), osv0(&g));
    assert_eq!(
        facepoint::msv(&f, SignatureSet::all()),
        facepoint::msv(&g, SignatureSet::all())
    );
}

#[test]
fn figure4_published_witnesses() {
    // The witnesses found by `fig4_search` (with the paper's exact
    // signature values), pinned so regressions surface.
    let g1 = TruthTable::from_hex(4, "16e9").unwrap();
    let g2 = TruthTable::from_hex(4, "19e6").unwrap();
    assert_eq!(ocv1(&g1), vec![3, 4, 4, 4, 4, 4, 4, 5]);
    assert_eq!(ocv1(&g2), vec![3, 4, 4, 4, 4, 4, 4, 5]);
    assert_eq!(ocv2(&g1), ocv2(&g2));
    assert_eq!(oiv(&g1), vec![6, 6, 6, 8]);
    assert_eq!(oiv(&g2), vec![2, 6, 6, 8]);
    assert!(!are_npn_equivalent(&g1, &g2));

    let h1 = TruthTable::from_hex(4, "06b5").unwrap();
    let h2 = TruthTable::from_hex(4, "06b6").unwrap();
    assert_eq!(ocv1(&h1), vec![2, 3, 3, 3, 4, 4, 4, 5]);
    assert_eq!(ocv2(&h1), ocv2(&h2));
    assert_eq!(oiv(&h1), vec![3, 5, 5, 5]);
    assert_eq!(oiv(&h2), vec![3, 5, 5, 5]);
    assert_eq!(osv1(&h1), vec![2, 2, 2, 2, 3, 3, 4]);
    assert_eq!(osv1(&h2), vec![1, 2, 3, 3, 3, 3, 3]);
    assert!(!are_npn_equivalent(&h1, &h2));
}

#[test]
fn theorems_hold_through_facade() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(2024);
    for n in 1..=6 {
        for _ in 0..8 {
            let f = TruthTable::random(n, &mut rng).unwrap();
            let t = NpnTransform::random(n, &mut rng);
            assert!(theorems::theorem1_oiv_invariant(&f, &t));
            assert!(theorems::theorem3_balanced_swap(&f, &t));
            assert!(theorems::theorem4_osdv_invariant(&f, &t));
            assert!(theorems::sensitivity_influence_identity(&f));
        }
    }
}
