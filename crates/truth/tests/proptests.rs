//! Property-based tests of the truth-table substrate: transform group
//! laws, cofactor algebra and representation round-trips.

use facepoint_truth::{NpnTransform, Permutation, TruthTable};
use proptest::prelude::*;

/// Strategy: an arity and a random table of that arity.
fn arb_table(max_n: usize) -> impl Strategy<Value = TruthTable> {
    (0..=max_n).prop_flat_map(|n| {
        proptest::collection::vec(any::<u64>(), facepoint_truth::words::word_count(n))
            .prop_map(move |words| TruthTable::from_words(n, &words).expect("sized vec"))
    })
}

/// Strategy: a table plus a transform of matching arity.
fn arb_table_and_transform(max_n: usize) -> impl Strategy<Value = (TruthTable, NpnTransform)> {
    (0..=max_n).prop_flat_map(|n| {
        let table = proptest::collection::vec(any::<u64>(), facepoint_truth::words::word_count(n))
            .prop_map(move |words| TruthTable::from_words(n, &words).expect("sized vec"));
        let transform =
            (any::<u64>(), any::<u16>(), any::<bool>()).prop_map(move |(s, neg, out)| {
                use rand::SeedableRng;
                let mut rng = rand::rngs::StdRng::seed_from_u64(s);
                let perm = Permutation::random(n, &mut rng);
                let mask = if n == 0 {
                    0
                } else {
                    neg & (((1u32 << n) - 1) as u16)
                };
                NpnTransform::new(perm, mask, out)
            });
        (table, transform)
    })
}

proptest! {
    #[test]
    fn hex_round_trip(t in arb_table(9)) {
        let s = t.to_hex();
        prop_assert_eq!(TruthTable::from_hex(t.num_vars(), &s).unwrap(), t);
    }

    #[test]
    fn binary_round_trip(t in arb_table(7)) {
        let s = t.to_binary();
        prop_assert_eq!(TruthTable::from_binary(t.num_vars(), &s).unwrap(), t);
    }

    #[test]
    fn negation_is_involution(t in arb_table(9)) {
        prop_assert_eq!(!!t.clone(), t);
    }

    #[test]
    fn count_ones_complement(t in arb_table(9)) {
        prop_assert_eq!(t.count_ones() + (!&t).count_ones(), t.num_bits());
    }

    #[test]
    fn flip_var_is_involution(t in arb_table(8)) {
        for v in 0..t.num_vars() {
            prop_assert_eq!(t.flip_var(v).flip_var(v), t.clone());
        }
    }

    #[test]
    fn swap_vars_is_involution(t in arb_table(8)) {
        let n = t.num_vars();
        for a in 0..n {
            for b in 0..n {
                prop_assert_eq!(t.swap_vars(a, b).swap_vars(a, b), t.clone());
            }
        }
    }

    #[test]
    fn flips_commute(t in arb_table(8)) {
        let n = t.num_vars();
        if n >= 2 {
            prop_assert_eq!(
                t.flip_var(0).flip_var(n - 1),
                t.flip_var(n - 1).flip_var(0)
            );
        }
    }

    #[test]
    fn transform_inverse_round_trip((t, tr) in arb_table_and_transform(8)) {
        prop_assert_eq!(tr.inverse().apply(&tr.apply(&t)), t);
    }

    #[test]
    fn transform_double_inverse((_, tr) in arb_table_and_transform(8)) {
        let ii = tr.inverse().inverse();
        prop_assert_eq!(ii, tr);
    }

    #[test]
    fn composition_is_sequential_application(
        (t, t1) in arb_table_and_transform(6),
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let t2 = NpnTransform::random(t.num_vars(), &mut rng);
        prop_assert_eq!(
            t2.compose(&t1).apply(&t),
            t2.apply(&t1.apply(&t))
        );
    }

    #[test]
    fn identity_transform_fixes_everything(t in arb_table(9)) {
        let id = NpnTransform::identity(t.num_vars());
        prop_assert_eq!(id.apply(&t), t);
    }

    #[test]
    fn cofactor_counts_partition(t in arb_table(9)) {
        for v in 0..t.num_vars() {
            prop_assert_eq!(
                t.cofactor_count(v, false) + t.cofactor_count(v, true),
                t.count_ones()
            );
        }
    }

    #[test]
    fn shannon_expansion(t in arb_table(7)) {
        for v in 0..t.num_vars() {
            let x = TruthTable::projection(t.num_vars(), v).unwrap();
            let f1 = t.restrict(v, true);
            let f0 = t.restrict(v, false);
            let rebuilt = (&x & &f1) | (&(!&x) & &f0);
            prop_assert_eq!(rebuilt, t.clone());
        }
    }

    #[test]
    fn support_shrink_preserves_count_profile(t in arb_table(8)) {
        let s = t.shrink_to_support();
        // Ones scale by 2^(dead variables).
        let dead = t.num_vars() - s.num_vars();
        prop_assert_eq!(t.count_ones(), s.count_ones() << dead);
        // Shrinking twice is idempotent.
        prop_assert_eq!(s.shrink_to_support(), s.clone());
    }

    #[test]
    fn flip_preserves_count(t in arb_table(9)) {
        for v in 0..t.num_vars() {
            prop_assert_eq!(t.flip_var(v).count_ones(), t.count_ones());
        }
    }

    #[test]
    fn ones_iterator_is_sound(t in arb_table(8)) {
        let ones: Vec<u64> = t.ones().collect();
        prop_assert_eq!(ones.len() as u64, t.count_ones());
        for m in &ones {
            prop_assert!(t.bit(*m));
        }
        // Sorted, no duplicates.
        prop_assert!(ones.windows(2).all(|w| w[0] < w[1]));
    }
}
