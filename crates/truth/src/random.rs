//! Random truth-table and transform generation for workloads and tests.

use crate::table::TruthTable;
use crate::transform::{NpnTransform, Permutation};
use crate::words::{valid_bits_mask, WORD_VARS};
use rand::{Rng, RngExt};

impl TruthTable {
    /// Samples a uniformly random `num_vars`-variable function.
    ///
    /// Every one of the `2^(2^n)` functions is equally likely. This is the
    /// workload of the paper's Fig. 5 ("randomly generated 5-bit and 7-bit
    /// Boolean functions").
    ///
    /// # Errors
    ///
    /// Returns [`Error::TooManyVariables`](crate::Error::TooManyVariables)
    /// if `num_vars > 16`.
    ///
    /// # Examples
    ///
    /// ```
    /// use facepoint_truth::TruthTable;
    /// use rand::{rngs::StdRng, SeedableRng};
    ///
    /// let mut rng = StdRng::seed_from_u64(42);
    /// let f = TruthTable::random(7, &mut rng)?;
    /// assert_eq!(f.num_vars(), 7);
    /// # Ok::<(), facepoint_truth::Error>(())
    /// ```
    pub fn random<R: Rng + ?Sized>(num_vars: usize, rng: &mut R) -> crate::Result<Self> {
        let mut t = TruthTable::zero(num_vars)?;
        for w in t.words_mut() {
            *w = rng.random::<u64>();
        }
        if num_vars < WORD_VARS {
            t.words_mut()[0] &= valid_bits_mask(num_vars);
        }
        Ok(t)
    }
}

impl Permutation {
    /// Samples a uniformly random permutation of `0..n` (Fisher–Yates).
    pub fn random<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        let mut v: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.random_range(0..=i);
            v.swap(i, j);
        }
        Permutation::from_slice(&v).expect("shuffled identity is a permutation")
    }
}

impl NpnTransform {
    /// Samples a uniformly random NPN transform on `n` variables.
    ///
    /// Useful for property tests: signatures must be invariant under any
    /// sample from this distribution.
    pub fn random<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        let perm = Permutation::random(n, rng);
        let input_neg = if n == 0 {
            0
        } else {
            (rng.random::<u32>() as u16) & (((1u32 << n) - 1) as u16)
        };
        NpnTransform::new(perm, input_neg, rng.random::<bool>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_tables_have_valid_padding() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in 0..=8usize {
            for _ in 0..16 {
                let t = TruthTable::random(n, &mut rng).unwrap();
                assert!(t.count_ones() <= t.num_bits());
                // Round-trip through hex must preserve (padding is clean).
                assert_eq!(TruthTable::from_hex(n, &t.to_hex()).unwrap(), t);
            }
        }
    }

    #[test]
    fn random_permutations_are_valid() {
        let mut rng = StdRng::seed_from_u64(11);
        for n in 1..=10usize {
            for _ in 0..8 {
                let p = Permutation::random(n, &mut rng);
                assert!(p.compose(&p.inverse()).is_identity());
            }
        }
    }

    #[test]
    fn random_transform_roundtrips() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..32 {
            let f = TruthTable::random(6, &mut rng).unwrap();
            let t = NpnTransform::random(6, &mut rng);
            assert_eq!(t.inverse().apply(&t.apply(&f)), f);
        }
    }

    #[test]
    fn seeded_generation_is_deterministic() {
        let a = TruthTable::random(8, &mut StdRng::seed_from_u64(99)).unwrap();
        let b = TruthTable::random(8, &mut StdRng::seed_from_u64(99)).unwrap();
        assert_eq!(a, b);
    }
}
