//! Error types for truth-table construction and parsing.

use std::error::Error as StdError;
use std::fmt;

/// Errors produced by fallible [`TruthTable`](crate::TruthTable)
/// constructors and parsers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// The requested variable count exceeds [`MAX_VARS`](crate::MAX_VARS).
    TooManyVariables {
        /// The variable count that was requested.
        requested: usize,
    },
    /// A variable index was outside `0..num_vars`.
    VariableOutOfRange {
        /// The offending variable index.
        var: usize,
        /// The function's variable count.
        num_vars: usize,
    },
    /// A hexadecimal string had the wrong length for the variable count.
    HexLength {
        /// Number of hex digits expected.
        expected: usize,
        /// Number of hex digits found.
        found: usize,
    },
    /// A string contained a character that is not a valid digit.
    InvalidDigit {
        /// The offending character.
        ch: char,
    },
    /// A binary string had the wrong length for the variable count.
    BitLength {
        /// Number of bits expected.
        expected: usize,
        /// Number of bits found.
        found: usize,
    },
    /// A permutation slice was not a permutation of `0..n`.
    InvalidPermutation,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::TooManyVariables { requested } => write!(
                f,
                "truth tables support at most {} variables, got {requested}",
                crate::MAX_VARS
            ),
            Error::VariableOutOfRange { var, num_vars } => {
                write!(
                    f,
                    "variable index {var} out of range for {num_vars} variables"
                )
            }
            Error::HexLength { expected, found } => {
                write!(f, "expected {expected} hex digits, found {found}")
            }
            Error::InvalidDigit { ch } => write!(f, "invalid digit {ch:?}"),
            Error::BitLength { expected, found } => {
                write!(f, "expected {expected} bits, found {found}")
            }
            Error::InvalidPermutation => write!(f, "slice is not a permutation of 0..n"),
        }
    }
}

impl StdError for Error {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;
