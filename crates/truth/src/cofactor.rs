//! Cofactors and restrictions — the *face* characteristic of the paper.
//!
//! The cofactor `f_{x_i = v}` fixes variable `i` to the constant `v`
//! (Definition 1). Geometrically it is a face of the Boolean hypercube;
//! the number of 1-minterms on that face is the cofactor signature the
//! paper builds `OCV` vectors from. Counting never requires materializing
//! the smaller function: it is a masked popcount over the packed words.

use crate::table::TruthTable;
use crate::words::{var_mask_word, WORD_VARS};

impl TruthTable {
    /// Satisfy count of the cofactor `|f_{x_var = v}|` — a masked popcount,
    /// no table is materialized.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    ///
    /// # Examples
    ///
    /// ```
    /// use facepoint_truth::TruthTable;
    ///
    /// let maj = TruthTable::majority(3);
    /// assert_eq!(maj.cofactor_count(0, true), 3);  // |f_{x0=1}|
    /// assert_eq!(maj.cofactor_count(0, false), 1); // |f_{x0=0}|
    /// ```
    pub fn cofactor_count(&self, var: usize, value: bool) -> u64 {
        self.check_var(var).expect("variable index in range");
        let mut count = 0u64;
        for (i, &w) in self.words().iter().enumerate() {
            let m = var_mask_word(var, i);
            let sel = if value { w & m } else { w & !m };
            count += sel.count_ones() as u64;
        }
        count
    }

    /// Satisfy count of a multi-variable cofactor: `vars` and `values` are
    /// parallel slices fixing each listed variable.
    ///
    /// This realizes the higher-ary cofactor signatures of Definition 2.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths, a variable repeats, or
    /// an index is out of range.
    pub fn cofactor_count_multi(&self, vars: &[usize], values: &[bool]) -> u64 {
        assert_eq!(vars.len(), values.len(), "vars and values must pair up");
        for (k, &v) in vars.iter().enumerate() {
            self.check_var(v).expect("variable index in range");
            assert!(
                !vars[..k].contains(&v),
                "variable {v} repeated in cofactor specification"
            );
        }
        let mut count = 0u64;
        for (i, &w) in self.words().iter().enumerate() {
            let mut sel = w;
            for (&var, &value) in vars.iter().zip(values) {
                let m = var_mask_word(var, i);
                sel &= if value { m } else { !m };
            }
            count += sel.count_ones() as u64;
        }
        count
    }

    /// The cofactor `f_{x_var = v}` as a function of `n - 1` variables
    /// (variables above `var` shift down by one).
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars` or the table has zero variables.
    ///
    /// # Examples
    ///
    /// ```
    /// use facepoint_truth::TruthTable;
    ///
    /// // Shannon expansion: f = (¬x ∧ f0) ∨ (x ∧ f1), checked on majority.
    /// let f = TruthTable::majority(3);
    /// let f0 = f.cofactor(2, false); // = x0 ∧ x1
    /// let f1 = f.cofactor(2, true);  // = x0 ∨ x1
    /// assert_eq!(f0.to_hex(), "8");
    /// assert_eq!(f1.to_hex(), "e");
    /// ```
    #[must_use]
    pub fn cofactor(&self, var: usize, value: bool) -> TruthTable {
        self.check_var(var).expect("variable index in range");
        let n = self.num_vars();
        assert!(n >= 1, "cofactor of a 0-variable function");
        TruthTable::from_fn(n - 1, |m| {
            // Re-insert the fixed variable into the minterm index.
            let low = m & ((1u64 << var) - 1);
            let high = (m >> var) << (var + 1);
            let mid = (value as u64) << var;
            self.bit(low | mid | high)
        })
        .expect("n - 1 <= MAX_VARS")
    }

    /// Restriction keeping the arity: `f[x_var ← v]` as an `n`-variable
    /// function that no longer depends on `x_var`.
    #[must_use]
    pub fn restrict(&self, var: usize, value: bool) -> TruthTable {
        self.check_var(var).expect("variable index in range");
        let mut out = self.clone();
        // `chosen` carries the selected face on its x_var = 1 side;
        // `mirrored` carries the same values on the x_var = 0 side.
        let chosen = if value {
            self.clone()
        } else {
            self.flip_var(var)
        };
        let mirrored = chosen.flip_var(var);
        for (i, w) in out.words_mut().iter_mut().enumerate() {
            let m = var_mask_word(var, i);
            *w = (chosen.words()[i] & m) | (mirrored.words()[i] & !m);
        }
        out.mask_padding();
        out
    }

    /// Shannon co-expansion helper: returns both cofactors `(f0, f1)` with
    /// respect to `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn cofactors(&self, var: usize) -> (TruthTable, TruthTable) {
        (self.cofactor(var, false), self.cofactor(var, true))
    }

    /// Whether the function depends on `var` at all (`f_{x=0} ≠ f_{x=1}`).
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn depends_on(&self, var: usize) -> bool {
        self.check_var(var).expect("variable index in range");
        if var < WORD_VARS {
            // For the periodic in-word masks, shifting the x=1 half down by
            // 2^var aligns it with the x=0 half; the function depends on
            // the variable iff the halves differ somewhere.
            let shift = 1u32 << var;
            let m = crate::words::VAR_MASK[var];
            self.words().iter().any(|&w| ((w & m) >> shift) != (w & !m))
        } else {
            let block = 1usize << (var - WORD_VARS);
            let words = self.words();
            let mut i = 0;
            while i < words.len() {
                for k in 0..block {
                    if words[i + k] != words[i + block + k] {
                        return true;
                    }
                }
                i += 2 * block;
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cofactor_counts_sum_to_satisfy_count() {
        let t = TruthTable::from_fn(7, |m| m.wrapping_mul(0xDEAD_BEEF) % 9 < 4).unwrap();
        for var in 0..7 {
            assert_eq!(
                t.cofactor_count(var, false) + t.cofactor_count(var, true),
                t.count_ones()
            );
        }
    }

    #[test]
    fn cofactor_count_matches_extracted_table() {
        let t = TruthTable::from_fn(8, |m| (m ^ (m >> 3)) % 5 == 1).unwrap();
        for var in 0..8 {
            for value in [false, true] {
                assert_eq!(
                    t.cofactor_count(var, value),
                    t.cofactor(var, value).count_ones(),
                    "var {var} value {value}"
                );
            }
        }
    }

    #[test]
    fn multi_cofactor_matches_nested_single() {
        let t = TruthTable::from_fn(6, |m| m % 7 < 3).unwrap();
        for a in 0..6 {
            for b in 0..6 {
                if a == b {
                    continue;
                }
                for va in [false, true] {
                    for vb in [false, true] {
                        let direct = t.cofactor_count_multi(&[a, b], &[va, vb]);
                        // Nested: take cofactor on the higher index first so
                        // the lower index is unshifted.
                        let (hi, vhi, lo, vlo) = if a > b {
                            (a, va, b, vb)
                        } else {
                            (b, vb, a, va)
                        };
                        let nested = t.cofactor(hi, vhi).cofactor_count(lo, vlo);
                        assert_eq!(direct, nested, "vars ({a},{b}) values ({va},{vb})");
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "repeated")]
    fn multi_cofactor_rejects_repeats() {
        let t = TruthTable::majority(3);
        t.cofactor_count_multi(&[1, 1], &[true, false]);
    }

    #[test]
    fn shannon_expansion_reconstructs() {
        let t = TruthTable::from_fn(5, |m| (m * 37) % 4 == 2).unwrap();
        for var in 0..5 {
            let x = TruthTable::projection(5, var).unwrap();
            let f1 = t.restrict(var, true);
            let f0 = t.restrict(var, false);
            let rebuilt = (&x & &f1) | (&(!&x) & &f0);
            assert_eq!(rebuilt, t, "Shannon expansion on var {var}");
        }
    }

    #[test]
    fn restrict_drops_dependence() {
        let t = TruthTable::from_fn(6, |m| (m * 11) % 3 == 0).unwrap();
        for var in 0..6 {
            for v in [false, true] {
                let r = t.restrict(var, v);
                assert!(!r.depends_on(var), "var {var} v {v}");
                assert_eq!(r.cofactor(var, v), t.cofactor(var, v));
            }
        }
    }

    #[test]
    fn depends_on_detects_support() {
        // f = x0 xor x2 on 4 variables: depends on 0 and 2 only.
        let x0 = TruthTable::projection(4, 0).unwrap();
        let x2 = TruthTable::projection(4, 2).unwrap();
        let f = &x0 ^ &x2;
        assert!(f.depends_on(0));
        assert!(!f.depends_on(1));
        assert!(f.depends_on(2));
        assert!(!f.depends_on(3));
    }

    #[test]
    fn depends_on_high_vars_multiword() {
        let x7 = TruthTable::projection(8, 7).unwrap();
        let x6 = TruthTable::projection(8, 6).unwrap();
        let f = &x7 & &x6;
        for var in 0..8 {
            assert_eq!(f.depends_on(var), var >= 6, "var {var}");
        }
    }

    #[test]
    fn cofactor_shifts_higher_variables_down() {
        // f = x1 ∧ x3 (4 vars); cofactor on x1=1 should equal x2 of 3 vars
        // (old x3 becomes new x2).
        let x1 = TruthTable::projection(4, 1).unwrap();
        let x3 = TruthTable::projection(4, 3).unwrap();
        let f = &x1 & &x3;
        let c = f.cofactor(1, true);
        assert_eq!(c, TruthTable::projection(3, 2).unwrap());
        let c0 = f.cofactor(1, false);
        assert!(c0.is_constant());
    }
}
