//! Hexadecimal and binary string conversions.
//!
//! The hex format matches the convention of logic-synthesis tools (and of
//! the C++ `kitty` library the paper's baseline uses): the most significant
//! hex digit comes first, so the 3-input majority `0xE8` prints as `"e8"`.
//! Functions of fewer than two variables print a single digit.

use crate::error::{Error, Result};
use crate::table::TruthTable;

/// Number of hex digits in the printed form of an `n`-variable table.
#[inline]
pub fn hex_digits(num_vars: usize) -> usize {
    if num_vars < 2 {
        1
    } else {
        1 << (num_vars - 2)
    }
}

impl TruthTable {
    /// Formats the table as a lowercase hex string, most significant digit
    /// first.
    ///
    /// # Examples
    ///
    /// ```
    /// use facepoint_truth::TruthTable;
    ///
    /// assert_eq!(TruthTable::majority(3).to_hex(), "e8");
    /// assert_eq!(TruthTable::one(4)?.to_hex(), "ffff");
    /// # Ok::<(), facepoint_truth::Error>(())
    /// ```
    pub fn to_hex(&self) -> String {
        let digits = hex_digits(self.num_vars());
        let mut s = String::with_capacity(digits);
        for d in (0..digits).rev() {
            let word = self.words()[d / 16];
            let nibble = (word >> ((d % 16) * 4)) & 0xF;
            s.push(char::from_digit(nibble as u32, 16).expect("nibble < 16"));
        }
        s
    }

    /// Parses a hex string (as produced by [`TruthTable::to_hex`]) into an
    /// `num_vars`-variable table. An optional `0x` prefix is accepted.
    ///
    /// # Errors
    ///
    /// Returns [`Error::HexLength`] when the digit count does not match the
    /// variable count and [`Error::InvalidDigit`] on non-hex characters.
    ///
    /// # Examples
    ///
    /// ```
    /// use facepoint_truth::TruthTable;
    ///
    /// let maj = TruthTable::from_hex(3, "0xe8")?;
    /// assert_eq!(maj, TruthTable::majority(3));
    /// # Ok::<(), facepoint_truth::Error>(())
    /// ```
    pub fn from_hex(num_vars: usize, s: &str) -> Result<Self> {
        Self::check_vars(num_vars)?;
        let s = s
            .strip_prefix("0x")
            .or_else(|| s.strip_prefix("0X"))
            .unwrap_or(s);
        let expected = hex_digits(num_vars);
        if s.len() != expected {
            return Err(Error::HexLength {
                expected,
                found: s.len(),
            });
        }
        let mut t = TruthTable::zero(num_vars)?;
        for (pos, ch) in s.chars().enumerate() {
            let nibble = ch.to_digit(16).ok_or(Error::InvalidDigit { ch })? as u64;
            let d = expected - 1 - pos;
            t.words_mut()[d / 16] |= nibble << ((d % 16) * 4);
        }
        t.mask_padding();
        Ok(t)
    }

    /// Formats the table as a binary string, minterm `2^n - 1` first (the
    /// truth-table column read top-down in textbook orientation).
    pub fn to_binary(&self) -> String {
        let n = self.num_bits();
        let mut s = String::with_capacity(n as usize);
        for m in (0..n).rev() {
            s.push(if self.bit(m) { '1' } else { '0' });
        }
        s
    }

    /// Parses a binary string as produced by [`TruthTable::to_binary`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::BitLength`] on a length mismatch and
    /// [`Error::InvalidDigit`] on characters other than `0`/`1`.
    pub fn from_binary(num_vars: usize, s: &str) -> Result<Self> {
        Self::check_vars(num_vars)?;
        let expected = 1usize << num_vars;
        if s.len() != expected {
            return Err(Error::BitLength {
                expected,
                found: s.len(),
            });
        }
        let mut t = TruthTable::zero(num_vars)?;
        for (pos, ch) in s.chars().enumerate() {
            let m = (expected - 1 - pos) as u64;
            match ch {
                '1' => t.set_bit(m, true),
                '0' => {}
                _ => return Err(Error::InvalidDigit { ch }),
            }
        }
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_digit_counts() {
        assert_eq!(hex_digits(0), 1);
        assert_eq!(hex_digits(1), 1);
        assert_eq!(hex_digits(2), 1);
        assert_eq!(hex_digits(3), 2);
        assert_eq!(hex_digits(6), 16);
        assert_eq!(hex_digits(10), 256);
    }

    #[test]
    fn roundtrip_small() {
        for n in 0..=6usize {
            let t = TruthTable::from_fn(n, |m| m.wrapping_mul(0x9E37_79B9) % 3 == 0).unwrap();
            let s = t.to_hex();
            assert_eq!(TruthTable::from_hex(n, &s).unwrap(), t, "n = {n}: {s}");
        }
    }

    #[test]
    fn roundtrip_multiword() {
        let t = TruthTable::from_fn(9, |m| m % 5 < 2).unwrap();
        assert_eq!(TruthTable::from_hex(9, &t.to_hex()).unwrap(), t);
    }

    #[test]
    fn prefix_accepted() {
        assert!(TruthTable::from_hex(3, "0xE8").is_ok());
        assert!(TruthTable::from_hex(3, "0XE8").is_ok());
    }

    #[test]
    fn wrong_lengths_rejected() {
        assert!(matches!(
            TruthTable::from_hex(3, "e"),
            Err(Error::HexLength {
                expected: 2,
                found: 1
            })
        ));
        assert!(matches!(
            TruthTable::from_binary(2, "010"),
            Err(Error::BitLength {
                expected: 4,
                found: 3
            })
        ));
    }

    #[test]
    fn bad_digits_rejected() {
        assert!(matches!(
            TruthTable::from_hex(3, "zz"),
            Err(Error::InvalidDigit { ch: 'z' })
        ));
        assert!(matches!(
            TruthTable::from_binary(2, "01x0"),
            Err(Error::InvalidDigit { ch: 'x' })
        ));
    }

    #[test]
    fn binary_orientation() {
        // Majority-3: minterms 7,6,5,3 are 1 → "11101000".
        assert_eq!(TruthTable::majority(3).to_binary(), "11101000");
        assert_eq!(
            TruthTable::from_binary(3, "11101000").unwrap(),
            TruthTable::majority(3)
        );
    }

    #[test]
    fn single_variable_tables() {
        let x = TruthTable::projection(1, 0).unwrap();
        assert_eq!(x.to_hex(), "2");
        assert_eq!(TruthTable::from_hex(1, "2").unwrap(), x);
    }
}
