//! The [`TruthTable`] type: a packed bit-string representation of a Boolean
//! function.

use crate::error::{Error, Result};
use crate::words::{num_minterms, valid_bits_mask, var_mask_word, word_count, MAX_VARS, WORD_VARS};
use std::cmp::Ordering;
use std::fmt;

/// A complete truth table of an `n`-variable Boolean function
/// (`0 ≤ n ≤ 16`).
///
/// Bit `i` of the table is `f((i)₂)` with the little-endian convention of
/// the paper: the least-significant bit of the minterm index `i` is the
/// value of variable `x₀`. Tables of up to six variables occupy a single
/// `u64`; larger tables span `2^(n-6)` words.
///
/// The type upholds two invariants:
///
/// * `words.len() == word_count(num_vars)`,
/// * for `n < 6`, the bits above position `2^n` of the single word are zero.
///
/// # Examples
///
/// ```
/// use facepoint_truth::TruthTable;
///
/// // The 3-input majority function from Fig. 1a of the paper.
/// let maj = TruthTable::majority(3);
/// assert_eq!(maj.to_hex(), "e8");
/// assert_eq!(maj.count_ones(), 4);
/// assert!(maj.is_balanced());
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TruthTable {
    num_vars: u8,
    words: Vec<u64>,
}

impl TruthTable {
    /// Creates the constant-`false` function of `num_vars` variables.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TooManyVariables`] if `num_vars > 16`.
    pub fn zero(num_vars: usize) -> Result<Self> {
        Self::check_vars(num_vars)?;
        Ok(Self {
            num_vars: num_vars as u8,
            words: vec![0; word_count(num_vars)],
        })
    }

    /// Creates the constant-`true` function of `num_vars` variables.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TooManyVariables`] if `num_vars > 16`.
    pub fn one(num_vars: usize) -> Result<Self> {
        let mut t = Self::zero(num_vars)?;
        for w in &mut t.words {
            *w = u64::MAX;
        }
        t.mask_padding();
        Ok(t)
    }

    /// Creates the projection function `f(X) = x_var`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TooManyVariables`] if `num_vars > 16` and
    /// [`Error::VariableOutOfRange`] if `var >= num_vars`.
    pub fn projection(num_vars: usize, var: usize) -> Result<Self> {
        Self::check_vars(num_vars)?;
        if var >= num_vars {
            return Err(Error::VariableOutOfRange { var, num_vars });
        }
        let mut t = Self::zero(num_vars)?;
        for (i, w) in t.words.iter_mut().enumerate() {
            *w = var_mask_word(var, i);
        }
        t.mask_padding();
        Ok(t)
    }

    /// Creates the `n`-input majority function (`n` odd), the running
    /// example of the paper's Fig. 1a.
    ///
    /// # Panics
    ///
    /// Panics if `n` is even, zero, or greater than 16.
    pub fn majority(num_vars: usize) -> Self {
        assert!(
            num_vars % 2 == 1 && num_vars <= MAX_VARS,
            "majority needs odd n ≤ 16"
        );
        Self::from_fn(num_vars, |m| (m.count_ones() as usize) > num_vars / 2)
            .expect("validated above")
    }

    /// Creates the `n`-input parity (XOR) function.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars > 16`.
    pub fn parity(num_vars: usize) -> Self {
        Self::from_fn(num_vars, |m| m.count_ones() % 2 == 1).expect("parity bound checked")
    }

    /// Builds a table by evaluating `f` on every minterm index.
    ///
    /// The closure receives the minterm index whose bit `i` is the value of
    /// variable `x_i`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TooManyVariables`] if `num_vars > 16`.
    ///
    /// # Examples
    ///
    /// ```
    /// use facepoint_truth::TruthTable;
    ///
    /// let and2 = TruthTable::from_fn(2, |m| m == 0b11)?;
    /// assert_eq!(and2.to_hex(), "8");
    /// # Ok::<(), facepoint_truth::Error>(())
    /// ```
    pub fn from_fn(num_vars: usize, mut f: impl FnMut(u64) -> bool) -> Result<Self> {
        let mut t = Self::zero(num_vars)?;
        for m in 0..num_minterms(num_vars) {
            if f(m) {
                t.words[(m >> WORD_VARS) as usize] |= 1 << (m & 63);
            }
        }
        Ok(t)
    }

    /// Builds a table of up to six variables from the low `2^n` bits of a
    /// word.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TooManyVariables`] if `num_vars > 6`.
    pub fn from_u64(num_vars: usize, bits: u64) -> Result<Self> {
        if num_vars > WORD_VARS {
            return Err(Error::TooManyVariables {
                requested: num_vars,
            });
        }
        Ok(Self {
            num_vars: num_vars as u8,
            words: vec![bits & valid_bits_mask(num_vars)],
        })
    }

    /// Builds a table directly from backing words (little-endian word
    /// order).
    ///
    /// # Errors
    ///
    /// Returns [`Error::TooManyVariables`] if `num_vars > 16` or
    /// [`Error::BitLength`] if the slice length does not match
    /// `word_count(num_vars)`.
    pub fn from_words(num_vars: usize, w: &[u64]) -> Result<Self> {
        Self::check_vars(num_vars)?;
        if w.len() != word_count(num_vars) {
            return Err(Error::BitLength {
                expected: word_count(num_vars) * 64,
                found: w.len() * 64,
            });
        }
        let mut t = Self {
            num_vars: num_vars as u8,
            words: w.to_vec(),
        };
        t.mask_padding();
        Ok(t)
    }

    /// Number of input variables.
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.num_vars as usize
    }

    /// Number of minterms, `2^n`.
    #[inline]
    pub fn num_bits(&self) -> u64 {
        num_minterms(self.num_vars())
    }

    /// The backing words (little-endian word order).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// For tables of at most six variables, the single backing word.
    ///
    /// # Panics
    ///
    /// Panics if the table has more than six variables.
    #[inline]
    pub fn as_u64(&self) -> u64 {
        assert!(
            self.num_vars() <= WORD_VARS,
            "as_u64 requires at most 6 variables, table has {}",
            self.num_vars
        );
        self.words[0]
    }

    /// The value of the function on minterm `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 2^n`.
    #[inline]
    pub fn bit(&self, idx: u64) -> bool {
        assert!(idx < self.num_bits(), "minterm index {idx} out of range");
        (self.words[(idx >> WORD_VARS) as usize] >> (idx & 63)) & 1 == 1
    }

    /// Sets the value of the function on minterm `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 2^n`.
    #[inline]
    pub fn set_bit(&mut self, idx: u64, value: bool) {
        assert!(idx < self.num_bits(), "minterm index {idx} out of range");
        let w = &mut self.words[(idx >> WORD_VARS) as usize];
        if value {
            *w |= 1 << (idx & 63);
        } else {
            *w &= !(1 << (idx & 63));
        }
    }

    /// The satisfy count `|f|`: number of minterms mapped to 1.
    ///
    /// This is the paper's 0-ary cofactor signature (Definition 2).
    #[inline]
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Number of minterms mapped to 0.
    #[inline]
    pub fn count_zeros(&self) -> u64 {
        self.num_bits() - self.count_ones()
    }

    /// Whether `|f| = |¬f| = 2^(n-1)` (Section II-A of the paper).
    ///
    /// Balanced functions are the ones whose output polarity cannot be
    /// normalized by the satisfy count alone; Theorems 3 and 4 of the paper
    /// exist to handle them.
    #[inline]
    pub fn is_balanced(&self) -> bool {
        self.count_ones() * 2 == self.num_bits()
    }

    /// Whether the function is constant (zero or one).
    pub fn is_constant(&self) -> bool {
        let c = self.count_ones();
        c == 0 || c == self.num_bits()
    }

    /// Iterates over all minterm indices on which the function is 1.
    ///
    /// # Examples
    ///
    /// ```
    /// use facepoint_truth::TruthTable;
    ///
    /// let maj = TruthTable::majority(3);
    /// let ones: Vec<u64> = maj.ones().collect();
    /// assert_eq!(ones, vec![0b011, 0b101, 0b110, 0b111]);
    /// ```
    pub fn ones(&self) -> Ones<'_> {
        Ones {
            table: self,
            word_idx: 0,
            current: self.words[0],
        }
    }

    /// Mutable access to the backing words. Callers must restore the
    /// padding invariant (via [`Self::mask_padding`]) after whole-word
    /// writes — kept crate-private for that reason.
    #[inline]
    pub(crate) fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Re-zeroes the padding bits of sub-word tables. Internal invariant
    /// maintenance called after any whole-word operation.
    #[inline]
    pub(crate) fn mask_padding(&mut self) {
        if self.num_vars() < WORD_VARS {
            self.words[0] &= valid_bits_mask(self.num_vars());
        }
    }

    #[inline]
    pub(crate) fn check_vars(num_vars: usize) -> Result<()> {
        if num_vars > MAX_VARS {
            Err(Error::TooManyVariables {
                requested: num_vars,
            })
        } else {
            Ok(())
        }
    }

    /// Checks a variable index against this table's arity.
    #[inline]
    pub(crate) fn check_var(&self, var: usize) -> Result<()> {
        if var >= self.num_vars() {
            Err(Error::VariableOutOfRange {
                var,
                num_vars: self.num_vars(),
            })
        } else {
            Ok(())
        }
    }
}

/// Iterator over the 1-minterms of a table, created by
/// [`TruthTable::ones`].
#[derive(Debug, Clone)]
pub struct Ones<'a> {
    table: &'a TruthTable,
    word_idx: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as u64;
                self.current &= self.current - 1;
                return Some(((self.word_idx as u64) << WORD_VARS) | bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.table.words.len() {
                return None;
            }
            self.current = self.table.words[self.word_idx];
        }
    }
}

impl PartialOrd for TruthTable {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TruthTable {
    /// Orders tables by variable count first, then as big-endian integers
    /// (most-significant word decides), which matches interpreting the bit
    /// string as a number. Canonical forms are minima under this order.
    fn cmp(&self, other: &Self) -> Ordering {
        self.num_vars
            .cmp(&other.num_vars)
            .then_with(|| self.words.iter().rev().cmp(other.words.iter().rev()))
    }
}

impl fmt::Debug for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TruthTable({}: 0x{})", self.num_vars, self.to_hex())
    }
}

impl fmt::Display for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one() {
        for n in 0..=8 {
            let z = TruthTable::zero(n).unwrap();
            let o = TruthTable::one(n).unwrap();
            assert_eq!(z.count_ones(), 0);
            assert_eq!(o.count_ones(), 1 << n);
            assert!(z.is_constant() && o.is_constant());
            assert_eq!(z.num_vars(), n);
        }
    }

    #[test]
    fn too_many_vars_rejected() {
        assert!(matches!(
            TruthTable::zero(17),
            Err(Error::TooManyVariables { requested: 17 })
        ));
    }

    #[test]
    fn projection_semantics() {
        for n in 1..=9usize {
            for v in 0..n {
                let p = TruthTable::projection(n, v).unwrap();
                for m in 0..(1u64 << n) {
                    assert_eq!(p.bit(m), (m >> v) & 1 == 1, "n={n} v={v} m={m}");
                }
            }
        }
    }

    #[test]
    fn projection_var_out_of_range() {
        assert!(matches!(
            TruthTable::projection(3, 3),
            Err(Error::VariableOutOfRange {
                var: 3,
                num_vars: 3
            })
        ));
    }

    #[test]
    fn majority3_is_0xe8() {
        let maj = TruthTable::majority(3);
        assert_eq!(maj.as_u64(), 0xE8);
    }

    #[test]
    fn parity_counts() {
        for n in 1..=8usize {
            let p = TruthTable::parity(n);
            assert_eq!(p.count_ones(), 1 << (n - 1));
            assert!(p.is_balanced());
        }
    }

    #[test]
    fn from_fn_large() {
        let t = TruthTable::from_fn(8, |m| m % 3 == 0).unwrap();
        for m in 0..256u64 {
            assert_eq!(t.bit(m), m % 3 == 0);
        }
        assert_eq!(t.words().len(), 4);
    }

    #[test]
    fn set_bit_roundtrip() {
        let mut t = TruthTable::zero(7).unwrap();
        t.set_bit(100, true);
        assert!(t.bit(100));
        assert_eq!(t.count_ones(), 1);
        t.set_bit(100, false);
        assert_eq!(t.count_ones(), 0);
    }

    #[test]
    fn ones_iterator_matches_bits() {
        let t = TruthTable::from_fn(7, |m| m.count_ones() == 2).unwrap();
        let via_iter: Vec<u64> = t.ones().collect();
        let via_bits: Vec<u64> = (0..128).filter(|&m| t.bit(m)).collect();
        assert_eq!(via_iter, via_bits);
    }

    #[test]
    fn ordering_is_numeric() {
        let a = TruthTable::from_u64(3, 0x10).unwrap();
        let b = TruthTable::from_u64(3, 0x0F).unwrap();
        assert!(b < a);
        let c = TruthTable::from_words(7, &[u64::MAX, 0]).unwrap();
        let d = TruthTable::from_words(7, &[0, 1]).unwrap();
        assert!(c < d, "high word dominates");
    }

    #[test]
    fn from_u64_masks_padding() {
        let t = TruthTable::from_u64(2, u64::MAX).unwrap();
        assert_eq!(t.as_u64(), 0xF);
        assert_eq!(t.count_ones(), 4);
    }

    #[test]
    fn zero_variable_constants() {
        let z = TruthTable::zero(0).unwrap();
        assert_eq!(z.num_bits(), 1);
        assert!(!z.bit(0));
        let o = TruthTable::one(0).unwrap();
        assert!(o.bit(0));
        assert!(!o.is_balanced());
    }

    #[test]
    fn display_and_debug() {
        let maj = TruthTable::majority(3);
        assert_eq!(format!("{maj}"), "0xe8");
        assert_eq!(format!("{maj:?}"), "TruthTable(3: 0xe8)");
    }
}
