//! Unateness and related functional properties.
//!
//! A function is *positive unate* in `x_i` when raising `x_i` can never
//! lower the output (`f_{x_i=0} ≤ f_{x_i=1}` pointwise), *negative
//! unate* when the reverse holds, and *binate* otherwise. Unateness is a
//! classical Boolean-matching filter (binate variables can only map to
//! binate variables) and a common structural property in logic
//! synthesis; it complements the NPN-invariant signatures of the
//! `facepoint-sig` crate.

use crate::table::TruthTable;

/// Polarity of a unate variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Unateness {
    /// `f` never decreases when the variable rises.
    PositiveUnate,
    /// `f` never increases when the variable rises.
    NegativeUnate,
    /// Both directions occur (the variable is binate).
    Binate,
}

impl TruthTable {
    /// Classifies the function's dependence on `var`.
    ///
    /// A variable outside the support is both positive and negative
    /// unate; this returns [`Unateness::PositiveUnate`] for it (the
    /// conventional choice — monotone in the degenerate sense).
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    ///
    /// # Examples
    ///
    /// ```
    /// use facepoint_truth::{TruthTable, Unateness};
    ///
    /// let maj = TruthTable::majority(3);
    /// assert_eq!(maj.unateness(0), Unateness::PositiveUnate);
    ///
    /// let parity = TruthTable::parity(3);
    /// assert_eq!(parity.unateness(0), Unateness::Binate);
    /// ```
    pub fn unateness(&self, var: usize) -> Unateness {
        self.check_var(var).expect("variable index in range");
        // Compare the two faces pointwise: pos = some 0→1 rise,
        // neg = some 1→0 fall, walking words with the face masks.
        let mut rises = false;
        let mut falls = false;
        if var < crate::words::WORD_VARS {
            let shift = 1u32 << var;
            let m = crate::words::VAR_MASK[var];
            for &w in self.words() {
                let hi = (w & m) >> shift; // face x_var = 1, aligned
                let lo = w & !m; // face x_var = 0
                rises |= hi & !lo != 0;
                falls |= lo & !hi != 0;
            }
        } else {
            let block = 1usize << (var - crate::words::WORD_VARS);
            let words = self.words();
            let mut i = 0;
            while i < words.len() {
                for k in 0..block {
                    let lo = words[i + k];
                    let hi = words[i + block + k];
                    rises |= hi & !lo != 0;
                    falls |= lo & !hi != 0;
                }
                i += 2 * block;
            }
        }
        match (rises, falls) {
            (true, true) => Unateness::Binate,
            (false, true) => Unateness::NegativeUnate,
            _ => Unateness::PositiveUnate,
        }
    }

    /// Whether the function is unate (not binate) in every variable.
    pub fn is_unate(&self) -> bool {
        (0..self.num_vars()).all(|v| self.unateness(v) != Unateness::Binate)
    }

    /// Whether the function is monotone: positive unate in every
    /// variable.
    ///
    /// # Examples
    ///
    /// ```
    /// use facepoint_truth::TruthTable;
    ///
    /// assert!(TruthTable::majority(5).is_monotone());
    /// assert!(!TruthTable::parity(3).is_monotone());
    /// ```
    pub fn is_monotone(&self) -> bool {
        (0..self.num_vars()).all(|v| self.unateness(v) == Unateness::PositiveUnate)
    }

    /// Whether the function is self-dual: `¬f(¬X) = f(X)`.
    ///
    /// Self-dual functions (like majority) have NPN orbits half the
    /// generic size — their output-negation coset coincides with an
    /// input-phase coset.
    ///
    /// # Examples
    ///
    /// ```
    /// use facepoint_truth::TruthTable;
    ///
    /// assert!(TruthTable::majority(3).is_self_dual());
    /// assert!(TruthTable::parity(3).is_self_dual()); // odd parity flips
    /// assert!(!TruthTable::parity(2).is_self_dual());
    /// ```
    pub fn is_self_dual(&self) -> bool {
        let mut g = self.clone();
        for v in 0..self.num_vars() {
            g.flip_var_in_place(v);
        }
        g.negate_in_place();
        g == *self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_is_positive_unate_everywhere() {
        let maj = TruthTable::majority(5);
        for v in 0..5 {
            assert_eq!(maj.unateness(v), Unateness::PositiveUnate);
        }
        assert!(maj.is_unate());
        assert!(maj.is_monotone());
    }

    #[test]
    fn negated_input_flips_polarity() {
        let maj = TruthTable::majority(3);
        let g = maj.flip_var(1);
        assert_eq!(g.unateness(1), Unateness::NegativeUnate);
        assert_eq!(g.unateness(0), Unateness::PositiveUnate);
        assert!(g.is_unate());
        assert!(!g.is_monotone());
    }

    #[test]
    fn parity_is_binate_everywhere() {
        let p = TruthTable::parity(4);
        for v in 0..4 {
            assert_eq!(p.unateness(v), Unateness::Binate);
        }
        assert!(!p.is_unate());
    }

    #[test]
    fn dead_variable_counts_as_positive() {
        let f = TruthTable::projection(3, 1).unwrap();
        assert_eq!(f.unateness(0), Unateness::PositiveUnate);
        assert_eq!(f.unateness(2), Unateness::PositiveUnate);
        assert_eq!(f.unateness(1), Unateness::PositiveUnate);
    }

    #[test]
    fn unateness_matches_cofactor_order_naive() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(307);
        for n in 1..=8usize {
            let f = TruthTable::random(n, &mut rng).unwrap();
            for v in 0..n {
                let f0 = f.cofactor(v, false);
                let f1 = f.cofactor(v, true);
                let le = (&f0 & &f1) == f0; // f0 ≤ f1
                let ge = (&f0 | &f1) == f0; // f0 ≥ f1
                let expect = match (le, ge) {
                    (true, _) => Unateness::PositiveUnate,
                    (false, true) => Unateness::NegativeUnate,
                    _ => Unateness::Binate,
                };
                assert_eq!(f.unateness(v), expect, "n={n} v={v} f={f}");
            }
        }
    }

    #[test]
    fn self_duality() {
        assert!(TruthTable::majority(5).is_self_dual());
        let x = TruthTable::projection(2, 0).unwrap();
        assert!(x.is_self_dual(), "a single literal is self-dual");
        assert!(!TruthTable::one(3).unwrap().is_self_dual());
        // XOR of 3 variables IS self-dual (odd parity flips under total
        // complement); XOR of 2 is not.
        assert!(TruthTable::parity(3).is_self_dual());
        assert!(!TruthTable::parity(2).is_self_dual());
    }

    #[test]
    fn multiword_unateness() {
        // x6 ∧ x7 on 8 vars: positive unate in both high variables.
        let a = TruthTable::projection(8, 6).unwrap();
        let b = TruthTable::projection(8, 7).unwrap();
        let f = &a & &b;
        assert_eq!(f.unateness(6), Unateness::PositiveUnate);
        assert_eq!(f.unateness(7), Unateness::PositiveUnate);
        let g = f.flip_var(7);
        assert_eq!(g.unateness(7), Unateness::NegativeUnate);
    }
}
