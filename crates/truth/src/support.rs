//! Functional support: which variables a function actually depends on.
//!
//! Cut enumeration routinely produces functions that ignore some of their
//! leaves (the paper dedups truth tables after extraction, which requires
//! first normalizing away dead variables). [`TruthTable::shrink_to_support`]
//! produces the support-minimized function.

use crate::table::TruthTable;

impl TruthTable {
    /// Bitmask of the variables in the functional support (bit `i` set iff
    /// the function depends on `x_i`).
    ///
    /// # Examples
    ///
    /// ```
    /// use facepoint_truth::TruthTable;
    ///
    /// let x0 = TruthTable::projection(4, 0)?;
    /// let x3 = TruthTable::projection(4, 3)?;
    /// assert_eq!((&x0 ^ &x3).support_mask(), 0b1001);
    /// # Ok::<(), facepoint_truth::Error>(())
    /// ```
    pub fn support_mask(&self) -> u16 {
        let mut mask = 0u16;
        for var in 0..self.num_vars() {
            if self.depends_on(var) {
                mask |= 1 << var;
            }
        }
        mask
    }

    /// Number of variables in the functional support.
    pub fn support_size(&self) -> usize {
        self.support_mask().count_ones() as usize
    }

    /// Whether some declared variable is not in the support.
    pub fn has_dead_variables(&self) -> bool {
        self.support_size() != self.num_vars()
    }

    /// Returns the same function expressed over exactly its support
    /// variables, relabelled to `0..k` in increasing original order.
    ///
    /// Constants shrink to 0-variable tables.
    ///
    /// # Examples
    ///
    /// ```
    /// use facepoint_truth::TruthTable;
    ///
    /// let x1 = TruthTable::projection(5, 1)?;
    /// let x4 = TruthTable::projection(5, 4)?;
    /// let f = &x1 & &x4;
    /// let g = f.shrink_to_support();
    /// assert_eq!(g.num_vars(), 2);
    /// assert_eq!(g.to_hex(), "8"); // two-input AND
    /// # Ok::<(), facepoint_truth::Error>(())
    /// ```
    #[must_use]
    pub fn shrink_to_support(&self) -> TruthTable {
        let mask = self.support_mask();
        let k = mask.count_ones() as usize;
        if k == self.num_vars() {
            return self.clone();
        }
        let vars: Vec<usize> = (0..self.num_vars())
            .filter(|&v| (mask >> v) & 1 == 1)
            .collect();
        TruthTable::from_fn(k, |m| {
            // Scatter the compact minterm onto the original variables; dead
            // variables read 0 (their value is irrelevant by definition).
            let mut full = 0u64;
            for (j, &v) in vars.iter().enumerate() {
                full |= ((m >> j) & 1) << v;
            }
            self.bit(full)
        })
        .expect("k <= num_vars")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_support_is_identity() {
        let t = TruthTable::majority(3);
        assert_eq!(t.support_mask(), 0b111);
        assert_eq!(t.shrink_to_support(), t);
        assert!(!t.has_dead_variables());
    }

    #[test]
    fn constant_shrinks_to_zero_vars() {
        let t = TruthTable::one(5).unwrap();
        assert_eq!(t.support_mask(), 0);
        let s = t.shrink_to_support();
        assert_eq!(s.num_vars(), 0);
        assert!(s.bit(0));
    }

    #[test]
    fn shrink_preserves_function() {
        // f(x0..x4) = maj(x0, x2, x4) embedded in 5 variables.
        let f = TruthTable::from_fn(5, |m| {
            let a = m & 1;
            let b = (m >> 2) & 1;
            let c = (m >> 4) & 1;
            a + b + c >= 2
        })
        .unwrap();
        assert_eq!(f.support_mask(), 0b10101);
        let s = f.shrink_to_support();
        assert_eq!(s, TruthTable::majority(3));
    }

    #[test]
    fn shrink_multiword() {
        // 8-variable function depending only on x6, x7.
        let f = TruthTable::from_fn(8, |m| (m >> 6) == 0b11).unwrap();
        let s = f.shrink_to_support();
        assert_eq!(s.num_vars(), 2);
        assert_eq!(s.to_hex(), "8");
    }
}
