//! Word-level bit manipulation primitives.
//!
//! A truth table of an `n`-variable Boolean function is stored as a packed
//! little-endian bit string: bit `i` of the string holds `f((i)₂)` where the
//! binary code of `i` assigns its least-significant bit to variable `x₀`.
//! For `n ≤ 6` the whole table fits in one `u64`; beyond that the table
//! spans `2^(n-6)` words.
//!
//! This module collects the constant masks and the classic
//! delta-swap/shuffle tricks (Hacker's Delight, ch. 7) that the rest of the
//! crate builds on. All functions here operate on raw `u64` words so the
//! hot loops of canonicalization algorithms can run without touching heap
//! allocated [`TruthTable`](crate::TruthTable)s.

/// Maximum number of variables supported by this crate.
///
/// Sixteen variables means `2^16` bits = 1024 words per table, which keeps
/// every algorithm in this workspace comfortably in cache while covering
/// every cut size used in the paper's evaluation (n ≤ 10).
pub const MAX_VARS: usize = 16;

/// Number of variables whose truth table fits into a single `u64`.
pub const WORD_VARS: usize = 6;

/// In-word masks selecting the positions where variable `i` equals 1.
///
/// `VAR_MASK[0] = 0xAAAA…` picks every odd minterm (x₀ = 1), `VAR_MASK[1] =
/// 0xCCCC…` picks minterms with x₁ = 1, and so on up to variable 5 whose
/// mask is the upper half of the word.
pub const VAR_MASK: [u64; WORD_VARS] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

/// Number of 64-bit words needed for an `n`-variable truth table.
///
/// Functions of fewer than seven variables still occupy one word; only the
/// low `2^n` bits of it are meaningful (the rest are kept zero).
#[inline]
pub const fn word_count(num_vars: usize) -> usize {
    if num_vars <= WORD_VARS {
        1
    } else {
        1 << (num_vars - WORD_VARS)
    }
}

/// Mask of the valid bits in the (single) word of an `n ≤ 6` variable table.
///
/// For `n ≥ 6` every bit of every word is valid and the mask is all ones.
#[inline]
pub const fn valid_bits_mask(num_vars: usize) -> u64 {
    if num_vars >= WORD_VARS {
        u64::MAX
    } else {
        (1u64 << (1usize << num_vars)) - 1
    }
}

/// Number of minterms (`2^n`) of an `n`-variable function.
#[inline]
pub const fn num_minterms(num_vars: usize) -> u64 {
    1u64 << num_vars
}

/// Mask word for variable `var` at word index `word_idx`.
///
/// Returns the portion of "the set of minterms with `x_var = 1`" that falls
/// into word `word_idx`. For `var < 6` this is a constant in-word pattern;
/// for `var ≥ 6` whole words are either fully inside (all ones) or fully
/// outside (zero) depending on bit `var - 6` of the word index.
#[inline]
pub fn var_mask_word(var: usize, word_idx: usize) -> u64 {
    if var < WORD_VARS {
        VAR_MASK[var]
    } else if (word_idx >> (var - WORD_VARS)) & 1 == 1 {
        u64::MAX
    } else {
        0
    }
}

/// Exchange the bit groups selected by `mask` with the groups `shift`
/// positions above them (the classic *delta swap*).
///
/// `mask` must select only bits whose partner (`bit << shift`) does not
/// overlap `mask` itself.
#[inline]
pub const fn delta_swap(word: u64, mask: u64, shift: u32) -> u64 {
    let t = ((word >> shift) ^ word) & mask;
    word ^ t ^ (t << shift)
}

/// Negate variable `var < 6` inside a single word.
///
/// Produces the table of `f` with `x_var` replaced by `¬x_var`: the halves
/// of every aligned `2^(var+1)` block are exchanged.
#[inline]
pub const fn flip_var_word(word: u64, var: usize) -> u64 {
    debug_assert!(var < WORD_VARS);
    let shift = 1u32 << var;
    let mask = VAR_MASK[var];
    ((word & mask) >> shift) | ((word << shift) & mask)
}

/// Swap variables `a < b < 6` inside a single word.
#[inline]
pub const fn swap_vars_word(word: u64, a: usize, b: usize) -> u64 {
    debug_assert!(a < b && b < WORD_VARS);
    // Bits with x_a = 1, x_b = 0 move up by (2^b - 2^a); equivalently
    // delta-swap the positions with x_a = 0, x_b = 1 against their partners
    // below. `mask` selects x_a = 1, x_b = 0 (the *lower* position of each
    // exchanged pair).
    let mask = VAR_MASK[a] & !VAR_MASK[b];
    let shift = (1u32 << b) - (1u32 << a);
    delta_swap(word, mask, shift)
}

/// Number of 1-bits among the valid bits of a single-word table.
#[inline]
pub const fn count_ones_word(word: u64, num_vars: usize) -> u32 {
    (word & valid_bits_mask(num_vars)).count_ones()
}

/// The positive cofactor count `|f_{x_var = 1}|` of a single-word table.
#[inline]
pub const fn cofactor1_count_word(word: u64, var: usize, num_vars: usize) -> u32 {
    debug_assert!(var < WORD_VARS);
    (word & VAR_MASK[var] & valid_bits_mask(num_vars)).count_ones()
}

/// The negative cofactor count `|f_{x_var = 0}|` of a single-word table.
#[inline]
pub const fn cofactor0_count_word(word: u64, var: usize, num_vars: usize) -> u32 {
    debug_assert!(var < WORD_VARS);
    (word & !VAR_MASK[var] & valid_bits_mask(num_vars)).count_ones()
}

/// Truth table (single word) of the projection function `f(X) = x_var`
/// restricted to `num_vars ≤ 6` variables.
#[inline]
pub const fn projection_word(var: usize, num_vars: usize) -> u64 {
    debug_assert!(var < WORD_VARS);
    VAR_MASK[var] & valid_bits_mask(num_vars)
}

/// Apply an input-negation mask and output negation to a single-word table.
///
/// Bit `i` of `neg` negates variable `i`. This is the innermost operation
/// of exhaustive NPN canonicalization, kept branch-light on purpose.
#[inline]
pub fn apply_phase_word(mut word: u64, neg: u16, output_neg: bool, num_vars: usize) -> u64 {
    let mut m = neg & (((1u32 << num_vars) - 1) as u16);
    while m != 0 {
        let v = m.trailing_zeros() as usize;
        word = flip_var_word(word, v);
        m &= m - 1;
    }
    if output_neg {
        word = !word & valid_bits_mask(num_vars);
    }
    word
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference implementation: permute/negate minterm indices one by one.
    fn flip_var_naive(word: u64, var: usize, num_vars: usize) -> u64 {
        let mut out = 0u64;
        for m in 0..(1usize << num_vars) {
            if (word >> m) & 1 == 1 {
                out |= 1 << (m ^ (1 << var));
            }
        }
        out
    }

    fn swap_vars_naive(word: u64, a: usize, b: usize, num_vars: usize) -> u64 {
        let mut out = 0u64;
        for m in 0..(1usize << num_vars) {
            if (word >> m) & 1 == 1 {
                let ba = (m >> a) & 1;
                let bb = (m >> b) & 1;
                let swapped = (m & !((1 << a) | (1 << b))) | (bb << a) | (ba << b);
                out |= 1 << swapped;
            }
        }
        out
    }

    #[test]
    fn word_count_boundaries() {
        assert_eq!(word_count(0), 1);
        assert_eq!(word_count(6), 1);
        assert_eq!(word_count(7), 2);
        assert_eq!(word_count(10), 16);
        assert_eq!(word_count(16), 1024);
    }

    #[test]
    fn valid_bits_small() {
        assert_eq!(valid_bits_mask(0), 0b1);
        assert_eq!(valid_bits_mask(1), 0b11);
        assert_eq!(valid_bits_mask(2), 0xF);
        assert_eq!(valid_bits_mask(5), 0xFFFF_FFFF);
        assert_eq!(valid_bits_mask(6), u64::MAX);
        assert_eq!(valid_bits_mask(12), u64::MAX);
    }

    #[test]
    fn var_masks_partition_words() {
        for (i, &m) in VAR_MASK.iter().enumerate() {
            assert_eq!(m.count_ones(), 32, "mask {i} must select half the word");
            // x_i = 1 positions: bit i of the position index is set.
            for pos in 0..64u64 {
                let expect = (pos >> i) & 1 == 1;
                assert_eq!((m >> pos) & 1 == 1, expect, "mask {i} position {pos}");
            }
        }
    }

    #[test]
    fn flip_matches_naive() {
        let samples = [
            0xE8u64, // 3-input majority
            0x1234_5678_9ABC_DEF0,
            0x8000_0000_0000_0001,
            u64::MAX,
            0,
        ];
        for &w in &samples {
            for var in 0..WORD_VARS {
                assert_eq!(
                    flip_var_word(w, var),
                    flip_var_naive(w, var, WORD_VARS),
                    "flip var {var} of {w:#x}"
                );
            }
        }
    }

    #[test]
    fn flip_is_involution() {
        let w = 0xDEAD_BEEF_CAFE_F00D;
        for var in 0..WORD_VARS {
            assert_eq!(flip_var_word(flip_var_word(w, var), var), w);
        }
    }

    #[test]
    fn swap_matches_naive() {
        let samples = [0xE8u64, 0x1234_5678_9ABC_DEF0, 0x8000_0000_0000_0001];
        for &w in &samples {
            for a in 0..WORD_VARS {
                for b in (a + 1)..WORD_VARS {
                    assert_eq!(
                        swap_vars_word(w, a, b),
                        swap_vars_naive(w, a, b, WORD_VARS),
                        "swap {a},{b} of {w:#x}"
                    );
                }
            }
        }
    }

    #[test]
    fn swap_is_involution() {
        let w = 0x0123_4567_89AB_CDEF;
        for a in 0..WORD_VARS {
            for b in (a + 1)..WORD_VARS {
                assert_eq!(swap_vars_word(swap_vars_word(w, a, b), a, b), w);
            }
        }
    }

    #[test]
    fn cofactor_counts_split_satisfy_count() {
        let w = 0x1234_5678_9ABC_DEF0u64;
        for var in 0..WORD_VARS {
            let c0 = cofactor0_count_word(w, var, 6);
            let c1 = cofactor1_count_word(w, var, 6);
            assert_eq!(c0 + c1, w.count_ones());
        }
    }

    #[test]
    fn projection_counts() {
        for n in 1..=6usize {
            for var in 0..n {
                let p = projection_word(var, n);
                assert_eq!(p.count_ones() as u64, num_minterms(n) / 2);
            }
        }
    }

    #[test]
    fn apply_phase_gray_roundtrip() {
        let w = 0x6996_9669_5AA5_A55A;
        for neg in 0u16..64 {
            let once = apply_phase_word(w, neg, true, 6);
            let back = apply_phase_word(once, neg, true, 6);
            assert_eq!(back, w, "phase {neg:#b} must be an involution");
        }
    }

    #[test]
    fn var_mask_word_high_vars() {
        // Variable 6 selects every odd word, variable 7 every odd pair…
        assert_eq!(var_mask_word(6, 0), 0);
        assert_eq!(var_mask_word(6, 1), u64::MAX);
        assert_eq!(var_mask_word(7, 1), 0);
        assert_eq!(var_mask_word(7, 2), u64::MAX);
        assert_eq!(var_mask_word(7, 3), u64::MAX);
        assert_eq!(var_mask_word(3, 17), VAR_MASK[3]);
    }
}
