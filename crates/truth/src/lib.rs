//! # facepoint-truth
//!
//! Bit-parallel truth tables and NPN transform algebra for Boolean
//! functions of up to 16 variables — the substrate of the *facepoint*
//! workspace, which reproduces the DATE 2023 paper *"Rethinking NPN
//! Classification from Face and Point Characteristics of Boolean
//! Functions"* (arXiv:2301.12122).
//!
//! A truth table is a `2^n`-bit string packed into `u64` words: bit `i`
//! holds `f((i)₂)` with variable `x₀` in the least-significant position of
//! the minterm index (the paper's Section II-A convention, shared with the
//! C++ `kitty` library). On top of the packed representation the crate
//! provides
//!
//! * Boolean operators (`&`, `|`, `^`, `!`) and Shannon
//!   cofactors/restrictions ([`TruthTable::cofactor`],
//!   [`TruthTable::cofactor_count`]) — the *face* operations,
//! * NP transformations: input flips ([`TruthTable::flip_var`]), variable
//!   swaps and permutations, and the full [`NpnTransform`] group with
//!   composition and inversion,
//! * functional-support analysis ([`TruthTable::shrink_to_support`]),
//! * hex/binary round-tripping and uniform random sampling.
//!
//! # Quick start
//!
//! ```
//! use facepoint_truth::{NpnTransform, Permutation, TruthTable};
//!
//! // The 3-input majority function (Fig. 1a of the paper).
//! let maj = TruthTable::majority(3);
//! assert_eq!(maj.to_hex(), "e8");
//!
//! // An NPN transform of it (Fig. 1b is one such function).
//! let t = NpnTransform::new(Permutation::from_slice(&[2, 0, 1])?, 0b011, true);
//! let g = t.apply(&maj);
//!
//! // Transforms invert: g maps back to maj.
//! assert_eq!(t.inverse().apply(&g), maj);
//! # Ok::<(), facepoint_truth::Error>(())
//! ```
//!
//! The raw word-level kernels (variable masks, delta swaps) are exported in
//! [`words`] for performance-critical canonicalization loops.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

// The derives behind this feature need a real `serde` crate, which the
// offline build environment cannot vendor yet. Fail with a clear
// message instead of "undeclared crate or module `serde`".
#[cfg(feature = "serde")]
compile_error!(
    "the `serde` feature is declared for forward-compatibility but needs a \
     real serde crate vendored under vendor/ first (see README.md)"
);

mod cofactor;
mod error;
mod hex;
mod ops;
mod random;
mod support;
mod table;
mod transform;
mod unate;
pub mod words;

pub use error::{Error, Result};
pub use hex::hex_digits;
pub use table::{Ones, TruthTable};
pub use transform::{NpnTransform, Permutation};
pub use unate::Unateness;
pub use words::MAX_VARS;
