//! Bitwise Boolean operator implementations for [`TruthTable`].
//!
//! Truth tables combine point-wise: `&`, `|`, `^` and `!` realize the
//! conjunction, disjunction, exclusive-or and complement of the underlying
//! functions. All binary operators require equal variable counts.

use crate::table::TruthTable;
use std::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, BitXor, BitXorAssign, Not};

macro_rules! binary_op {
    ($trait:ident, $method:ident, $assign_trait:ident, $assign_method:ident, $op:tt) => {
        impl $assign_trait<&TruthTable> for TruthTable {
            /// # Panics
            ///
            /// Panics if the operands have different variable counts.
            fn $assign_method(&mut self, rhs: &TruthTable) {
                assert_eq!(
                    self.num_vars(),
                    rhs.num_vars(),
                    "operands must have equal variable counts"
                );
                for (a, b) in self.words_mut().iter_mut().zip(rhs.words()) {
                    *a $op *b;
                }
            }
        }

        impl $assign_trait for TruthTable {
            fn $assign_method(&mut self, rhs: TruthTable) {
                *self $op &rhs;
            }
        }

        impl $trait for &TruthTable {
            type Output = TruthTable;

            fn $method(self, rhs: &TruthTable) -> TruthTable {
                let mut out = self.clone();
                out $op rhs;
                out
            }
        }

        impl $trait for TruthTable {
            type Output = TruthTable;

            fn $method(mut self, rhs: TruthTable) -> TruthTable {
                self $op &rhs;
                self
            }
        }
    };
}

binary_op!(BitAnd, bitand, BitAndAssign, bitand_assign, &=);
binary_op!(BitOr, bitor, BitOrAssign, bitor_assign, |=);
binary_op!(BitXor, bitxor, BitXorAssign, bitxor_assign, ^=);

impl TruthTable {
    /// Complements the function in place (output negation `f ↦ ¬f`).
    pub fn negate_in_place(&mut self) {
        for w in self.words_mut() {
            *w = !*w;
        }
        self.mask_padding();
    }

    /// Returns the complemented function `¬f`.
    ///
    /// # Examples
    ///
    /// ```
    /// use facepoint_truth::TruthTable;
    ///
    /// let maj = TruthTable::majority(3);
    /// assert_eq!((!&maj).count_ones(), 4);
    /// assert_eq!(!!maj.clone(), maj);
    /// ```
    pub fn negated(&self) -> TruthTable {
        let mut out = self.clone();
        out.negate_in_place();
        out
    }
}

impl Not for &TruthTable {
    type Output = TruthTable;

    fn not(self) -> TruthTable {
        self.negated()
    }
}

impl Not for TruthTable {
    type Output = TruthTable;

    fn not(mut self) -> TruthTable {
        self.negate_in_place();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn de_morgan() {
        let a = TruthTable::from_u64(4, 0x8F31).unwrap();
        let b = TruthTable::from_u64(4, 0x5AC3).unwrap();
        assert_eq!(!(&a & &b), &(!&a) | &(!&b));
        assert_eq!(!(&a | &b), &(!&a) & &(!&b));
    }

    #[test]
    fn xor_is_symmetric_difference() {
        let a = TruthTable::from_u64(3, 0b1100_1010).unwrap();
        let b = TruthTable::from_u64(3, 0b1010_0110).unwrap();
        let x = &a ^ &b;
        for m in 0..8 {
            assert_eq!(x.bit(m), a.bit(m) != b.bit(m));
        }
    }

    #[test]
    fn not_respects_padding() {
        let a = TruthTable::from_u64(2, 0b0110).unwrap();
        let n = !&a;
        assert_eq!(n.as_u64(), 0b1001);
        assert_eq!(n.count_ones(), 2);
    }

    #[test]
    fn multiword_ops() {
        let a = TruthTable::from_fn(8, |m| m % 2 == 0).unwrap();
        let b = TruthTable::from_fn(8, |m| m % 4 == 0).unwrap();
        assert_eq!(&a & &b, b);
        assert_eq!(&a | &b, a);
    }

    #[test]
    #[should_panic(expected = "equal variable counts")]
    fn mismatched_arity_panics() {
        let a = TruthTable::zero(3).unwrap();
        let b = TruthTable::zero(4).unwrap();
        let _ = &a & &b;
    }

    #[test]
    fn assign_variants() {
        let mut a = TruthTable::from_u64(3, 0xF0).unwrap();
        let b = TruthTable::from_u64(3, 0x3C).unwrap();
        a ^= &b;
        assert_eq!(a.as_u64(), 0xCC);
        a |= b.clone();
        assert_eq!(a.as_u64(), 0xFC);
        a &= b;
        assert_eq!(a.as_u64(), 0x3C);
    }
}
