//! NP transformations: input negation, input permutation, output negation,
//! and the [`NpnTransform`] group algebra.
//!
//! The paper (Section II-A) writes an NP transformation of `f` as
//! `f(π((¬)X))`: a selective negation of inputs followed by a reorder. We
//! represent the full NPN transform as a triple *(permutation, input-phase
//! mask, output phase)* with the semantics
//!
//! ```text
//! g(X) = out ⊕ f(Y)    where   Y_i = X_{perm[i]} ⊕ neg_i
//! ```
//!
//! i.e. variable `i` of `f` reads input position `perm[i]` of `g`,
//! optionally complemented. Two functions are NPN-equivalent iff some
//! transform maps one onto the other.

use crate::error::{Error, Result};
use crate::table::TruthTable;
use crate::words::{flip_var_word, swap_vars_word, WORD_VARS};
use std::fmt;

impl TruthTable {
    /// Negates input variable `var` in place: `f ↦ f[x_var ← ¬x_var]`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn flip_var_in_place(&mut self, var: usize) {
        self.check_var(var).expect("variable index in range");
        if var < WORD_VARS {
            let n = self.num_vars();
            for w in self.words_mut() {
                *w = flip_var_word(*w, var);
            }
            if n < WORD_VARS {
                // flip of the top in-use variable keeps bits inside the
                // valid region, but be defensive for n < 6.
                self.mask_padding();
            }
        } else {
            // Swap adjacent word blocks of size 2^(var-6).
            let block = 1usize << (var - WORD_VARS);
            let words = self.words_mut();
            let mut i = 0;
            while i < words.len() {
                for k in 0..block {
                    words.swap(i + k, i + block + k);
                }
                i += 2 * block;
            }
        }
    }

    /// Returns `f` with input variable `var` negated.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    ///
    /// # Examples
    ///
    /// ```
    /// use facepoint_truth::TruthTable;
    ///
    /// let and2 = TruthTable::from_u64(2, 0b1000)?; // x0 ∧ x1
    /// let gt = and2.flip_var(0);                   // ¬x0 ∧ x1
    /// assert_eq!(gt.as_u64(), 0b0100);
    /// # Ok::<(), facepoint_truth::Error>(())
    /// ```
    #[must_use]
    pub fn flip_var(&self, var: usize) -> TruthTable {
        let mut out = self.clone();
        out.flip_var_in_place(var);
        out
    }

    /// Writes the words of the Boolean derivative
    /// `∂f/∂x_var = f ⊕ f[x_var ← ¬x_var]` into `out`, reusing its
    /// allocation.
    ///
    /// This is the inner step of sensitivity and influence computation;
    /// computing the derivative word-by-word avoids materializing the
    /// flipped table (which [`TruthTable::flip_var`] would clone in
    /// full). Padding bits of sub-word tables stay zero.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn derivative_words_into(&self, var: usize, out: &mut Vec<u64>) {
        self.check_var(var).expect("variable index in range");
        let words = self.words();
        out.clear();
        if var < WORD_VARS {
            out.extend(words.iter().map(|&w| w ^ flip_var_word(w, var)));
        } else {
            // The partner word of index `i` differs exactly in bit
            // `var - 6` of the word index.
            let bit = 1usize << (var - WORD_VARS);
            out.extend((0..words.len()).map(|i| words[i] ^ words[i ^ bit]));
        }
    }

    /// Exchanges input variables `a` and `b` in place.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn swap_vars_in_place(&mut self, a: usize, b: usize) {
        self.check_var(a).expect("variable index in range");
        self.check_var(b).expect("variable index in range");
        if a == b {
            return;
        }
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        if hi < WORD_VARS {
            for w in self.words_mut() {
                *w = swap_vars_word(*w, lo, hi);
            }
        } else if lo >= WORD_VARS {
            // Both variables index whole words: swap word pairs whose word
            // indices differ exactly in bits (lo-6) and (hi-6).
            let bl = lo - WORD_VARS;
            let bh = hi - WORD_VARS;
            let words = self.words_mut();
            for i in 0..words.len() {
                let l = (i >> bl) & 1;
                let h = (i >> bh) & 1;
                if l == 1 && h == 0 {
                    let j = (i & !((1 << bl) | (1 << bh))) | (1 << bh);
                    words.swap(i, j);
                }
            }
        } else {
            // Mixed case: `lo` lives inside the word, `hi` selects word
            // blocks. Exchange the in-word half (x_lo = 1) of the low block
            // with the (x_lo = 0) half of the partner word.
            let shift = 1u32 << lo;
            let mask = crate::words::VAR_MASK[lo];
            let bh = hi - WORD_VARS;
            let words = self.words_mut();
            for i in 0..words.len() {
                if (i >> bh) & 1 == 0 {
                    let j = i | (1 << bh);
                    let a_w = words[i];
                    let b_w = words[j];
                    // Bits of word i with x_lo = 1 trade places with bits
                    // of word j with x_lo = 0 (shifted into alignment).
                    words[i] = (a_w & !mask) | ((b_w & !mask) << shift);
                    words[j] = (b_w & mask) | ((a_w & mask) >> shift);
                }
            }
        }
    }

    /// Returns `f` with input variables `a` and `b` exchanged.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    #[must_use]
    pub fn swap_vars(&self, a: usize, b: usize) -> TruthTable {
        let mut out = self.clone();
        out.swap_vars_in_place(a, b);
        out
    }

    /// Exchanges adjacent input variables `var` and `var + 1` in place.
    ///
    /// This is the step operation of Steinhaus–Johnson–Trotter permutation
    /// enumeration used by exhaustive canonicalization.
    ///
    /// # Panics
    ///
    /// Panics if `var + 1 >= num_vars`.
    #[inline]
    pub fn swap_adjacent_in_place(&mut self, var: usize) {
        self.swap_vars_in_place(var, var + 1);
    }

    /// Applies a permutation of the input variables.
    ///
    /// The result `g` satisfies `g(x_0, …, x_{n-1}) = f(x_{perm[0]}, …,
    /// x_{perm[n-1]})`: variable `i` of `f` reads input position `perm[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..num_vars`.
    #[must_use]
    pub fn permute_vars(&self, perm: &Permutation) -> TruthTable {
        assert_eq!(
            perm.len(),
            self.num_vars(),
            "permutation arity must match table arity"
        );
        let mut out = TruthTable::zero(self.num_vars()).expect("same arity as self");
        for m in 0..self.num_bits() {
            if self.bit(m) {
                // `f` is 1 at Y; `g` is 1 at every X with Y_i = X_{perm[i]},
                // i.e. X_{perm[i]} = Y_i.
                let mut x = 0u64;
                for (i, &p) in perm.as_slice().iter().enumerate() {
                    x |= ((m >> i) & 1) << p;
                }
                out.set_bit(x, true);
            }
        }
        out
    }
}

/// A permutation of variable indices `0..n`.
///
/// Stored as the image vector: `perm[i]` is where index `i` is mapped.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Permutation(Vec<u8>);

impl Permutation {
    /// The identity permutation on `n` elements.
    pub fn identity(n: usize) -> Self {
        Permutation((0..n as u8).collect())
    }

    /// Builds a permutation from its image slice.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidPermutation`] if the slice is not a
    /// permutation of `0..len`.
    pub fn from_slice(slice: &[usize]) -> Result<Self> {
        let n = slice.len();
        let mut seen = vec![false; n];
        for &v in slice {
            if v >= n || seen[v] {
                return Err(Error::InvalidPermutation);
            }
            seen[v] = true;
        }
        Ok(Permutation(slice.iter().map(|&v| v as u8).collect()))
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the permutation acts on zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The image of index `i`.
    #[inline]
    pub fn map(&self, i: usize) -> usize {
        self.0[i] as usize
    }

    /// The image vector as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }

    /// The inverse permutation: `inv.map(self.map(i)) == i`.
    #[must_use]
    pub fn inverse(&self) -> Self {
        let mut inv = vec![0u8; self.0.len()];
        for (i, &p) in self.0.iter().enumerate() {
            inv[p as usize] = i as u8;
        }
        Permutation(inv)
    }

    /// Composition `self ∘ other`: first apply `other`, then `self`
    /// (`result.map(i) == self.map(other.map(i))`).
    #[must_use]
    pub fn compose(&self, other: &Self) -> Self {
        assert_eq!(self.len(), other.len(), "permutation sizes must match");
        Permutation(other.0.iter().map(|&p| self.0[p as usize]).collect())
    }

    /// Exchanges the images of positions `i` and `j`.
    pub fn swap_images(&mut self, i: usize, j: usize) {
        self.0.swap(i, j);
    }

    /// Whether this is the identity permutation.
    pub fn is_identity(&self) -> bool {
        self.0.iter().enumerate().all(|(i, &p)| i == p as usize)
    }
}

impl fmt::Display for Permutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, p) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, ")")
    }
}

/// A full NPN transformation: input permutation, selective input negation
/// and output negation.
///
/// Applying the transform to `f` yields `g` with `g(X) = output_neg ⊕ f(Y)`
/// where `Y_i = X_{perm[i]} ⊕ input_neg_i` — the paper's `(¬)f(π((¬)X))`.
///
/// Transforms form a group: [`NpnTransform::compose`] and
/// [`NpnTransform::inverse`] obey `t.inverse().apply(&t.apply(&f)) == f`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NpnTransform {
    perm: Permutation,
    input_neg: u16,
    output_neg: bool,
}

impl NpnTransform {
    /// The identity transform on `n` variables.
    pub fn identity(n: usize) -> Self {
        NpnTransform {
            perm: Permutation::identity(n),
            input_neg: 0,
            output_neg: false,
        }
    }

    /// Creates a transform from its parts.
    ///
    /// Bit `i` of `input_neg` complements variable `i` (of the *source*
    /// function `f`).
    pub fn new(perm: Permutation, input_neg: u16, output_neg: bool) -> Self {
        NpnTransform {
            perm,
            input_neg,
            output_neg,
        }
    }

    /// A pure input/output-phase transform (identity permutation).
    pub fn phase(n: usize, input_neg: u16, output_neg: bool) -> Self {
        Self::new(Permutation::identity(n), input_neg, output_neg)
    }

    /// The permutation component.
    pub fn perm(&self) -> &Permutation {
        &self.perm
    }

    /// The input-negation mask (bit `i` negates variable `i` of `f`).
    pub fn input_neg(&self) -> u16 {
        self.input_neg
    }

    /// Whether the output is complemented.
    pub fn output_neg(&self) -> bool {
        self.output_neg
    }

    /// Number of variables the transform acts on.
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// Whether the transform acts on zero variables.
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// Applies the transform to a truth table, producing
    /// `g(X) = out ⊕ f(Y)`, `Y_i = X_{perm[i]} ⊕ neg_i`.
    ///
    /// # Panics
    ///
    /// Panics if the transform arity differs from the table arity.
    ///
    /// # Examples
    ///
    /// ```
    /// use facepoint_truth::{NpnTransform, Permutation, TruthTable};
    ///
    /// let f = TruthTable::from_u64(2, 0b1000)?; // x0 ∧ x1
    /// // g(x0, x1) = ¬f(¬x0, x1) = ¬(¬x0 ∧ x1) — NOR-ish shape
    /// let t = NpnTransform::new(Permutation::identity(2), 0b01, true);
    /// let g = t.apply(&f);
    /// assert_eq!(g.as_u64(), 0b1011);
    /// # Ok::<(), facepoint_truth::Error>(())
    /// ```
    #[must_use]
    pub fn apply(&self, f: &TruthTable) -> TruthTable {
        assert_eq!(self.len(), f.num_vars(), "transform arity must match table");
        let mut t = f.clone();
        let mut neg = self.input_neg;
        while neg != 0 {
            let v = neg.trailing_zeros() as usize;
            t.flip_var_in_place(v);
            neg &= neg - 1;
        }
        let mut t = t.permute_vars(&self.perm);
        if self.output_neg {
            t.negate_in_place();
        }
        t
    }

    /// Composition: `self.compose(&first)` applies `first` and then `self`
    /// (`composed.apply(f) == self.apply(&first.apply(f))`).
    #[must_use]
    pub fn compose(&self, first: &Self) -> Self {
        assert_eq!(self.len(), first.len(), "transform sizes must match");
        // With g1 = first(f): g1(X) = o1 ⊕ f(Y), Y_i = X_{p1[i]} ⊕ n1_i and
        // g2 = self(g1): g2(X) = o2 ⊕ g1(Z), Z_j = X_{p2[j]} ⊕ n2_j, the
        // direct form g2(X) = (o1⊕o2) ⊕ f(W) has
        // W_i = Z_{p1[i]} ⊕ n1_i = X_{p2[p1[i]]} ⊕ n2_{p1[i]} ⊕ n1_i.
        let n = self.len();
        let mut perm = vec![0usize; n];
        let mut neg = 0u16;
        for (i, slot) in perm.iter_mut().enumerate() {
            let p1i = first.perm.map(i);
            *slot = self.perm.map(p1i);
            let bit = ((first.input_neg >> i) & 1) ^ ((self.input_neg >> p1i) & 1);
            neg |= bit << i;
        }
        NpnTransform {
            perm: Permutation::from_slice(&perm).expect("composition of permutations"),
            input_neg: neg,
            output_neg: self.output_neg ^ first.output_neg,
        }
    }

    /// The inverse transform: `t.inverse().apply(&t.apply(&f)) == f`.
    #[must_use]
    pub fn inverse(&self) -> Self {
        let inv = self.perm.inverse();
        let mut neg = 0u16;
        for j in 0..self.len() {
            neg |= ((self.input_neg >> inv.map(j)) & 1) << j;
        }
        NpnTransform {
            perm: inv,
            input_neg: neg,
            output_neg: self.output_neg,
        }
    }
}

impl fmt::Display for NpnTransform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "π={} neg={:#b} out={}",
            self.perm, self.input_neg, self.output_neg as u8
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(n: usize, bits: u64) -> TruthTable {
        TruthTable::from_u64(n, bits).unwrap()
    }

    #[test]
    fn flip_var_semantics_naive() {
        let t = TruthTable::from_fn(8, |m| (m * 2654435761) % 7 < 3).unwrap();
        for var in 0..8 {
            let flipped = t.flip_var(var);
            for m in 0..256u64 {
                assert_eq!(flipped.bit(m), t.bit(m ^ (1 << var)), "var {var} m {m}");
            }
        }
    }

    #[test]
    fn derivative_words_match_flip_xor() {
        let mut out = Vec::new();
        for n in [0usize, 2, 5, 6, 7, 8] {
            let t = TruthTable::from_fn(n, |m| m.wrapping_mul(0x9E37_79B9) % 5 < 2).unwrap();
            for var in 0..n {
                t.derivative_words_into(var, &mut out);
                let expect = &t ^ &t.flip_var(var);
                assert_eq!(out.as_slice(), expect.words(), "n={n} var={var}");
            }
        }
    }

    #[test]
    fn swap_vars_semantics_naive() {
        let t = TruthTable::from_fn(9, |m| (m * 0x9E3779B9) % 11 < 4).unwrap();
        // Cover all three implementation cases: in-word, mixed, word-level.
        for &(a, b) in &[(0, 3), (4, 5), (2, 7), (5, 8), (6, 8), (7, 8)] {
            let s = t.swap_vars(a, b);
            for m in 0..512u64 {
                let ba = (m >> a) & 1;
                let bb = (m >> b) & 1;
                let sm = (m & !((1 << a) | (1 << b))) | (bb << a) | (ba << b);
                assert_eq!(s.bit(m), t.bit(sm), "swap ({a},{b}) minterm {m}");
            }
        }
    }

    #[test]
    fn swap_same_var_is_noop() {
        let t = table(4, 0xBEEF);
        assert_eq!(t.swap_vars(2, 2), t);
    }

    #[test]
    fn permute_matches_swaps() {
        let t = table(4, 0x8D27);
        let perm = Permutation::from_slice(&[2, 0, 3, 1]).unwrap();
        let via_permute = t.permute_vars(&perm);
        for m in 0..16u64 {
            // g(X) = f(Y), Y_i = X_{perm[i]}
            let mut y = 0u64;
            for i in 0..4 {
                y |= ((m >> perm.map(i)) & 1) << i;
            }
            assert_eq!(via_permute.bit(m), t.bit(y), "minterm {m}");
        }
    }

    #[test]
    fn permute_identity() {
        let t = table(5, 0xDEAD_BEEF);
        assert_eq!(t.permute_vars(&Permutation::identity(5)), t);
    }

    #[test]
    fn permutation_inverse_composes_to_identity() {
        let p = Permutation::from_slice(&[3, 1, 4, 0, 2]).unwrap();
        assert!(p.compose(&p.inverse()).is_identity());
        assert!(p.inverse().compose(&p).is_identity());
    }

    #[test]
    fn permutation_rejects_bad_slices() {
        assert!(Permutation::from_slice(&[0, 0, 1]).is_err());
        assert!(Permutation::from_slice(&[0, 3]).is_err());
        assert!(Permutation::from_slice(&[]).is_ok());
    }

    #[test]
    fn transform_apply_then_inverse_roundtrips() {
        let f = table(5, 0x1357_9BDF_0246_8ACE);
        let t = NpnTransform::new(
            Permutation::from_slice(&[4, 2, 0, 1, 3]).unwrap(),
            0b10110,
            true,
        );
        let g = t.apply(&f);
        assert_eq!(t.inverse().apply(&g), f);
    }

    #[test]
    fn transform_composition_law() {
        let f = table(4, 0x7A2C);
        let t1 = NpnTransform::new(
            Permutation::from_slice(&[1, 3, 0, 2]).unwrap(),
            0b0101,
            false,
        );
        let t2 = NpnTransform::new(
            Permutation::from_slice(&[2, 0, 3, 1]).unwrap(),
            0b1010,
            true,
        );
        let sequential = t2.apply(&t1.apply(&f));
        let composed = t2.compose(&t1).apply(&f);
        assert_eq!(sequential, composed);
    }

    #[test]
    fn paper_lemma2_example() {
        // Lemma 2's worked example: f(π((¬)x1x2x3x4)) = f(x4, ¬x3, x2, ¬x1).
        // Build a g from f via the transform machinery and verify the
        // pointwise relation. Variables here are 0-indexed: x1 → index 0.
        let f = table(4, 0x35C9);
        // g(X) = f(Y) with Y_0 = X_3, Y_1 = ¬X_2, Y_2 = X_1, Y_3 = ¬X_0:
        // perm = [3, 2, 1, 0], neg on f-variables 1 and 3.
        let t = NpnTransform::new(
            Permutation::from_slice(&[3, 2, 1, 0]).unwrap(),
            0b1010,
            false,
        );
        let g = t.apply(&f);
        for m in 0..16u64 {
            let x = |i: u64| (m >> i) & 1;
            let y = x(3) | ((x(2) ^ 1) << 1) | (x(1) << 2) | ((x(0) ^ 1) << 3);
            assert_eq!(g.bit(m), f.bit(y));
        }
    }

    #[test]
    fn multiword_flip_high_variable() {
        let t = TruthTable::from_fn(8, |m| m < 100).unwrap();
        let flipped = t.flip_var(7);
        for m in 0..256u64 {
            assert_eq!(flipped.bit(m), t.bit(m ^ 0x80));
        }
    }

    #[test]
    fn display_formats() {
        let t = NpnTransform::new(Permutation::from_slice(&[1, 0]).unwrap(), 0b01, true);
        assert_eq!(format!("{t}"), "π=(1 0) neg=0b1 out=1");
    }
}
