//! Per-connection submit fairness: one connection streaming a huge
//! `SUBMIT-BATCH` must not starve another connection's observation
//! requests.
//!
//! Before per-connection [`SubmitHandle`]s, the batch submitter held
//! the single engine lock for the whole submission — including all the
//! time it spent blocked on ingest backpressure — so a concurrent
//! `STATS`/`SNAPSHOT` waited for the entire batch to clear. Now the
//! batch blocks on the work-stealing pool's bounded deques while the
//! engine lock stays free, and observation latency must stay bounded
//! *while the batch is still in flight*.
//!
//! The batch is sized by a quick on-machine calibration so the busy
//! window is seconds long on any hardware, and the latency bound is a
//! small fraction of it.

use facepoint_engine::{Engine, EngineConfig};
use facepoint_serve::{Client, Server, ServerConfig};
use facepoint_truth::TruthTable;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long the busy window should last (the batch is sized to this).
const TARGET_BUSY: Duration = Duration::from_secs(5);
/// Observation latency bound while the batch is in flight — far below
/// the busy window, far above any scheduler noise.
const LATENCY_BOUND: Duration = Duration::from_secs(2);

fn tables(n: usize, count: usize) -> Vec<TruthTable> {
    // Cycle a modest pool of distinct tables out to `count`: generation
    // stays cheap however large the calibrated batch gets (the engine
    // runs with the memo cache off, so repeats still cost full keying).
    let pool = facepoint_bench::random_workload(n, count.min(2048), 0xFA1C);
    (0..count).map(|i| pool[i % pool.len()].clone()).collect()
}

/// Classification rate of this machine/build (debug vs release differ
/// ~30×), measured on a throwaway single-worker engine.
fn calibrate_fns_per_sec(sample: &[TruthTable]) -> f64 {
    let mut engine = Engine::builder()
        .config(EngineConfig {
            workers: 1,
            chunk_size: 32,
            ..EngineConfig::default()
        })
        .build()
        .unwrap();
    let start = Instant::now();
    engine.submit_batch(sample.iter().cloned());
    assert!(engine.drain(Duration::from_secs(120)));
    let rate = sample.len() as f64 / start.elapsed().as_secs_f64();
    drop(engine.finish());
    rate.max(1.0)
}

#[test]
fn big_batch_does_not_starve_observers() {
    let n = 9;
    let sample = tables(n, 96);
    let rate = calibrate_fns_per_sec(&sample);
    let batch_len = ((rate * TARGET_BUSY.as_secs_f64()) as usize).clamp(256, 200_000);
    let fns = tables(n, batch_len);
    let lines: Vec<String> = fns
        .iter()
        .map(|f| format!("{}:{}", f.num_vars(), f.to_hex()))
        .collect();

    // One worker and shallow deques: the batch submitter spends almost
    // the whole busy window blocked on pool backpressure — exactly the
    // state that used to be spent holding the engine lock.
    let engine = Engine::builder()
        .config(EngineConfig {
            workers: 1,
            chunk_size: 32,
            deque_capacity: 2,
            ..EngineConfig::default()
        })
        .build()
        .unwrap();
    let server = Server::bind("127.0.0.1:0", engine, ServerConfig::default()).unwrap();
    let addr = server.local_addr().unwrap();
    let shutdown = server.shutdown_handle();
    let run = std::thread::spawn(move || server.run());

    let batch_done = Arc::new(AtomicBool::new(false));
    let ingester = {
        let batch_done = Arc::clone(&batch_done);
        std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            let (first, count) = client
                .submit_batch(lines.iter().map(String::as_str))
                .unwrap();
            batch_done.store(true, Ordering::SeqCst);
            client.quit().unwrap();
            (first, count)
        })
    };

    // The observer: poll SNAPSHOT and STATS while the batch streams,
    // recording the worst latency seen before the batch completed.
    let mut observer = Client::connect(addr).unwrap();
    let mut polls_during_batch = 0u32;
    let mut worst = Duration::ZERO;
    let mut saw_backlog = false;
    let deadline = Instant::now() + Duration::from_secs(120);
    while !batch_done.load(Ordering::SeqCst) {
        assert!(Instant::now() < deadline, "batch never completed");
        let start = Instant::now();
        let snap = observer.snapshot().unwrap();
        observer.stats().unwrap();
        let latency = start.elapsed();
        // Only polls that ran strictly before the batch finished count
        // against the bound (the final overlapping poll is fine too —
        // the server answered it mid-batch either way).
        if !batch_done.load(Ordering::SeqCst) {
            polls_during_batch += 1;
            worst = worst.max(latency);
            saw_backlog |= snap.backlog > 0;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    let (first, count) = ingester.join().unwrap();
    assert_eq!(first, 0);
    assert_eq!(count, fns.len() as u64);

    // The batch was genuinely in flight while we observed…
    assert!(
        polls_during_batch >= 3,
        "only {polls_during_batch} observation rounds overlapped the batch — \
         the busy window was too short to measure ({batch_len} tables)"
    );
    assert!(
        saw_backlog,
        "no poll ever saw backlog; the batch never contended with the observer"
    );
    // …and never starved the observer: the old engine-lock path parked
    // these requests for the whole busy window (≈{TARGET_BUSY:?}).
    assert!(
        worst <= LATENCY_BOUND,
        "observation latency reached {worst:?} while a {batch_len}-table batch \
         was streaming (bound {LATENCY_BOUND:?})"
    );

    // Everything lands; clean shutdown.
    let snap = observer.wait_drained(Duration::from_secs(120)).unwrap();
    assert_eq!(snap.processed, fns.len() as u64);
    assert_eq!(snap.backlog, 0);
    observer.quit().unwrap();
    shutdown.shutdown();
    let report = run.join().unwrap().unwrap().unwrap();
    assert_eq!(report.stats.functions_processed, fns.len() as u64);
}
