//! End-to-end protocol tests over real sockets: an in-process server,
//! the spec client, and raw frames for the violations a well-behaved
//! client cannot produce. Together with the dispatcher unit tests in
//! `src/server.rs`, every opcode and error code of `docs/PROTOCOL.md`
//! is exercised.

use facepoint_bench::transform_closure_workload as workload;
use facepoint_core::wire::Record;
use facepoint_core::{signature_key, Classifier};
use facepoint_engine::{Engine, EngineConfig};
use facepoint_serve::proto::{self, Status};
use facepoint_serve::{Client, ProtoError, Server, ServerConfig, ShutdownHandle};
use facepoint_sig::SignatureSet;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

const DRAIN: Duration = Duration::from_secs(30);

fn spawn_server(
    cfg: EngineConfig,
) -> (
    SocketAddr,
    ShutdownHandle,
    std::thread::JoinHandle<std::io::Result<Option<facepoint_engine::EngineReport>>>,
) {
    let engine = Engine::builder().config(cfg).build().unwrap();
    let server = Server::bind("127.0.0.1:0", engine, ServerConfig::default()).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.shutdown_handle();
    let run = std::thread::spawn(move || server.run());
    (addr, handle, run)
}

#[test]
fn full_session_matches_one_shot_classifier() {
    let fns = workload(5, 12, 8, 0xBEEF);
    let expected = Classifier::new(SignatureSet::all()).classify(fns.clone());
    let (addr, handle, run) = spawn_server(EngineConfig {
        workers: 2,
        chunk_size: 16,
        cache_capacity: 1 << 12,
        ..EngineConfig::default()
    });

    let mut client = Client::connect(addr).unwrap();
    let info = client.server_info().clone();
    assert_eq!(info.version, proto::PROTO_VERSION);
    assert_eq!(info.set, SignatureSet::all().to_string());
    assert!(!info.persistent);
    client.ping().unwrap();

    // One single submit, then the rest in batches.
    let lines: Vec<String> = fns
        .iter()
        .map(|f| format!("{}:{}", f.num_vars(), f.to_hex()))
        .collect();
    let seq = client.submit(&lines[0]).unwrap();
    assert_eq!(seq, 0);
    let mut next = 1;
    for chunk in lines[1..].chunks(17) {
        let (first, count) = client
            .submit_batch(chunk.iter().map(String::as_str))
            .unwrap();
        assert_eq!(first, next);
        assert_eq!(count, chunk.len() as u64);
        next += count;
    }
    let snap = client.wait_drained(DRAIN).unwrap();
    assert_eq!(snap.submitted, lines.len() as u64);
    assert_eq!(snap.processed, snap.submitted);
    assert_eq!(snap.backlog, 0);
    assert_eq!(snap.classes as usize, expected.num_classes());

    // TOP agrees with the one-shot partition: same keys, same sizes.
    let top = client.top(usize::MAX).unwrap();
    assert_eq!(top.len(), expected.num_classes());
    assert!(top.windows(2).all(|w| w[0].size >= w[1].size));
    let mut expected_sizes: Vec<(u128, u64)> = expected
        .classes()
        .iter()
        .map(|c| {
            (
                signature_key(c.representative(), SignatureSet::all()),
                c.size() as u64,
            )
        })
        .collect();
    let mut got_sizes: Vec<(u128, u64)> = top.iter().map(|c| (c.key, c.size)).collect();
    expected_sizes.sort_unstable();
    got_sizes.sort_unstable();
    assert_eq!(got_sizes, expected_sizes);
    // Representatives round-trip through the table grammar and carry
    // their own class key.
    for class in &top {
        let rep = proto::parse_table_line(&class.representative).unwrap();
        assert_eq!(signature_key(&rep, SignatureSet::all()), class.key);
    }

    let stats = client.stats().unwrap();
    assert!(stats.contains("workers"), "{stats}");
    assert_eq!(client.flush().unwrap(), 0); // in-memory: no barriers
    client.quit().unwrap();

    // Graceful shutdown returns the same census as the wire reported.
    handle.shutdown();
    let report = run.join().unwrap().unwrap().expect("engine report");
    assert_eq!(report.classification.num_classes(), expected.num_classes());
    assert_eq!(
        report.stats.functions_processed,
        expected.num_functions() as u64
    );
}

#[test]
fn error_replies_over_the_wire() {
    let (addr, handle, run) = spawn_server(EngineConfig {
        workers: 1,
        ..EngineConfig::default()
    });

    // A spec client turns error statuses into typed errors.
    let mut client = Client::connect(addr).unwrap();
    match client.submit("zzz") {
        Err(ProtoError::Remote { status, message }) => {
            assert_eq!(status, Some(Status::Table));
            assert!(!message.is_empty());
        }
        other => panic!("expected ETABLE, got {other:?}"),
    }
    // The connection survives an ETABLE and keeps serving.
    client.ping().unwrap();
    client.quit().unwrap();

    // Raw frames: a version the server does not speak.
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    proto::write_request(&mut writer, "HELLO 99").unwrap();
    writer.flush().unwrap();
    match proto::read_record(&mut reader).unwrap() {
        Some(Record::Response { status, body }) => {
            assert_eq!(status, Status::Version.code());
            assert!(body.contains("version 1"), "{body}");
        }
        other => panic!("expected EVERSION, got {other:?}"),
    }
    // EVERSION closes the connection.
    assert!(matches!(proto::read_record(&mut reader), Ok(None) | Err(_)));

    // Raw frames: an opcode before HELLO.
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    proto::write_request(&mut writer, "STATS").unwrap();
    writer.flush().unwrap();
    match proto::read_record(&mut reader).unwrap() {
        Some(Record::Response { status, .. }) => assert_eq!(status, Status::Proto.code()),
        other => panic!("expected EPROTO, got {other:?}"),
    }

    // Raw frames: a CRC-valid frame of a non-request kind.
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    writer
        .write_all(&Record::Bump { key: 7 }.to_frame())
        .unwrap();
    writer.flush().unwrap();
    match proto::read_record(&mut reader).unwrap() {
        Some(Record::Response { status, body }) => {
            assert_eq!(status, Status::Proto.code());
            assert!(body.contains("request"), "{body}");
        }
        other => panic!("expected EPROTO, got {other:?}"),
    }
    assert!(matches!(proto::read_record(&mut reader), Ok(None) | Err(_)));

    handle.shutdown();
    run.join().unwrap().unwrap();
}

#[test]
fn concurrent_clients_share_one_census() {
    let fns = workload(4, 8, 6, 0xF00D);
    let expected = Classifier::new(SignatureSet::all()).classify({
        // Both clients send the same stream: class count is unchanged,
        // sizes double.
        let mut doubled = fns.clone();
        doubled.extend(fns.iter().cloned());
        doubled
    });
    let (addr, handle, run) = spawn_server(EngineConfig {
        workers: 2,
        chunk_size: 8,
        ..EngineConfig::default()
    });
    let lines: Vec<String> = fns
        .iter()
        .map(|f| format!("{}:{}", f.num_vars(), f.to_hex()))
        .collect();
    let total = lines.len() as u64;

    let streams: Vec<_> = (0..2)
        .map(|_| {
            let lines = lines.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for chunk in lines.chunks(5) {
                    client
                        .submit_batch(chunk.iter().map(String::as_str))
                        .unwrap();
                }
                client.wait_drained(DRAIN).unwrap();
                client.quit().unwrap();
            })
        })
        .collect();
    for s in streams {
        s.join().unwrap();
    }

    let mut client = Client::connect(addr).unwrap();
    let snap = client.wait_drained(DRAIN).unwrap();
    assert_eq!(snap.submitted, 2 * total);
    assert_eq!(snap.classes as usize, expected.num_classes());
    let top = client.top(usize::MAX).unwrap();
    assert_eq!(
        top.iter().map(|c| c.size).sum::<u64>(),
        expected.num_functions() as u64
    );
    client.quit().unwrap();
    handle.shutdown();
    run.join().unwrap().unwrap();
}

/// A certified server: the census is the *exact* NPN partition, and
/// `CANON` answers with the class's member count and a witness that
/// really maps the query onto the proved representative.
#[test]
fn certified_server_proves_its_census_and_answers_canon() {
    let fns = workload(4, 6, 5, 0xCAFE);
    let expected = facepoint_exact::exact_classify(&fns);
    let (addr, handle, run) = spawn_server(
        EngineConfig::builder()
            .workers(2)
            .chunk_size(8)
            .certified()
            .build(),
    );

    let mut client = Client::connect(addr).unwrap();
    assert_eq!(client.server_info().resolution, "certified");
    let lines: Vec<String> = fns
        .iter()
        .map(|f| format!("{}:{}", f.num_vars(), f.to_hex()))
        .collect();
    client
        .submit_batch(lines.iter().map(String::as_str))
        .unwrap();
    client.wait_drained(DRAIN).unwrap();

    // The served census is the exact partition, not just a digest one.
    let snap = client.snapshot().unwrap();
    assert_eq!(snap.classes as usize, expected.num_classes());

    // CANON per member: same exact class <=> same key, the size is the
    // class's member count, and the witness actually works.
    let mut key_by_label = std::collections::HashMap::new();
    for (i, line) in lines.iter().enumerate() {
        let reply = client.canon(line).unwrap();
        let label = expected.label(i);
        let class_size = expected.labels().iter().filter(|&&l| l == label).count() as u64;
        assert_eq!(reply.size, class_size, "member {i}: {reply:?}");
        assert_eq!(
            *key_by_label.entry(label).or_insert(reply.key),
            reply.key,
            "member {i} disagrees with its class on the key"
        );
        let rep = proto::parse_table_line(&reply.representative).unwrap();
        let perm: Vec<usize> = reply.perm.iter().map(|&v| v as usize).collect();
        let witness = facepoint_truth::NpnTransform::new(
            facepoint_truth::Permutation::from_slice(&perm).unwrap(),
            reply.neg,
            reply.out,
        );
        assert_eq!(witness.apply(&fns[i]), rep, "member {i}: witness is bogus");
    }
    assert_eq!(key_by_label.len(), expected.num_classes());

    client.quit().unwrap();
    handle.shutdown();
    let report = run.join().unwrap().unwrap().expect("engine report");
    assert_eq!(report.classification.num_classes(), expected.num_classes());
}
