//! The served-census crash gauntlet: a `facepoint serve --persist`
//! process is SIGKILLed mid-stream, restarted over the same store, and
//! re-fed the stream — after which its census must converge to exactly
//! the one-shot `Classifier` partition. A final SIGTERM exercises the
//! graceful path: the signal latch, the engine's final checkpoint and
//! a clean (torn-tail-free) recovery.
//!
//! The server child is this same test binary re-executed with
//! `FACEPOINT_SERVE_CHILD` set (single `#[test]` so the re-exec never
//! races another test). The child binds port 0 and publishes its
//! address through a file in the store directory.

use facepoint_bench::random_workload;
use facepoint_core::{signature_key, Classifier};
use facepoint_engine::{Engine, EngineConfig, PersistConfig, SyncPolicy};
use facepoint_serve::{signal, Client, Server, ServerConfig};
use facepoint_sig::SignatureSet;
use facepoint_truth::TruthTable;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

const CHILD_ENV: &str = "FACEPOINT_SERVE_CHILD";
const DIR_ENV: &str = "FACEPOINT_SERVE_DIR";
const STREAM_ENV: &str = "SERVE_GAUNTLET_STREAM";
const ADDR_FILE: &str = "serve-addr.txt";
const DRAIN: Duration = Duration::from_secs(60);

fn stream_size() -> usize {
    std::env::var(STREAM_ENV)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4_000)
}

/// Two thirds fresh tables, one third repeats — creations, bumps and
/// dedup-fast-path journal traffic, like the engine's own gauntlet.
fn gauntlet_stream(total: usize) -> Vec<String> {
    let fresh = random_workload(6, (2 * total).div_ceil(3).max(1), 0x5EED);
    let mut tables: Vec<TruthTable> = Vec::with_capacity(total);
    for i in 0..total {
        if i % 3 == 2 {
            let again = tables[i / 2].clone();
            tables.push(again);
        } else {
            tables.push(fresh[(i - i / 3) % fresh.len()].clone());
        }
    }
    tables
        .iter()
        .map(|f| format!("{}:{}", f.num_vars(), f.to_hex()))
        .collect()
}

fn expected_partition(lines: &[String]) -> HashMap<u128, u64> {
    let fns: Vec<TruthTable> = lines
        .iter()
        .map(|l| {
            let (n, hex) = l.split_once(':').unwrap();
            TruthTable::from_hex(n.parse().unwrap(), hex).unwrap()
        })
        .collect();
    Classifier::new(SignatureSet::all())
        .classify(fns)
        .classes()
        .iter()
        .map(|c| {
            (
                signature_key(c.representative(), SignatureSet::all()),
                c.size() as u64,
            )
        })
        .collect()
}

/// The child: serve the store directory until killed (or SIGTERMed,
/// which finishes the engine and exits 0).
fn child_main() -> ! {
    let dir = PathBuf::from(std::env::var(DIR_ENV).expect("child needs a store dir"));
    signal::reset();
    signal::install();
    let cfg = EngineConfig {
        workers: 2,
        chunk_size: 64,
        cache_capacity: 1 << 14,
        persist: Some(PersistConfig {
            dir: dir.clone(),
            checkpoint_interval: 64, // kills land on compactions too
            sync: SyncPolicy::Barrier,
        }),
        ..EngineConfig::default()
    };
    let engine = Engine::builder()
        .config(cfg)
        .persist(&dir)
        .build()
        .expect("child: open store");
    let server = Server::bind(
        "127.0.0.1:0",
        engine,
        ServerConfig {
            accept_poll: Duration::from_millis(5),
        },
    )
    .expect("child: bind");
    let addr = server.local_addr().expect("child: local addr");
    // Publish the bound address atomically (write-then-rename, so the
    // parent never reads a half-written file).
    let tmp = dir.join("serve-addr.tmp");
    std::fs::write(&tmp, addr.to_string()).expect("child: write addr");
    std::fs::rename(&tmp, dir.join(ADDR_FILE)).expect("child: publish addr");
    let report = server.run().expect("child: serve");
    assert!(report.is_some(), "child: engine sealed twice");
    std::process::exit(0);
}

fn spawn_child(dir: &Path) -> (std::process::Child, SocketAddr) {
    let _ = std::fs::remove_file(dir.join(ADDR_FILE));
    std::fs::create_dir_all(dir).unwrap();
    let child = std::process::Command::new(std::env::current_exe().unwrap())
        .env(CHILD_ENV, "1")
        .env(DIR_ENV, dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn serve child");
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(dir.join(ADDR_FILE)) {
            if let Ok(addr) = text.trim().parse() {
                break addr;
            }
        }
        assert!(
            Instant::now() < deadline,
            "serve child never published its address"
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    (child, addr)
}

fn top_by_key(client: &mut Client) -> HashMap<u128, u64> {
    client
        .top(usize::MAX)
        .unwrap()
        .into_iter()
        .map(|c| (c.key, c.size))
        .collect()
}

#[test]
fn sigkill_restart_refeed_converges() {
    if std::env::var(CHILD_ENV).is_ok() {
        child_main();
    }
    let lines = gauntlet_stream(stream_size());
    let expected = expected_partition(&lines);
    let dir = std::env::temp_dir().join(format!("facepoint-serve-gauntlet-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // --- Phase 1: stream into the served census, SIGKILL mid-stream.
    let (mut child, addr) = spawn_child(&dir);
    let killer = {
        let pid = child.id();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(120));
            // SIGKILL via the raw pid: no grace, no checkpoint.
            let status = std::process::Command::new("kill")
                .args(["-KILL", &pid.to_string()])
                .status()
                .expect("spawn kill");
            assert!(status.success());
        })
    };
    let mut client = Client::connect(addr).unwrap();
    assert!(client.server_info().persistent);
    let mut sent_before_kill = 0usize;
    for chunk in lines.chunks(64) {
        match client.submit_batch(chunk.iter().map(String::as_str)) {
            Ok(_) => sent_before_kill += chunk.len(),
            Err(_) => break, // the kill landed
        }
        // Periodic epoch barriers, so some of the stream is durable.
        if sent_before_kill.is_multiple_of(512) && client.flush().is_err() {
            break;
        }
    }
    killer.join().unwrap();
    let _ = child.wait();
    drop(client);

    // --- Phase 2: restart over the same store; the recovered census
    // must be a subset of the one-shot partition.
    let (mut child, addr) = spawn_child(&dir);
    let mut client = Client::connect(addr).unwrap();
    let recovered = top_by_key(&mut client);
    let recovered_members: u64 = recovered.values().sum();
    assert!(
        recovered_members <= lines.len() as u64,
        "recovered more members than were ever sent"
    );
    for (key, size) in &recovered {
        let expected_size = expected
            .get(key)
            .unwrap_or_else(|| panic!("recovered class {key:032x} unknown to the classifier"));
        assert!(
            size <= expected_size,
            "class {key:032x} overcounted after recovery: {size} > {expected_size}"
        );
    }

    // --- Phase 3: re-feed the full stream and require convergence:
    // exact class set, counts = recovered + one full stream.
    for chunk in lines.chunks(256) {
        client
            .submit_batch(chunk.iter().map(String::as_str))
            .unwrap();
    }
    let snap = client.wait_drained(DRAIN).unwrap();
    assert_eq!(snap.backlog, 0);
    assert_eq!(snap.classes as usize, expected.len());
    let converged = top_by_key(&mut client);
    assert_eq!(converged.len(), expected.len());
    for (key, expected_size) in &expected {
        let before = recovered.get(key).copied().unwrap_or(0);
        assert_eq!(
            converged.get(key),
            Some(&(before + expected_size)),
            "class {key:032x} did not converge to recovered + resubmitted"
        );
    }
    // --- Phase 3b: scrape METRICS off the live, recovered child. The
    // scrape must parse line by line, span all three layers, report
    // the phase-2 replay, and keep every histogram's percentile
    // ladder monotone.
    let scrape = client.metrics().unwrap();
    let series: HashMap<&str, f64> = scrape
        .lines()
        .map(|l| {
            let (name, value) = l
                .split_once(' ')
                .unwrap_or_else(|| panic!("scrape line {l:?} is not `name value`"));
            let value: f64 = value
                .parse()
                .unwrap_or_else(|_| panic!("unparseable value in scrape line {l:?}"));
            (name, value)
        })
        .collect();
    let series_value = |name: &str| -> f64 {
        *series
            .get(name)
            .unwrap_or_else(|| panic!("no {name} series in scrape:\n{scrape}"))
    };
    assert!(series_value("engine_functions_processed_total") >= lines.len() as f64);
    assert!(series_value("engine_chunk_classify_nanos_count") >= 1.0);
    assert!(series_value("store_journal_records_total") >= 1.0);
    assert!(series_value("store_fsync_nanos_count") >= 1.0);
    assert!(series_value("store_recovery_replay_nanos") >= 1.0);
    assert!(series_value("serve_submit_batch_nanos_count") >= 1.0);
    assert!(series_value("serve_connections") >= 1.0);
    assert!(series_value("serve_bytes_read_total") >= 1.0);
    assert!(series_value("serve_bytes_written_total") >= 1.0);
    for h in [
        "engine_chunk_classify_nanos",
        "store_journal_append_nanos",
        "serve_submit_batch_nanos",
    ] {
        let p50 = series_value(&format!("{h}_p50"));
        let p90 = series_value(&format!("{h}_p90"));
        let p99 = series_value(&format!("{h}_p99"));
        let max = series_value(&format!("{h}_max"));
        assert!(
            p50 <= p90 && p90 <= p99 && p99 <= max,
            "{h} percentile ladder not monotone: {p50} {p90} {p99} {max}"
        );
    }
    client.quit().unwrap();

    // --- Phase 4: SIGTERM = graceful: final checkpoint, exit 0, and a
    // read-only recovery with no torn tails and the full census.
    let status = std::process::Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("spawn kill");
    assert!(status.success());
    let deadline = Instant::now() + Duration::from_secs(30);
    let exit = loop {
        match child.try_wait().expect("wait for SIGTERMed child") {
            Some(status) => break status,
            None => {
                assert!(
                    Instant::now() < deadline,
                    "child ignored SIGTERM (graceful shutdown hung)"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    };
    assert!(exit.success(), "graceful shutdown exited with {exit:?}");
    let snap = Engine::recover(&dir).expect("post-SIGTERM recover");
    assert_eq!(snap.report.torn_shards, 0, "{}", snap.report);
    assert_eq!(snap.report.truncated_bytes, 0, "{}", snap.report);
    assert_eq!(snap.classes.len(), expected.len());
    assert_eq!(
        snap.members(),
        recovered_members + lines.len() as u64,
        "cumulative census drifted across kill + restart"
    );
    std::fs::remove_dir_all(&dir).unwrap();
    println!(
        "SIGKILL after ~{sent_before_kill} submissions: {recovered_members} members survived; \
         refeed converged to {} classes; SIGTERM checkpointed cleanly",
        expected.len()
    );
}
