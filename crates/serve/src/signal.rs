//! Minimal SIGTERM/SIGINT latch for graceful shutdown.
//!
//! The offline build vendors no `libc` or `signal-hook`, so this is
//! the smallest possible hand-rolled handler: `signal(2)` installs an
//! async-signal-safe function that stores one atomic flag, and the
//! server's accept loop polls [`triggered`] between accepts. Nothing
//! else may happen in a signal handler, and nothing else does.
//!
//! [`install`] is opt-in (the `facepoint serve` CLI path calls it;
//! in-process servers in tests and examples use
//! [`ShutdownHandle`](crate::ShutdownHandle) instead) and a no-op on
//! non-Unix targets, where [`triggered`] simply never fires.

use std::sync::atomic::{AtomicBool, Ordering};

static TRIGGERED: AtomicBool = AtomicBool::new(false);

/// Whether a termination signal has been delivered since [`install`].
pub fn triggered() -> bool {
    TRIGGERED.load(Ordering::SeqCst)
}

/// Resets the latch — lets one process run several serve lifecycles
/// (and lets tests exercise the flag without delivering real signals).
pub fn reset() {
    TRIGGERED.store(false, Ordering::SeqCst);
}

/// Marks the latch as if a signal had arrived. Exists for tests and
/// for embedders with their own signal stack; the handler installed by
/// [`install`] does exactly this.
pub fn trigger() {
    TRIGGERED.store(true, Ordering::SeqCst);
}

// SAFETY: the one unsafe module of the serve crate (allowlisted in
// analysis.toml): a raw `signal(2)` binding whose handler does nothing
// but an atomic store, the only async-signal-safe operation used.
#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    use std::os::raw::c_int;

    const SIGINT: c_int = 2;
    const SIGTERM: c_int = 15;

    extern "C" {
        // POSIX `signal(2)`. The handler argument and return value are
        // `sighandler_t` (a function pointer); `usize` has the same
        // representation for the values we pass.
        fn signal(signum: c_int, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: c_int) {
        // Only an atomic store: the one thing that is async-signal-safe.
        super::trigger();
    }

    /// Installs the latch for SIGTERM and SIGINT.
    pub fn install() {
        let handler = on_signal as extern "C" fn(c_int) as usize;
        // SAFETY: `signal(2)` with a valid signum and a handler whose
        // `usize` value is a live `extern "C" fn(c_int)` pointer —
        // same representation as `sighandler_t`. The handler itself
        // only performs an atomic store (async-signal-safe).
        unsafe {
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// No signals to hook on this target; [`super::triggered`] stays
    /// false unless [`super::trigger`] is called.
    pub fn install() {}
}

/// Routes SIGTERM and SIGINT into the latch that
/// [`Server::run`](crate::Server::run) polls, so an external
/// `kill <pid>` produces the same graceful finish-and-checkpoint path
/// as [`ShutdownHandle::shutdown`](crate::ShutdownHandle::shutdown).
/// Call once, before `run`. No-op outside Unix.
pub fn install() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latch_set_and_reset() {
        reset();
        assert!(!triggered());
        trigger();
        assert!(triggered());
        reset();
        assert!(!triggered());
        // Installing must not itself trigger.
        install();
        assert!(!triggered());
    }
}
