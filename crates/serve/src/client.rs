//! A blocking client for the facepoint service protocol.
//!
//! Written strictly against `docs/PROTOCOL.md`: every method is one
//! request/response exchange (plus the table frames of a batch), and
//! reply bodies are parsed by the field grammar of §4 — nothing here
//! reaches into server internals.

use crate::proto::{self, ProtoError, Status, MAX_BATCH, PROTO_VERSION};
use facepoint_core::wire::Record;
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// What the server announced in its `HELLO` reply.
#[derive(Debug, Clone)]
pub struct ServerInfo {
    /// Protocol version the server speaks (equals [`PROTO_VERSION`]
    /// after a successful handshake).
    pub version: u32,
    /// Display form of the engine's signature set.
    pub set: String,
    /// Worker threads behind the engine.
    pub workers: usize,
    /// Whether the census is journaled to disk (so it survives a
    /// server restart).
    pub persistent: bool,
    /// The engine's resolution tier (`"digest"` or `"certified"`);
    /// empty when an older server omits the field.
    pub resolution: String,
}

/// One `SNAPSHOT` reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSnapshot {
    /// Functions the server has accepted over all connections.
    pub submitted: u64,
    /// Functions classified so far.
    pub processed: u64,
    /// Candidate classes discovered so far.
    pub classes: u64,
    /// `submitted - processed`: queued or in-flight functions.
    pub backlog: u64,
}

/// One class line of a `TOP` reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopClass {
    /// The class's 128-bit signature digest.
    pub key: u128,
    /// Members counted so far (cumulative across server restarts for a
    /// persistent census).
    pub size: u64,
    /// The representative, as the spec's `n:hex` table literal.
    pub representative: String,
}

/// One `CANON` reply: the proved class entry plus the witness
/// transform mapping the queried table onto the representative.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonReply {
    /// FNV-128 digest of the proved canonical representative.
    pub key: u128,
    /// Members the server has counted for the class (`0` on a
    /// digest-mode server, or for a class it has not seen).
    pub size: u64,
    /// The proved representative, as the spec's `n:hex` table literal.
    pub representative: String,
    /// The witness permutation: output variable `i` of the transform
    /// reads input variable `perm[i]` of the query.
    pub perm: Vec<u8>,
    /// Input-negation mask of the witness (bit `i` negates variable
    /// `i` of the query).
    pub neg: u16,
    /// Whether the witness negates the output.
    pub out: bool,
}

/// A connected, greeted protocol client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    info: ServerInfo,
}

impl Client {
    /// Connects to `addr` and performs the `HELLO` handshake.
    ///
    /// # Errors
    ///
    /// Transport failures, or [`ProtoError::Remote`] with `EVERSION`
    /// when the server speaks a different protocol version.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ProtoError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        let mut client = Client {
            reader,
            writer: BufWriter::new(stream),
            info: ServerInfo {
                version: 0,
                set: String::new(),
                workers: 0,
                persistent: false,
                resolution: String::new(),
            },
        };
        let body = client.exchange(&format!("HELLO {PROTO_VERSION}"))?;
        client.info = parse_server_info(&body)?;
        Ok(client)
    }

    /// What the server announced at handshake time.
    pub fn server_info(&self) -> &ServerInfo {
        &self.info
    }

    /// `PING` — liveness check.
    ///
    /// # Errors
    ///
    /// Transport or remote failures.
    pub fn ping(&mut self) -> Result<(), ProtoError> {
        self.exchange("PING").map(|_| ())
    }

    /// `SUBMIT <table>` — one table literal (`hex` or `n:hex`);
    /// returns its submission number.
    ///
    /// # Errors
    ///
    /// `ETABLE` for a malformed literal; transport failures.
    pub fn submit(&mut self, table: &str) -> Result<u64, ProtoError> {
        let body = self.exchange(&format!("SUBMIT {table}"))?;
        parse_field(&body, "seq")
    }

    /// `SUBMIT-BATCH` — streams `tables` as one atomic batch; returns
    /// `(first submission number, count)`.
    ///
    /// At most [`MAX_BATCH`] literals per call (the spec's cap);
    /// larger iterators should be chunked by the caller (the
    /// `facepoint client` subcommand chunks at 4096).
    ///
    /// # Errors
    ///
    /// `EUSAGE`/`ETABLE` from the server; transport failures. A
    /// rejected batch submits nothing.
    pub fn submit_batch<'a>(
        &mut self,
        tables: impl IntoIterator<Item = &'a str>,
    ) -> Result<(u64, u64), ProtoError> {
        let tables: Vec<&str> = tables.into_iter().collect();
        let n = tables.len() as u64;
        if n > MAX_BATCH {
            return Err(ProtoError::Malformed(format!(
                "batch of {n} exceeds the {MAX_BATCH} cap; chunk it"
            )));
        }
        proto::write_request(&mut self.writer, &format!("SUBMIT-BATCH {n}"))?;
        for t in tables {
            proto::write_request(&mut self.writer, t)?;
        }
        self.writer.flush()?;
        let body = self.read_ok()?;
        Ok((parse_field(&body, "first")?, parse_field(&body, "count")?))
    }

    /// `SNAPSHOT` — the census counters, mid-stream.
    ///
    /// # Errors
    ///
    /// Transport or remote failures.
    pub fn snapshot(&mut self) -> Result<ServeSnapshot, ProtoError> {
        let body = self.exchange("SNAPSHOT")?;
        Ok(ServeSnapshot {
            submitted: parse_field(&body, "submitted")?,
            processed: parse_field(&body, "processed")?,
            classes: parse_field(&body, "classes")?,
            backlog: parse_field(&body, "backlog")?,
        })
    }

    /// `TOP <k>` — the `k` largest classes, largest first.
    ///
    /// # Errors
    ///
    /// Transport or remote failures; a reply violating the §4.7 line
    /// grammar is [`ProtoError::Malformed`].
    pub fn top(&mut self, k: usize) -> Result<Vec<TopClass>, ProtoError> {
        let body = self.exchange(&format!("TOP {k}"))?;
        let mut lines = body.lines();
        let count: u64 = parse_field(lines.next().unwrap_or(""), "classes")?;
        let mut out = Vec::with_capacity(count as usize);
        for line in lines {
            let mut fields = line.split(' ');
            let (key, size, rep) = match (fields.next(), fields.next(), fields.next()) {
                (Some(k), Some(s), Some(r)) if fields.next().is_none() => (k, s, r),
                _ => {
                    return Err(ProtoError::Malformed(format!(
                        "TOP line {line:?} is not `key size rep`"
                    )))
                }
            };
            out.push(TopClass {
                key: u128::from_str_radix(key, 16)
                    .map_err(|_| ProtoError::Malformed(format!("bad class key {key:?}")))?,
                size: size
                    .parse()
                    .map_err(|_| ProtoError::Malformed(format!("bad class size {size:?}")))?,
                representative: rep.to_string(),
            });
        }
        if out.len() as u64 != count {
            return Err(ProtoError::Malformed(format!(
                "TOP announced {count} classes, sent {}",
                out.len()
            )));
        }
        Ok(out)
    }

    /// `CANON <table>` — the proved canonical representative of the
    /// table's NPN class, with the witness transform and (on a
    /// certified server that has seen the class) its member count.
    ///
    /// # Errors
    ///
    /// `ETABLE` for a malformed literal; transport failures; a reply
    /// violating the §4.8 field grammar is [`ProtoError::Malformed`].
    pub fn canon(&mut self, table: &str) -> Result<CanonReply, ProtoError> {
        let body = self.exchange(&format!("CANON {table}"))?;
        let key: String = parse_field(&body, "key")?;
        let perm_csv: String = parse_field(&body, "perm")?;
        let mut perm = Vec::new();
        for part in perm_csv.split(',').filter(|p| !p.is_empty()) {
            perm.push(part.parse().map_err(|_| {
                ProtoError::Malformed(format!("bad witness permutation {perm_csv:?}"))
            })?);
        }
        Ok(CanonReply {
            key: u128::from_str_radix(&key, 16)
                .map_err(|_| ProtoError::Malformed(format!("bad class key {key:?}")))?,
            size: parse_field(&body, "size")?,
            representative: parse_field(&body, "representative")?,
            perm,
            neg: parse_field(&body, "neg")?,
            out: parse_field::<u8>(&body, "out")? != 0,
        })
    }

    /// `STATS` — the server's one-line engine statistics report.
    ///
    /// # Errors
    ///
    /// Transport or remote failures.
    pub fn stats(&mut self) -> Result<String, ProtoError> {
        self.exchange("STATS")
    }

    /// `FLUSH` — pushes buffered work to the workers and, for a
    /// persistent census, issues an epoch barrier (everything
    /// classified before the call is crash-durable when it returns).
    /// Returns the server's cumulative barrier count (0 for an
    /// in-memory census).
    ///
    /// # Errors
    ///
    /// Transport or remote failures.
    pub fn flush(&mut self) -> Result<u64, ProtoError> {
        let body = self.exchange("FLUSH")?;
        parse_field(&body, "epochs")
    }

    /// Issues one `FLUSH` (without it, a partial chunk can sit in the
    /// server's ingest buffer indefinitely — §6), polls `SNAPSHOT`
    /// until the backlog is zero — every submission acknowledged so
    /// far is classified — then issues a second `FLUSH` so that, on a
    /// persistent server, everything just waited for is also inside
    /// an epoch barrier: when this returns, the caller's work is
    /// classified *and* crash-durable.
    ///
    /// # Errors
    ///
    /// `TimedOut` (as [`ProtoError::Io`]) if the backlog stayed
    /// positive; transport or remote failures.
    pub fn wait_drained(&mut self, timeout: Duration) -> Result<ServeSnapshot, ProtoError> {
        self.flush()?;
        let deadline = Instant::now() + timeout;
        loop {
            let snap = self.snapshot()?;
            if snap.backlog == 0 {
                // The first FLUSH's barrier ran *before* these
                // functions finished classifying; a closing barrier
                // makes the drained state itself durable.
                self.flush()?;
                return Ok(snap);
            }
            if Instant::now() >= deadline {
                return Err(ProtoError::Io(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    format!("backlog still {} after {timeout:?}", snap.backlog),
                )));
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// `METRICS` — the server's full telemetry scrape as the §4.12
    /// text exposition: one `name SP value` line per series, each
    /// LF-terminated, names sorted. Counter and histogram-bucket
    /// values are integers; gauges are decimal. The scrape spans all
    /// three layers (`engine_*`, `store_*`, `serve_*`).
    ///
    /// # Errors
    ///
    /// Transport or remote failures.
    pub fn metrics(&mut self) -> Result<String, ProtoError> {
        self.exchange("METRICS")
    }

    /// `QUIT` — says goodbye and closes the connection.
    ///
    /// # Errors
    ///
    /// Transport or remote failures.
    pub fn quit(mut self) -> Result<(), ProtoError> {
        self.exchange("QUIT").map(|_| ())
    }

    /// One request/response round trip, expecting `OK`.
    fn exchange(&mut self, line: &str) -> Result<String, ProtoError> {
        proto::write_request(&mut self.writer, line)?;
        self.writer.flush()?;
        self.read_ok()
    }

    fn read_ok(&mut self) -> Result<String, ProtoError> {
        match proto::read_record(&mut self.reader)? {
            Some(Record::Response { status: 0, body }) => Ok(body),
            Some(Record::Response { status, body }) => Err(ProtoError::Remote {
                status: Status::from_code(status),
                message: body,
            }),
            Some(_) => Err(ProtoError::Malformed(
                "server sent a non-response frame".into(),
            )),
            None => Err(ProtoError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection before replying",
            ))),
        }
    }
}

/// Pulls `key=<u64>`-style fields out of a space-separated reply body.
fn parse_field<T: std::str::FromStr>(body: &str, key: &str) -> Result<T, ProtoError> {
    body.split_whitespace()
        .find_map(|pair| pair.strip_prefix(key)?.strip_prefix('='))
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| ProtoError::Malformed(format!("no {key}= field in {body:?}")))
}

fn parse_server_info(body: &str) -> Result<ServerInfo, ProtoError> {
    let mut words = body.split(' ');
    if words.next() != Some("facepoint") {
        return Err(ProtoError::Malformed(format!(
            "unexpected HELLO banner {body:?}"
        )));
    }
    let version = words
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| ProtoError::Malformed(format!("no version in {body:?}")))?;
    Ok(ServerInfo {
        version,
        set: body
            .split_whitespace()
            .find_map(|p| p.strip_prefix("set="))
            .unwrap_or("")
            .to_string(),
        workers: parse_field(body, "workers").unwrap_or(0),
        persistent: body.split_whitespace().any(|p| p == "persistent=true"),
        resolution: body
            .split_whitespace()
            .find_map(|p| p.strip_prefix("resolution="))
            .unwrap_or("")
            .to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_grammar() {
        assert_eq!(parse_field::<u64>("seq=17", "seq").unwrap(), 17);
        assert_eq!(parse_field::<u64>("first=3 count=9", "count").unwrap(), 9);
        assert!(parse_field::<u64>("first=3", "seq").is_err());
        assert!(parse_field::<u64>("seq=abc", "seq").is_err());
    }

    #[test]
    fn hello_banner_grammar() {
        let info = parse_server_info(
            "facepoint 1 set=OCV1+OCV2+OIV+OSV+OSDV workers=8 persistent=true \
             resolution=certified",
        )
        .unwrap();
        assert_eq!(info.version, 1);
        assert_eq!(info.set, "OCV1+OCV2+OIV+OSV+OSDV");
        assert_eq!(info.workers, 8);
        assert!(info.persistent);
        assert_eq!(info.resolution, "certified");
        // A banner without the field (an older server) still parses.
        let bare = parse_server_info("facepoint 1 set=OIV workers=2 persistent=false").unwrap();
        assert_eq!(bare.resolution, "");
        assert!(parse_server_info("nginx 1.2").is_err());
    }
}
