//! # facepoint-serve
//!
//! A long-running NPN classification **service**: a TCP front-end for
//! the streaming [`facepoint_engine::Engine`], speaking a hand-rolled,
//! length-delimited, CRC-guarded line protocol — the engine's
//! `submit`/`snapshot`/`top_classes`/`flush` surface over a socket, so
//! a census outlives any single client and (with persistence) any
//! single server process.
//!
//! The wire contract is **`docs/PROTOCOL.md`** at the repository root:
//! frame layout, opcodes (`HELLO`, `PING`, `SUBMIT`, `SUBMIT-BATCH`,
//! `SNAPSHOT`, `TOP`, `CANON`, `STATS`, `FLUSH`, `QUIT`), error codes, version
//! negotiation and backpressure semantics. This crate is one
//! implementation of that spec — the spec, not this source, is the
//! contract. The system-level picture (how a submission travels from
//! socket to shard journal) is in `docs/ARCHITECTURE.md`.
//!
//! Frames reuse the `[len][crc32][payload]` record conventions of
//! [`facepoint_core::wire`]
//! ([`Record::Request`](facepoint_core::wire::Record::Request) and
//! [`Record::Response`](facepoint_core::wire::Record::Response)
//! kinds), so the same torn-frame detection that guards the durable
//! store guards the socket.
//!
//! # Pieces
//!
//! * [`Server`] — blocking acceptor, one reader thread per connection,
//!   all connections feeding one shared
//!   [`Engine`](facepoint_engine::Engine); graceful shutdown
//!   (via [`ShutdownHandle`] or SIGTERM/SIGINT once
//!   [`signal::install`] is called) finishes the engine, writing a
//!   final checkpoint when the census is durable.
//! * [`Client`] — a blocking client written against the spec; used by
//!   the `facepoint client` subcommand, the integration tests and the
//!   `served_census` example.
//! * [`proto`] — the shared framing/grammar layer: opcode and status
//!   tables, frame read/write over any `Read`/`Write`, and the
//!   table-literal parser.
//!
//! # Quick start
//!
//! ```
//! use facepoint_engine::{Engine, EngineConfig};
//! use facepoint_serve::{Client, Server, ServerConfig};
//! use facepoint_sig::SignatureSet;
//!
//! let engine = Engine::new(SignatureSet::all());
//! let server = Server::bind("127.0.0.1:0", engine, ServerConfig::default()).unwrap();
//! let addr = server.local_addr().unwrap();
//! let handle = server.shutdown_handle();
//! let run = std::thread::spawn(move || server.run());
//!
//! let mut client = Client::connect(addr).unwrap();
//! client.submit("e8").unwrap();               // 3-input majority
//! client.submit("3:d4").unwrap();             // same class, by transform
//! client.wait_drained(std::time::Duration::from_secs(10)).unwrap();
//! let snap = client.snapshot().unwrap();
//! assert_eq!(snap.classes, 1);
//! client.quit().unwrap();
//!
//! handle.shutdown();
//! let report = run.join().unwrap().unwrap().expect("engine report");
//! assert_eq!(report.classification.num_classes(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

mod client;
pub mod proto;
mod server;
pub mod signal;

pub use client::{CanonReply, Client, ServeSnapshot, ServerInfo, TopClass};
pub use proto::{ProtoError, Status, PROTO_VERSION};
pub use server::{Server, ServerConfig, ShutdownHandle};
