//! The shared protocol layer: status codes, frame I/O and the
//! table-literal grammar.
//!
//! Everything here implements `docs/PROTOCOL.md` (repository root) —
//! the frame layout is §2, the status codes §5, the table literal
//! grammar §4.1. Both [`Server`](crate::Server) and
//! [`Client`](crate::Client) are built from these functions, so a
//! byte-level disagreement between the two would be a bug in exactly
//! one place.

use facepoint_core::wire::{crc32, Record, FRAME_HEADER_LEN, MAX_PAYLOAD_LEN};
use facepoint_truth::TruthTable;
use std::io::{self, Read, Write};

/// Protocol version this implementation speaks. Sent by the client in
/// `HELLO`, checked by the server (`EVERSION` on mismatch). Bump on any
/// incompatible grammar or framing change.
pub const PROTO_VERSION: u32 = 1;

/// Hard cap on a `SUBMIT-BATCH` count; larger announcements are
/// refused with `EUSAGE` before any table frame is read.
pub const MAX_BATCH: u64 = 1 << 20;

/// Response status codes (§5 of the spec). The byte value travels in
/// the first payload byte of every [`Record::Response`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// Success; the body is the opcode-specific reply.
    Ok = 0,
    /// The connection violated the framing or sequencing rules (non-
    /// request frame, command before `HELLO`, torn batch). The server
    /// closes the connection after sending this.
    Proto = 1,
    /// `HELLO` named a protocol version the server does not speak.
    Version = 2,
    /// Unknown opcode or malformed arguments.
    Usage = 3,
    /// A truth-table literal failed to parse.
    Table = 4,
    /// The server is shutting down; the engine has already been sealed.
    Shutdown = 5,
}

impl Status {
    /// The wire byte.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Decodes a wire byte (`None` for codes this implementation does
    /// not know — a *newer* peer, to be surfaced, not crashed on).
    pub fn from_code(code: u8) -> Option<Status> {
        match code {
            0 => Some(Status::Ok),
            1 => Some(Status::Proto),
            2 => Some(Status::Version),
            3 => Some(Status::Usage),
            4 => Some(Status::Table),
            5 => Some(Status::Shutdown),
            _ => None,
        }
    }

    /// The spec's mnemonic token (`"OK"`, `"EPROTO"`, …), used in
    /// human-facing reports.
    pub fn token(self) -> &'static str {
        match self {
            Status::Ok => "OK",
            Status::Proto => "EPROTO",
            Status::Version => "EVERSION",
            Status::Usage => "EUSAGE",
            Status::Table => "ETABLE",
            Status::Shutdown => "ESHUTDOWN",
        }
    }
}

impl std::fmt::Display for Status {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.token())
    }
}

/// What a [`Client`](crate::Client) call can fail with.
#[derive(Debug)]
pub enum ProtoError {
    /// The transport failed (connect, read, write, unexpected EOF).
    Io(io::Error),
    /// The server answered with a non-`OK` status.
    Remote {
        /// The status code (`None` if the server sent a code this
        /// client does not know).
        status: Option<Status>,
        /// The server's error message.
        message: String,
    },
    /// The peer sent something the spec does not allow at this point
    /// (wrong frame kind, unparseable reply body).
    Malformed(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "transport: {e}"),
            ProtoError::Remote { status, message } => match status {
                Some(s) => write!(f, "{s}: {message}"),
                None => write!(f, "unknown status: {message}"),
            },
            ProtoError::Malformed(m) => write!(f, "malformed reply: {m}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        ProtoError::Io(e)
    }
}

/// Appends `record` to `w` as one frame. The caller owns buffering and
/// flushing (both peers wrap their streams in `BufWriter` and flush at
/// the spec's flush points).
pub fn write_record(w: &mut impl Write, record: &Record) -> io::Result<()> {
    w.write_all(&record.to_frame())
}

/// Writes one request frame carrying `line`.
pub fn write_request(w: &mut impl Write, line: &str) -> io::Result<()> {
    write_record(w, &Record::Request { line: line.into() })
}

/// Writes one response frame.
pub fn write_response(w: &mut impl Write, status: Status, body: &str) -> io::Result<()> {
    write_record(
        w,
        &Record::Response {
            status: status.code(),
            body: body.into(),
        },
    )
}

/// Reads exactly one frame off `r` and decodes it.
///
/// Returns `Ok(None)` on a clean EOF *between* frames — the peer hung
/// up at a frame boundary, which is how connections end.
///
/// # Errors
///
/// `UnexpectedEof` when the stream ends mid-frame, `InvalidData` for a
/// CRC mismatch, an oversized length field or a structurally malformed
/// payload. A framing error leaves the stream position undefined, so
/// the caller must drop the connection — there is no resynchronization
/// (§2.3 of the spec).
pub fn read_record(r: &mut impl Read) -> io::Result<Option<Record>> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    // Distinguish EOF-at-boundary from EOF-mid-header by reading the
    // first byte separately.
    let mut got = 0;
    while got < header.len() {
        let n = r.read(&mut header[got..])?;
        if n == 0 {
            if got == 0 {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "stream ended mid frame header",
            ));
        }
        got += n;
    }
    let len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
    if len > MAX_PAYLOAD_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_PAYLOAD_LEN} cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    if crc32(&payload) != crc {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame CRC mismatch",
        ));
    }
    Record::decode_payload(&payload)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// Parses a table literal (§4.1): `hex` with a power-of-two digit
/// count (variable count inferred as `log2(digits) + 2`), or `n:hex`
/// for an explicit variable count (required for 0- and 1-variable
/// tables). A leading `0x`/`0X` on the hex part is accepted.
///
/// # Errors
///
/// A human-readable description of the first problem, suitable as an
/// `ETABLE` message body.
pub fn parse_table_line(spec: &str) -> Result<TruthTable, String> {
    let spec = spec.trim();
    let (n, hex) = match spec.split_once(':') {
        Some((n_str, hex)) => {
            let n: usize = n_str
                .parse()
                .map_err(|_| format!("bad variable count {n_str:?}"))?;
            (n, hex)
        }
        None => {
            let hex = spec
                .strip_prefix("0x")
                .or_else(|| spec.strip_prefix("0X"))
                .unwrap_or(spec);
            let digits = hex.len();
            if digits == 0 || !digits.is_power_of_two() {
                return Err(format!(
                    "cannot infer the variable count from {digits} hex digits; use n:hex"
                ));
            }
            (digits.trailing_zeros() as usize + 2, hex)
        }
    };
    let hex = hex
        .strip_prefix("0x")
        .or_else(|| hex.strip_prefix("0X"))
        .unwrap_or(hex);
    TruthTable::from_hex(n, hex).map_err(|e| format!("{spec:?}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_codes_roundtrip() {
        for s in [
            Status::Ok,
            Status::Proto,
            Status::Version,
            Status::Usage,
            Status::Table,
            Status::Shutdown,
        ] {
            assert_eq!(Status::from_code(s.code()), Some(s));
            assert!(!s.token().is_empty());
        }
        assert_eq!(Status::from_code(200), None);
    }

    #[test]
    fn frames_roundtrip_over_a_pipe() {
        let mut buf: Vec<u8> = Vec::new();
        write_request(&mut buf, "PING").unwrap();
        write_response(&mut buf, Status::Ok, "pong").unwrap();
        write_response(&mut buf, Status::Usage, "no such opcode").unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(
            read_record(&mut r).unwrap(),
            Some(Record::Request {
                line: "PING".into()
            })
        );
        assert_eq!(
            read_record(&mut r).unwrap(),
            Some(Record::Response {
                status: 0,
                body: "pong".into()
            })
        );
        assert_eq!(
            read_record(&mut r).unwrap(),
            Some(Record::Response {
                status: Status::Usage.code(),
                body: "no such opcode".into()
            })
        );
        assert_eq!(read_record(&mut r).unwrap(), None); // clean EOF
    }

    #[test]
    fn mid_frame_eof_and_bad_crc_are_errors() {
        let mut buf: Vec<u8> = Vec::new();
        write_request(&mut buf, "SNAPSHOT").unwrap();
        // Cut inside the header, then inside the payload.
        for cut in [3, FRAME_HEADER_LEN + 2] {
            let err = read_record(&mut io::Cursor::new(&buf[..cut])).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut {cut}");
        }
        // Flip a payload byte: CRC mismatch.
        let mut bad = buf.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        let err = read_record(&mut io::Cursor::new(&bad)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Oversized length field: refused before allocation.
        let mut huge = (u32::MAX).to_le_bytes().to_vec();
        huge.extend_from_slice(&[0; 4]);
        let err = read_record(&mut io::Cursor::new(&huge)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    /// Pins the byte-level examples of `docs/PROTOCOL.md` §2.2 to the
    /// implementation: if this test needs updating, the spec's example
    /// bytes (and the protocol version) must change with it.
    #[test]
    fn spec_byte_examples_are_pinned() {
        let mut buf = Vec::new();
        write_request(&mut buf, "SUBMIT 3:e8").unwrap();
        assert_eq!(
            buf,
            [
                0x0c, 0x00, 0x00, 0x00, // len = 12
                0x21, 0x2c, 0xd2, 0x14, // crc32(payload)
                0x06, // kind: request
                b'S', b'U', b'B', b'M', b'I', b'T', b' ', b'3', b':', b'e', b'8',
            ]
        );
        let mut buf = Vec::new();
        write_response(&mut buf, Status::Ok, "seq=0").unwrap();
        assert_eq!(
            buf,
            [
                0x07, 0x00, 0x00, 0x00, // len = 7
                0xab, 0x06, 0x43, 0xf3, // crc32(payload)
                0x07, // kind: response
                0x00, // status: OK
                b's', b'e', b'q', b'=', b'0',
            ]
        );
        // The §4.8 CANON request frame.
        let mut buf = Vec::new();
        write_request(&mut buf, "CANON 3:e8").unwrap();
        assert_eq!(
            buf,
            [
                0x0b, 0x00, 0x00, 0x00, // len = 11
                0x6a, 0x51, 0x7b, 0xbe, // crc32(payload)
                0x06, // kind: request
                b'C', b'A', b'N', b'O', b'N', b' ', b'3', b':', b'e', b'8',
            ]
        );
        // The §4.12 METRICS request frame.
        let mut buf = Vec::new();
        write_request(&mut buf, "METRICS").unwrap();
        assert_eq!(
            buf,
            [
                0x08, 0x00, 0x00, 0x00, // len = 8
                0x6d, 0x5d, 0xee, 0x23, // crc32(payload)
                0x06, // kind: request
                b'M', b'E', b'T', b'R', b'I', b'C', b'S',
            ]
        );
    }

    #[test]
    fn table_literals() {
        assert_eq!(parse_table_line("e8").unwrap(), TruthTable::majority(3));
        assert_eq!(parse_table_line(" 3:e8 ").unwrap(), TruthTable::majority(3));
        assert_eq!(parse_table_line("0xE8").unwrap(), TruthTable::majority(3));
        assert!(parse_table_line("abc").is_err(), "3 digits");
        assert!(parse_table_line("zz").is_err(), "not hex");
        assert!(parse_table_line("x:e8").is_err());
        assert!(parse_table_line("").is_err());
    }
}
