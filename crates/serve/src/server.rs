//! The service front-end: acceptor, per-connection readers, dispatch.
//!
//! One [`Engine`] serves every connection, but **ingestion does not go
//! through the engine lock**: each connection lazily takes a
//! [`SubmitHandle`] — a detached endpoint into the engine's
//! work-stealing pool — and `SUBMIT`/`SUBMIT-BATCH` push through it
//! concurrently. A connection streaming a huge batch therefore blocks
//! on the pool's bounded deques (backpressure, §6 of
//! `docs/PROTOCOL.md`), not on a lock that `SNAPSHOT`/`STATS`/`TOP`
//! from other connections need: observation requests take the engine
//! mutex only for the microseconds of a counter sweep and can never be
//! starved by a busy ingester (pinned by `tests/fairness.rs`). When
//! workers fall behind, a submitting connection's read loop stalls in
//! its own push and TCP receive windows push the wait back into that
//! client alone. Nothing in the server buffers an unbounded amount.

use crate::proto::{self, Status, MAX_BATCH, PROTO_VERSION};
use crate::signal;
use facepoint_core::wire::Record;
use facepoint_engine::{Engine, EngineReport, SubmitHandle};
use facepoint_telemetry::{Counter, Gauge, LatencyHistogram, Registry};
use facepoint_truth::TruthTable;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning (transport-level; engine tuning lives in
/// [`EngineConfig`](facepoint_engine::EngineConfig), fixed when the
/// engine is built).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// How often the acceptor wakes to check for shutdown while no
    /// connection is arriving.
    pub accept_poll: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            accept_poll: Duration::from_millis(25),
        }
    }
}

/// Opcode → latency-series table: every opcode of §4 gets its own
/// `serve_<op>_nanos` histogram, and the empty-opcode entry (last) is
/// the catch-all for unknown opcodes. Names are fixed here so the
/// series set a scrape reports is identical on every server.
const OP_SERIES: [(&str, &str); 12] = [
    ("HELLO", "serve_hello_nanos"),
    ("PING", "serve_ping_nanos"),
    ("SUBMIT", "serve_submit_nanos"),
    ("SUBMIT-BATCH", "serve_submit_batch_nanos"),
    ("SNAPSHOT", "serve_snapshot_nanos"),
    ("TOP", "serve_top_nanos"),
    ("CANON", "serve_canon_nanos"),
    ("STATS", "serve_stats_nanos"),
    ("FLUSH", "serve_flush_nanos"),
    ("METRICS", "serve_metrics_nanos"),
    ("QUIT", "serve_quit_nanos"),
    ("", "serve_other_nanos"),
];

/// Transport-layer instruments, registered into the *engine's*
/// registry at construction so one `METRICS` scrape covers all three
/// layers (`engine_*`, `store_*`, `serve_*`). Recording goes through
/// the pre-resolved `Arc` handles — nothing on the request path locks
/// the registry or allocates.
struct ServeTelemetry {
    /// The engine's registry, kept alive independently of the engine
    /// itself so `METRICS` can still be answered while the server
    /// drains for shutdown.
    registry: Arc<Registry>,
    /// Live connections (`serve_connections`).
    connections: Arc<Gauge>,
    /// Raw socket bytes, counted below the buffering layers
    /// (`serve_bytes_read_total` / `serve_bytes_written_total`).
    bytes_read: Arc<Counter>,
    bytes_written: Arc<Counter>,
    /// Per-opcode request latency, [`OP_SERIES`] order.
    op_nanos: Vec<(&'static str, Arc<LatencyHistogram>)>,
}

impl ServeTelemetry {
    fn new(registry: Arc<Registry>) -> ServeTelemetry {
        let op_nanos = OP_SERIES
            .iter()
            .map(|(op, name)| (*op, registry.histogram(name)))
            .collect();
        ServeTelemetry {
            connections: registry.gauge("serve_connections"),
            bytes_read: registry.counter("serve_bytes_read_total"),
            bytes_written: registry.counter("serve_bytes_written_total"),
            op_nanos,
            registry,
        }
    }

    /// The latency histogram charged for opcode `op`; unknown opcodes
    /// land in the trailing catch-all.
    fn op_histogram(&self, op: &str) -> &LatencyHistogram {
        let (_, h) = self
            .op_nanos
            .iter()
            .find(|(known, _)| *known == op)
            .unwrap_or_else(|| self.op_nanos.last().expect("catch-all series"));
        h
    }
}

/// Shared server state: the engine every connection feeds, and the
/// shutdown latch.
struct Shared {
    /// `None` once shutdown has sealed the engine; requests arriving
    /// after that are answered with `ESHUTDOWN`.
    engine: Mutex<Option<Engine>>,
    shutdown: AtomicBool,
    /// One clone of each **live** connection's stream, so shutdown can
    /// wake readers blocked in `read` (`TcpStream::shutdown` is the
    /// only portable interrupt for a blocking socket read). Handlers
    /// deregister on exit — a retained clone would hold the socket's
    /// file descriptor open (no EOF for the peer, and an fd leak on a
    /// long-running server).
    conns: Mutex<std::collections::HashMap<u64, TcpStream>>,
    serve: ServeTelemetry,
    /// Lock-free `CANON` endpoint, detached from the engine at
    /// construction: a canonicalization (up to a full Gray-code walk
    /// for an unknown heavy-symmetry class) runs on the requesting
    /// connection's thread without holding the engine lock that
    /// `SNAPSHOT`/`STATS`/`FLUSH` from other connections need.
    canon: facepoint_engine::CanonHandle,
}

impl Shared {
    fn new(engine: Engine) -> Shared {
        let serve = ServeTelemetry::new(engine.telemetry());
        let canon = engine.canon_handle();
        Shared {
            engine: Mutex::new(Some(engine)),
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(std::collections::HashMap::new()),
            serve,
            canon,
        }
    }

    fn lock_engine(&self) -> std::sync::MutexGuard<'_, Option<Engine>> {
        // A panic in a handler thread must not wedge the server: the
        // engine state itself is only mutated through &mut methods
        // that keep it consistent.
        self.engine
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Counts raw socket bytes into a telemetry counter, underneath the
/// session's `BufReader` — what is measured is what actually crossed
/// the socket, not per-call buffered reads.
struct CountingRead<R> {
    inner: R,
    total: Arc<Counter>,
}

impl<R: Read> Read for CountingRead<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.total.add(n as u64);
        Ok(n)
    }
}

/// The write-side twin of [`CountingRead`], underneath `BufWriter`.
struct CountingWrite<W> {
    inner: W,
    total: Arc<Counter>,
}

impl<W: Write> Write for CountingWrite<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.total.add(n as u64);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Signals a running [`Server`] to shut down gracefully. Clonable and
/// sendable across threads; also wired to SIGTERM/SIGINT through
/// [`signal::install`].
#[derive(Clone)]
pub struct ShutdownHandle(Arc<Shared>);

impl ShutdownHandle {
    /// Requests shutdown: the acceptor stops, in-flight requests get
    /// `ESHUTDOWN`, the engine is finished (final checkpoint included
    /// when durable) and [`Server::run`] returns.
    pub fn shutdown(&self) {
        self.0.shutdown.store(true, Ordering::SeqCst);
    }
}

/// The `facepoint serve` TCP server (spec: `docs/PROTOCOL.md`).
///
/// Lifecycle: [`Server::bind`] an address with a ready [`Engine`],
/// hand copies of the [`ShutdownHandle`] to whoever must stop it
/// (and/or call [`signal::install`] to wire SIGTERM/SIGINT), then
/// block in [`Server::run`] until shutdown.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    cfg: ServerConfig,
}

impl Server {
    /// Binds `addr` and wraps `engine` for serving. The engine may
    /// already hold a recovered census ([`Engine::open`]) — serving
    /// resumes it transparently.
    ///
    /// # Errors
    ///
    /// Socket-level bind failures.
    pub fn bind(addr: impl ToSocketAddrs, engine: Engine, cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            shared: Arc::new(Shared::new(engine)),
            cfg,
        })
    }

    /// The bound address — useful with port `0`.
    ///
    /// # Errors
    ///
    /// Propagates the socket's `local_addr` failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can stop this server from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(Arc::clone(&self.shared))
    }

    /// Serves until shutdown is requested (via [`ShutdownHandle`] or an
    /// installed signal handler), then seals the engine: stop
    /// accepting, answer stragglers with `ESHUTDOWN`, wake and join
    /// every connection thread, and [`Engine::finish`] — which writes
    /// the final checkpoint when the census is durable.
    ///
    /// Returns the engine's final report, or `None` if the engine was
    /// already gone (cannot happen through public API).
    ///
    /// # Errors
    ///
    /// Per-connection errors close that connection and are never
    /// fatal. Accept-loop errors are retried (connection churn and fd
    /// pressure are routine on a busy listener); only a persistently
    /// failing listener ends the run, and even then the engine is
    /// sealed and checkpointed first — the error is returned *after*
    /// durability is secured.
    pub fn run(self) -> io::Result<Option<EngineReport>> {
        // Polling accept (instead of a blocking one) keeps shutdown
        // latency bounded without platform-specific self-pipes.
        self.listener.set_nonblocking(true)?;
        let mut handlers: Vec<JoinHandle<()>> = Vec::new();
        let mut next_conn: u64 = 0;
        // Consecutive unexplained accept failures (EMFILE and friends
        // have no stable ErrorKind). Transient pressure deserves
        // retries; only a persistently broken listener ends the run —
        // and even then through the graceful seal-and-checkpoint tail
        // below, never by abandoning the engine.
        let mut accept_failures: u32 = 0;
        const MAX_ACCEPT_FAILURES: u32 = 200;
        let mut fatal: Option<io::Error> = None;
        while !self.shared.shutdown.load(Ordering::SeqCst) && !signal::triggered() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    accept_failures = 0;
                    let _ = stream.set_nodelay(true);
                    let id = next_conn;
                    next_conn += 1;
                    match stream.try_clone() {
                        Ok(clone) => {
                            self.shared
                                .conns
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner)
                                .insert(id, clone);
                        }
                        // An unregistered connection could never be
                        // woken at shutdown — its handler would block
                        // `run` in `join` forever. Refuse it instead
                        // (likely fd pressure anyway).
                        Err(_) => continue,
                    }
                    let shared = Arc::clone(&self.shared);
                    handlers.push(std::thread::spawn(move || {
                        handle_connection(stream, &shared);
                        // Deregister *after* the handler dropped its
                        // stream halves: removing the registry clone is
                        // then the last descriptor, and the peer gets
                        // its EOF.
                        shared
                            .conns
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .remove(&id);
                    }));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    // The idle tick: also reap finished connection
                    // threads, so a long-running server's handle list
                    // tracks live connections, not every connection
                    // ever accepted.
                    handlers.retain(|h| !h.is_finished());
                    std::thread::sleep(self.cfg.accept_poll);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                // The peer reset the connection between SYN and accept:
                // routine churn, not a listener problem.
                Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => {
                    accept_failures = 0;
                }
                Err(e) => {
                    // Likely fd exhaustion or similar pressure: back
                    // off and retry — connections already accepted keep
                    // being served, and freeing fds unblocks us.
                    accept_failures += 1;
                    if accept_failures >= MAX_ACCEPT_FAILURES {
                        fatal = Some(e);
                        break;
                    }
                    handlers.retain(|h| !h.is_finished());
                    std::thread::sleep(self.cfg.accept_poll);
                }
            }
        }
        drop(self.listener);
        // Seal the engine first: handlers answering after this point
        // see `None` and reply ESHUTDOWN.
        let engine = self.shared.lock_engine().take();
        // Wake readers blocked on their sockets, then join them.
        for (_, conn) in self
            .shared
            .conns
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .drain()
        {
            let _ = conn.shutdown(Shutdown::Both);
        }
        for h in handlers {
            let _ = h.join();
        }
        // Finish (and checkpoint) the engine *before* surfacing a
        // listener failure: durability first, diagnosis second.
        let report = engine.map(Engine::finish);
        match fatal {
            Some(e) => Err(e),
            None => Ok(report),
        }
    }
}

/// Per-connection session state.
struct Session {
    /// Set by a successful `HELLO`; most opcodes are refused before it.
    greeted: bool,
    /// This connection's private ingestion endpoint, created on its
    /// first submission (under one brief engine-lock acquisition) and
    /// reused for the connection's lifetime. Submissions push through
    /// it without touching the engine lock, so one connection's batch
    /// can never serialize another connection's observation requests.
    handle: Option<SubmitHandle>,
}

/// What the dispatcher wants done with the connection after the
/// response is written.
#[derive(Debug, PartialEq, Eq)]
enum Action {
    Continue,
    /// Close after responding (`QUIT`, protocol violations).
    Close,
}

/// Decrements the `serve_connections` gauge however the handler exits
/// (clean close, transport error, or a panic unwinding through it).
struct ConnGauge<'a>(&'a Gauge);

impl Drop for ConnGauge<'_> {
    fn drop(&mut self) {
        self.0.add(-1);
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(CountingRead {
        inner: read_half,
        total: Arc::clone(&shared.serve.bytes_read),
    });
    let mut writer = BufWriter::new(CountingWrite {
        inner: stream,
        total: Arc::clone(&shared.serve.bytes_written),
    });
    shared.serve.connections.add(1);
    let _live = ConnGauge(&shared.serve.connections);
    let mut session = Session {
        greeted: false,
        handle: None,
    };
    loop {
        let line = match proto::read_record(&mut reader) {
            Ok(Some(Record::Request { line })) => line,
            Ok(Some(_)) => {
                // A CRC-valid frame of the wrong kind: the peer is not
                // speaking this protocol. Tell it once and hang up.
                let _ =
                    proto::write_response(&mut writer, Status::Proto, "expected a request frame");
                let _ = writer.flush();
                return;
            }
            // Clean EOF, torn frame or transport error: nothing can be
            // answered reliably any more.
            Ok(None) | Err(_) => return,
        };
        // Latency is charged from parse to response-ready: for a batch
        // that includes reading its table frames, which is the part of
        // request handling a client actually waits on.
        let started = Instant::now();
        let (status, body, action) = dispatch(shared, &mut session, &line, &mut reader);
        let op = match line.split_once(' ') {
            Some((op, _)) => op,
            None => line.trim(),
        };
        shared
            .serve
            .op_histogram(op)
            .record_duration(started.elapsed());
        if proto::write_response(&mut writer, status, &body).is_err() || writer.flush().is_err() {
            return;
        }
        if action == Action::Close {
            return;
        }
    }
}

/// Handles one request line and returns `(status, body, action)`.
///
/// `reader` is needed only by `SUBMIT-BATCH`, which consumes its table
/// frames from the same stream.
fn dispatch(
    shared: &Shared,
    session: &mut Session,
    line: &str,
    reader: &mut impl Read,
) -> (Status, String, Action) {
    let (op, args) = match line.split_once(' ') {
        Some((op, rest)) => (op, rest.trim()),
        None => (line.trim(), ""),
    };
    // HELLO, PING and QUIT work before the handshake; everything else
    // requires it (§3).
    if !session.greeted && !matches!(op, "HELLO" | "PING" | "QUIT") {
        return (
            Status::Proto,
            "handshake required: send HELLO <version> first".into(),
            Action::Close,
        );
    }
    match op {
        "HELLO" => match args.parse::<u32>() {
            Ok(v) if v == PROTO_VERSION => {
                session.greeted = true;
                let guard = shared.lock_engine();
                let body = match guard.as_ref() {
                    Some(engine) => format!(
                        "facepoint {PROTO_VERSION} set={} workers={} persistent={} resolution={}",
                        engine.config().set,
                        engine.config().resolved_workers(),
                        engine.config().persist.is_some(),
                        engine.config().resolution,
                    ),
                    None => format!("facepoint {PROTO_VERSION}"),
                };
                (Status::Ok, body, Action::Continue)
            }
            Ok(v) => (
                Status::Version,
                format!("server speaks version {PROTO_VERSION}, client asked for {v}"),
                Action::Close,
            ),
            Err(_) => (Status::Usage, "HELLO <version>".into(), Action::Continue),
        },
        "PING" => (Status::Ok, "pong".into(), Action::Continue),
        "QUIT" => (Status::Ok, "bye".into(), Action::Close),
        "SUBMIT" => {
            if args.is_empty() {
                return (Status::Usage, "SUBMIT <table>".into(), Action::Continue);
            }
            match proto::parse_table_line(args) {
                Ok(table) => match submit_handle(shared, session).and_then(|h| h.submit(table)) {
                    Some(seq) => (Status::Ok, format!("seq={seq}"), Action::Continue),
                    None => shutdown_reply(),
                },
                Err(e) => (Status::Table, e, Action::Continue),
            }
        }
        "SUBMIT-BATCH" => submit_batch(shared, session, args, reader),
        "SNAPSHOT" => with_engine(shared, |engine| {
            let snap = engine.snapshot();
            (
                Status::Ok,
                format!(
                    "submitted={} processed={} classes={} backlog={}",
                    snap.functions_submitted,
                    snap.functions_processed,
                    snap.num_classes,
                    snap.backlog()
                ),
                Action::Continue,
            )
        }),
        "TOP" => {
            let k: usize = match args.parse() {
                Ok(k) => k,
                Err(_) => return (Status::Usage, "TOP <k>".into(), Action::Continue),
            };
            // Clamp before touching the store: no reply can carry more
            // lines than the byte budget admits, so a huge `k` must not
            // make `top_classes` clone and sort a huge census under the
            // engine lock only for `top_body` to discard it.
            let k = k.min(TOP_BODY_BUDGET / TOP_MIN_LINE_LEN);
            with_engine(shared, |engine| {
                let body = top_body(engine.top_classes(k), TOP_BODY_BUDGET);
                (Status::Ok, body, Action::Continue)
            })
        }
        "CANON" => {
            if args.is_empty() {
                return (Status::Usage, "CANON <table>".into(), Action::Continue);
            }
            match proto::parse_table_line(args) {
                Ok(table) => {
                    // Only the sealed check touches the engine lock;
                    // the canonicalization itself (potentially a full
                    // Gray-code walk) runs on this connection's thread
                    // through the detached handle, so a heavy CANON
                    // never stalls other connections' requests.
                    if shared.lock_engine().is_none() {
                        return shutdown_reply();
                    }
                    let answer = shared.canon.canon(&table);
                    (Status::Ok, canon_body(&answer), Action::Continue)
                }
                Err(e) => (Status::Table, e, Action::Continue),
            }
        }
        "STATS" => with_engine(shared, |engine| {
            (Status::Ok, engine.stats().to_string(), Action::Continue)
        }),
        "FLUSH" => with_engine(shared, |engine| {
            engine.flush();
            let epochs = engine.stats().durability.map_or(0, |d| d.epochs);
            (Status::Ok, format!("epochs={epochs}"), Action::Continue)
        }),
        // Served straight from the registry, which outlives the engine:
        // the scrape path stays answerable even while the server drains
        // for shutdown, so an operator can watch the drain itself.
        "METRICS" => (
            Status::Ok,
            shared.serve.registry.render_text(),
            Action::Continue,
        ),
        _ => (
            Status::Usage,
            format!(
                "unknown opcode {op:?}; expected HELLO, PING, SUBMIT, SUBMIT-BATCH, \
                 SNAPSHOT, TOP, CANON, STATS, FLUSH, METRICS or QUIT"
            ),
            Action::Continue,
        ),
    }
}

/// Byte budget for a `TOP` reply body: a full frame minus generous
/// headroom, so the encoded frame can never trip the codec's
/// `MAX_PAYLOAD_LEN` corruption guard (§4.7: the listing is truncated
/// to fit and `classes=` counts the lines actually present).
const TOP_BODY_BUDGET: usize = facepoint_core::wire::MAX_PAYLOAD_LEN - 4096;

/// Smallest possible `TOP` line (`<32-hex key> <size> <n:hex rep>` +
/// newline) — used to clamp `k` to the most lines a reply could ever
/// hold.
const TOP_MIN_LINE_LEN: usize = 32 + 1 + 1 + 1 + 3 + 1;

/// Renders a `TOP` reply body, dropping trailing classes once `budget`
/// bytes are reached — a reply must always fit one frame, whatever `k`
/// the client asked for.
fn top_body(classes: Vec<facepoint_engine::ClassSummary>, budget: usize) -> String {
    let mut lines: Vec<String> = Vec::with_capacity(classes.len());
    let mut used = 0usize;
    for c in &classes {
        let line = format!(
            "{:032x} {} {}:{}",
            c.key,
            c.size,
            c.representative.num_vars(),
            c.representative.to_hex()
        );
        if used + line.len() + 1 > budget {
            break;
        }
        used += line.len() + 1;
        lines.push(line);
    }
    let mut body = format!("classes={}", lines.len());
    for line in &lines {
        body.push('\n');
        body.push_str(line);
    }
    body
}

/// Renders a `CANON` reply body (§4.8): the certified class entry
/// (key, size, proved representative) followed by the witness
/// transform mapping the queried table onto that representative.
fn canon_body(answer: &facepoint_engine::CanonAnswer) -> String {
    let perm: Vec<String> = answer
        .witness
        .perm()
        .as_slice()
        .iter()
        .map(|v| v.to_string())
        .collect();
    format!(
        "{} perm={} neg={} out={}",
        answer.entry.render_wire(),
        perm.join(","),
        answer.witness.input_neg(),
        answer.witness.output_neg() as u8,
    )
}

/// The connection's private [`SubmitHandle`], created on first use —
/// the only submission-path step that takes the engine lock, and only
/// once per connection. `None` when the engine has been sealed.
fn submit_handle<'s>(shared: &Shared, session: &'s mut Session) -> Option<&'s mut SubmitHandle> {
    if session.handle.is_none() {
        session.handle = Some(shared.lock_engine().as_ref()?.submit_handle());
    }
    session.handle.as_mut()
}

/// The uniform `ESHUTDOWN` answer for requests that arrive after the
/// engine is sealed (or that lose the race with `finish`).
fn shutdown_reply() -> (Status, String, Action) {
    (
        Status::Shutdown,
        "server is shutting down".into(),
        Action::Close,
    )
}

/// Runs `f` on the shared engine, or answers `ESHUTDOWN` if it has
/// been sealed.
fn with_engine(
    shared: &Shared,
    f: impl FnOnce(&mut Engine) -> (Status, String, Action),
) -> (Status, String, Action) {
    let mut guard = shared.lock_engine();
    match guard.as_mut() {
        Some(engine) => f(engine),
        None => shutdown_reply(),
    }
}

/// Byte budget for the tables a single batch may hold in memory
/// before submission (§4.5). `MAX_BATCH` bounds the *count*, but a
/// count of small frames can still announce gigabytes of wide tables
/// (an n=16 table is 8 KiB); the byte budget keeps the atomic
/// buffering honest about the module's no-unbounded-buffering claim.
/// 64 MiB passes any realistic batch (a full 2^20-table batch of
/// 6-variable functions is 8 MiB) and stops the hostile ones.
const MAX_BATCH_BYTES: usize = 1 << 26;

/// `SUBMIT-BATCH <n>`: reads the `n` announced table frames, then
/// submits all of them atomically — a parse failure anywhere rejects
/// the whole batch (the frames are still consumed, keeping the stream
/// in sync; §4.5). Submission goes through the connection's own
/// [`SubmitHandle`]: a huge batch blocks on pool backpressure, never
/// on the engine lock other connections need.
fn submit_batch(
    shared: &Shared,
    session: &mut Session,
    args: &str,
    reader: &mut impl Read,
) -> (Status, String, Action) {
    let n: u64 = match args.parse() {
        Ok(n) if n <= MAX_BATCH => n,
        Ok(n) => {
            return (
                Status::Usage,
                format!("batch of {n} exceeds the {MAX_BATCH} cap"),
                Action::Continue,
            )
        }
        Err(_) => {
            return (
                Status::Usage,
                "SUBMIT-BATCH <count>".into(),
                Action::Continue,
            )
        }
    };
    let mut tables: Vec<TruthTable> = Vec::with_capacity(n.min(1 << 16) as usize);
    let mut table_bytes = 0usize;
    let mut first_error: Option<(u64, String)> = None;
    for i in 0..n {
        match proto::read_record(reader) {
            Ok(Some(Record::Request { line })) => match proto::parse_table_line(&line) {
                Ok(t) => {
                    table_bytes += t.words().len() * 8;
                    if table_bytes > MAX_BATCH_BYTES && first_error.is_none() {
                        // Stop buffering but keep consuming frames, so
                        // the stream stays aligned for the response.
                        tables.clear();
                        first_error = Some((
                            i,
                            format!("batch exceeds the {MAX_BATCH_BYTES} byte budget"),
                        ));
                    } else if first_error.is_none() {
                        tables.push(t);
                    }
                }
                Err(e) => {
                    if first_error.is_none() {
                        tables.clear();
                        first_error = Some((i, e));
                    }
                }
            },
            // Anything but a request frame tears the batch; the stream
            // cannot be trusted to be aligned any more.
            Ok(_) | Err(_) => {
                return (
                    Status::Proto,
                    format!("batch torn after {i} of {n} table frames"),
                    Action::Close,
                )
            }
        }
    }
    if let Some((i, e)) = first_error {
        return (
            Status::Table,
            format!("table {i} of {n}: {e}"),
            Action::Continue,
        );
    }
    match submit_handle(shared, session).and_then(|h| h.submit_batch(tables)) {
        Some(first) => (
            Status::Ok,
            format!("first={first} count={n}"),
            Action::Continue,
        ),
        None => shutdown_reply(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use facepoint_engine::EngineConfig;
    use facepoint_sig::SignatureSet;

    fn shared() -> Shared {
        let engine = Engine::builder()
            .config(EngineConfig {
                workers: 2,
                ..EngineConfig::with_set(SignatureSet::all())
            })
            .build()
            .unwrap();
        Shared::new(engine)
    }

    fn greeted() -> Session {
        Session {
            greeted: true,
            handle: None,
        }
    }

    fn empty() -> io::Cursor<Vec<u8>> {
        io::Cursor::new(Vec::new())
    }

    /// Every opcode and error path of the dispatcher, spec order. The
    /// socket-level flows live in `tests/protocol.rs`; this pins the
    /// grammar without any transport.
    #[test]
    fn dispatch_covers_the_opcode_table() {
        let shared = shared();
        let mut s = Session {
            greeted: false,
            handle: None,
        };

        // Pre-handshake: only HELLO, PING, QUIT.
        let (st, body, act) = dispatch(&shared, &mut s, "SNAPSHOT", &mut empty());
        assert_eq!((st, act), (Status::Proto, Action::Close));
        assert!(body.contains("HELLO"), "{body}");

        let (st, _, _) = dispatch(&shared, &mut s, "PING", &mut empty());
        assert_eq!(st, Status::Ok);

        let (st, body, _) = dispatch(&shared, &mut s, "HELLO 99", &mut empty());
        assert_eq!(st, Status::Version);
        assert!(body.contains("version 1"), "{body}");
        let (st, _, _) = dispatch(&shared, &mut s, "HELLO x", &mut empty());
        assert_eq!(st, Status::Usage);
        let (st, body, _) = dispatch(&shared, &mut s, "HELLO 1", &mut empty());
        assert_eq!(st, Status::Ok);
        assert!(body.starts_with("facepoint 1 set="), "{body}");
        assert!(s.greeted);

        // SUBMIT: ok, missing arg, bad table.
        let (st, body, _) = dispatch(&shared, &mut s, "SUBMIT e8", &mut empty());
        assert_eq!(st, Status::Ok);
        assert_eq!(body, "seq=0");
        let (st, _, _) = dispatch(&shared, &mut s, "SUBMIT", &mut empty());
        assert_eq!(st, Status::Usage);
        let (st, _, _) = dispatch(&shared, &mut s, "SUBMIT zzz", &mut empty());
        assert_eq!(st, Status::Table);

        // SUBMIT-BATCH: ok, bad count, oversized, bad table inside,
        // torn batch.
        let mut frames = Vec::new();
        proto::write_request(&mut frames, "d4").unwrap();
        proto::write_request(&mut frames, "3:96").unwrap();
        let (st, body, _) = dispatch(
            &shared,
            &mut s,
            "SUBMIT-BATCH 2",
            &mut io::Cursor::new(frames),
        );
        assert_eq!(st, Status::Ok);
        assert_eq!(body, "first=1 count=2");
        let (st, _, _) = dispatch(&shared, &mut s, "SUBMIT-BATCH x", &mut empty());
        assert_eq!(st, Status::Usage);
        let (st, _, _) = dispatch(
            &shared,
            &mut s,
            &format!("SUBMIT-BATCH {}", MAX_BATCH + 1),
            &mut empty(),
        );
        assert_eq!(st, Status::Usage);
        let mut frames = Vec::new();
        proto::write_request(&mut frames, "e8").unwrap();
        proto::write_request(&mut frames, "not-a-table").unwrap();
        let (st, body, act) = dispatch(
            &shared,
            &mut s,
            "SUBMIT-BATCH 2",
            &mut io::Cursor::new(frames),
        );
        assert_eq!((st, act), (Status::Table, Action::Continue));
        assert!(body.starts_with("table 1 of 2"), "{body}");
        let (st, _, act) = dispatch(&shared, &mut s, "SUBMIT-BATCH 3", &mut empty());
        assert_eq!((st, act), (Status::Proto, Action::Close));

        // The rejected batch submitted nothing: 3 accepted so far.
        let (st, body, _) = dispatch(&shared, &mut s, "SNAPSHOT", &mut empty());
        assert_eq!(st, Status::Ok);
        assert!(body.starts_with("submitted=3 "), "{body}");

        // Drain so TOP and STATS see a complete census.
        shared
            .lock_engine()
            .as_mut()
            .unwrap()
            .drain(Duration::from_secs(30));
        let (st, body, _) = dispatch(&shared, &mut s, "TOP 10", &mut empty());
        assert_eq!(st, Status::Ok);
        let mut lines = body.lines();
        assert_eq!(lines.next(), Some("classes=2")); // e8/d4 vs 96
        let heavy = lines.next().unwrap();
        let mut fields = heavy.split(' ');
        let key = fields.next().unwrap();
        assert_eq!(key.len(), 32, "{heavy}");
        assert_eq!(fields.next(), Some("2"), "{heavy}");
        assert!(fields.next().unwrap().starts_with("3:"), "{heavy}");
        let (st, _, _) = dispatch(&shared, &mut s, "TOP", &mut empty());
        assert_eq!(st, Status::Usage);

        // CANON: proved representative + witness, missing arg, bad
        // table. On this digest-mode engine the size field reads 0.
        let (st, body, _) = dispatch(&shared, &mut s, "CANON d4", &mut empty());
        assert_eq!(st, Status::Ok);
        assert!(body.starts_with("key="), "{body}");
        for field in ["size=0", "representative=3:", "perm=", "neg=", "out="] {
            assert!(body.contains(field), "no {field} in {body}");
        }
        // d4 and e8 are one transform apart: same proved representative.
        let (_, twin, _) = dispatch(&shared, &mut s, "CANON e8", &mut empty());
        let rep = |b: &str| {
            b.split_whitespace()
                .find(|f| f.starts_with("representative="))
                .unwrap()
                .to_string()
        };
        assert_eq!(rep(&body), rep(&twin), "{body} vs {twin}");
        let (st, _, _) = dispatch(&shared, &mut s, "CANON", &mut empty());
        assert_eq!(st, Status::Usage);
        let (st, _, _) = dispatch(&shared, &mut s, "CANON zzz", &mut empty());
        assert_eq!(st, Status::Table);

        let (st, body, _) = dispatch(&shared, &mut s, "STATS", &mut empty());
        assert_eq!(st, Status::Ok);
        assert!(body.contains("functions -> "), "{body}");

        let (st, body, _) = dispatch(&shared, &mut s, "FLUSH", &mut empty());
        assert_eq!(st, Status::Ok);
        assert_eq!(body, "epochs=0"); // in-memory engine: no barriers

        // METRICS: every line obeys the §4.12 `name SP value` grammar
        // and the scrape spans all three layers.
        let (st, body, act) = dispatch(&shared, &mut s, "METRICS", &mut empty());
        assert_eq!((st, act), (Status::Ok, Action::Continue));
        for line in body.lines() {
            let (name, value) = line.split_once(' ').expect("name SP value");
            assert!(!name.is_empty() && value.parse::<f64>().is_ok(), "{line}");
        }
        for series in [
            "engine_functions_processed_total",
            "engine_chunk_classify_nanos_count",
            "engine_workers",
            "store_journal_records_total",
            "serve_connections",
            "serve_submit_nanos_count",
            "serve_bytes_read_total",
        ] {
            assert!(
                body.lines().any(|l| l.starts_with(&format!("{series} "))),
                "no {series} series in scrape:\n{body}"
            );
        }

        let (st, body, _) = dispatch(&shared, &mut s, "FROB 1 2", &mut empty());
        assert_eq!(st, Status::Usage);
        assert!(body.contains("unknown opcode"), "{body}");
        assert!(body.contains("METRICS"), "{body}");

        let (st, body, act) = dispatch(&shared, &mut s, "QUIT", &mut empty());
        assert_eq!((st, act), (Status::Ok, Action::Close));
        assert_eq!(body, "bye");
    }

    #[test]
    fn top_body_truncates_to_its_byte_budget() {
        let classes: Vec<facepoint_engine::ClassSummary> = (0..100u128)
            .map(|i| facepoint_engine::ClassSummary {
                key: i,
                size: 100 - i as usize,
                representative: TruthTable::majority(5),
            })
            .collect();
        // Unbounded budget: everything fits, count matches.
        let full = top_body(classes.clone(), usize::MAX);
        assert!(full.starts_with("classes=100\n"), "{full}");
        assert_eq!(full.lines().count(), 101);
        let line_len = full.lines().nth(1).unwrap().len();
        // A budget for ~10 lines keeps the reply whole-line-truncated
        // and the count line authoritative.
        let truncated = top_body(classes.clone(), 10 * (line_len + 1) + line_len / 2);
        let mut lines = truncated.lines();
        assert_eq!(lines.next(), Some("classes=10"), "{truncated}");
        assert_eq!(truncated.lines().count(), 11);
        assert!(truncated.len() <= 10 * (line_len + 1) + line_len);
        // Zero budget: an empty-but-valid listing, not a panic.
        assert_eq!(top_body(classes, 0), "classes=0");
    }

    #[test]
    fn oversized_batch_bytes_are_rejected_whole() {
        let shared = shared();
        let mut s = greeted();
        // 16-variable tables are 8 KiB each; a few thousand of them
        // blow the 64 MiB budget long before MAX_BATCH.
        let wide = format!("16:{}", "a".repeat(1 << 14));
        let n = (MAX_BATCH_BYTES / (1 << 13)) + 2;
        let mut frames = Vec::new();
        for _ in 0..n {
            proto::write_request(&mut frames, &wide).unwrap();
        }
        let (st, body, act) = dispatch(
            &shared,
            &mut s,
            &format!("SUBMIT-BATCH {n}"),
            &mut io::Cursor::new(frames),
        );
        assert_eq!((st, act), (Status::Table, Action::Continue));
        assert!(body.contains("byte budget"), "{body}");
        // Nothing from the rejected batch was submitted.
        let (_, body, _) = dispatch(&shared, &mut s, "SNAPSHOT", &mut empty());
        assert!(body.starts_with("submitted=0 "), "{body}");
    }

    #[test]
    fn sealed_engine_answers_eshutdown() {
        let shared = shared();
        // A connection that already holds a submit handle from before
        // the seal must also be refused (its handle observes the
        // closed pool).
        let mut veteran = greeted();
        let (st, _, _) = dispatch(&shared, &mut veteran, "SUBMIT e8", &mut empty());
        assert_eq!(st, Status::Ok);
        assert!(veteran.handle.is_some());
        // Seal as Server::run does at shutdown.
        let engine = shared.lock_engine().take().unwrap();
        drop(engine.finish());
        let (st, _, act) = dispatch(&shared, &mut veteran, "SUBMIT d4", &mut empty());
        assert_eq!((st, act), (Status::Shutdown, Action::Close));
        for op in [
            "SUBMIT e8",
            "SNAPSHOT",
            "TOP 5",
            "CANON e8",
            "STATS",
            "FLUSH",
        ] {
            let (st, _, act) = dispatch(&shared, &mut greeted(), op, &mut empty());
            assert_eq!((st, act), (Status::Shutdown, Action::Close), "{op}");
        }
        // Batches too — after their frames are consumed.
        let mut frames = Vec::new();
        proto::write_request(&mut frames, "e8").unwrap();
        let (st, _, _) = dispatch(
            &shared,
            &mut greeted(),
            "SUBMIT-BATCH 1",
            &mut io::Cursor::new(frames),
        );
        assert_eq!(st, Status::Shutdown);
        // METRICS is the exception: the registry outlives the engine,
        // so the drain itself stays observable.
        let (st, body, act) = dispatch(&shared, &mut greeted(), "METRICS", &mut empty());
        assert_eq!((st, act), (Status::Ok, Action::Continue));
        assert!(body.contains("engine_workers "), "{body}");
    }

    /// Every §4 opcode maps to its own latency series; unknown opcodes
    /// land in the catch-all.
    #[test]
    fn op_histograms_cover_the_opcode_table() {
        let shared = shared();
        for (op, name) in &OP_SERIES {
            if op.is_empty() {
                continue;
            }
            shared.serve.op_histogram(op).record(1);
            let text = shared.serve.registry.render_text();
            let line = format!("{name}_count 1");
            assert!(text.lines().any(|l| l == line), "no {line} after {op}");
        }
        shared.serve.op_histogram("FROB").record(1);
        shared.serve.op_histogram("").record(1);
        let text = shared.serve.registry.render_text();
        assert!(
            text.lines().any(|l| l == "serve_other_nanos_count 2"),
            "{text}"
        );
    }
}
