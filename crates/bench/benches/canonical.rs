//! Criterion benchmarks of the exact machinery: exhaustive
//! canonicalization cost growth (`n!·2^n`) and pairwise matcher cost on
//! equivalent vs non-equivalent inputs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use facepoint_bench::random_workload;
use facepoint_exact::{exact_npn_canonical, npn_match};
use facepoint_truth::{NpnTransform, TruthTable};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_exhaustive(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_canonical");
    group.sample_size(10);
    for n in [4usize, 5, 6] {
        let fns = random_workload(n, 8, 0xE54);
        group.bench_with_input(BenchmarkId::from_parameter(n), &fns, |b, fns| {
            b.iter(|| {
                for f in fns {
                    black_box(exact_npn_canonical(f));
                }
            })
        });
    }
    group.finish();
}

fn bench_matcher(c: &mut Criterion) {
    let mut group = c.benchmark_group("npn_match");
    let mut rng = StdRng::seed_from_u64(0x3A7C);
    for n in [6usize, 8, 10] {
        let pairs_eq: Vec<(TruthTable, TruthTable)> = (0..8)
            .map(|_| {
                let f = TruthTable::random(n, &mut rng).unwrap();
                let g = NpnTransform::random(n, &mut rng).apply(&f);
                (f, g)
            })
            .collect();
        let pairs_ne: Vec<(TruthTable, TruthTable)> = (0..8)
            .map(|_| {
                (
                    TruthTable::random(n, &mut rng).unwrap(),
                    TruthTable::random(n, &mut rng).unwrap(),
                )
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("equivalent", n), &pairs_eq, |b, pairs| {
            b.iter(|| {
                for (f, g) in pairs {
                    black_box(npn_match(f, g));
                }
            })
        });
        group.bench_with_input(
            BenchmarkId::new("non_equivalent", n),
            &pairs_ne,
            |b, pairs| {
                b.iter(|| {
                    for (f, g) in pairs {
                        black_box(npn_match(f, g));
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_exhaustive, bench_matcher
}
criterion_main!(benches);
