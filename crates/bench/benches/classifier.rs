//! Criterion benchmarks of end-to-end classification throughput:
//! signature sets against each other and against the baselines — the
//! micro-benchmark behind Table III's runtime columns.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use facepoint_bench::random_workload;
use facepoint_core::{Classifier, KeyMode};
use facepoint_exact::baselines::{CanonicalClassifier, Huang13, Petkovska16, Zhou20};
use facepoint_sig::SignatureSet;
use std::hint::black_box;

fn bench_signature_sets(c: &mut Criterion) {
    let mut group = c.benchmark_group("classifier_sets");
    let fns = random_workload(6, 2000, 0xABCD);
    group.throughput(Throughput::Elements(fns.len() as u64));
    for (name, set) in SignatureSet::table2_columns() {
        group.bench_with_input(BenchmarkId::new("set", name), &fns, |b, fns| {
            let classifier = Classifier::new(set);
            b.iter(|| black_box(classifier.classify(fns.clone()).num_classes()))
        });
    }
    group.finish();
}

fn bench_vs_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("classifier_vs_baselines");
    group.sample_size(10);
    let fns = random_workload(6, 1000, 0xBEEF);
    group.throughput(Throughput::Elements(fns.len() as u64));
    group.bench_function("ours_all", |b| {
        let ours = Classifier::new(SignatureSet::all());
        b.iter(|| black_box(ours.classify(fns.clone()).num_classes()))
    });
    group.bench_function("huang13", |b| {
        b.iter(|| black_box(Huang13.classify(&fns).num_classes()))
    });
    group.bench_function("petkovska16", |b| {
        let p = Petkovska16::default();
        b.iter(|| black_box(p.classify(&fns).num_classes()))
    });
    group.bench_function("zhou20", |b| {
        let z = Zhou20::default();
        b.iter(|| black_box(z.classify(&fns).num_classes()))
    });
    group.finish();
}

fn bench_key_modes(c: &mut Criterion) {
    // Ablation: digest keys vs full-vector keys (DESIGN.md §5).
    let mut group = c.benchmark_group("classifier_key_modes");
    let fns = random_workload(8, 1000, 0xF00D);
    group.throughput(Throughput::Elements(fns.len() as u64));
    for (name, mode) in [("digest", KeyMode::Digest), ("full", KeyMode::Full)] {
        group.bench_function(name, |b| {
            let classifier = Classifier::new(SignatureSet::all()).with_key_mode(mode);
            b.iter(|| black_box(classifier.classify(fns.clone()).num_classes()))
        });
    }
    group.finish();
}

fn bench_hierarchical(c: &mut Criterion) {
    // Ablation: flat vs staged (lazy) signature computation. Random
    // workloads separate early (hierarchical wins); transform-closure
    // workloads keep buckets fat (flat wins) — the trade-off documented
    // on `Classifier::classify_hierarchical`.
    let mut group = c.benchmark_group("classifier_hierarchical");
    group.sample_size(10);
    let random = random_workload(8, 1500, 0xD1A1u64);
    let closure: Vec<facepoint_truth::TruthTable> = {
        use facepoint_truth::{NpnTransform, TruthTable};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(0xC105);
        let mut fns = Vec::new();
        for _ in 0..75 {
            let f = TruthTable::random(8, &mut rng).unwrap();
            for _ in 0..20 {
                fns.push(NpnTransform::random(8, &mut rng).apply(&f));
            }
        }
        fns
    };
    for (name, fns) in [("random", &random), ("closure", &closure)] {
        group.bench_with_input(BenchmarkId::new("flat", name), fns, |b, fns| {
            let c = Classifier::new(SignatureSet::all());
            b.iter(|| black_box(c.classify(fns.clone()).num_classes()))
        });
        group.bench_with_input(BenchmarkId::new("staged", name), fns, |b, fns| {
            let c = Classifier::new(SignatureSet::all());
            b.iter(|| black_box(c.classify_hierarchical(fns.clone()).num_classes()))
        });
    }
    group.finish();
}

fn bench_parallel_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("classifier_threads");
    group.sample_size(10);
    let fns = random_workload(9, 2000, 0xCAFE);
    group.throughput(Throughput::Elements(fns.len() as u64));
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            let classifier = Classifier::new(SignatureSet::all()).with_threads(t);
            b.iter(|| black_box(classifier.classify(fns.clone()).num_classes()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_signature_sets,
    bench_vs_baselines,
    bench_key_modes,
    bench_hierarchical,
    bench_parallel_scaling
}
criterion_main!(benches);
