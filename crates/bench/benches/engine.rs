//! Criterion benchmarks of the streaming engine: multi-worker scaling
//! against the one-shot classifier on random and AIG-cut workloads,
//! plus the memo cache on repeat-heavy traffic.
//!
//! The paper's scalability argument is that signature-hash
//! classification parallelizes embarrassingly; this bench puts a number
//! on it (expect near-linear scaling until memory bandwidth wins).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use facepoint_bench::random_workload;
use facepoint_core::Classifier;
use facepoint_engine::{Engine, EngineConfig, PersistConfig, SyncPolicy};
use facepoint_sig::SignatureSet;
use facepoint_truth::TruthTable;
use std::hint::black_box;

fn engine_classes(fns: &[TruthTable], workers: usize, cache_capacity: usize) -> usize {
    let mut engine = Engine::builder()
        .config(EngineConfig {
            workers,
            cache_capacity,
            ..EngineConfig::default()
        })
        .build()
        .unwrap();
    engine.submit_batch(fns.iter().cloned());
    engine.finish().classification.num_classes()
}

fn bench_engine_scaling_random(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_scaling_random");
    group.sample_size(10);
    let fns = random_workload(7, 4000, 0xE16);
    group.throughput(Throughput::Elements(fns.len() as u64));
    group.bench_with_input(BenchmarkId::new("classifier", "1"), &fns, |b, fns| {
        let classifier = Classifier::new(SignatureSet::all());
        b.iter(|| black_box(classifier.classify(fns.clone()).num_classes()))
    });
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("engine", workers), &fns, |b, fns| {
            b.iter(|| black_box(engine_classes(fns, workers, 0)))
        });
    }
    group.finish();
}

fn bench_engine_scaling_cuts(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_scaling_cuts");
    group.sample_size(10);
    let fns = facepoint_aig::cut_workload(6, 4000);
    group.throughput(Throughput::Elements(fns.len() as u64));
    group.bench_with_input(BenchmarkId::new("classifier", "1"), &fns, |b, fns| {
        let classifier = Classifier::new(SignatureSet::all());
        b.iter(|| black_box(classifier.classify(fns.clone()).num_classes()))
    });
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("engine", workers), &fns, |b, fns| {
            b.iter(|| black_box(engine_classes(fns, workers, 0)))
        });
    }
    group.finish();
}

fn bench_journaled_ingest(c: &mut Criterion) {
    // The durability tax: same stream, same config, with the per-shard
    // journal off / on (default barrier policy) / fsync-per-record.
    // The stream is large enough that per-iteration store setup and
    // final checkpoint (64 shard files either way) stay amortized —
    // this measures ingest, not file churn.
    let mut group = c.benchmark_group("engine_journaled_ingest");
    group.sample_size(10);
    let fns = random_workload(7, 8000, 0xD15C);
    group.throughput(Throughput::Elements(fns.len() as u64));
    let variants: [(&str, Option<SyncPolicy>); 3] = [
        ("memory", None),
        ("journal-barrier", Some(SyncPolicy::Barrier)),
        ("journal-always", Some(SyncPolicy::Always)),
    ];
    for (name, sync) in variants {
        group.bench_with_input(BenchmarkId::new(name, 4), &fns, |b, fns| {
            b.iter(|| {
                let persist = sync.map(|sync| {
                    let dir = std::env::temp_dir()
                        .join(format!("facepoint-bench-journal-{}", std::process::id()));
                    let _ = std::fs::remove_dir_all(&dir);
                    PersistConfig {
                        dir,
                        checkpoint_interval: 8192,
                        sync,
                    }
                });
                let dir = persist.as_ref().map(|p| p.dir.clone());
                let mut engine = Engine::builder()
                    .config(EngineConfig {
                        workers: 4,
                        persist,
                        ..EngineConfig::default()
                    })
                    .build()
                    .unwrap();
                engine.submit_batch(fns.iter().cloned());
                let classes = black_box(engine.finish().classification.num_classes());
                if let Some(dir) = dir {
                    let _ = std::fs::remove_dir_all(&dir);
                }
                classes
            })
        });
    }
    group.finish();
}

fn bench_ingest_contention(c: &mut Criterion) {
    // The work-stealing pool under deliberate queue pressure:
    // one-function chunks put a queue operation on every submission,
    // so this measures the ingest path itself (the trajectory bin's
    // contention sweep records the same shape against the retired
    // mutex-queue baseline in BENCH_engine.json).
    let mut group = c.benchmark_group("engine_ingest_contention");
    group.sample_size(10);
    let fns = facepoint_bench::balanced_workload(8, 2048, 0xC0E);
    group.throughput(Throughput::Elements(fns.len() as u64));
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("steal-pool", workers), &fns, |b, fns| {
            b.iter(|| {
                let mut engine = Engine::builder()
                    .config(EngineConfig {
                        workers,
                        chunk_size: 1,
                        deque_capacity: 64,
                        ..EngineConfig::default()
                    })
                    .build()
                    .unwrap();
                engine.submit_batch(fns.iter().cloned());
                black_box(engine.finish().classification.num_classes())
            })
        });
    }
    group.finish();
}

fn bench_memo_cache_on_repeat_traffic(c: &mut Criterion) {
    // Cut streams repeat functions; replaying the same harvest three
    // times models steady-state traffic over a slowly-changing design.
    let mut group = c.benchmark_group("engine_memo_cache");
    group.sample_size(10);
    let harvest = facepoint_aig::cut_workload(6, 2000);
    let mut fns = harvest.clone();
    fns.extend(harvest.iter().cloned());
    fns.extend(harvest.iter().cloned());
    group.throughput(Throughput::Elements(fns.len() as u64));
    for (name, cache) in [("uncached", 0usize), ("cached", 1 << 16)] {
        group.bench_with_input(BenchmarkId::new(name, 4), &fns, |b, fns| {
            b.iter(|| black_box(engine_classes(fns, 4, cache)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_engine_scaling_random,
    bench_engine_scaling_cuts,
    bench_ingest_contention,
    bench_journaled_ingest,
    bench_memo_cache_on_repeat_traffic
}
criterion_main!(benches);
