//! Criterion micro-benchmarks: cost of each signature-vector family as a
//! function of arity.
//!
//! Supports the paper's claim that the classifier needs "only bitwise
//! operations and hash" — the per-function cost is polynomial in `n` and
//! linear in the table size, with OSDV the most expensive family.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use facepoint_bench::{balanced_workload, random_workload};
use facepoint_core::{fnv128, SignatureKernel};
use facepoint_sig::{msv, msv_reference, ocv1, ocv2, oiv, osdv, osv_histogram, SignatureSet};
use std::hint::black_box;

fn bench_signatures(c: &mut Criterion) {
    let mut group = c.benchmark_group("signatures");
    for n in [4usize, 6, 8, 10] {
        let fns = random_workload(n, 64, 0x5EED);
        group.bench_with_input(BenchmarkId::new("ocv1", n), &fns, |b, fns| {
            b.iter(|| {
                for f in fns {
                    black_box(ocv1(f));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("ocv2", n), &fns, |b, fns| {
            b.iter(|| {
                for f in fns {
                    black_box(ocv2(f));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("oiv", n), &fns, |b, fns| {
            b.iter(|| {
                for f in fns {
                    black_box(oiv(f));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("osv", n), &fns, |b, fns| {
            b.iter(|| {
                for f in fns {
                    black_box(osv_histogram(f));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("osdv", n), &fns, |b, fns| {
            b.iter(|| {
                for f in fns {
                    black_box(osdv(f));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("msv_all", n), &fns, |b, fns| {
            b.iter(|| {
                for f in fns {
                    black_box(msv(f, SignatureSet::all()));
                }
            })
        });
    }
    group.finish();
}

/// The acceptance benchmark of the zero-allocation kernel: balanced
/// random tables (worst case — every function runs the dual-polarity
/// path) keyed with `SignatureSet::all()`, kernel vs. the two-pass
/// reference.
fn bench_signature_key(c: &mut Criterion) {
    let mut group = c.benchmark_group("signature_key_balanced");
    let set = SignatureSet::all();
    for n in [6usize, 8, 10] {
        let fns = balanced_workload(n, 64, 0xBA1A);
        group.bench_with_input(BenchmarkId::new("kernel", n), &fns, |b, fns| {
            let mut kernel = SignatureKernel::new(set);
            b.iter(|| {
                for f in fns {
                    black_box(kernel.key(f));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("reference", n), &fns, |b, fns| {
            b.iter(|| {
                for f in fns {
                    black_box(fnv128(msv_reference(f, set).as_words()));
                }
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_signatures, bench_signature_key
}
criterion_main!(benches);
