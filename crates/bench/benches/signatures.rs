//! Criterion micro-benchmarks: cost of each signature-vector family as a
//! function of arity.
//!
//! Supports the paper's claim that the classifier needs "only bitwise
//! operations and hash" — the per-function cost is polynomial in `n` and
//! linear in the table size, with OSDV the most expensive family.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use facepoint_bench::random_workload;
use facepoint_sig::{msv, ocv1, ocv2, oiv, osdv, osv_histogram, SignatureSet};
use std::hint::black_box;

fn bench_signatures(c: &mut Criterion) {
    let mut group = c.benchmark_group("signatures");
    for n in [4usize, 6, 8, 10] {
        let fns = random_workload(n, 64, 0x5EED);
        group.bench_with_input(BenchmarkId::new("ocv1", n), &fns, |b, fns| {
            b.iter(|| {
                for f in fns {
                    black_box(ocv1(f));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("ocv2", n), &fns, |b, fns| {
            b.iter(|| {
                for f in fns {
                    black_box(ocv2(f));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("oiv", n), &fns, |b, fns| {
            b.iter(|| {
                for f in fns {
                    black_box(oiv(f));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("osv", n), &fns, |b, fns| {
            b.iter(|| {
                for f in fns {
                    black_box(osv_histogram(f));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("osdv", n), &fns, |b, fns| {
            b.iter(|| {
                for f in fns {
                    black_box(osdv(f));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("msv_all", n), &fns, |b, fns| {
            b.iter(|| {
                for f in fns {
                    black_box(msv(f, SignatureSet::all()));
                }
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_signatures
}
criterion_main!(benches);
