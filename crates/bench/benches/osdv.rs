//! Criterion ablation: the two OSDV engines (grouped pairwise counting
//! vs Walsh–Hadamard autocorrelation) across arities — the design choice
//! documented in DESIGN.md §5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use facepoint_bench::random_workload;
use facepoint_sig::{osdv_with, MintermFilter, OsdvEngine};
use std::hint::black_box;

fn bench_osdv_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("osdv_engines");
    for n in [6usize, 8, 10, 12] {
        let fns = random_workload(n, 16, 0x0D5);
        for (name, engine) in [
            ("pairwise", OsdvEngine::Pairwise),
            ("wht", OsdvEngine::Wht),
            ("auto", OsdvEngine::Auto),
        ] {
            group.bench_with_input(BenchmarkId::new(name, n), &fns, |b, fns| {
                b.iter(|| {
                    for f in fns {
                        black_box(osdv_with(f, MintermFilter::All, engine));
                    }
                })
            });
        }
    }
    group.finish();
}

fn bench_sensitivity_profiles(c: &mut Criterion) {
    // Ablation: bit-sliced carry-save accumulation vs the naive
    // per-minterm walk.
    use facepoint_sig::SensitivityProfile;
    let mut group = c.benchmark_group("sensitivity_profile");
    for n in [6usize, 8, 10, 12] {
        let fns = random_workload(n, 16, 0x5E15);
        group.bench_with_input(BenchmarkId::new("bit_sliced", n), &fns, |b, fns| {
            b.iter(|| {
                for f in fns {
                    black_box(SensitivityProfile::compute(f));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &fns, |b, fns| {
            b.iter(|| {
                for f in fns {
                    black_box(SensitivityProfile::compute_naive(f));
                }
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_osdv_engines, bench_sensitivity_profiles
}
criterion_main!(benches);
