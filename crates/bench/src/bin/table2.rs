//! Regenerates **Table II** of the paper: number of NPN classes found by
//! each signature-vector combination, per input arity, on the
//! cut-enumeration workload.
//!
//! ```text
//! cargo run --release -p facepoint-bench --bin table2 -- \
//!     [--min-n 4] [--max-n 8] [--limit 20000]
//! ```
//!
//! Columns mirror the paper: exact class count first, then the eight
//! signature configurations. Our absolute counts differ from the paper's
//! (different benchmark circuits — see DESIGN.md §3), but the column
//! *ordering* and the arity where each configuration stops being exact
//! reproduce.
#![forbid(unsafe_code)]

use facepoint_aig::cut_workload;
use facepoint_bench::{arg_num, print_row, timed};
use facepoint_core::Classifier;
use facepoint_exact::exact_classify;
use facepoint_sig::SignatureSet;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let min_n: usize = arg_num(&args, "--min-n", 4);
    let max_n: usize = arg_num(&args, "--max-n", 8);
    let limit: usize = arg_num(&args, "--limit", 20_000);

    println!("Table II: classification by different signature vectors");
    println!("workload: synthetic-EPFL cut functions, dedup'd, ≤{limit} per n");
    println!();
    let columns = SignatureSet::table2_columns();
    let mut header: Vec<String> = vec!["n".into(), "#Func".into(), "#Exact".into()];
    header.extend(columns.iter().map(|(name, _)| name.to_string()));
    let widths: Vec<usize> = header.iter().map(|h| h.len().max(8)).collect();
    print_row(&header, &widths);

    for n in min_n..=max_n {
        let (fns, t_gen) = timed(|| cut_workload(n, limit));
        let (exact, _t_exact) = timed(|| exact_classify(&fns).num_classes());
        let mut cells: Vec<String> = vec![n.to_string(), fns.len().to_string(), exact.to_string()];
        for (_, set) in columns {
            let count = Classifier::new(set).classify(fns.clone()).num_classes();
            cells.push(count.to_string());
        }
        print_row(&cells, &widths);
        eprintln!(
            "  [n={n}: {} functions extracted in {}s]",
            fns.len(),
            t_gen.as_secs_f64()
        );
    }
    println!();
    println!("Reading: every column is a lower bound of #Exact (signatures can only");
    println!("merge classes). The paper's Table II shows the same ordering:");
    println!("OIV < OCV1 < OSV < OIV+OSV ≤ OCV1+OSV ≤ OCV1+OCV2+OSV ≤ OIV+OSV+OSDV ≤ All,");
    println!("with exactness up to n = 7 for the sensitivity-based combinations.");
}
