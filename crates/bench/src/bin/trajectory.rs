//! Writes the machine-readable performance trajectory:
//! `BENCH_signatures.json` (single-thread `signature_key` throughput,
//! kernel vs. two-pass reference, on balanced tables for n = 6..10)
//! and `BENCH_engine.json` (end-to-end engine throughput, in-memory
//! **and** with the durable journal on, so the durability tax is a
//! recorded number, not a guess), both at the repo root by default.
//!
//! ```text
//! cargo run --release -p facepoint-bench --bin trajectory [-- --out DIR] [--quick]
//! ```
//!
//! `--quick` shrinks the sweep (n = 6..8, shorter budgets) for the CI
//! smoke job; `check_bench` validates the emitted schema and compares
//! against the committed baselines.
//!
//! The JSON is hand-serialized (no serde in the offline build) and
//! append-friendly: each run produces one self-contained file that
//! future PRs diff against to catch regressions.

use facepoint_bench::{arg_value, balanced_workload, random_workload};
use facepoint_core::{fnv128, SignatureKernel};
use facepoint_engine::{Engine, EngineConfig, PersistConfig};
use facepoint_sig::{msv_reference, SignatureSet};
use facepoint_truth::TruthTable;
use std::time::{Duration, Instant};

/// Repeats `work` over `fns` until at least `budget` has elapsed and
/// returns functions/second.
fn throughput(fns: &[TruthTable], budget: Duration, mut work: impl FnMut(&TruthTable)) -> f64 {
    // Warm-up pass (grows scratch buffers, faults in the tables).
    for f in fns {
        work(f);
    }
    let start = Instant::now();
    let mut done = 0u64;
    while start.elapsed() < budget {
        for f in fns {
            work(f);
        }
        done += fns.len() as u64;
    }
    done as f64 / start.elapsed().as_secs_f64()
}

fn unix_time() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// One engine pass over `fns`, optionally journaling into `persist`;
/// returns (functions/second, classes).
fn engine_pass(
    fns: &[TruthTable],
    set: SignatureSet,
    persist: Option<PersistConfig>,
) -> (f64, usize) {
    let mut engine = Engine::with_config(EngineConfig {
        set,
        persist,
        ..EngineConfig::default()
    });
    engine.submit_batch(fns.iter().cloned());
    let report = engine.finish();
    (
        report.stats.throughput(),
        report.classification.num_classes(),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_dir = arg_value(&args, "--out").unwrap_or_else(|| ".".to_string());
    std::fs::create_dir_all(&out_dir).expect("create --out directory");
    let quick = args.iter().any(|a| a == "--quick");
    let budget = Duration::from_millis(if quick { 150 } else { 600 });
    let max_n = if quick { 8 } else { 10 };
    let set = SignatureSet::all();

    // --- signature_key: kernel vs reference, balanced tables ---------
    let mut sig_rows = String::new();
    for n in 6..=max_n {
        let count = (2048 >> (n - 6)).max(32);
        let fns = balanced_workload(n, count, 0x5EED ^ n as u64);
        let mut kernel = SignatureKernel::new(set);
        let kernel_fps = throughput(&fns, budget, |f| {
            std::hint::black_box(kernel.key(f));
        });
        let reference_fps = throughput(&fns, budget, |f| {
            std::hint::black_box(fnv128(msv_reference(f, set).as_words()));
        });
        let speedup = kernel_fps / reference_fps;
        println!(
            "signatures n={n}: kernel {kernel_fps:.0} fn/s, \
             reference {reference_fps:.0} fn/s, speedup {speedup:.2}x"
        );
        if !sig_rows.is_empty() {
            sig_rows.push_str(",\n");
        }
        sig_rows.push_str(&format!(
            "    {{\"n\": {n}, \"functions\": {count}, \
             \"kernel_fns_per_sec\": {kernel_fps:.1}, \
             \"reference_fns_per_sec\": {reference_fps:.1}, \
             \"speedup\": {speedup:.3}}}"
        ));
    }
    let sig_json = format!(
        "{{\n  \"bench\": \"signature_key\",\n  \"set\": \"{set}\",\n  \
         \"workload\": \"balanced random tables, single thread\",\n  \
         \"baseline\": \"reference = two-pass msv_reference + fnv128, \
         the pre-kernel signature_key algorithm\",\n  \
         \"unix_time\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        unix_time(),
        sig_rows
    );
    let sig_path = format!("{out_dir}/BENCH_signatures.json");
    std::fs::write(&sig_path, sig_json).expect("write BENCH_signatures.json");
    println!("wrote {sig_path}");

    // --- engine: end-to-end streaming throughput, in-memory vs
    // --- journaled (default sync policy: fsync at epoch barriers) ----
    let workers = EngineConfig::default().resolved_workers();
    let mut eng_rows = String::new();
    for n in 6..=max_n {
        // Full-size streams even under --quick: the journal ratio is a
        // steady-state figure, and short streams overweight the fixed
        // costs (shard-file creation, final checkpoint). --quick saves
        // its time by dropping n = 9..10 instead.
        let count = (16384 >> (n - 6)).max(512);
        let fns = random_workload(n, count, 0xE61E ^ n as u64);
        let (mem_fps, classes) = engine_pass(&fns, set, None);
        let journal_dir =
            std::env::temp_dir().join(format!("facepoint-trajectory-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&journal_dir);
        let (journal_fps, journal_classes) =
            engine_pass(&fns, set, Some(PersistConfig::new(&journal_dir)));
        let _ = std::fs::remove_dir_all(&journal_dir);
        assert_eq!(classes, journal_classes, "journaling changed the partition");
        let ratio = journal_fps / mem_fps;
        println!(
            "engine n={n}: {mem_fps:.0} fn/s in-memory, {journal_fps:.0} fn/s \
             journaled ({:.0}% of in-memory) over {count} functions ({workers} workers)",
            ratio * 100.0
        );
        if !eng_rows.is_empty() {
            eng_rows.push_str(",\n");
        }
        eng_rows.push_str(&format!(
            "    {{\"n\": {n}, \"functions\": {count}, \"workers\": {workers}, \
             \"fns_per_sec\": {mem_fps:.1}, \"classes\": {classes}, \
             \"journaled_fns_per_sec\": {journal_fps:.1}, \
             \"journal_ratio\": {ratio:.3}}}"
        ));
    }
    let eng_json = format!(
        "{{\n  \"bench\": \"engine\",\n  \"set\": \"{set}\",\n  \
         \"workload\": \"distinct random tables, default engine config; \
         journaled = durable store on, default sync policy (fsync at \
         epoch barriers)\",\n  \
         \"unix_time\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        unix_time(),
        eng_rows
    );
    let eng_path = format!("{out_dir}/BENCH_engine.json");
    std::fs::write(&eng_path, eng_json).expect("write BENCH_engine.json");
    println!("wrote {eng_path}");
}
