//! Writes the machine-readable performance trajectory:
//! `BENCH_signatures.json` (single-thread `signature_key` throughput,
//! kernel vs. two-pass reference, on balanced tables for n = 6..10)
//! and `BENCH_engine.json` (end-to-end engine throughput), both at the
//! repo root by default.
//!
//! ```text
//! cargo run --release -p facepoint-bench --bin trajectory [-- --out DIR]
//! ```
//!
//! The JSON is hand-serialized (no serde in the offline build) and
//! append-friendly: each run produces one self-contained file that
//! future PRs diff against to catch regressions.

use facepoint_bench::{arg_value, balanced_workload, random_workload};
use facepoint_core::{fnv128, SignatureKernel};
use facepoint_engine::{Engine, EngineConfig};
use facepoint_sig::{msv_reference, SignatureSet};
use facepoint_truth::TruthTable;
use std::time::{Duration, Instant};

/// Repeats `work` over `fns` until at least `budget` has elapsed and
/// returns functions/second.
fn throughput(fns: &[TruthTable], budget: Duration, mut work: impl FnMut(&TruthTable)) -> f64 {
    // Warm-up pass (grows scratch buffers, faults in the tables).
    for f in fns {
        work(f);
    }
    let start = Instant::now();
    let mut done = 0u64;
    while start.elapsed() < budget {
        for f in fns {
            work(f);
        }
        done += fns.len() as u64;
    }
    done as f64 / start.elapsed().as_secs_f64()
}

fn unix_time() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_dir = arg_value(&args, "--out").unwrap_or_else(|| ".".to_string());
    let budget = Duration::from_millis(600);
    let set = SignatureSet::all();

    // --- signature_key: kernel vs reference, balanced tables ---------
    let mut sig_rows = String::new();
    for n in 6..=10usize {
        let count = (2048 >> (n - 6)).max(32);
        let fns = balanced_workload(n, count, 0x5EED ^ n as u64);
        let mut kernel = SignatureKernel::new(set);
        let kernel_fps = throughput(&fns, budget, |f| {
            std::hint::black_box(kernel.key(f));
        });
        let reference_fps = throughput(&fns, budget, |f| {
            std::hint::black_box(fnv128(msv_reference(f, set).as_words()));
        });
        let speedup = kernel_fps / reference_fps;
        println!(
            "signatures n={n}: kernel {kernel_fps:.0} fn/s, \
             reference {reference_fps:.0} fn/s, speedup {speedup:.2}x"
        );
        if !sig_rows.is_empty() {
            sig_rows.push_str(",\n");
        }
        sig_rows.push_str(&format!(
            "    {{\"n\": {n}, \"functions\": {count}, \
             \"kernel_fns_per_sec\": {kernel_fps:.1}, \
             \"reference_fns_per_sec\": {reference_fps:.1}, \
             \"speedup\": {speedup:.3}}}"
        ));
    }
    let sig_json = format!(
        "{{\n  \"bench\": \"signature_key\",\n  \"set\": \"{set}\",\n  \
         \"workload\": \"balanced random tables, single thread\",\n  \
         \"baseline\": \"reference = two-pass msv_reference + fnv128, \
         the pre-kernel signature_key algorithm\",\n  \
         \"unix_time\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        unix_time(),
        sig_rows
    );
    let sig_path = format!("{out_dir}/BENCH_signatures.json");
    std::fs::write(&sig_path, sig_json).expect("write BENCH_signatures.json");
    println!("wrote {sig_path}");

    // --- engine: end-to-end streaming throughput ---------------------
    let mut eng_rows = String::new();
    for n in 6..=10usize {
        let count = (16384 >> (n - 6)).max(512);
        let fns = random_workload(n, count, 0xE61E ^ n as u64);
        let mut engine = Engine::with_config(EngineConfig {
            set,
            ..EngineConfig::default()
        });
        let workers = engine.config().resolved_workers();
        engine.submit_batch(fns.iter().cloned());
        let report = engine.finish();
        let fps = report.stats.throughput();
        println!("engine n={n}: {fps:.0} fn/s over {count} functions ({workers} workers)");
        if !eng_rows.is_empty() {
            eng_rows.push_str(",\n");
        }
        eng_rows.push_str(&format!(
            "    {{\"n\": {n}, \"functions\": {count}, \"workers\": {workers}, \
             \"fns_per_sec\": {fps:.1}, \"classes\": {}}}",
            report.classification.num_classes()
        ));
    }
    let eng_json = format!(
        "{{\n  \"bench\": \"engine\",\n  \"set\": \"{set}\",\n  \
         \"workload\": \"distinct random tables, default engine config\",\n  \
         \"unix_time\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        unix_time(),
        eng_rows
    );
    let eng_path = format!("{out_dir}/BENCH_engine.json");
    std::fs::write(&eng_path, eng_json).expect("write BENCH_engine.json");
    println!("wrote {eng_path}");
}
