//! Writes the machine-readable performance trajectory:
//! `BENCH_signatures.json` (single-thread `signature_key` throughput,
//! kernel vs. two-pass reference plus the bit-sliced `key_batch` lane
//! pass, on balanced tables for n = 6..11) and
//! `BENCH_engine.json` (end-to-end engine throughput, in-memory
//! **and** with the durable journal on, so the durability tax is a
//! recorded number, not a guess), both at the repo root by default.
//!
//! ```text
//! cargo run --release -p facepoint-bench --bin trajectory [-- --out DIR] [--quick]
//! ```
//!
//! `--quick` shrinks the sweep (n = 6..8, shorter budgets) for the CI
//! smoke job; `check_bench` validates the emitted schema and compares
//! against the committed baselines.
//!
//! The JSON is hand-serialized (no serde in the offline build) and
//! append-friendly: each run produces one self-contained file that
//! future PRs diff against to catch regressions.
#![forbid(unsafe_code)]

use facepoint_bench::{arg_value, balanced_workload, random_workload};
use facepoint_core::{fnv128, SignatureKernel};
use facepoint_engine::{Engine, EngineConfig, PersistConfig, Resolution};
use facepoint_sig::{msv_reference, SignatureSet};
use facepoint_truth::TruthTable;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Repeats `work` over `fns` until at least `budget` has elapsed and
/// returns functions/second.
fn throughput(fns: &[TruthTable], budget: Duration, mut work: impl FnMut(&TruthTable)) -> f64 {
    // Warm-up pass (grows scratch buffers, faults in the tables).
    for f in fns {
        work(f);
    }
    let start = Instant::now();
    let mut done = 0u64;
    while start.elapsed() < budget {
        for f in fns {
            work(f);
        }
        done += fns.len() as u64;
    }
    done as f64 / start.elapsed().as_secs_f64()
}

/// Repeats whole-slice `key_batch` passes over `fns` until at least
/// `budget` has elapsed and returns functions/second — the bit-sliced
/// lane counterpart of [`throughput`]'s per-function loop.
fn batch_throughput(fns: &[TruthTable], budget: Duration, kernel: &mut SignatureKernel) -> f64 {
    let mut keys = Vec::new();
    kernel.key_batch(fns, &mut keys); // warm-up (lane buffers, tables)
    let start = Instant::now();
    let mut done = 0u64;
    while start.elapsed() < budget {
        keys.clear();
        kernel.key_batch(fns, &mut keys);
        std::hint::black_box(&keys);
        done += fns.len() as u64;
    }
    done as f64 / start.elapsed().as_secs_f64()
}

fn unix_time() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// One engine pass over `fns`, optionally journaling into `persist`,
/// at the requested resolution tier; returns (functions/second,
/// classes, chunk-latency [p50, p90, p99, max] in nanoseconds from
/// the engine's own telemetry).
fn engine_pass(
    fns: &[TruthTable],
    set: SignatureSet,
    persist: Option<PersistConfig>,
    resolution: Resolution,
) -> (f64, usize, [u64; 4]) {
    let mut engine = Engine::builder()
        .config(
            EngineConfig::builder()
                .set(set)
                .persist(persist)
                .resolution(resolution)
                .build(),
        )
        .build()
        .unwrap();
    // The registry (and this histogram handle) outlive `finish`, so
    // the latency distribution survives the engine teardown.
    let chunk_latency = engine.telemetry().histogram("engine_chunk_classify_nanos");
    engine.submit_batch(fns.iter().cloned());
    let report = engine.finish();
    let lat = chunk_latency.snapshot();
    (
        report.stats.throughput(),
        report.classification.num_classes(),
        [lat.p50(), lat.p90(), lat.p99(), lat.max],
    )
}

/// Chunk size of the contention sweep: small on purpose. The sweep
/// measures the *ingest queue*, not the kernel — fine-grained chunks
/// put a queue operation every few functions, which is exactly where
/// the old single `Mutex<Receiver>` serialized the workers and where
/// per-worker deques pull ahead.
const CONTENTION_CHUNK: usize = 1;

/// One ingest pass through the work-stealing engine (construction,
/// submission and finish all inside the measured window, matching the
/// mutex baseline below); returns (functions/second, classes).
fn steal_pass(fns: &[TruthTable], set: SignatureSet, workers: usize) -> (f64, usize) {
    let start = Instant::now();
    let mut engine = Engine::builder()
        .config(EngineConfig {
            set,
            workers,
            chunk_size: CONTENTION_CHUNK,
            // Deep deques and big steal batches: at one-function chunks the
            // per-chunk bounds are per-item, so the defaults (sized for
            // 256-function chunks) would throttle the producer and migrate
            // single functions; scaling both by the chunk shrinkage keeps
            // the pool in its intended operating regime. Census-only
            // streaming is how a production-scale census runs (and what
            // the retired architecture could not do at all — its WorkerLog
            // grew without bound).
            deque_capacity: 128,
            steal_batch: 16,
            track_labels: false,
            ..EngineConfig::default()
        })
        .build()
        .unwrap();
    engine.submit_batch(fns.iter().cloned());
    let report = engine.finish();
    (
        fns.len() as f64 / start.elapsed().as_secs_f64(),
        report.stats.num_classes,
    )
}

/// The pre-stealing ingest path, replicated faithfully for the
/// baseline column: chunks flow through one bounded `sync_channel`
/// whose `Receiver` sits behind a `Mutex` (every pop serializes all
/// workers on that one lock), workers key into per-shard maps and
/// accumulate per-worker `(seq, key)` logs that are only merged at the
/// end — the engine's exact architecture before the work-stealing
/// pool; returns (functions/second, classes).
fn mutex_queue_pass(fns: &[TruthTable], set: SignatureSet, workers: usize) -> (f64, usize) {
    use std::sync::atomic::{AtomicU64, Ordering};
    /// One store shard exactly as the engine keeps it: representative
    /// table, its submission number, member count.
    type Shard = Mutex<HashMap<u128, (TruthTable, u64, usize)>>;
    let start = Instant::now();
    // The old engine's queue: 32 chunks, whatever the chunk size.
    let (tx, rx) = std::sync::mpsc::sync_channel::<Vec<(u64, TruthTable)>>(32);
    let rx = Arc::new(Mutex::new(rx));
    let store: Arc<Vec<Shard>> = Arc::new((0..64).map(|_| Mutex::new(HashMap::new())).collect());
    let processed = Arc::new(AtomicU64::new(0));
    let cache_misses = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..workers)
        .map(|_| {
            let rx = Arc::clone(&rx);
            let store = Arc::clone(&store);
            let processed = Arc::clone(&processed);
            let cache_misses = Arc::clone(&cache_misses);
            std::thread::spawn(move || {
                let mut kernel = SignatureKernel::new(set);
                let mut log: Vec<(u64, u128)> = Vec::new();
                loop {
                    let job = match rx.lock().unwrap().recv() {
                        Ok(job) => job,
                        Err(_) => return log,
                    };
                    let n = job.len() as u64;
                    for (seq, table) in job {
                        // The disabled memo cache still counted misses.
                        cache_misses.fetch_add(1, Ordering::Relaxed);
                        let key = kernel.key(&table);
                        let mut shard = store[(key >> 122) as usize].lock().unwrap();
                        match shard.entry(key) {
                            std::collections::hash_map::Entry::Occupied(mut e) => {
                                let entry = e.get_mut();
                                entry.2 += 1;
                                if seq < entry.1 {
                                    entry.0 = table.clone();
                                    entry.1 = seq;
                                }
                            }
                            std::collections::hash_map::Entry::Vacant(v) => {
                                v.insert((table.clone(), seq, 1));
                            }
                        }
                        drop(shard);
                        log.push((seq, key));
                    }
                    // Chunk-granular progress, as the old engine had.
                    processed.fetch_add(n, Ordering::AcqRel);
                }
            })
        })
        .collect();
    let mut seq = 0u64;
    for chunk in fns.chunks(CONTENTION_CHUNK) {
        let entries: Vec<(u64, TruthTable)> = chunk
            .iter()
            .map(|t| {
                let s = seq;
                seq += 1;
                (s, t.clone())
            })
            .collect();
        tx.send(entries).expect("baseline workers hung up");
    }
    drop(tx);
    let mut keyed = 0usize;
    for h in handles {
        keyed += h.join().expect("baseline worker panicked").len();
    }
    assert_eq!(keyed, fns.len(), "baseline lost work");
    assert_eq!(processed.load(Ordering::Acquire), fns.len() as u64);
    let classes = store.iter().map(|s| s.lock().unwrap().len()).sum();
    (fns.len() as f64 / start.elapsed().as_secs_f64(), classes)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_dir = arg_value(&args, "--out").unwrap_or_else(|| ".".to_string());
    std::fs::create_dir_all(&out_dir).expect("create --out directory");
    let quick = args.iter().any(|a| a == "--quick");
    let budget = Duration::from_millis(if quick { 150 } else { 600 });
    let max_n = if quick { 8 } else { 11 };
    let set = SignatureSet::all();

    // --- signature_key: kernel vs reference, balanced tables ---------
    let mut sig_rows = String::new();
    for n in 6..=max_n {
        let count = (2048 >> (n - 6)).max(32);
        let fns = balanced_workload(n, count, 0x5EED ^ n as u64);
        let mut kernel = SignatureKernel::new(set);
        let kernel_fps = throughput(&fns, budget, |f| {
            std::hint::black_box(kernel.key(f));
        });
        let batch_fps = batch_throughput(&fns, budget, &mut kernel);
        let reference_fps = throughput(&fns, budget, |f| {
            std::hint::black_box(fnv128(msv_reference(f, set).as_words()));
        });
        let speedup = kernel_fps / reference_fps;
        let batch_speedup = batch_fps / reference_fps;
        println!(
            "signatures n={n}: kernel {kernel_fps:.0} fn/s, \
             batch {batch_fps:.0} fn/s, \
             reference {reference_fps:.0} fn/s, \
             speedup {speedup:.2}x, batch speedup {batch_speedup:.2}x"
        );
        if !sig_rows.is_empty() {
            sig_rows.push_str(",\n");
        }
        sig_rows.push_str(&format!(
            "    {{\"n\": {n}, \"functions\": {count}, \
             \"kernel_fns_per_sec\": {kernel_fps:.1}, \
             \"batch_fns_per_sec\": {batch_fps:.1}, \
             \"reference_fns_per_sec\": {reference_fps:.1}, \
             \"speedup\": {speedup:.3}, \
             \"batch_speedup\": {batch_speedup:.3}}}"
        ));
    }
    let sig_json = format!(
        "{{\n  \"bench\": \"signature_key\",\n  \"set\": \"{set}\",\n  \
         \"workload\": \"balanced random tables, single thread\",\n  \
         \"baseline\": \"reference = two-pass msv_reference + fnv128, \
         the pre-kernel signature_key algorithm; batch = key_batch \
         bit-sliced lane passes over the same tables\",\n  \
         \"lane_width\": {},\n  \
         \"unix_time\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        facepoint_sig::LANE_WIDTH,
        unix_time(),
        sig_rows
    );
    let sig_path = format!("{out_dir}/BENCH_signatures.json");
    std::fs::write(&sig_path, sig_json).expect("write BENCH_signatures.json");
    println!("wrote {sig_path}");

    // --- engine: end-to-end streaming throughput, in-memory vs
    // --- journaled (default sync policy: fsync at epoch barriers) ----
    let workers = EngineConfig::default().resolved_workers();
    let mut eng_rows = String::new();
    for n in 6..=max_n {
        // Full-size streams even under --quick: the journal ratio is a
        // steady-state figure, and short streams overweight the fixed
        // costs (shard-file creation, final checkpoint). --quick saves
        // its time by dropping n = 9..10 instead.
        let count = (16384 >> (n - 6)).max(512);
        let fns = random_workload(n, count, 0xE61E ^ n as u64);
        let (mem_fps, classes, [p50, p90, p99, max]) =
            engine_pass(&fns, set, None, Resolution::Digest);
        let journal_dir =
            std::env::temp_dir().join(format!("facepoint-trajectory-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&journal_dir);
        let (journal_fps, journal_classes, _) = engine_pass(
            &fns,
            set,
            Some(PersistConfig::new(&journal_dir)),
            Resolution::Digest,
        );
        let _ = std::fs::remove_dir_all(&journal_dir);
        assert_eq!(classes, journal_classes, "journaling changed the partition");
        let ratio = journal_fps / mem_fps;
        println!(
            "engine n={n}: {mem_fps:.0} fn/s in-memory, {journal_fps:.0} fn/s \
             journaled ({:.0}% of in-memory) over {count} functions ({workers} workers); \
             chunk latency p50 {p50} / p99 {p99} ns",
            ratio * 100.0
        );
        // The certified-tier tax, measured once at the acceptance
        // arity: same workload, same config, resolution certified —
        // every signature bucket resolved to a proved class. Digest
        // rows run every n; one certified column at n = 8 is the
        // ratio check_bench floors.
        let mut certified_cells = String::new();
        if n == 8 {
            let (cert_fps, cert_classes, _) = engine_pass(&fns, set, None, Resolution::Certified);
            assert!(
                cert_classes >= classes,
                "certified resolution merged digest buckets"
            );
            let cert_ratio = cert_fps / mem_fps;
            println!(
                "engine n=8 certified: {cert_fps:.0} fn/s ({:.0}% of digest), \
                 {cert_classes} proved classes",
                cert_ratio * 100.0
            );
            certified_cells = format!(
                ", \"certified_fns_per_sec\": {cert_fps:.1}, \
                 \"certified_classes\": {cert_classes}, \
                 \"certified_ratio\": {cert_ratio:.3}"
            );
        }
        if !eng_rows.is_empty() {
            eng_rows.push_str(",\n");
        }
        eng_rows.push_str(&format!(
            "    {{\"n\": {n}, \"functions\": {count}, \"workers\": {workers}, \
             \"fns_per_sec\": {mem_fps:.1}, \"classes\": {classes}, \
             \"journaled_fns_per_sec\": {journal_fps:.1}, \
             \"journal_ratio\": {ratio:.3}, \
             \"chunk_p50_nanos\": {p50}, \"chunk_p90_nanos\": {p90}, \
             \"chunk_p99_nanos\": {p99}, \"chunk_max_nanos\": {max}{certified_cells}}}"
        ));
    }
    // --- contention sweep: the work-stealing pool vs the retired
    // --- mutex-queue ingest path, 1/2/4/8 workers, fine chunks -------
    let contention_count = if quick { 2048 } else { 8192 };
    // Interleaved best-of-N: machine-wide throughput drift (shared
    // runners, thermal throttling) swamps a single pass, so each
    // implementation's figure is the best of `reps` passes taken
    // alternately — drift hits both columns alike.
    let contention_reps = if quick { 2 } else { 5 };
    let contention_set = set;
    let contention_fns = balanced_workload(8, contention_count, 0xC0E);
    let mut con_rows = String::new();
    for workers in [1usize, 2, 4, 8] {
        let mut steal_fps = 0f64;
        let mut mutex_fps = 0f64;
        let mut steal_classes = 0usize;
        let mut mutex_classes = 0usize;
        for _ in 0..contention_reps {
            let (s, sc) = steal_pass(&contention_fns, contention_set, workers);
            let (m, mc) = mutex_queue_pass(&contention_fns, contention_set, workers);
            steal_fps = steal_fps.max(s);
            mutex_fps = mutex_fps.max(m);
            steal_classes = sc;
            mutex_classes = mc;
        }
        assert_eq!(
            steal_classes, mutex_classes,
            "queue implementations disagree on the partition"
        );
        let speedup = steal_fps / mutex_fps;
        println!(
            "contention n=8 workers={workers}: stealing {steal_fps:.0} fn/s, \
             mutex queue {mutex_fps:.0} fn/s, speedup {speedup:.2}x"
        );
        if !con_rows.is_empty() {
            con_rows.push_str(",\n");
        }
        con_rows.push_str(&format!(
            "      {{\"workers\": {workers}, \"fns_per_sec\": {steal_fps:.1}, \
             \"mutex_fns_per_sec\": {mutex_fps:.1}, \
             \"queue_speedup\": {speedup:.3}}}"
        ));
    }
    let eng_json = format!(
        "{{\n  \"bench\": \"engine\",\n  \"set\": \"{set}\",\n  \
         \"workload\": \"distinct random tables, default engine config; \
         journaled = durable store on, default sync policy (fsync at \
         epoch barriers); certified_* on the n = 8 row = the same \
         workload at resolution certified (every bucket proved)\",\n  \
         \"unix_time\": {},\n  \"results\": [\n{}\n  ],\n  \
         \"contention\": {{\n    \"n\": 8,\n    \
         \"functions\": {contention_count},\n    \
         \"chunk_size\": {CONTENTION_CHUNK},\n    \
         \"workload\": \"balanced random tables, chunk_size \
         {CONTENTION_CHUNK} so the ingest queue (not the kernel) is \
         the measured object; stealing = census-only streaming, deque \
         capacity 128, steal batch 16; mutex = the retired single \
         Mutex<Receiver> chunk queue, faithfully replicated; best of \
         {contention_reps} interleaved passes per cell; on a \
         single-hardware-thread runner the achievable speedup is \
         bounded by the kernel ceiling (queue contention needs \
         cores)\",\n    \
         \"results\": [\n{}\n    ]\n  }}\n}}\n",
        unix_time(),
        eng_rows,
        con_rows
    );
    let eng_path = format!("{out_dir}/BENCH_engine.json");
    std::fs::write(&eng_path, eng_json).expect("write BENCH_engine.json");
    println!("wrote {eng_path}");
}
