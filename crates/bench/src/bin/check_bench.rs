//! Validates the `BENCH_*.json` trajectory files and gates throughput
//! regressions — the teeth of the CI `bench-trajectory` job.
//!
//! ```text
//! cargo run --release -p facepoint-bench --bin check_bench -- \
//!     --dir CANDIDATE_DIR [--baseline BASELINE_DIR] \
//!     [--max-regress 0.25] [--min-journal-ratio 0.6] \
//!     [--min-queue-speedup 1.0] [--min-sig-speedup 2.3] \
//!     [--min-certified-ratio 0.25] \
//!     [--analysis-report PATH [--analysis-only]]
//! ```
//!
//! * schema: both files must parse, carry the expected fields, and
//!   every throughput must be a positive number;
//! * batch lanes: `BENCH_signatures.json` must record the bit-sliced
//!   lane width (`lane_width`, currently 64) and per-row
//!   `batch_fns_per_sec` / `batch_speedup`; every row at n ≥ 9 must
//!   meet `--min-sig-speedup` (default 2.3 — the tentpole acceptance
//!   floor for `key_batch` over the two-pass reference; pass `0` to
//!   validate schema only, as the quick CI sweep stops at n = 8);
//! * durability tax: every engine row must record `journal_ratio`
//!   (journaled / in-memory ingest throughput), and the n = 8 row must
//!   meet `--min-journal-ratio` (default 0.6 — the repo's acceptance
//!   floor);
//! * certified tax: the n = 8 engine row must record
//!   `certified_fns_per_sec`, `certified_classes` and
//!   `certified_ratio` (certified / digest ingest throughput over the
//!   same workload), and the ratio must meet `--min-certified-ratio`
//!   (default 0.25 — the exact-resolution acceptance floor; pass `0`
//!   to validate schema only);
//! * contention sweep: `BENCH_engine.json` must carry the `contention`
//!   object (work-stealing pool vs the retired mutex-queue baseline)
//!   with rows for 1, 2, 4 and 8 workers, each recording positive
//!   `fns_per_sec`, `mutex_fns_per_sec` and `queue_speedup`; the
//!   8-worker row must meet `--min-queue-speedup` (default 1.0;
//!   pass `0` to validate schema only — CI does, because a quick-mode
//!   A/B of oversubscribed thread pools on a small shared runner is
//!   scheduling noise; gate with an explicit floor on real hardware);
//! * regression: with `--baseline`, rows sharing an `n` are compared
//!   and the candidate must reach `1 - max_regress` of the committed
//!   throughput (default: fail on >25% regression);
//! * analysis report: with `--analysis-report`, the
//!   `facepoint-analysis --report` JSON (schema version 1, see
//!   `docs/ANALYSIS.md`) must carry the expected shape: the tool tag,
//!   a `counts` object naming every checker, and `findings`/`allowed`
//!   arrays whose entries are fully typed (allowed entries must record
//!   a non-empty `reason`), with `counts` agreeing with the `findings`
//!   array. `--analysis-only` skips the bench-file checks so the CI
//!   `analysis` job can gate the report without trajectory files.
//!
//! Exits non-zero with one line per violation.
#![forbid(unsafe_code)]

use facepoint_bench::json::{parse, Json};
use facepoint_bench::{arg_num, arg_value};
use std::collections::BTreeMap;
use std::path::Path;

struct Checker {
    failures: Vec<String>,
}

impl Checker {
    fn fail(&mut self, msg: String) {
        eprintln!("FAIL: {msg}");
        self.failures.push(msg);
    }
}

/// Per-file schema: required result-row numeric fields, and which one
/// is the headline throughput used for regression gating.
struct Schema {
    file: &'static str,
    bench: &'static str,
    row_fields: &'static [&'static str],
    /// Required numeric fields that may legitimately be zero (latency
    /// percentiles of an empty histogram), unlike `row_fields` which
    /// must be strictly positive.
    nonneg_row_fields: &'static [&'static str],
    throughput_field: &'static str,
}

const SCHEMAS: [Schema; 2] = [
    Schema {
        file: "BENCH_signatures.json",
        bench: "signature_key",
        row_fields: &[
            "n",
            "functions",
            "kernel_fns_per_sec",
            "batch_fns_per_sec",
            "reference_fns_per_sec",
            "speedup",
            "batch_speedup",
        ],
        nonneg_row_fields: &[],
        throughput_field: "kernel_fns_per_sec",
    },
    Schema {
        file: "BENCH_engine.json",
        bench: "engine",
        row_fields: &[
            "n",
            "functions",
            "workers",
            "fns_per_sec",
            "classes",
            "journaled_fns_per_sec",
            "journal_ratio",
        ],
        nonneg_row_fields: &[
            "chunk_p50_nanos",
            "chunk_p90_nanos",
            "chunk_p99_nanos",
            "chunk_max_nanos",
        ],
        throughput_field: "fns_per_sec",
    },
];

/// Loads one bench file and returns `n → headline throughput`, schema
/// violations recorded on the way.
fn load(dir: &Path, schema: &Schema, check: &mut Checker) -> BTreeMap<u64, f64> {
    let path = dir.join(schema.file);
    let mut by_n = BTreeMap::new();
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            check.fail(format!("{}: {e}", path.display()));
            return by_n;
        }
    };
    let doc = match parse(&text) {
        Ok(doc) => doc,
        Err(e) => {
            check.fail(format!("{}: {e}", path.display()));
            return by_n;
        }
    };
    match doc.get("bench").and_then(Json::as_str) {
        Some(b) if b == schema.bench => {}
        other => check.fail(format!(
            "{}: \"bench\" is {other:?}, expected {:?}",
            path.display(),
            schema.bench
        )),
    }
    for field in ["set", "workload"] {
        if doc.get(field).and_then(Json::as_str).is_none() {
            check.fail(format!("{}: missing string \"{field}\"", path.display()));
        }
    }
    if doc.get("unix_time").and_then(Json::as_f64).is_none() {
        check.fail(format!("{}: missing number \"unix_time\"", path.display()));
    }
    let Some(results) = doc.get("results").and_then(Json::as_arr) else {
        check.fail(format!("{}: missing \"results\" array", path.display()));
        return by_n;
    };
    if results.is_empty() {
        check.fail(format!("{}: empty \"results\"", path.display()));
    }
    for (i, row) in results.iter().enumerate() {
        for field in schema.row_fields {
            match row.get(field).and_then(Json::as_f64) {
                Some(v) if v > 0.0 => {}
                Some(v) => check.fail(format!(
                    "{} results[{i}]: \"{field}\" = {v} is not positive",
                    path.display()
                )),
                None => check.fail(format!(
                    "{} results[{i}]: missing number \"{field}\"",
                    path.display()
                )),
            }
        }
        for field in schema.nonneg_row_fields {
            match row.get(field).and_then(Json::as_f64) {
                Some(v) if v >= 0.0 => {}
                Some(v) => check.fail(format!(
                    "{} results[{i}]: \"{field}\" = {v} is negative",
                    path.display()
                )),
                None => check.fail(format!(
                    "{} results[{i}]: missing number \"{field}\"",
                    path.display()
                )),
            }
        }
        if let (Some(n), Some(fps)) = (
            row.get("n").and_then(Json::as_f64),
            row.get(schema.throughput_field).and_then(Json::as_f64),
        ) {
            by_n.insert(n as u64, fps);
        }
    }
    by_n
}

/// Validates `BENCH_engine.json`'s `contention` object: the
/// steal-vs-mutex sweep must cover 1/2/4/8 workers with positive
/// numbers, and the 8-worker speedup must meet the floor.
fn check_contention(doc: &Json, min_queue_speedup: f64, check: &mut Checker) {
    let Some(con) = doc.get("contention") else {
        check.fail("BENCH_engine.json: missing \"contention\" sweep".to_string());
        return;
    };
    for field in ["n", "functions", "chunk_size"] {
        if con.get(field).and_then(Json::as_f64).is_none() {
            check.fail(format!(
                "BENCH_engine.json contention: missing number \"{field}\""
            ));
        }
    }
    if con.get("workload").and_then(Json::as_str).is_none() {
        check.fail("BENCH_engine.json contention: missing string \"workload\"".to_string());
    }
    let Some(rows) = con.get("results").and_then(Json::as_arr) else {
        check.fail("BENCH_engine.json contention: missing \"results\" array".to_string());
        return;
    };
    let mut seen: Vec<u64> = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        for field in [
            "workers",
            "fns_per_sec",
            "mutex_fns_per_sec",
            "queue_speedup",
        ] {
            match row.get(field).and_then(Json::as_f64) {
                Some(v) if v > 0.0 => {}
                Some(v) => check.fail(format!(
                    "BENCH_engine.json contention[{i}]: \"{field}\" = {v} is not positive"
                )),
                None => check.fail(format!(
                    "BENCH_engine.json contention[{i}]: missing number \"{field}\""
                )),
            }
        }
        let workers = row.get("workers").and_then(Json::as_f64).unwrap_or(0.0) as u64;
        seen.push(workers);
        if workers == 8 {
            let speedup = row
                .get("queue_speedup")
                .and_then(Json::as_f64)
                .unwrap_or(0.0);
            if speedup < min_queue_speedup {
                check.fail(format!(
                    "BENCH_engine.json contention: 8-worker queue_speedup \
                     {speedup:.3} below the {min_queue_speedup} floor"
                ));
            } else {
                println!(
                    "BENCH_engine.json contention: 8 workers at {speedup:.2}x \
                     over the mutex queue (floor {min_queue_speedup})"
                );
            }
        }
    }
    for expected in [1u64, 2, 4, 8] {
        if !seen.contains(&expected) {
            check.fail(format!(
                "BENCH_engine.json contention: no row for {expected} workers"
            ));
        }
    }
}

/// Validates a `facepoint-analysis --report` JSON file (schema
/// version 1): shape, per-entry field types, and `counts` agreeing
/// with the `findings` array.
fn check_analysis_report(path: &Path, check: &mut Checker) {
    const CHECKS: [&str; 5] = [
        "lock-discipline",
        "no-alloc",
        "protocol-drift",
        "unsafe-audit",
        "pragma",
    ];
    let name = path.display();
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            check.fail(format!("{name}: {e}"));
            return;
        }
    };
    let doc = match parse(&text) {
        Ok(doc) => doc,
        Err(e) => {
            check.fail(format!("{name}: {e}"));
            return;
        }
    };
    match doc.get("tool").and_then(Json::as_str) {
        Some("facepoint-analysis") => {}
        other => check.fail(format!(
            "{name}: \"tool\" is {other:?}, expected \"facepoint-analysis\""
        )),
    }
    match doc.get("version").and_then(Json::as_f64) {
        Some(1.0) => {}
        other => check.fail(format!("{name}: \"version\" is {other:?}, expected 1")),
    }
    match doc.get("files_scanned").and_then(Json::as_f64) {
        Some(v) if v > 0.0 => {}
        other => check.fail(format!(
            "{name}: \"files_scanned\" is {other:?}, expected a positive count"
        )),
    }
    let mut declared: BTreeMap<&str, u64> = BTreeMap::new();
    match doc.get("counts") {
        Some(counts) => {
            for c in CHECKS {
                match counts.get(c).and_then(Json::as_f64) {
                    Some(v) if v >= 0.0 && v.fract() == 0.0 => {
                        declared.insert(c, v as u64);
                    }
                    other => check.fail(format!(
                        "{name}: counts[\"{c}\"] is {other:?}, expected a count"
                    )),
                }
            }
        }
        None => check.fail(format!("{name}: missing \"counts\" object")),
    }
    let mut observed: BTreeMap<&str, u64> = CHECKS.iter().map(|&c| (c, 0)).collect();
    for list in ["findings", "allowed"] {
        let Some(entries) = doc.get(list).and_then(Json::as_arr) else {
            check.fail(format!("{name}: missing \"{list}\" array"));
            continue;
        };
        for (i, entry) in entries.iter().enumerate() {
            for field in ["check", "file", "message"] {
                if entry.get(field).and_then(Json::as_str).is_none() {
                    check.fail(format!("{name} {list}[{i}]: missing string \"{field}\""));
                }
            }
            if entry.get("line").and_then(Json::as_f64).is_none() {
                check.fail(format!("{name} {list}[{i}]: missing number \"line\""));
            }
            if let Some(c) = entry.get("check").and_then(Json::as_str) {
                match observed.get_mut(c) {
                    Some(slot) => {
                        if list == "findings" {
                            *slot += 1;
                        }
                    }
                    None => check.fail(format!("{name} {list}[{i}]: unknown check {c:?}")),
                }
            }
            if list == "allowed" {
                // An allowance without a recorded reason is exactly
                // the audit hole the report exists to close.
                match entry.get("reason").and_then(Json::as_str) {
                    Some(r) if !r.trim().is_empty() => {}
                    _ => check.fail(format!(
                        "{name} allowed[{i}]: missing non-empty string \"reason\""
                    )),
                }
            }
        }
    }
    for (c, n) in &declared {
        if observed.get(c) != Some(n) {
            check.fail(format!(
                "{name}: counts[\"{c}\"] = {n} but the findings array has {}",
                observed.get(c).copied().unwrap_or(0)
            ));
        }
    }
    if check.failures.is_empty() {
        println!(
            "{name}: analysis report validated ({} finding(s), {} allowed)",
            doc.get("findings")
                .and_then(Json::as_arr)
                .map_or(0, <[Json]>::len),
            doc.get("allowed")
                .and_then(Json::as_arr)
                .map_or(0, <[Json]>::len),
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dir = arg_value(&args, "--dir").unwrap_or_else(|| ".".to_string());
    let baseline = arg_value(&args, "--baseline");
    let max_regress: f64 = arg_num(&args, "--max-regress", 0.25);
    let min_journal_ratio: f64 = arg_num(&args, "--min-journal-ratio", 0.6);
    let min_queue_speedup: f64 = arg_num(&args, "--min-queue-speedup", 1.0);
    let min_sig_speedup: f64 = arg_num(&args, "--min-sig-speedup", 2.3);
    let min_certified_ratio: f64 = arg_num(&args, "--min-certified-ratio", 0.25);
    let analysis_report = arg_value(&args, "--analysis-report");
    let analysis_only = args.iter().any(|a| a == "--analysis-only");
    let dir = Path::new(&dir);
    let mut check = Checker {
        failures: Vec::new(),
    };

    if let Some(report) = &analysis_report {
        check_analysis_report(Path::new(report), &mut check);
    } else if analysis_only {
        check.fail("--analysis-only requires --analysis-report".to_string());
    }
    if analysis_only {
        finish(&check);
        return;
    }

    for schema in &SCHEMAS {
        let candidate = load(dir, schema, &mut check);
        println!("{}: {} result rows validated", schema.file, candidate.len());
        if let Some(base_dir) = &baseline {
            let mut base_check = Checker {
                failures: Vec::new(),
            };
            let base = load(Path::new(base_dir), schema, &mut base_check);
            // A broken baseline shouldn't fail the candidate — it is
            // the committed file's problem; report and move on.
            for msg in base_check.failures {
                eprintln!("note: baseline {msg}");
            }
            for (n, base_fps) in base {
                let Some(&cand_fps) = candidate.get(&n) else {
                    continue; // --quick sweeps fewer n
                };
                let floor = base_fps * (1.0 - max_regress);
                if cand_fps < floor {
                    check.fail(format!(
                        "{} n={n}: {cand_fps:.0} fn/s is a >{:.0}% regression \
                         vs committed {base_fps:.0} fn/s",
                        schema.file,
                        max_regress * 100.0
                    ));
                } else {
                    println!(
                        "{} n={n}: {cand_fps:.0} fn/s vs baseline {base_fps:.0} fn/s ok",
                        schema.file
                    );
                }
            }
        }
    }

    // The batch-lane floor: the signatures file must pin the lane
    // width, and key_batch must clear min_sig_speedup over the
    // two-pass reference on every large-arity row present (the quick
    // sweep stops at n = 8 and is exempt by construction).
    let sig_path = dir.join("BENCH_signatures.json");
    if let Ok(text) = std::fs::read_to_string(&sig_path) {
        if let Ok(doc) = parse(&text) {
            match doc.get("lane_width").and_then(Json::as_f64) {
                Some(64.0) => {}
                Some(w) => check.fail(format!(
                    "BENCH_signatures.json: \"lane_width\" = {w}, expected 64"
                )),
                None => {
                    check.fail("BENCH_signatures.json: missing number \"lane_width\"".to_string())
                }
            }
            let rows = doc.get("results").and_then(Json::as_arr).unwrap_or(&[]);
            for row in rows {
                let n = row.get("n").and_then(Json::as_f64).unwrap_or(0.0) as u64;
                let Some(batch_speedup) = row.get("batch_speedup").and_then(Json::as_f64) else {
                    continue; // already reported as a schema failure
                };
                if n < 9 {
                    continue;
                }
                if batch_speedup < min_sig_speedup {
                    check.fail(format!(
                        "BENCH_signatures.json n={n}: batch_speedup \
                         {batch_speedup:.3} below the {min_sig_speedup} floor"
                    ));
                } else {
                    println!(
                        "BENCH_signatures.json n={n}: key_batch at \
                         {batch_speedup:.2}x over the reference (floor {min_sig_speedup})"
                    );
                }
            }
        }
    }

    // The durability-tax floor: journaled ingest at n = 8 must stay
    // within min_journal_ratio of in-memory ingest.
    let engine_path = dir.join("BENCH_engine.json");
    if let Ok(text) = std::fs::read_to_string(&engine_path) {
        if let Ok(doc) = parse(&text) {
            let rows = doc.get("results").and_then(Json::as_arr).unwrap_or(&[]);
            for (i, row) in rows.iter().enumerate() {
                let n = row.get("n").and_then(Json::as_f64).unwrap_or(0.0) as u64;
                // Latency percentiles must form a monotone ladder —
                // the histogram's structural invariant, re-checked at
                // the artifact boundary so a hand-edited file fails
                // too. Missing fields are already schema failures.
                let quantile = |f: &str| row.get(f).and_then(Json::as_f64);
                if let (Some(p50), Some(p90), Some(p99), Some(max)) = (
                    quantile("chunk_p50_nanos"),
                    quantile("chunk_p90_nanos"),
                    quantile("chunk_p99_nanos"),
                    quantile("chunk_max_nanos"),
                ) {
                    if !(p50 <= p90 && p90 <= p99 && p99 <= max) {
                        check.fail(format!(
                            "BENCH_engine.json results[{i}]: chunk latency \
                             percentiles not monotone: p50 {p50} p90 {p90} \
                             p99 {p99} max {max}"
                        ));
                    }
                }
                // The certified column only exists on the n = 8 row
                // (the acceptance arity); require it there and gate
                // the ratio.
                if n == 8 {
                    for field in ["certified_fns_per_sec", "certified_classes"] {
                        match row.get(field).and_then(Json::as_f64) {
                            Some(v) if v > 0.0 => {}
                            Some(v) => check.fail(format!(
                                "BENCH_engine.json results[{i}]: \"{field}\" = {v} \
                                 is not positive"
                            )),
                            None => check.fail(format!(
                                "BENCH_engine.json results[{i}]: n=8 row missing \
                                 number \"{field}\""
                            )),
                        }
                    }
                    match row.get("certified_ratio").and_then(Json::as_f64) {
                        Some(ratio) if ratio >= min_certified_ratio => println!(
                            "BENCH_engine.json n=8: certified_ratio {ratio:.3} \
                             (floor {min_certified_ratio})"
                        ),
                        Some(ratio) => check.fail(format!(
                            "BENCH_engine.json n=8: certified_ratio {ratio:.3} \
                             below the {min_certified_ratio} floor"
                        )),
                        None => check.fail(
                            "BENCH_engine.json: n=8 row missing number \
                             \"certified_ratio\""
                                .to_string(),
                        ),
                    }
                }
                let Some(ratio) = row.get("journal_ratio").and_then(Json::as_f64) else {
                    continue; // already reported as a schema failure
                };
                if n == 8 && ratio < min_journal_ratio {
                    check.fail(format!(
                        "BENCH_engine.json n=8: journal_ratio {ratio:.3} below \
                         the {min_journal_ratio} floor"
                    ));
                }
            }
            check_contention(&doc, min_queue_speedup, &mut check);
        }
    }

    finish(&check);
}

fn finish(check: &Checker) {
    if check.failures.is_empty() {
        println!("check_bench: all checks passed");
    } else {
        eprintln!("check_bench: {} failure(s)", check.failures.len());
        std::process::exit(1);
    }
}
