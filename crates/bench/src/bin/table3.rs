//! Regenerates **Table III** of the paper: runtime and accuracy of our
//! signature classifier against the exhaustive canonical form ("Kitty")
//! and the three reimplemented baselines (`testnpn -6 / -7 / -11`).
//!
//! ```text
//! cargo run --release -p facepoint-bench --bin table3 -- \
//!     [--min-n 4] [--max-n 8] [--limit 20000] [--kitty-max-n 6]
//! ```
//!
//! Shapes to observe (matching the paper):
//! * Kitty is exact but orders of magnitude slower, and impractical past
//!   `n = 6`;
//! * huang13 is the fastest and over-splits massively;
//! * petkovska16 and zhou20 trade speed for accuracy, zhou20's runtime
//!   degrading on symmetric workloads;
//! * ours matches the exact count through `n = 7` at stable, near-linear
//!   cost, never over-splitting (it can only merge).
#![forbid(unsafe_code)]

use facepoint_aig::cut_workload;
use facepoint_bench::{arg_num, print_row, secs, timed};
use facepoint_core::Classifier;
use facepoint_exact::baselines::{Abdollahi08, CanonicalClassifier, Huang13, Petkovska16, Zhou20};
use facepoint_exact::{exact_classify, exact_classify_canonical};
use facepoint_sig::SignatureSet;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let min_n: usize = arg_num(&args, "--min-n", 4);
    let max_n: usize = arg_num(&args, "--max-n", 8);
    let limit: usize = arg_num(&args, "--limit", 20_000);
    let kitty_max_n: usize = arg_num(&args, "--kitty-max-n", 6);

    println!("Table III: runtime and accuracy comparison of NPN classifiers");
    println!("workload: synthetic-EPFL cut functions, dedup'd, ≤{limit} per n");
    println!();
    let header: Vec<String> = [
        "n", "#Func", "#Exact", "kitty#", "kitty_s", "h13#", "h13_s", "a08#", "a08_s", "p16#",
        "p16_s", "z20#", "z20_s", "ours#", "ours_s",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let widths: Vec<usize> = header.iter().map(|h| h.len().max(8)).collect();
    print_row(&header, &widths);

    for n in min_n..=max_n {
        let fns = cut_workload(n, limit);
        let (exact, _) = timed(|| exact_classify(&fns).num_classes());

        let (kitty_count, kitty_time) = if n <= kitty_max_n {
            let (c, t) = timed(|| exact_classify_canonical(&fns).num_classes());
            (c.to_string(), secs(t))
        } else {
            ("-".into(), "-".into())
        };
        let (h13, t_h13) = timed(|| Huang13.classify(&fns).num_classes());
        let (a08, t_a08) = timed(|| Abdollahi08::default().classify(&fns).num_classes());
        let (p16, t_p16) = timed(|| Petkovska16::default().classify(&fns).num_classes());
        let (z20, t_z20) = timed(|| Zhou20::default().classify(&fns).num_classes());
        let ours_classifier = Classifier::new(SignatureSet::all());
        let (ours, t_ours) = timed(|| ours_classifier.classify(fns.clone()).num_classes());

        print_row(
            &[
                n.to_string(),
                fns.len().to_string(),
                exact.to_string(),
                kitty_count,
                kitty_time,
                h13.to_string(),
                secs(t_h13),
                a08.to_string(),
                secs(t_a08),
                p16.to_string(),
                secs(t_p16),
                z20.to_string(),
                secs(t_z20),
                ours.to_string(),
                secs(t_ours),
            ],
            &widths,
        );
    }
    println!();
    println!("Columns: #Exact = bucket+matcher ground truth; kitty = exhaustive canonical");
    println!("form (n ≤ {kitty_max_n}); h13/p16/z20 = reimplemented testnpn -6/-7/-11; a08 =");
    println!("signature-based canonical form (paper's ref. [3]); ours = MSV hash");
    println!("classifier (all signatures). *_s columns are seconds.");
}
