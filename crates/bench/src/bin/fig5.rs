//! Regenerates **Fig. 5** of the paper: classifier runtime as a function
//! of workload size, for 5-bit and 7-bit functions, comparing our
//! signature classifier against the Zhou20 hybrid (`testnpn -11`).
//!
//! The paper generates its Fig. 5 workload as "truth tables in
//! consecutive binary encoding" — consecutive integers, which produce
//! heavily structured functions (mostly-zero tables, dead and tied
//! variables). That structure is exactly what blows up canonical-form
//! enumeration, so the hybrid baseline's runtime fluctuates with the
//! batch content while the signature classifier stays linear. Pass
//! `--uniform` to use uniformly random tables instead (both methods are
//! then smooth — a useful control).
//!
//! ```text
//! cargo run --release -p facepoint-bench --bin fig5 -- \
//!     [--points 6] [--step 20000] [--seed 7] [--uniform]
//! ```
//!
//! Output is CSV (`n,functions,ours_secs,zhou20_secs`).
#![forbid(unsafe_code)]

use facepoint_bench::{arg_num, consecutive_workload, random_workload, timed};
use facepoint_core::Classifier;
use facepoint_exact::baselines::{CanonicalClassifier, Zhou20};
use facepoint_sig::SignatureSet;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let points: usize = arg_num(&args, "--points", 6);
    let step: usize = arg_num(&args, "--step", 20_000);
    let seed: u64 = arg_num(&args, "--seed", 7);
    let uniform = args.iter().any(|a| a == "--uniform");

    println!("n,functions,ours_secs,zhou20_secs");
    for &n in &[5usize, 7] {
        for p in 1..=points {
            let count = p * step;
            let fns = if uniform {
                random_workload(n, count, seed.wrapping_add(p as u64))
            } else {
                // Consecutive encodings from a fixed base — each point is
                // a longer prefix of the same stream, as in the paper's
                // "fixed number of functions … in consecutive binary
                // encoding".
                consecutive_workload(n, count, seed)
            };
            let ours = Classifier::new(SignatureSet::all());
            let (_, t_ours) = timed(|| ours.classify(fns.clone()));
            let (_, t_zhou) = timed(|| Zhou20::default().classify(&fns));
            println!(
                "{n},{},{:.4},{:.4}",
                fns.len(),
                t_ours.as_secs_f64(),
                t_zhou.as_secs_f64()
            );
        }
    }
    eprintln!();
    eprintln!("(Plot functions vs seconds per n: ours is near-linear and stable;");
    eprintln!(" zhou20 varies with the symmetry structure of each batch.)");
}
