//! Regenerates **Table I** of the paper: every signature vector of the
//! two running-example functions — `f1`, the 3-input majority of
//! Fig. 1a, and `f3`, the single-variable projection of Fig. 1c.
//!
//! ```text
//! cargo run --release -p facepoint-bench --bin table1
//! ```
#![forbid(unsafe_code)]

use facepoint_sig::{ocv1, ocv2, oiv, osdv, osdv1, osv, osv0, osv1};
use facepoint_truth::TruthTable;

fn fmt_u32(v: &[u32]) -> String {
    let items: Vec<String> = v.iter().map(|x| x.to_string()).collect();
    format!("({})", items.join(","))
}

fn fmt_u64(v: &[u64]) -> String {
    let items: Vec<String> = v.iter().map(|x| x.to_string()).collect();
    format!("({})", items.join(","))
}

fn main() {
    let f1 = TruthTable::majority(3);
    let f3 = TruthTable::projection(3, 2).expect("3 > 2");

    println!("Table I: Examples of different signature vectors.");
    println!();
    println!(
        "{:<10} {:<32} {:<32}",
        "Signature", "f1 in Fig. 1a (maj3, 0xe8)", "f3 in Fig. 1c (x2, 0xf0)"
    );
    println!("{}", "-".repeat(76));
    let rows: Vec<(&str, String, String)> = vec![
        ("OCV1", fmt_u32(&ocv1(&f1)), fmt_u32(&ocv1(&f3))),
        ("OCV2", fmt_u32(&ocv2(&f1)), fmt_u32(&ocv2(&f3))),
        ("OIV", fmt_u32(&oiv(&f1)), fmt_u32(&oiv(&f3))),
        ("OSV1", fmt_u32(&osv1(&f1)), fmt_u32(&osv1(&f3))),
        ("OSV0", fmt_u32(&osv0(&f1)), fmt_u32(&osv0(&f3))),
        ("OSV", fmt_u32(&osv(&f1)), fmt_u32(&osv(&f3))),
        (
            "OSDV1",
            fmt_u64(&osdv1(&f1).flatten()),
            fmt_u64(&osdv1(&f3).flatten()),
        ),
        (
            "OSDV",
            fmt_u64(&osdv(&f1).flatten()),
            fmt_u64(&osdv(&f3).flatten()),
        ),
    ];
    for (name, a, b) in rows {
        println!("{name:<10} {a:<32} {b:<32}");
    }
    println!();
    println!("Paper reference values (Table I):");
    println!("  OCV1(f1)=(1,1,1,3,3,3)          OCV1(f3)=(0,2,2,2,2,4)");
    println!("  OCV2(f1)=(0,0,0,1,1,1,1,1,1,2,2,2)");
    println!("  OIV(f1)=(2,2,2)                 OIV(f3)=(0,0,4)");
    println!("  OSV1(f1)=(0,2,2,2)              OSV1(f3)=(1,1,1,1)");
    println!("  OSDV1(f1)=(0,0,0,0,0,0,0,3,0,0,0,0)");
    println!("  OSDV(f1)=(0,0,1,0,0,0,6,6,3,0,0,0)");
}
