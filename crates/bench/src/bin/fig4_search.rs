//! Regenerates the evidence of **Fig. 4** of the paper: pairs of
//! non-equivalent 4-input functions that cofactor signatures cannot
//! separate but influence / sensitivity signatures can.
//!
//! The paper draws four specific hypercubes (`g1`, `g2`, `h1`, `h2`)
//! whose exact minterms are not recoverable from the PDF, so this binary
//! *searches* the full 4-variable space (65 536 functions) for witnesses
//! with the exact signature values the text reports:
//!
//! * `g1`, `g2`: `OCV1 = (3,4,4,4,4,4,4,5)`, equal `OCV2`, but
//!   `OIV(g1) = (6,6,6,8)` vs `OIV(g2) = (2,6,6,8)`;
//! * `h1`, `h2`: `OCV1 = (2,3,3,3,4,4,4,5)`, equal `OCV2`, equal
//!   `OIV = (3,5,5,5)`, but `OSV1(h1) = (2,2,2,2,3,3,4)` vs
//!   `OSV1(h2) = (1,2,3,3,3,3,3)`.
//!
//! ```text
//! cargo run --release -p facepoint-bench --bin fig4_search
//! ```
#![forbid(unsafe_code)]

use facepoint_exact::are_npn_equivalent;
use facepoint_sig::{ocv1, ocv2, oiv, osv1};
use facepoint_truth::TruthTable;

fn fmt(v: &[u32]) -> String {
    let items: Vec<String> = v.iter().map(|x| x.to_string()).collect();
    format!("({})", items.join(","))
}

fn main() {
    let all: Vec<TruthTable> = (0u64..65536)
        .map(|bits| TruthTable::from_u64(4, bits).expect("4 ≤ 6"))
        .collect();

    // --- The g-pair: OCV1/OCV2 equal, OIV distinguishes. ---
    let target_ocv1_g = vec![3u32, 4, 4, 4, 4, 4, 4, 5];
    let target_oiv_g1 = vec![6u32, 6, 6, 8];
    let target_oiv_g2 = vec![2u32, 6, 6, 8];
    let g_candidates: Vec<&TruthTable> = all.iter().filter(|f| ocv1(f) == target_ocv1_g).collect();
    println!(
        "step 1: {} functions have OCV1 = {} (g-pair profile)",
        g_candidates.len(),
        fmt(&target_ocv1_g)
    );
    let mut found_g = None;
    'g_outer: for a in &g_candidates {
        if oiv(a) != target_oiv_g1 {
            continue;
        }
        for b in &g_candidates {
            if oiv(b) == target_oiv_g2 && ocv2(a) == ocv2(b) {
                found_g = Some(((*a).clone(), (*b).clone()));
                break 'g_outer;
            }
        }
    }
    match &found_g {
        Some((g1, g2)) => {
            println!("found g1 = 0x{}, g2 = 0x{}", g1.to_hex(), g2.to_hex());
            println!("  OCV1 (both): {}", fmt(&ocv1(g1)));
            println!("  OCV2 equal : {}", ocv2(g1) == ocv2(g2));
            println!("  OIV(g1) = {}  OIV(g2) = {}", fmt(&oiv(g1)), fmt(&oiv(g2)));
            println!(
                "  NPN-equivalent? {} (must be false)",
                are_npn_equivalent(g1, g2)
            );
        }
        None => println!("no g-pair with the published values found"),
    }
    println!();

    // --- The h-pair: OCV1/OCV2/OIV equal, OSV1 distinguishes. ---
    let target_ocv1_h = vec![2u32, 3, 3, 3, 4, 4, 4, 5];
    let target_oiv_h = vec![3u32, 5, 5, 5];
    let target_osv1_h1 = vec![2u32, 2, 2, 2, 3, 3, 4];
    let target_osv1_h2 = vec![1u32, 2, 3, 3, 3, 3, 3];
    let h_candidates: Vec<&TruthTable> = all
        .iter()
        .filter(|f| ocv1(f) == target_ocv1_h && oiv(f) == target_oiv_h)
        .collect();
    println!(
        "step 2: {} functions have OCV1 = {} and OIV = {} (h-pair profile)",
        h_candidates.len(),
        fmt(&target_ocv1_h),
        fmt(&target_oiv_h)
    );
    let mut found_h = None;
    'h_outer: for a in &h_candidates {
        if osv1(a) != target_osv1_h1 {
            continue;
        }
        for b in &h_candidates {
            if osv1(b) == target_osv1_h2 && ocv2(a) == ocv2(b) {
                found_h = Some(((*a).clone(), (*b).clone()));
                break 'h_outer;
            }
        }
    }
    match &found_h {
        Some((h1, h2)) => {
            println!("found h1 = 0x{}, h2 = 0x{}", h1.to_hex(), h2.to_hex());
            println!("  OCV1 (both): {}", fmt(&ocv1(h1)));
            println!("  OCV2 equal : {}", ocv2(h1) == ocv2(h2));
            println!("  OIV  (both): {}", fmt(&oiv(h1)));
            println!(
                "  OSV1(h1) = {}  OSV1(h2) = {}",
                fmt(&osv1(h1)),
                fmt(&osv1(h2))
            );
            println!(
                "  NPN-equivalent? {} (must be false)",
                are_npn_equivalent(h1, h2)
            );
        }
        None => println!("no h-pair with the published values found"),
    }

    println!();
    println!("Conclusion (paper Section IV-A): OIV separates functions OCV1/OCV2");
    println!("cannot, and OSV separates functions OCV1/OCV2/OIV cannot — the point");
    println!("characteristics add real discriminating power over the face ones.");
}
