//! A minimal JSON reader for the benchmark trajectory files.
//!
//! The offline build vendors no `serde`, and the `BENCH_*.json` files
//! the `trajectory` bin writes are hand-serialized; this module is the
//! matching hand-rolled reader so CI can validate their schema and
//! compare runs against the committed baselines (`check_bench`). It
//! parses standard JSON (objects, arrays, strings with escapes,
//! numbers, booleans, null) — sufficient for machine-generated files,
//! not a general-purpose library.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always held as `f64`; the bench files stay well
    /// inside exact-integer range).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is not preserved (irrelevant for schema
    /// checks).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member `key` of an object, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Where and why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What was expected or found.
    pub reason: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.reason)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (surrounding whitespace allowed,
/// trailing garbage rejected).
///
/// # Errors
///
/// Returns a [`JsonError`] locating the first offending byte.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(value)
}

/// Parses a document from raw bytes, rejecting invalid UTF-8 with a
/// located error instead of panicking or lossily replacing — the
/// entry point for readers that pull files in as bytes.
///
/// # Errors
///
/// A [`JsonError`] at the first invalid byte, or any [`parse`] error.
pub fn parse_bytes(bytes: &[u8]) -> Result<Json, JsonError> {
    let text = std::str::from_utf8(bytes).map_err(|e| JsonError {
        offset: e.valid_up_to(),
        reason: "invalid UTF-8".into(),
    })?;
    parse(text)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, reason: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            reason: reason.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {lit}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key_offset = self.pos;
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            match map.entry(key) {
                // A duplicate key in a machine-generated file means the
                // writer is broken; silently keeping either value would
                // let a schema check pass on garbage.
                std::collections::btree_map::Entry::Occupied(e) => {
                    return Err(JsonError {
                        offset: key_offset,
                        reason: format!("duplicate object key {:?}", e.key()),
                    });
                }
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert(value);
                }
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by the
                            // bench files; reject rather than mangle.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("surrogate \\u escape"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_bench_file_shape() {
        let doc = r#"{
  "bench": "engine",
  "unix_time": 1785372900,
  "results": [
    {"n": 6, "fns_per_sec": 210571.2, "ratio": 0.95},
    {"n": 7, "fns_per_sec": -1.5e2, "ok": true, "x": null}
  ]
}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("bench").and_then(Json::as_str), Some("engine"));
        let results = v.get("results").and_then(Json::as_arr).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].get("n").and_then(Json::as_f64), Some(6.0));
        assert_eq!(
            results[1].get("fns_per_sec").and_then(Json::as_f64),
            Some(-150.0)
        );
        assert_eq!(results[1].get("ok"), Some(&Json::Bool(true)));
        assert_eq!(results[1].get("x"), Some(&Json::Null));
    }

    #[test]
    fn strings_with_escapes() {
        let v = parse(r#""a\"b\\c\nA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nA"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("nul").is_err());
        let err = parse("[1, x]").unwrap_err();
        assert!(err.offset > 0);
        assert!(err.to_string().contains("JSON"), "{err}");
    }

    #[test]
    fn every_truncation_of_a_document_is_an_error_not_a_panic() {
        // A bench file cut short by a crashed writer must be reported,
        // never mis-parsed: the document ends in `}`, so every proper
        // prefix is invalid.
        let doc =
            r#"{"bench":"engine","results":[{"n":6,"ok":true,"x":null,"r":[1,2.5e1]}],"s":"aA\n"}"#;
        assert!(parse(doc).is_ok());
        for cut in 0..doc.len() {
            // All-ASCII document, so every cut is a char boundary.
            assert!(parse(&doc[..cut]).is_err(), "cut {cut} unexpectedly parsed");
        }
    }

    #[test]
    fn duplicate_keys_are_rejected_with_location() {
        let err = parse(r#"{"n": 1, "n": 2}"#).unwrap_err();
        assert!(err.reason.contains("duplicate"), "{err}");
        assert!(err.reason.contains("\"n\""), "{err}");
        assert_eq!(err.offset, 9, "{err}");
        // Nested objects are checked too; distinct keys still pass.
        assert!(parse(r#"{"a": {"x": 1, "x": 2}}"#).is_err());
        assert!(parse(r#"{"a": 1, "b": {"a": 1}}"#).is_ok());
    }

    #[test]
    fn non_utf8_bytes_are_rejected_with_offset() {
        let mut bytes = br#"{"bench": ""#.to_vec();
        bytes.push(0xFF); // invalid UTF-8 inside the string
        bytes.extend_from_slice(br#""}"#);
        let err = parse_bytes(&bytes).unwrap_err();
        assert_eq!(err.offset, 11, "{err}");
        assert!(err.reason.contains("UTF-8"), "{err}");
        // Valid bytes still parse through the same entry point.
        assert_eq!(
            parse_bytes(br#"{"n": 3}"#)
                .unwrap()
                .get("n")
                .and_then(Json::as_f64),
            Some(3.0)
        );
    }

    #[test]
    fn string_escape_error_paths() {
        assert!(parse(r#""unterminated"#).is_err());
        assert!(parse(r#""bad \q escape""#).is_err());
        assert!(parse(r#""short \u00""#).is_err());
        assert!(parse(r#""nonhex \uzzzz""#).is_err());
        // Lone surrogates are rejected, not mangled.
        assert!(parse(r#""\ud800""#).is_err());
        // The replacement-adjacent but valid cases still work.
        assert_eq!(parse(r#""Aé""#).unwrap().as_str(), Some("Aé"));
    }

    #[test]
    fn roundtrips_the_committed_bench_files_if_present() {
        // Best-effort: when run from the workspace the committed
        // baselines must stay parseable.
        for name in ["BENCH_signatures.json", "BENCH_engine.json"] {
            let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join(name);
            if let Ok(text) = std::fs::read_to_string(path) {
                let v = parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
                assert!(v.get("results").and_then(Json::as_arr).is_some(), "{name}");
            }
        }
    }
}
