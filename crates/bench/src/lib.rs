//! # facepoint-bench
//!
//! Shared infrastructure for the experiment binaries that regenerate the
//! paper's tables and figures, and for the Criterion micro-benchmarks.
//!
//! | paper artifact | binary |
//! |---|---|
//! | Table I (signature examples) | `cargo run --release -p facepoint-bench --bin table1` |
//! | Fig. 4 (discrimination witnesses) | `… --bin fig4_search` |
//! | Table II (#classes per signature set) | `… --bin table2` |
//! | Table III (runtime/accuracy vs baselines) | `… --bin table3` |
//! | Fig. 5 (runtime stability) | `… --bin fig5` |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod json;

use facepoint_truth::TruthTable;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Generates `count` distinct random `n`-variable truth tables
/// (deduplicated, deterministic in `seed`) — the Fig. 5 workload. The
/// paper generates "truth tables in consecutive binary encoding"; uniform
/// sampling with dedup covers the same space without its bias toward tiny
/// integers.
pub fn random_workload(n: usize, count: usize, seed: u64) -> Vec<TruthTable> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::with_capacity(count);
    let mut out = Vec::with_capacity(count);
    // For tiny n the space may be smaller than `count`.
    let space: f64 = 2f64.powi(1 << n.min(20));
    let target = if space < count as f64 {
        space as usize
    } else {
        count
    };
    while out.len() < target {
        let t = TruthTable::random(n, &mut rng).expect("n validated by caller");
        if seen.insert(t.clone()) {
            out.push(t);
        }
    }
    out
}

/// Generates `count` uniformly random **balanced** `n`-variable truth
/// tables (`|f| = 2^{n-1}`), deterministic in `seed` — the
/// adversarial workload for output-phase canonicalization: the satisfy
/// count cannot fix the polarity, so every function exercises the
/// dual-polarity (lexicographic-minimum) path of the signature
/// pipeline.
///
/// Each table is a uniformly random half-size subset of the minterms
/// (partial Fisher–Yates selection).
///
/// # Panics
///
/// Panics if `n` is 0 (a 0-variable function cannot be balanced).
pub fn balanced_workload(n: usize, count: usize, seed: u64) -> Vec<TruthTable> {
    use rand::RngExt;
    assert!(n >= 1, "balanced tables need at least one variable");
    let mut rng = StdRng::seed_from_u64(seed);
    let bits = 1usize << n;
    let half = bits / 2;
    let mut idx: Vec<u64> = Vec::with_capacity(bits);
    (0..count)
        .map(|_| {
            idx.clear();
            idx.extend(0..bits as u64);
            for i in 0..half {
                let j = rng.random_range(i..bits);
                idx.swap(i, j);
            }
            let mut t = TruthTable::zero(n).expect("n validated by caller");
            for &m in &idx[..half] {
                t.set_bit(m, true);
            }
            t
        })
        .collect()
}

/// Generates `groups` random `n`-variable functions, each echoed as
/// `copies` uniformly random NPN transforms of itself — a workload
/// with planted equivalences, deterministic in `seed`. This is the
/// standard cross-check stream: a classifier must map every echo of a
/// group to one class, so partitions can be compared against ground
/// truth (or against another classifier) with the planted structure
/// known.
pub fn transform_closure_workload(
    n: usize,
    groups: usize,
    copies: usize,
    seed: u64,
) -> Vec<TruthTable> {
    use facepoint_truth::NpnTransform;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut fns = Vec::with_capacity(groups * copies);
    for _ in 0..groups {
        let f = TruthTable::random(n, &mut rng).expect("n validated by caller");
        for _ in 0..copies {
            fns.push(NpnTransform::random(n, &mut rng).apply(&f));
        }
    }
    fns
}

/// Generates `count` truth tables with **consecutive binary encodings**
/// starting at `start` — the paper's Fig. 5 generation ("truth tables in
/// consecutive binary encoding for each bit"). Consecutive integers make
/// highly structured functions (mostly-zero tables, dead and tied
/// variables), the worst case for canonical-form enumeration and thus
/// the workload where runtime stability differences show.
pub fn consecutive_workload(n: usize, count: usize, start: u64) -> Vec<TruthTable> {
    let bits = 1u64 << n;
    (0..count as u64)
        .map(|i| {
            if bits >= 64 {
                // Wider tables: place the counter in the low word.
                let mut words = vec![0u64; facepoint_truth::words::word_count(n)];
                words[0] = start.wrapping_add(i);
                TruthTable::from_words(n, &words).expect("n validated by caller")
            } else {
                TruthTable::from_u64(n, (start.wrapping_add(i)) & ((1 << bits) - 1))
                    .expect("n validated by caller")
            }
        })
        .collect()
}

/// Runs `f` once and returns its result with the wall-clock duration.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed())
}

/// Formats a duration in seconds with millisecond resolution (the paper's
/// tables print seconds).
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Parses `--flag value` style arguments: returns the value following
/// `flag`, if present.
pub fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Parses a numeric `--flag value` with a default.
pub fn arg_num<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    arg_value(args, flag)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Prints a row of fixed-width columns (simple table formatting shared by
/// the binaries).
pub fn print_row(cells: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (cell, &w) in cells.iter().zip(widths) {
        line.push_str(&format!("{cell:>w$}  "));
    }
    println!("{}", line.trim_end());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deduped_and_deterministic() {
        let a = random_workload(5, 200, 7);
        let b = random_workload(5, 200, 7);
        assert_eq!(a, b);
        let set: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(set.len(), a.len());
    }

    #[test]
    fn balanced_workload_is_balanced_and_deterministic() {
        for n in [1usize, 4, 7] {
            let a = balanced_workload(n, 20, 11);
            let b = balanced_workload(n, 20, 11);
            assert_eq!(a, b);
            assert!(a.iter().all(|t| t.is_balanced()), "n = {n}");
        }
    }

    #[test]
    fn workload_caps_at_space_size() {
        // Only 16 distinct 2-variable functions exist.
        let w = random_workload(1, 100, 3);
        assert_eq!(w.len(), 4);
    }

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = ["--limit", "50", "--seed", "9"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_num(&args, "--limit", 0usize), 50);
        assert_eq!(arg_num(&args, "--seed", 1u64), 9);
        assert_eq!(arg_num(&args, "--missing", 42usize), 42);
    }
}
