//! Property-based tests of the exact machinery: canonical-form
//! invariance, matcher soundness/completeness, and baseline contracts.

use facepoint_exact::baselines::{CanonicalClassifier, Huang13, Petkovska16, Zhou20};
use facepoint_exact::{are_npn_equivalent, exact_npn_canonical, npn_match, plain_changes};
use facepoint_truth::{NpnTransform, Permutation, TruthTable};
use proptest::prelude::*;

fn arb_table(min_n: usize, max_n: usize) -> impl Strategy<Value = TruthTable> {
    (min_n..=max_n).prop_flat_map(|n| {
        proptest::collection::vec(any::<u64>(), facepoint_truth::words::word_count(n))
            .prop_map(move |words| TruthTable::from_words(n, &words).expect("sized vec"))
    })
}

fn arb_pair(min_n: usize, max_n: usize) -> impl Strategy<Value = (TruthTable, NpnTransform)> {
    (min_n..=max_n).prop_flat_map(|n| {
        let table = proptest::collection::vec(any::<u64>(), facepoint_truth::words::word_count(n))
            .prop_map(move |words| TruthTable::from_words(n, &words).expect("sized vec"));
        let tr = (any::<u64>(), any::<u16>(), any::<bool>()).prop_map(move |(s, neg, out)| {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(s);
            let mask = if n == 0 {
                0
            } else {
                neg & (((1u32 << n) - 1) as u16)
            };
            NpnTransform::new(Permutation::random(n, &mut rng), mask, out)
        });
        (table, tr)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn canonical_form_is_orbit_invariant((f, t) in arb_pair(0, 5)) {
        prop_assert_eq!(
            exact_npn_canonical(&f),
            exact_npn_canonical(&t.apply(&f))
        );
    }

    #[test]
    fn canonical_form_is_a_fixpoint(f in arb_table(0, 5)) {
        let c = exact_npn_canonical(&f);
        prop_assert_eq!(exact_npn_canonical(&c), c.clone());
        // And never larger than the input (it is the orbit minimum).
        prop_assert!(c <= f);
    }

    #[test]
    fn matcher_finds_planted_equivalence((f, t) in arb_pair(1, 7)) {
        let g = t.apply(&f);
        let w = npn_match(&f, &g);
        prop_assert!(w.is_some());
        prop_assert_eq!(w.unwrap().apply(&f), g);
    }

    #[test]
    fn matcher_agrees_with_canonical_forms(
        f in arb_table(3, 4),
        g in arb_table(3, 4),
    ) {
        if f.num_vars() == g.num_vars() {
            let via_matcher = are_npn_equivalent(&f, &g);
            let via_canon = exact_npn_canonical(&f) == exact_npn_canonical(&g);
            prop_assert_eq!(via_matcher, via_canon);
        }
    }

    #[test]
    fn matcher_is_symmetric(f in arb_table(3, 5), g in arb_table(3, 5)) {
        if f.num_vars() == g.num_vars() {
            prop_assert_eq!(are_npn_equivalent(&f, &g), are_npn_equivalent(&g, &f));
        }
    }

    #[test]
    fn baselines_stay_in_orbit(f in arb_table(1, 6)) {
        for canon in [
            Huang13.canonical_form(&f),
            Petkovska16::default().canonical_form(&f),
            Zhou20::default().canonical_form(&f),
        ] {
            prop_assert!(are_npn_equivalent(&f, &canon));
        }
    }

    #[test]
    fn baseline_representatives_never_merge_distinct_classes(
        f in arb_table(3, 4),
        g in arb_table(3, 4),
    ) {
        // Equal representatives must imply true equivalence (over-split
        // is allowed, merging is not).
        if f.num_vars() == g.num_vars() {
            for b in [&Huang13 as &dyn CanonicalClassifier,
                      &Petkovska16::default(),
                      &Zhou20::default()] {
                if b.canonical_form(&f) == b.canonical_form(&g) {
                    prop_assert!(are_npn_equivalent(&f, &g), "{}", b.name());
                }
            }
        }
    }

    #[test]
    fn plain_changes_generate_the_symmetric_group(n in 1usize..7) {
        let mut perm: Vec<usize> = (0..n).collect();
        let mut seen = std::collections::HashSet::new();
        seen.insert(perm.clone());
        for p in plain_changes(n) {
            perm.swap(p, p + 1);
            seen.insert(perm.clone());
        }
        let expect: usize = (1..=n).product();
        prop_assert_eq!(seen.len(), expect);
    }
}
