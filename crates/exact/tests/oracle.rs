//! The class-count oracle: the number of NPN classes of n-variable
//! Boolean functions is known exactly (2, 4, 14, 222, 616126 for
//! n = 1..5 — the paper's Table I), and this file pins the repo's
//! canonicalizers to it two independent ways:
//!
//! 1. **Burnside's lemma** — counts the classes group-theoretically
//!    (average number of functions fixed by each of the 2^n · n! · 2
//!    input/output transforms), touching none of the repo's walk or
//!    matcher code. If a canonicalizer ever over-merges or over-splits,
//!    it disagrees with this count.
//! 2. **Exhaustive canonicalization** — every function of up to four
//!    variables through both `exact_npn_canonical` and
//!    `certified_canonical`; the distinct-representative count must be
//!    the Burnside count, and the two canonicalizers must agree.
//!
//! n = 5 can't be enumerated directly (2^32 functions), but every
//! 5-variable class contains a member whose x4 = 0 cofactor is one of
//! the 222 canonical 4-variable forms (canonicalize the cofactor and
//! extend that transform with x4 fixed), so sweeping the
//! 222 · 65536 composed tables hits every class at least once. That
//! sweep is minutes of walking, so it is gated behind `ORACLE_FULL=1`
//! (CI's oracle job sets it; plain `cargo test` skips).

use facepoint_exact::{certified_canonical, exact_npn_canonical};
use facepoint_truth::TruthTable;
use std::collections::HashSet;

/// Classes of n-variable functions under NPN equivalence, for
/// n = 1..=5: the ground truth the rest of the file compares against.
const CLASS_COUNTS: [(usize, u64); 5] = [(1, 2), (2, 4), (3, 14), (4, 222), (5, 616126)];

/// All permutations of `0..n` (plain recursion; n ≤ 5 here).
fn permutations(n: usize) -> Vec<Vec<usize>> {
    if n == 0 {
        return vec![Vec::new()];
    }
    let mut out = Vec::new();
    for smaller in permutations(n - 1) {
        for slot in 0..n {
            let mut p = smaller.clone();
            p.insert(slot, n - 1);
            out.push(p);
        }
    }
    out
}

/// The input bijection of one group element on minterms: negate by
/// `mask`, then route bit `i` to position `perm[i]`.
fn input_map(x: usize, perm: &[usize], mask: usize) -> usize {
    let x = x ^ mask;
    let mut y = 0;
    for (i, &to) in perm.iter().enumerate() {
        y |= ((x >> i) & 1) << to;
    }
    y
}

/// NPN class count by Burnside's lemma: for each group element, count
/// the functions it fixes — 2^(cycles of the input map) without output
/// negation; with it, the same unless any cycle has odd length (an
/// alternating labeling needs even cycles), which fixes nothing.
fn burnside_npn_classes(n: usize) -> u64 {
    let points = 1usize << n;
    let mut fixed_total: u128 = 0;
    let perms = permutations(n);
    for perm in &perms {
        for mask in 0..points {
            let mut seen = vec![false; points];
            let mut cycles = 0u32;
            let mut all_even = true;
            for start in 0..points {
                if seen[start] {
                    continue;
                }
                cycles += 1;
                let mut len = 0usize;
                let mut x = start;
                while !seen[x] {
                    seen[x] = true;
                    len += 1;
                    x = input_map(x, perm, mask);
                }
                all_even &= len.is_multiple_of(2);
            }
            fixed_total += 1u128 << cycles; // identity output
            if all_even {
                fixed_total += 1u128 << cycles; // negated output
            }
        }
    }
    let group_order = (perms.len() * points * 2) as u128;
    assert_eq!(
        fixed_total % group_order,
        0,
        "Burnside sum must divide evenly"
    );
    (fixed_total / group_order) as u64
}

/// The group-theoretic count reproduces the paper's ladder outright —
/// including n = 5's 616126, with no enumeration involved.
#[test]
fn burnside_matches_the_published_class_counts() {
    for (n, expected) in CLASS_COUNTS {
        assert_eq!(burnside_npn_classes(n), expected, "n={n}");
    }
}

/// Exhaustive canonicalization at n ≤ 4: both canonicalizers agree on
/// every function, representatives are fixed points, and the distinct
/// count equals the Burnside count.
#[test]
fn exhaustive_canonicalization_agrees_with_burnside() {
    for (n, expected) in &CLASS_COUNTS[..4] {
        let mut reps: HashSet<u64> = HashSet::new();
        for bits in 0..1u64 << (1usize << n) {
            let f = TruthTable::from_u64(*n, bits).unwrap();
            let exact = exact_npn_canonical(&f);
            let (certified, invariant) = certified_canonical(&f);
            assert!(invariant, "no fallback exists at n <= 6");
            assert_eq!(
                certified, exact,
                "canonicalizers disagree on {bits:#x} at n={n}"
            );
            if reps.insert(exact.as_u64()) {
                // A representative canonicalizes to itself.
                assert_eq!(exact_npn_canonical(&exact), exact);
            }
        }
        assert_eq!(reps.len() as u64, *expected, "n={n}");
    }
}

/// The gated n = 5 census: canonicalize every `(g << 16) | r` table
/// (r over the 222 canonical 4-variable forms, g over all 16-bit
/// cofactors — a set that meets every 5-variable class) and count
/// distinct representatives. Minutes of Gray-code walking, so CI's
/// oracle job opts in with `ORACLE_FULL=1`.
#[test]
fn full_n5_canonical_census_matches_burnside() {
    if std::env::var("ORACLE_FULL").is_err() {
        eprintln!("skipping the n=5 canonical census: set ORACLE_FULL=1 to run");
        return;
    }
    let mut reps4: Vec<u64> = Vec::new();
    let mut seen4: HashSet<u64> = HashSet::new();
    for bits in 0..1u64 << 16 {
        let rep = exact_npn_canonical(&TruthTable::from_u64(4, bits).unwrap()).as_u64();
        if seen4.insert(rep) {
            reps4.push(rep);
        }
    }
    assert_eq!(reps4.len(), 222);

    let threads = std::thread::available_parallelism().map_or(4, |p| p.get());
    let chunk = reps4.len().div_ceil(threads);
    let census: HashSet<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = reps4
            .chunks(chunk)
            .map(|mine| {
                scope.spawn(move || {
                    let mut local: HashSet<u64> = HashSet::new();
                    for &r in mine {
                        for g in 0..1u64 << 16 {
                            let f = TruthTable::from_u64(5, (g << 16) | r).unwrap();
                            local.insert(exact_npn_canonical(&f).as_u64());
                        }
                    }
                    local
                })
            })
            .collect();
        let mut census = HashSet::new();
        for h in handles {
            census.extend(h.join().expect("census worker panicked"));
        }
        census
    });
    assert_eq!(census.len() as u64, CLASS_COUNTS[4].1);
}
