//! Enumeration of the NPN transform group.
//!
//! Exhaustive canonicalization touches all `n!·2^{n+1}` transforms. Doing
//! that with O(1) table updates per step requires visiting permutations in
//! an order where consecutive permutations differ by one *adjacent*
//! transposition — the Steinhaus–Johnson–Trotter "plain changes" order —
//! and phases in Gray-code order where consecutive masks differ in one
//! bit. This module provides both sequences plus a convenience iterator
//! over explicit [`NpnTransform`]s for small `n` (tests, witnesses).

use facepoint_truth::{NpnTransform, Permutation};

/// `n!` as `u64`.
///
/// # Panics
///
/// Panics if `n > 20` (would overflow).
pub fn factorial(n: usize) -> u64 {
    assert!(n <= 20, "factorial overflow");
    (1..=n as u64).product()
}

/// The plain-changes (Steinhaus–Johnson–Trotter) swap sequence for `n`
/// elements: `n! − 1` positions, each identifying the adjacent
/// transposition `(p, p+1)` that yields the next permutation.
///
/// Applying the swaps in order to the identity visits every permutation
/// of `n` elements exactly once.
///
/// # Examples
///
/// ```
/// use facepoint_exact::plain_changes;
///
/// assert_eq!(plain_changes(3), vec![1, 0, 1, 0, 1]);
/// assert_eq!(plain_changes(1), Vec::<usize>::new());
/// ```
pub fn plain_changes(n: usize) -> Vec<usize> {
    if n <= 1 {
        return Vec::new();
    }
    let prev = plain_changes(n - 1);
    let mut out = Vec::with_capacity(factorial(n) as usize - 1);
    let mut down = true;
    let mut prev_iter = prev.iter();
    loop {
        // Sweep the largest element through all n positions.
        if down {
            for j in (0..n - 1).rev() {
                out.push(j);
            }
        } else {
            for j in 0..n - 1 {
                out.push(j);
            }
        }
        match prev_iter.next() {
            // Subproblem swap, offset by one when the largest element
            // parks at the left end.
            Some(&p) => out.push(if down { p + 1 } else { p }),
            None => break,
        }
        down = !down;
    }
    out
}

/// The bit index that changes between Gray codes `g-1` and `g`
/// (`g ≥ 1`): the number of trailing zeros of `g`.
#[inline]
pub fn gray_flip_bit(g: u64) -> u32 {
    debug_assert!(g >= 1);
    g.trailing_zeros()
}

/// Iterator over all `n!·2^{n+1}` NPN transforms of `n ≤ 8` variables as
/// explicit [`NpnTransform`] values.
///
/// This materializes each transform and is meant for ground-truth tests
/// and witness searches; hot canonicalization paths use the implicit
/// plain-changes/Gray walk instead.
///
/// # Panics
///
/// Panics if `n > 8` (the explicit enumeration would be astronomically
/// large).
pub fn all_transforms(n: usize) -> impl Iterator<Item = NpnTransform> {
    assert!(n <= 8, "explicit transform enumeration is limited to n ≤ 8");
    let perms = all_permutations(n);
    let phases = 1u32 << n;
    perms.into_iter().flat_map(move |perm| {
        (0..phases).flat_map(move |neg| {
            let perm0 = perm.clone();
            let perm1 = perm.clone();
            [
                NpnTransform::new(perm0, neg as u16, false),
                NpnTransform::new(perm1, neg as u16, true),
            ]
        })
    })
}

/// The size of a function's NPN orbit (number of distinct functions
/// reachable by NPN transforms) via explicit enumeration.
///
/// By orbit–stabilizer, the result always divides `n!·2^{n+1}`; small
/// orbits flag highly symmetric functions (majority-3's orbit has 8
/// members, a generic 4-variable function's 768).
///
/// # Panics
///
/// Panics if `num_vars > 6` (the enumeration is explicit).
pub fn npn_orbit_size(f: &facepoint_truth::TruthTable) -> usize {
    let n = f.num_vars();
    assert!(n <= 6, "orbit enumeration is limited to n ≤ 6");
    let orbit: std::collections::HashSet<_> = all_transforms(n).map(|t| t.apply(f)).collect();
    orbit.len()
}

/// All permutations of `0..n` in plain-changes order (starting from the
/// identity).
pub fn all_permutations(n: usize) -> Vec<Permutation> {
    let mut cur: Vec<usize> = (0..n).collect();
    let mut out = Vec::with_capacity(factorial(n) as usize);
    out.push(Permutation::from_slice(&cur).expect("identity"));
    for p in plain_changes(n) {
        cur.swap(p, p + 1);
        out.push(Permutation::from_slice(&cur).expect("plain change"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn factorials() {
        assert_eq!(factorial(0), 1);
        assert_eq!(factorial(1), 1);
        assert_eq!(factorial(6), 720);
        assert_eq!(factorial(10), 3_628_800);
    }

    #[test]
    fn plain_changes_visits_every_permutation() {
        for n in 1..=6usize {
            let perms = all_permutations(n);
            assert_eq!(perms.len(), factorial(n) as usize, "n = {n}");
            let unique: HashSet<_> = perms.iter().map(|p| p.as_slice().to_vec()).collect();
            assert_eq!(unique.len(), perms.len(), "all distinct, n = {n}");
        }
    }

    #[test]
    fn plain_changes_are_adjacent() {
        for n in 2..=6usize {
            for &p in &plain_changes(n) {
                assert!(p + 1 < n, "swap position {p} out of range for n = {n}");
            }
        }
    }

    #[test]
    fn all_transforms_count() {
        for n in 0..=4usize {
            let count = all_transforms(n).count() as u64;
            assert_eq!(count, factorial(n) * (1 << (n + 1)), "n = {n}");
        }
    }

    #[test]
    fn all_transforms_distinct_actions() {
        // Distinct transforms may coincide as *functions* only through
        // symmetric arguments; on a random asymmetric function the orbit
        // size divides the group order.
        use facepoint_truth::TruthTable;
        let f = TruthTable::from_hex(3, "e8").unwrap();
        let orbit: HashSet<_> = all_transforms(3).map(|t| t.apply(&f)).collect();
        // Majority-3 is totally symmetric and self-dual
        // (maj(¬x) = ¬maj(x)), so its stabilizer has 6·2 = 12 elements and
        // the orbit 96/12 = 8 members — the 8 input phasings of maj.
        assert_eq!(orbit.len(), 8);
    }

    #[test]
    fn orbit_sizes_divide_group_order() {
        use facepoint_truth::TruthTable;
        assert_eq!(npn_orbit_size(&TruthTable::majority(3)), 8);
        assert_eq!(npn_orbit_size(&TruthTable::zero(3).unwrap()), 2);
        // Parity-n orbit: all ±parity phasings collapse; size 2.
        assert_eq!(npn_orbit_size(&TruthTable::parity(3)), 2);
        let group = factorial(4) * (1 << 5);
        let f = TruthTable::from_hex(4, "37c8").unwrap();
        let orbit = npn_orbit_size(&f) as u64;
        assert_eq!(group % orbit, 0, "orbit–stabilizer");
    }

    #[test]
    fn gray_flip_sequence_covers_cycle() {
        // Applying the flips for g = 1..2^n and then flipping bit n-1 once
        // more returns to phase 0.
        let n = 5u32;
        let mut phase = 0u64;
        for g in 1..(1u64 << n) {
            phase ^= 1 << gray_flip_bit(g);
        }
        phase ^= 1 << (n - 1);
        assert_eq!(phase, 0);
    }
}
