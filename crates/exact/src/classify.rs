//! Exact NPN classification for arbitrary arity — the "exact version" the
//! paper uses as ground truth for `n > 6`.
//!
//! Strategy: bucket by the strongest signature vector (every MSV equality
//! is *necessary* for equivalence, so equivalent functions always share a
//! bucket — no equivalence can be missed); inside each bucket, run the
//! exact pairwise [matcher](crate::npn_match) and accumulate verdicts in
//! a union–find. The matcher never reports a false positive, so classes
//! are exact in both directions.

use crate::matcher::are_npn_equivalent;
use crate::unionfind::UnionFind;
use facepoint_sig::{msv, Msv, SignatureSet};
use facepoint_truth::TruthTable;
use std::collections::HashMap;

/// Result of an exact classification: a compact class id per input
/// function.
#[derive(Debug, Clone)]
pub struct ClassLabels {
    labels: Vec<usize>,
    num_classes: usize,
}

impl ClassLabels {
    /// Builds labels by grouping equal keys (compact ids in
    /// first-occurrence order). Canonical-form classifiers reduce to this.
    pub fn from_keys<K: std::hash::Hash + Eq>(keys: impl IntoIterator<Item = K>) -> Self {
        let mut map: HashMap<K, usize> = HashMap::new();
        let labels: Vec<usize> = keys
            .into_iter()
            .map(|k| {
                let next = map.len();
                *map.entry(k).or_insert(next)
            })
            .collect();
        ClassLabels {
            num_classes: map.len(),
            labels,
        }
    }

    /// The class id of input function `i` (ids are compact,
    /// `0..num_classes`, in first-occurrence order).
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// All class labels, parallel to the input slice.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Number of distinct NPN classes among the inputs.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }
}

/// Exactly classifies a set of functions under NPN equivalence.
///
/// Functions may have mixed arities (different arities are never
/// equivalent). Complexity: one MSV per function plus pairwise matching
/// *inside signature buckets only* — on realistic workloads the buckets
/// are nearly always singletons or genuine classes, so the quadratic term
/// is negligible (cf. the paper's Table II accuracy columns).
///
/// # Examples
///
/// ```
/// use facepoint_exact::exact_classify;
/// use facepoint_truth::TruthTable;
///
/// let fns = vec![
///     TruthTable::majority(3),
///     TruthTable::majority(3).flip_var(1),
///     TruthTable::parity(3),
/// ];
/// let classes = exact_classify(&fns);
/// assert_eq!(classes.num_classes(), 2);
/// assert_eq!(classes.label(0), classes.label(1));
/// # Ok::<(), facepoint_truth::Error>(())
/// ```
pub fn exact_classify(fns: &[TruthTable]) -> ClassLabels {
    let mut uf = UnionFind::new(fns.len());
    let mut buckets: HashMap<Msv, Vec<usize>> = HashMap::new();
    for (i, f) in fns.iter().enumerate() {
        buckets
            .entry(msv(f, SignatureSet::all()))
            .or_default()
            .push(i);
    }
    for members in buckets.values() {
        // Within a bucket, compare each member against one representative
        // per discovered sub-class (not all pairs).
        let mut reps: Vec<usize> = Vec::new();
        for &i in members {
            let mut joined = false;
            for &r in &reps {
                if are_npn_equivalent(&fns[i], &fns[r]) {
                    uf.union(i, r);
                    joined = true;
                    break;
                }
            }
            if !joined {
                reps.push(i);
            }
        }
    }
    let labels = uf.labels();
    let num_classes = uf.num_sets();
    ClassLabels {
        labels,
        num_classes,
    }
}

/// Exact class count via the exhaustive canonical form — usable for
/// `n ≤ 6` only; cross-validates [`exact_classify`] in tests and plays
/// the role of "Kitty" in the paper's Table III.
///
/// # Panics
///
/// Panics if any function has more than 10 variables (see
/// [`crate::exact_npn_canonical`]).
pub fn exact_classify_canonical(fns: &[TruthTable]) -> ClassLabels {
    ClassLabels::from_keys(fns.iter().map(crate::exhaustive::exact_npn_canonical))
}

#[cfg(test)]
mod tests {
    use super::*;
    use facepoint_truth::NpnTransform;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn matcher_and_canonical_classifications_agree() {
        let mut rng = StdRng::seed_from_u64(111);
        for n in 0..=5usize {
            let mut fns = Vec::new();
            // A mix of random functions and planted equivalent copies.
            for _ in 0..30 {
                let f = TruthTable::random(n, &mut rng).unwrap();
                let t = NpnTransform::random(n, &mut rng);
                fns.push(t.apply(&f));
                if rng.random::<bool>() {
                    fns.push(f);
                }
            }
            let a = exact_classify(&fns);
            let b = exact_classify_canonical(&fns);
            assert_eq!(a.num_classes(), b.num_classes(), "n = {n}");
            // Same partition, possibly different label order.
            for i in 0..fns.len() {
                for j in (i + 1)..fns.len() {
                    assert_eq!(
                        a.label(i) == a.label(j),
                        b.label(i) == b.label(j),
                        "pair ({i},{j}), n = {n}"
                    );
                }
            }
        }
    }

    #[test]
    fn planted_classes_recovered() {
        let mut rng = StdRng::seed_from_u64(113);
        let seeds = [
            TruthTable::majority(5),
            TruthTable::parity(5),
            TruthTable::from_hex(5, "deadbeef").unwrap(),
        ];
        let mut fns = Vec::new();
        for seed in &seeds {
            for _ in 0..10 {
                fns.push(NpnTransform::random(5, &mut rng).apply(seed));
            }
        }
        let classes = exact_classify(&fns);
        // The three seeds are pairwise non-equivalent (distinct |f| or
        // structure), so exactly 3 classes of 10.
        assert_eq!(classes.num_classes(), 3);
        for s in 0..3 {
            let base = classes.label(s * 10);
            for k in 1..10 {
                assert_eq!(classes.label(s * 10 + k), base);
            }
        }
    }

    #[test]
    fn mixed_arity_never_merges() {
        let fns = vec![
            TruthTable::zero(2).unwrap(),
            TruthTable::zero(3).unwrap(),
            TruthTable::one(2).unwrap(),
        ];
        let classes = exact_classify(&fns);
        assert_eq!(classes.num_classes(), 2);
        assert_eq!(classes.label(0), classes.label(2));
        assert_ne!(classes.label(0), classes.label(1));
    }

    #[test]
    fn empty_input() {
        let classes = exact_classify(&[]);
        assert_eq!(classes.num_classes(), 0);
        assert!(classes.labels().is_empty());
    }

    #[test]
    fn all_three_variable_functions_have_14_classes() {
        let fns: Vec<TruthTable> = (0u64..256)
            .map(|b| TruthTable::from_u64(3, b).unwrap())
            .collect();
        assert_eq!(exact_classify(&fns).num_classes(), 14);
        assert_eq!(exact_classify_canonical(&fns).num_classes(), 14);
    }
}
