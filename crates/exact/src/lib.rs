//! # facepoint-exact
//!
//! Exact NPN canonicalization, exact classification and the baseline
//! canonical-form classifiers used in the evaluation of the DATE 2023
//! paper *"Rethinking NPN Classification from Face and Point
//! Characteristics of Boolean Functions"* (arXiv:2301.12122).
//!
//! Three layers of exactness:
//!
//! * [`exact_npn_canonical`] — the complete-and-unique canonical form by
//!   exhaustive walk over all `n!·2^{n+1}` transforms (plain-changes ×
//!   Gray code, O(1) table updates per step). The "Kitty" ground truth of
//!   Table III, practical up to `n ≈ 8`.
//! * [`npn_match`] — a pairwise exact decision procedure: backtracking
//!   over variable correspondences with cofactor/influence pruning,
//!   returning a witness [`NpnTransform`](facepoint_truth::NpnTransform).
//! * [`exact_classify`] — exact classification at any arity: signature
//!   buckets (sound: signatures are necessary conditions) refined by the
//!   matcher inside each bucket (complete: the matcher is exact).
//!
//! The [`baselines`] module reimplements the three published heuristics
//! the paper compares against (`testnpn -6 / -7 / -11`).
//!
//! # Quick start
//!
//! ```
//! use facepoint_exact::{exact_classify, exact_npn_canonical};
//! use facepoint_truth::TruthTable;
//!
//! let maj = TruthTable::majority(3);
//! let twisted = maj.flip_var(1).swap_vars(0, 2);
//! assert_eq!(exact_npn_canonical(&maj), exact_npn_canonical(&twisted));
//!
//! let classes = exact_classify(&[maj, twisted, TruthTable::parity(3)]);
//! assert_eq!(classes.num_classes(), 2);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod baselines;
mod classify;
mod enumerate;
mod exhaustive;
mod matcher;
mod resolver;
mod unionfind;

pub use classify::{exact_classify, exact_classify_canonical, ClassLabels};
pub use enumerate::{
    all_permutations, all_transforms, factorial, gray_flip_bit, npn_orbit_size, plain_changes,
};
pub use exhaustive::{
    canonical_u64, exact_npn_canonical, exact_npn_canonical_with_witness, exhaustive_states,
};
pub use matcher::{are_npn_equivalent, npn_match, p_match, pn_match};
pub use resolver::{certified_canonical, BucketResolver, Resolved};
pub use unionfind::UnionFind;
