//! A small union–find (disjoint-set) structure with path halving and
//! union by size, used to accumulate pairwise equivalence verdicts into
//! classes.

/// Disjoint-set forest over `0..len`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    size: Vec<u32>,
}

impl UnionFind {
    /// Creates `len` singleton sets.
    pub fn new(len: usize) -> Self {
        UnionFind {
            parent: (0..len).collect(),
            size: vec![1; len],
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set (with path halving).
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were
    /// distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
        true
    }

    /// Whether `a` and `b` share a set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of distinct sets.
    pub fn num_sets(&mut self) -> usize {
        (0..self.len()).filter(|&i| self.find(i) == i).count()
    }

    /// Compact class labels `0..num_sets`, stable in first-occurrence
    /// order.
    pub fn labels(&mut self) -> Vec<usize> {
        let mut map = std::collections::HashMap::new();
        (0..self.len())
            .map(|i| {
                let root = self.find(i);
                let next = map.len();
                *map.entry(root).or_insert(next)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.num_sets(), 4);
        assert!(!uf.connected(0, 3));
    }

    #[test]
    fn union_merges() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(3, 4));
        assert!(!uf.union(1, 0), "already merged");
        assert!(uf.union(1, 3));
        assert_eq!(uf.num_sets(), 2);
        assert!(uf.connected(0, 4));
        assert!(!uf.connected(0, 2));
    }

    #[test]
    fn labels_are_compact_and_stable() {
        let mut uf = UnionFind::new(6);
        uf.union(1, 4);
        uf.union(2, 5);
        let labels = uf.labels();
        assert_eq!(labels[0], 0);
        assert_eq!(labels[1], 1);
        assert_eq!(labels[1], labels[4]);
        assert_eq!(labels[2], labels[5]);
        assert_eq!(*labels.iter().max().unwrap(), 3);
    }
}
