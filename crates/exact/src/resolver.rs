//! The exact resolution tier: digest buckets resolved into proved NPN
//! classes.
//!
//! Signature digests are *necessary* conditions for NPN equivalence, so
//! a digest bucket can merge — never split — true classes. This module
//! promotes a bucket to certainty: [`BucketResolver`] keeps, per digest
//! key, the certified representatives discovered so far; a bucket's
//! first member is canonicalized eagerly with [`certified_canonical`]
//! (the adjacent-transposition/flip Gray-code walk up to six variables,
//! an influence/cofactor-pruned walk above), and later members take the
//! cheap exact [`npn_match`](crate::npn_match) witness path against the
//! cached representatives. The matcher is exact in both directions, so
//! the resulting partition is the true NPN partition whatever the
//! canonical labels look like.

use crate::exhaustive::exact_npn_canonical;
use crate::matcher::npn_match;
use facepoint_sig::influence;
use facepoint_truth::{NpnTransform, Permutation, TruthTable};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Word-sized arity bound below which the exhaustive Gray-code walk is
/// cheap enough to run per class (`6!·2^6 = 46080` states, all on one
/// `u64`).
const EXHAUSTIVE_MAX_VARS: usize = 6;

/// Transform-count budget of the pruned walk above six variables.
/// Random functions have near-unique variable profiles and pinned
/// phases, so their candidate set is tiny; only highly symmetric
/// functions blow this budget and fall back to the deterministic
/// semi-canonical label (the partition stays exact either way — class
/// membership is decided by the matcher, never by label equality).
const CANON_BUDGET: u64 = 4096;

/// Number of resolver shards (the bucket maps are sharded by the
/// digest's high bits, like the partition store, so workers resolving
/// different buckets rarely contend).
const RESOLVER_SHARDS: usize = 16;

/// The certified canonical representative of `f`, plus whether the
/// label is class-invariant.
///
/// * `n ≤ 6`: the exhaustive Gray-code walk
///   ([`exact_npn_canonical`]) — the globally minimal orbit element,
///   always invariant.
/// * `n ≥ 7`: the minimum over the *pruned* transform set — output
///   polarity normalized to the smaller ones-count, every input phase
///   normalized to the smaller cofactor side, variables sorted by
///   their (cofactor pair, influence) profile; only ties contribute
///   enumeration. The pruning conditions are NPN-orbit invariants, so
///   this minimum is a class invariant too. When the tie groups are so
///   large that the candidate count exceeds the internal budget (heavy
///   symmetry), the first pruned arrangement is returned instead and
///   the flag is `false`: still deterministic per function, no longer
///   guaranteed identical across class members.
///
/// Two NPN-equivalent functions receive equal labels whenever the flag
/// is `true` for their class (the flag itself is orbit-invariant).
///
/// # Examples
///
/// ```
/// use facepoint_exact::certified_canonical;
/// use facepoint_truth::{NpnTransform, TruthTable};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let f = TruthTable::random(7, &mut rng)?;
/// let g = NpnTransform::random(7, &mut rng).apply(&f);
/// let (cf, exact_f) = certified_canonical(&f);
/// let (cg, exact_g) = certified_canonical(&g);
/// assert!(exact_f && exact_g);
/// assert_eq!(cf, cg);
/// # Ok::<(), facepoint_truth::Error>(())
/// ```
pub fn certified_canonical(f: &TruthTable) -> (TruthTable, bool) {
    let n = f.num_vars();
    if n <= EXHAUSTIVE_MAX_VARS {
        return (exact_npn_canonical(f), true);
    }
    let ones = f.count_ones();
    let total = f.num_bits();
    // Output polarity: canonicalize to the smaller ones-count; both
    // when balanced.
    let mut polarities: Vec<TruthTable> = Vec::with_capacity(2);
    if 2 * ones <= total {
        polarities.push(f.clone());
    }
    if 2 * ones >= total {
        polarities.push(f.negated());
    }
    let plans: Vec<PrunedPlan> = polarities.iter().map(PrunedPlan::new).collect();
    let candidates: u128 = plans.iter().map(PrunedPlan::candidates).sum();
    let within_budget = candidates <= u128::from(CANON_BUDGET);
    let mut best: Option<TruthTable> = None;
    for (h, plan) in polarities.iter().zip(&plans) {
        if within_budget {
            plan.for_each_candidate(h, |cand| match &best {
                Some(b) if *b <= cand => {}
                _ => best = Some(cand),
            });
        } else {
            let cand = plan.first_candidate(h);
            match &best {
                Some(b) if *b <= cand => {}
                _ => best = Some(cand),
            }
        }
    }
    (best.expect("at least one polarity"), within_budget)
}

/// Per-variable orbit-invariant profile: the unordered cofactor-count
/// pair plus the influence (the same pruning data the pairwise matcher
/// uses).
#[derive(PartialEq, Eq, PartialOrd, Ord, Clone, Copy, Debug)]
struct Profile {
    cof_lo: u64,
    cof_hi: u64,
    influence: u32,
}

/// The pruned transform set of one output polarity: which variables
/// tie on profile (permutation freedom) and which tie on cofactor
/// counts (phase freedom).
struct PrunedPlan {
    /// Variables in non-decreasing profile order (stable).
    order: Vec<usize>,
    /// Maximal runs of equal profiles within `order`, as `(start, end)`
    /// ranges; only runs longer than 1 contribute permutations.
    groups: Vec<(usize, usize)>,
    /// Per variable: `Some(bit)` when the phase is pinned by unequal
    /// cofactor counts, `None` when both phases must be explored.
    phase: Vec<Option<bool>>,
}

impl PrunedPlan {
    fn new(h: &TruthTable) -> Self {
        let n = h.num_vars();
        let profiles: Vec<Profile> = (0..n)
            .map(|v| {
                let c0 = h.cofactor_count(v, false);
                let c1 = h.cofactor_count(v, true);
                Profile {
                    cof_lo: c0.min(c1),
                    cof_hi: c0.max(c1),
                    influence: influence(h, v),
                }
            })
            .collect();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&v| profiles[v]);
        let mut groups = Vec::new();
        let mut start = 0;
        for i in 1..=n {
            if i == n || profiles[order[i]] != profiles[order[start]] {
                groups.push((start, i));
                start = i;
            }
        }
        let phase: Vec<Option<bool>> = (0..n)
            .map(|v| {
                let c0 = h.cofactor_count(v, false);
                let c1 = h.cofactor_count(v, true);
                match c0.cmp(&c1) {
                    std::cmp::Ordering::Less => Some(false),
                    std::cmp::Ordering::Greater => Some(true),
                    std::cmp::Ordering::Equal => None,
                }
            })
            .collect();
        PrunedPlan {
            order,
            groups,
            phase,
        }
    }

    /// Number of transforms this plan enumerates:
    /// `∏ tie-group! · 2^(phase ties)`.
    fn candidates(&self) -> u128 {
        let mut count: u128 = 1;
        for &(start, end) in &self.groups {
            for k in 2..=(end - start) as u128 {
                count = count.saturating_mul(k);
            }
        }
        let free_phases = self.phase.iter().filter(|p| p.is_none()).count();
        count.saturating_mul(1u128 << free_phases.min(127))
    }

    /// Applies the arrangement `order` (position `j` reads variable
    /// `order[j]`) with the phase mask `neg` to `h`.
    fn apply(h: &TruthTable, order: &[usize], neg: u16) -> TruthTable {
        let mut assignment = vec![0usize; order.len()];
        for (pos, &var) in order.iter().enumerate() {
            assignment[var] = pos;
        }
        let perm = Permutation::from_slice(&assignment).expect("bijective arrangement");
        NpnTransform::new(perm, neg, false).apply(h)
    }

    /// The single deterministic candidate used when the budget is
    /// blown: profile-sorted order, pinned-or-false phases.
    fn first_candidate(&self, h: &TruthTable) -> TruthTable {
        let neg = self.pinned_neg();
        Self::apply(h, &self.order, neg)
    }

    fn pinned_neg(&self) -> u16 {
        let mut neg = 0u16;
        for (v, p) in self.phase.iter().enumerate() {
            if *p == Some(true) {
                neg |= 1 << v;
            }
        }
        neg
    }

    /// Enumerates every candidate table of the pruned set.
    fn for_each_candidate(&self, h: &TruthTable, mut visit: impl FnMut(TruthTable)) {
        let free: Vec<usize> = (0..self.phase.len())
            .filter(|&v| self.phase[v].is_none())
            .collect();
        let pinned = self.pinned_neg();
        let mut order = self.order.clone();
        let groups = self.groups.clone();
        // Recursively permute each tie group in place; at the leaf,
        // sweep the free-phase odometer.
        fn descend(
            h: &TruthTable,
            order: &mut [usize],
            groups: &[(usize, usize)],
            free: &[usize],
            pinned: u16,
            visit: &mut impl FnMut(TruthTable),
        ) {
            match groups.split_first() {
                None => {
                    for mask in 0u32..(1u32 << free.len()) {
                        let mut neg = pinned;
                        for (bit, &v) in free.iter().enumerate() {
                            if (mask >> bit) & 1 == 1 {
                                neg |= 1 << v;
                            }
                        }
                        visit(PrunedPlan::apply(h, order, neg));
                    }
                }
                Some((&(start, end), rest)) => {
                    // Heap-style recursive permutation of order[start..end].
                    #[allow(clippy::too_many_arguments)]
                    fn permute(
                        h: &TruthTable,
                        order: &mut [usize],
                        lo: usize,
                        hi: usize,
                        rest: &[(usize, usize)],
                        free: &[usize],
                        pinned: u16,
                        visit: &mut impl FnMut(TruthTable),
                    ) {
                        if lo + 1 >= hi {
                            descend(h, order, rest, free, pinned, visit);
                            return;
                        }
                        for i in lo..hi {
                            order.swap(lo, i);
                            permute(h, order, lo + 1, hi, rest, free, pinned, visit);
                            order.swap(lo, i);
                        }
                    }
                    permute(h, order, start, end, rest, free, pinned, visit);
                }
            }
        }
        descend(h, &mut order, &groups, &free, pinned, &mut visit);
    }
}

/// Outcome of resolving one function against its digest bucket.
#[derive(Debug, Clone)]
pub struct Resolved {
    /// The certified representative of the function's proved class.
    pub representative: TruthTable,
    /// `true` when this resolution *created* the class (the eager
    /// canonicalization path); `false` when the function matched an
    /// already-cached representative.
    pub fresh: bool,
}

/// A concurrent digest-bucket → certified-representative cache.
///
/// Sharded by the digest's high bits like the partition store. Lookups
/// hold one shard lock for the (cheap, profile-pruned) matcher pass;
/// eager canonicalization of a new class runs *outside* the lock with
/// a double-checked re-match before insertion, so concurrent workers
/// discovering the same class converge on one representative.
#[derive(Debug)]
pub struct BucketResolver {
    shards: Vec<Mutex<HashMap<u128, Vec<TruthTable>>>>,
    walks: AtomicU64,
    matches: AtomicU64,
    fallbacks: AtomicU64,
}

impl Default for BucketResolver {
    fn default() -> Self {
        Self::new()
    }
}

impl BucketResolver {
    /// An empty resolver.
    pub fn new() -> Self {
        BucketResolver {
            shards: (0..RESOLVER_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            walks: AtomicU64::new(0),
            matches: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
        }
    }

    fn shard(&self, digest: u128) -> &Mutex<HashMap<u128, Vec<TruthTable>>> {
        &self.shards[(digest >> 124) as usize % RESOLVER_SHARDS]
    }

    fn match_in(reps: &[TruthTable], f: &TruthTable) -> Option<TruthTable> {
        reps.iter()
            .find(|rep| {
                rep.num_vars() == f.num_vars() && (*rep == f || npn_match(f, rep).is_some())
            })
            .cloned()
    }

    /// Resolves `f` (whose signature digest is `digest`) to its
    /// certified class representative, creating the class when `f` is
    /// the bucket's first member of it.
    pub fn resolve(&self, digest: u128, f: &TruthTable) -> Resolved {
        {
            let shard = self.shard(digest).lock().expect("resolver shard poisoned");
            if let Some(reps) = shard.get(&digest) {
                if let Some(representative) = Self::match_in(reps, f) {
                    self.matches.fetch_add(1, Ordering::Relaxed);
                    return Resolved {
                        representative,
                        fresh: false,
                    };
                }
            }
        }
        // First member of a new class in this bucket: canonicalize
        // eagerly, outside the lock.
        let (canon, invariant) = certified_canonical(f);
        if invariant {
            self.walks.fetch_add(1, Ordering::Relaxed);
        } else {
            self.fallbacks.fetch_add(1, Ordering::Relaxed);
        }
        let mut shard = self.shard(digest).lock().expect("resolver shard poisoned");
        let reps = shard.entry(digest).or_default();
        // Double-check: another worker may have inserted this class
        // while we walked.
        if let Some(representative) = Self::match_in(reps, f) {
            self.matches.fetch_add(1, Ordering::Relaxed);
            return Resolved {
                representative,
                fresh: false,
            };
        }
        reps.push(canon.clone());
        Resolved {
            representative: canon,
            fresh: true,
        }
    }

    /// Looks up the certified class of `f` without creating one,
    /// returning the cached representative and a witness transform `t`
    /// with `t.apply(f) == representative`.
    pub fn witness(&self, digest: u128, f: &TruthTable) -> Option<(TruthTable, NpnTransform)> {
        let shard = self.shard(digest).lock().expect("resolver shard poisoned");
        let reps = shard.get(&digest)?;
        reps.iter()
            .filter(|rep| rep.num_vars() == f.num_vars())
            .find_map(|rep| npn_match(f, rep).map(|t| (rep.clone(), t)))
    }

    /// Seeds a recovered class representative into its bucket (used
    /// when reopening a persisted certified store: the stored
    /// representative's digest equals the whole class's digest, since
    /// signatures are NPN invariants).
    pub fn prime(&self, digest: u128, representative: TruthTable) {
        let mut shard = self.shard(digest).lock().expect("resolver shard poisoned");
        let reps = shard.entry(digest).or_default();
        if !reps.contains(&representative) {
            reps.push(representative);
        }
    }

    /// Total certified classes cached across all buckets.
    pub fn num_classes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .expect("resolver shard poisoned")
                    .values()
                    .map(Vec::len)
                    .sum::<usize>()
            })
            .sum()
    }

    /// Eager Gray-code/pruned-walk canonicalizations performed (class
    /// creations with an invariant label).
    pub fn walks(&self) -> u64 {
        self.walks.load(Ordering::Relaxed)
    }

    /// Members resolved through the pairwise-matcher path against a
    /// cached representative.
    pub fn matches(&self) -> u64 {
        self.matches.load(Ordering::Relaxed)
    }

    /// Class creations that fell back to the semi-canonical label
    /// because the pruned walk's budget was exceeded (heavy symmetry).
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn small_arities_use_the_exact_walk() {
        let mut rng = StdRng::seed_from_u64(41);
        for n in 0..=6usize {
            for _ in 0..6 {
                let f = TruthTable::random(n, &mut rng).unwrap();
                let (canon, invariant) = certified_canonical(&f);
                assert!(invariant, "n = {n}");
                assert_eq!(canon, exact_npn_canonical(&f), "n = {n}, f = {f}");
            }
        }
    }

    #[test]
    fn pruned_walk_is_npn_invariant() {
        let mut rng = StdRng::seed_from_u64(43);
        for n in 7..=8usize {
            for _ in 0..12 {
                let f = TruthTable::random(n, &mut rng).unwrap();
                let t = NpnTransform::random(n, &mut rng);
                let g = t.apply(&f);
                let (cf, inv_f) = certified_canonical(&f);
                let (cg, inv_g) = certified_canonical(&g);
                assert_eq!(inv_f, inv_g, "budget verdict is orbit-invariant");
                if inv_f {
                    assert_eq!(cf, cg, "n = {n}, f = {f}, t = {t}");
                }
            }
        }
    }

    #[test]
    fn pruned_label_stays_in_the_orbit() {
        let mut rng = StdRng::seed_from_u64(47);
        for _ in 0..8 {
            let f = TruthTable::random(7, &mut rng).unwrap();
            let (canon, _) = certified_canonical(&f);
            assert!(
                crate::matcher::are_npn_equivalent(&f, &canon),
                "label must be an orbit member, f = {f}"
            );
        }
    }

    #[test]
    fn symmetric_functions_fall_back_deterministically() {
        let p = TruthTable::parity(8);
        let (a, invariant) = certified_canonical(&p);
        assert!(!invariant, "parity ties every profile");
        let (b, _) = certified_canonical(&p);
        assert_eq!(a, b, "fallback label is deterministic");
        assert!(crate::matcher::are_npn_equivalent(&p, &a));
    }

    #[test]
    fn resolver_matches_members_and_splits_collisions() {
        let resolver = BucketResolver::new();
        let mut rng = StdRng::seed_from_u64(53);
        let f = TruthTable::random(5, &mut rng).unwrap();
        let g = NpnTransform::random(5, &mut rng).apply(&f);
        let digest = 0xfeed_u128 << 100;
        let first = resolver.resolve(digest, &f);
        assert!(first.fresh);
        let second = resolver.resolve(digest, &g);
        assert!(!second.fresh, "orbit member joins the cached class");
        assert_eq!(first.representative, second.representative);
        // A non-equivalent function planted in the *same* bucket (a
        // digest collision) splits into its own certified class.
        let other = TruthTable::parity(5);
        let split = resolver.resolve(digest, &other);
        assert!(split.fresh);
        assert_ne!(split.representative, first.representative);
        assert_eq!(resolver.num_classes(), 2);
        assert_eq!(resolver.walks() + resolver.fallbacks(), 2);
        assert_eq!(resolver.matches(), 1);
    }

    #[test]
    fn witness_maps_onto_the_cached_representative() {
        let resolver = BucketResolver::new();
        let mut rng = StdRng::seed_from_u64(59);
        let f = TruthTable::random(6, &mut rng).unwrap();
        let digest = 7u128;
        assert!(resolver.witness(digest, &f).is_none(), "empty bucket");
        let resolved = resolver.resolve(digest, &f);
        let g = NpnTransform::random(6, &mut rng).apply(&f);
        let (rep, t) = resolver.witness(digest, &g).expect("class is cached");
        assert_eq!(rep, resolved.representative);
        assert_eq!(t.apply(&g), rep);
    }

    #[test]
    fn prime_rebuilds_a_bucket_without_walking() {
        let resolver = BucketResolver::new();
        let f = TruthTable::majority(5);
        let (canon, _) = certified_canonical(&f);
        resolver.prime(99, canon.clone());
        resolver.prime(99, canon.clone()); // idempotent
        assert_eq!(resolver.num_classes(), 1);
        let resolved = resolver.resolve(99, &f.flip_var(2));
        assert!(!resolved.fresh, "primed class is matched, not re-walked");
        assert_eq!(resolved.representative, canon);
        assert_eq!(resolver.walks(), 0);
    }

    #[test]
    fn mixed_arity_digest_collisions_never_match() {
        // A (hypothetical) digest collision across arities must split,
        // not panic inside the matcher.
        let resolver = BucketResolver::new();
        let a = resolver.resolve(1, &TruthTable::majority(3));
        let b = resolver.resolve(1, &TruthTable::majority(5));
        assert!(a.fresh && b.fresh);
        assert_eq!(resolver.num_classes(), 2);
    }
}
