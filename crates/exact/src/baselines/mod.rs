//! Reimplementations of the canonical-form NPN classifiers the paper
//! compares against in Table III.
//!
//! Each baseline computes a *heuristic canonical form*: a representative
//! obtained by applying genuine NPN transforms chosen by cheap rules.
//! Because the representative always lies inside the function's NPN
//! orbit, these classifiers can never merge two distinct classes — but
//! they *over-split* whenever their tie-breaking rules map equivalent
//! functions to different representatives. This is the mirror image of
//! the paper's signature classifier, which can only *merge* (see
//! DESIGN.md §3, substitution 2).
//!
//! | baseline | ABC flag | published idea | behaviour reproduced |
//! |---|---|---|---|
//! | [`Huang13`] | `testnpn -6` | linear-pass phase/order heuristic (Huang et al., FPT'13) | ultra fast, heavy over-split |
//! | [`Abdollahi08`] | — | signature-based canonical form via variable color refinement (Abdollahi & Pedram, TCAD'08, the paper's ref.\[3\]) | accurate on asymmetric functions, phase-tie enumeration |
//! | [`Petkovska16`] | `testnpn -7` | hierarchical refinement of tied orders (Petkovska et al., FPL'16) | fast, mild over-split |
//! | [`Zhou20`] | `testnpn -11` | canonical form co-designed with its computation, enumerating only within symmetric groups (Zhou et al., IEEE TC'20) | near-exact, runtime depends on symmetry structure |

mod abdollahi08;
mod huang13;
mod petkovska16;
mod zhou20;

pub use abdollahi08::Abdollahi08;
pub use huang13::Huang13;
pub use petkovska16::Petkovska16;
pub use zhou20::Zhou20;

use crate::classify::ClassLabels;
use facepoint_truth::TruthTable;

/// A classifier defined by a canonical-form function: two inputs share a
/// class iff their representatives are equal.
pub trait CanonicalClassifier {
    /// Short display name used in benchmark tables.
    fn name(&self) -> &'static str;

    /// The representative of `f`'s (approximate) class. Must be a member
    /// of `f`'s NPN orbit, so that distinct classes never collide.
    fn canonical_form(&self, f: &TruthTable) -> TruthTable;

    /// Groups `fns` by representative.
    fn classify(&self, fns: &[TruthTable]) -> ClassLabels {
        ClassLabels::from_keys(fns.iter().map(|f| self.canonical_form(f)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::exact_classify;
    use crate::matcher::are_npn_equivalent;
    use facepoint_truth::NpnTransform;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn baselines() -> Vec<Box<dyn CanonicalClassifier>> {
        vec![
            Box::new(Huang13),
            Box::new(Abdollahi08::default()),
            Box::new(Petkovska16::default()),
            Box::new(Zhou20::default()),
        ]
    }

    #[test]
    fn representatives_stay_in_orbit() {
        let mut rng = StdRng::seed_from_u64(131);
        for b in baselines() {
            for n in 1..=6usize {
                for _ in 0..6 {
                    let f = TruthTable::random(n, &mut rng).unwrap();
                    let canon = b.canonical_form(&f);
                    assert!(
                        are_npn_equivalent(&f, &canon),
                        "{}: representative of {f} left the orbit ({canon})",
                        b.name()
                    );
                }
            }
        }
    }

    #[test]
    fn representatives_are_idempotent_under_reclassification() {
        // canonical(canonical(f)) need not equal canonical(f) for
        // heuristics in general, but grouping must be stable: equal
        // representatives stay equal.
        let mut rng = StdRng::seed_from_u64(137);
        for b in baselines() {
            let f = TruthTable::random(5, &mut rng).unwrap();
            let c1 = b.canonical_form(&f);
            let c2 = b.canonical_form(&f);
            assert_eq!(c1, c2, "{} must be deterministic", b.name());
        }
    }

    #[test]
    fn baselines_never_undercount_classes() {
        // Over-split only: every baseline's class count is >= exact.
        let mut rng = StdRng::seed_from_u64(139);
        let mut fns = Vec::new();
        for _ in 0..60 {
            let f = TruthTable::random(4, &mut rng).unwrap();
            let t = NpnTransform::random(4, &mut rng);
            fns.push(t.apply(&f));
            fns.push(f);
        }
        let exact = exact_classify(&fns).num_classes();
        for b in baselines() {
            let approx = b.classify(&fns).num_classes();
            assert!(
                approx >= exact,
                "{}: {approx} classes < exact {exact}",
                b.name()
            );
        }
    }

    #[test]
    fn accuracy_ordering_on_random_workload() {
        // The paper's Table III ordering: Huang13 splits most, Zhou20
        // least. Check the weak ordering on a transform-closure workload
        // where over-splitting is visible.
        let mut rng = StdRng::seed_from_u64(149);
        let mut fns = Vec::new();
        for _ in 0..40 {
            let f = TruthTable::random(4, &mut rng).unwrap();
            for _ in 0..4 {
                fns.push(NpnTransform::random(4, &mut rng).apply(&f));
            }
        }
        let huang = Huang13.classify(&fns).num_classes();
        let petkovska = Petkovska16::default().classify(&fns).num_classes();
        let zhou = Zhou20::default().classify(&fns).num_classes();
        assert!(huang >= petkovska, "huang {huang} >= petkovska {petkovska}");
        assert!(petkovska >= zhou, "petkovska {petkovska} >= zhou {zhou}");
    }
}
