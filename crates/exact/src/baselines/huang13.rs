//! The Huang et al. FPT'13 style linear-pass heuristic canonical form
//! (ABC's `testnpn -6` in the paper's Table III).
//!
//! One pass fixes the output phase by satisfy count, one pass fixes each
//! input phase by comparing the two cofactor counts, and a stable sort of
//! the variables by cofactor count fixes the order. Every decision is
//! local and never revisited, which is why the method is the fastest row
//! of Table III — and why any *tie* (equal satisfy counts, equal cofactor
//! pairs) is resolved arbitrarily, splitting one true class into many.

use super::CanonicalClassifier;
use facepoint_truth::{Permutation, TruthTable};

/// Zero-configuration, linear-time heuristic canonicalizer.
///
/// # Examples
///
/// ```
/// use facepoint_exact::baselines::{CanonicalClassifier, Huang13};
/// use facepoint_truth::TruthTable;
///
/// let f = TruthTable::majority(3);
/// let g = f.flip_var(0).flip_var(2);
/// // Majority has no ties, so even the cheap heuristic canonicalizes it.
/// assert_eq!(Huang13.canonical_form(&f), Huang13.canonical_form(&g));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Huang13;

impl CanonicalClassifier for Huang13 {
    fn name(&self) -> &'static str {
        "huang13 (testnpn -6)"
    }

    fn canonical_form(&self, f: &TruthTable) -> TruthTable {
        let n = f.num_vars();
        // Output phase: prefer the polarity with fewer 1-minterms.
        // Balanced functions keep their polarity — the first source of
        // over-splitting.
        let mut t = if f.count_ones() * 2 > f.num_bits() {
            f.negated()
        } else {
            f.clone()
        };
        // Input phases: ensure |t_{x=0}| <= |t_{x=1}| per variable.
        // Equal counts stay as they are — the second source.
        for v in 0..n {
            if t.cofactor_count(v, false) > t.cofactor_count(v, true) {
                t.flip_var_in_place(v);
            }
        }
        if n == 0 {
            return t;
        }
        // Order: stable sort by (negative-cofactor count, positive-) —
        // ties keep their original relative order, the third source.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&v| (t.cofactor_count(v, false), t.cofactor_count(v, true)));
        // Variable order[k] moves to position k.
        let mut img = vec![0usize; n];
        for (k, &v) in order.iter().enumerate() {
            img[v] = k;
        }
        t.permute_vars(&Permutation::from_slice(&img).expect("sorted order is a permutation"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asymmetric_function_canonicalizes() {
        // f = x0 ∧ ¬x1 has distinct cofactor profiles everywhere.
        let f = TruthTable::from_hex(2, "2").unwrap();
        let variants = [
            f.clone(),
            f.flip_var(0),
            f.flip_var(1),
            f.swap_vars(0, 1),
            f.negated().flip_var(0),
        ];
        let canon = Huang13.canonical_form(&f);
        for v in &variants {
            // All are NPN-equivalent; this particular class has no ties,
            // so the heuristic gets all of them right.
            assert_eq!(Huang13.canonical_form(v), canon, "{v}");
        }
    }

    #[test]
    fn over_split_on_balanced_example() {
        // Parity is balanced with all-tied variables: complementing the
        // output produces a different representative even though
        // parity ≡ ¬parity under NPN (flip one input).
        let p = TruthTable::parity(3);
        let a = Huang13.canonical_form(&p);
        let b = Huang13.canonical_form(&p.negated());
        assert_ne!(a, b, "the heuristic over-splits the parity class");
    }

    #[test]
    fn zero_variable_inputs() {
        let zero = TruthTable::zero(0).unwrap();
        let one = TruthTable::one(0).unwrap();
        assert_eq!(Huang13.canonical_form(&one), zero, "constant-1 normalizes");
        assert_eq!(Huang13.canonical_form(&zero), zero);
    }
}
