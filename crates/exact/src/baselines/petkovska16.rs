//! The Petkovska et al. FPL'16 style hierarchical canonical form (ABC's
//! `testnpn -7` in the paper's Table III).
//!
//! Builds on the linear heuristic: output and input phases are fixed the
//! same way, but where [`Huang13`](super::Huang13) leaves tied variables
//! in arbitrary order, this method *refines hierarchically*: variables
//! are grouped by their cofactor signature, and every ordering of the
//! tied groups is enumerated (up to a budget), keeping the minimal truth
//! table. Phase ties and balanced output polarity remain unresolved —
//! more accurate than the linear pass, cheaper than a full hybrid.

use super::CanonicalClassifier;
use facepoint_truth::{Permutation, TruthTable};

/// Hierarchical canonicalizer with bounded tie enumeration.
#[derive(Debug, Clone, Copy)]
pub struct Petkovska16 {
    /// Maximum number of tied-group orderings explored per function.
    budget: usize,
}

impl Petkovska16 {
    /// Creates the classifier with an exploration budget (number of
    /// candidate variable orders examined per function).
    pub fn new(budget: usize) -> Self {
        Petkovska16 {
            budget: budget.max(1),
        }
    }
}

impl Default for Petkovska16 {
    /// The default budget (5040 = 7!) resolves all tie groups of up to
    /// seven variables exactly.
    fn default() -> Self {
        Petkovska16::new(5040)
    }
}

impl CanonicalClassifier for Petkovska16 {
    fn name(&self) -> &'static str {
        "petkovska16 (testnpn -7)"
    }

    fn canonical_form(&self, f: &TruthTable) -> TruthTable {
        let n = f.num_vars();
        let mut t = if f.count_ones() * 2 > f.num_bits() {
            f.negated()
        } else {
            f.clone()
        };
        for v in 0..n {
            if t.cofactor_count(v, false) > t.cofactor_count(v, true) {
                t.flip_var_in_place(v);
            }
        }
        if n == 0 {
            return t;
        }
        // Group variables by cofactor signature; group ordering is fixed
        // by the signature, orders *within* groups are enumerated.
        let mut order: Vec<usize> = (0..n).collect();
        let key = |v: usize| (t.cofactor_count(v, false), t.cofactor_count(v, true));
        order.sort_by_key(|&v| key(v));
        let groups: Vec<Vec<usize>> = chunk_by_key(&order, |&v| key(v));

        let mut best: Option<TruthTable> = None;
        let mut remaining = self.budget;
        enumerate_group_orders(&groups, &mut |candidate_order| {
            if remaining == 0 {
                return false;
            }
            remaining -= 1;
            let mut img = vec![0usize; n];
            for (k, &v) in candidate_order.iter().enumerate() {
                img[v] = k;
            }
            let perm = Permutation::from_slice(&img).expect("bijective order");
            let cand = t.permute_vars(&perm);
            if best.as_ref().is_none_or(|b| cand < *b) {
                best = Some(cand);
            }
            true
        });
        best.expect("at least the sorted order is examined")
    }
}

/// Splits a sorted slice into maximal runs of equal keys.
fn chunk_by_key<T: Copy, K: PartialEq>(sorted: &[T], mut key: impl FnMut(&T) -> K) -> Vec<Vec<T>> {
    let mut out: Vec<Vec<T>> = Vec::new();
    for &item in sorted {
        match out.last_mut() {
            Some(last) if key(&last[0]) == key(&item) => last.push(item),
            _ => out.push(vec![item]),
        }
    }
    out
}

/// Calls `visit` with every concatenation of per-group permutations
/// (groups stay in order; members permute within each group). `visit`
/// returns `false` to stop early.
fn enumerate_group_orders(groups: &[Vec<usize>], visit: &mut impl FnMut(&[usize]) -> bool) {
    let mut current: Vec<usize> = Vec::with_capacity(groups.iter().map(Vec::len).sum());
    descend(groups, 0, &mut current, visit);
}

fn descend(
    groups: &[Vec<usize>],
    depth: usize,
    current: &mut Vec<usize>,
    visit: &mut impl FnMut(&[usize]) -> bool,
) -> bool {
    if depth == groups.len() {
        return visit(current);
    }
    let mut members = groups[depth].clone();
    permute_recursive(&mut members, 0, &mut |perm| {
        current.extend_from_slice(perm);
        let keep_going = descend(groups, depth + 1, current, visit);
        current.truncate(current.len() - perm.len());
        keep_going
    })
}

/// Heap's-algorithm-style enumeration of permutations of `items[start..]`;
/// `visit` returns `false` to stop.
fn permute_recursive(
    items: &mut Vec<usize>,
    start: usize,
    visit: &mut impl FnMut(&[usize]) -> bool,
) -> bool {
    if start == items.len() {
        return visit(items);
    }
    for i in start..items.len() {
        items.swap(start, i);
        if !permute_recursive(items, start + 1, visit) {
            items.swap(start, i);
            return false;
        }
        items.swap(start, i);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_permutation_ties_that_huang_misses() {
        use super::super::Huang13;
        // f = x0 ∧ x1 ∧ ¬x2 ∧ ¬x3 has two tie groups of two variables;
        // swapping inside a group must reach the same representative.
        let f = TruthTable::from_fn(4, |m| m & 0b1111 == 0b0011).unwrap();
        let g = f.swap_vars(0, 1).swap_vars(2, 3);
        let p = Petkovska16::default();
        assert_eq!(p.canonical_form(&f), p.canonical_form(&g));
        // Sanity: Huang13 also happens to agree here or not — we only
        // check that Petkovska16 is deterministic and in-orbit.
        let _ = Huang13.canonical_form(&f);
    }

    #[test]
    fn budget_one_degrades_to_linear_pass() {
        let p1 = Petkovska16::new(1);
        let f = TruthTable::from_hex(4, "6ac9").unwrap();
        // With one candidate the method still returns a valid orbit
        // member.
        let c = p1.canonical_form(&f);
        assert!(crate::matcher::are_npn_equivalent(&f, &c));
    }

    #[test]
    fn group_order_enumeration_counts() {
        let groups = vec![vec![0, 1], vec![2], vec![3, 4, 5]];
        let mut count = 0;
        enumerate_group_orders(&groups, &mut |order| {
            assert_eq!(order.len(), 6);
            count += 1;
            true
        });
        assert_eq!(count, 2 * 6, "product of group factorials");
    }

    #[test]
    fn early_stop_respected() {
        let groups = vec![vec![0, 1, 2, 3]];
        let mut count = 0;
        enumerate_group_orders(&groups, &mut |_| {
            count += 1;
            count < 5
        });
        assert_eq!(count, 5);
    }
}
