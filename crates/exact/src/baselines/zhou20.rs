//! The Zhou et al. IEEE TC'20 style hybrid canonical form (ABC's
//! `testnpn -11` in the paper's Table III).
//!
//! The co-designed canonical form enumerates *only* the ambiguity that
//! cheap signatures cannot resolve: both output polarities when the
//! function is balanced, both phases of every variable whose two cofactor
//! counts coincide, and all orders inside groups of variables with equal
//! (cofactor, influence) profiles. On asymmetric functions the candidate
//! space collapses to a handful and the method is exact and fast; on
//! symmetric/balanced functions it blows up combinatorially, which is
//! exactly the runtime variance the paper's Fig. 5 demonstrates. A budget
//! caps the enumeration (the paper likewise strips ABC's final exhaustive
//! fallback for fairness), trading rare over-splits for bounded time.

use super::CanonicalClassifier;
use facepoint_sig::influence;
use facepoint_truth::{Permutation, TruthTable};

/// Hybrid canonicalizer enumerating inside signature-symmetric groups.
#[derive(Debug, Clone, Copy)]
pub struct Zhou20 {
    /// Maximum number of (phase, order) candidates applied per function.
    budget: usize,
    /// Collapse *true* NE-symmetry groups to a single order.
    symmetry_collapse: bool,
}

impl Zhou20 {
    /// Creates the classifier with a candidate budget.
    pub fn new(budget: usize) -> Self {
        Zhou20 {
            budget: budget.max(1),
            symmetry_collapse: false,
        }
    }

    /// Enables true-symmetry collapsing: profile groups whose members are
    /// pairwise NE-symmetric enumerate a single order instead of
    /// `|group|!` — sound (symmetric swaps fix the table, so the skipped
    /// orders are duplicates) and the actual accelerator of Zhou et
    /// al.'s published algorithm. Off by default to mirror the runtime
    /// profile the paper measures for `testnpn -11`.
    #[must_use]
    pub fn with_symmetry_collapse(mut self, on: bool) -> Self {
        self.symmetry_collapse = on;
        self
    }

    /// Number of candidates the enumeration would like to visit for `f`
    /// (before budget capping) — exposed so benchmarks can demonstrate
    /// the runtime variance.
    pub fn candidate_space(&self, f: &TruthTable) -> u128 {
        let n = f.num_vars();
        let t = normalize_polarity(f);
        let out_phases: u128 = if f.is_balanced() { 2 } else { 1 };
        let mut phase_combos: u128 = 1;
        for v in 0..n {
            if t.cofactor_count(v, false) == t.cofactor_count(v, true) {
                phase_combos = phase_combos.saturating_mul(2);
            }
        }
        let mut order_combos: u128 = 1;
        for g in profile_groups(&t) {
            order_combos = order_combos.saturating_mul((1..=g.len() as u128).product::<u128>());
        }
        out_phases
            .saturating_mul(phase_combos)
            .saturating_mul(order_combos)
    }
}

impl Default for Zhou20 {
    /// Default budget of 2000 candidates: exact on the vast majority of
    /// functions, capped on pathologically symmetric ones.
    fn default() -> Self {
        Zhou20::new(2000)
    }
}

/// Collapses every profile group whose members are pairwise NE-symmetric
/// to a single representative order (sound: symmetric transpositions fix
/// the table, so every skipped order produces a duplicate candidate).
fn collapse_symmetric_groups(t: &TruthTable, groups: Vec<Vec<usize>>) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    for g in groups {
        let fully_symmetric = g.len() > 1
            && g.iter().enumerate().all(|(i, &a)| {
                g[i + 1..]
                    .iter()
                    .all(|&b| facepoint_sig::symmetry::ne_symmetric(t, a, b))
            });
        if fully_symmetric {
            // Split into singletons: only the ascending arrangement of
            // the class is enumerated.
            out.extend(g.into_iter().map(|v| vec![v]));
        } else {
            out.push(g);
        }
    }
    out
}

impl CanonicalClassifier for Zhou20 {
    fn name(&self) -> &'static str {
        "zhou20 (testnpn -11)"
    }

    fn canonical_form(&self, f: &TruthTable) -> TruthTable {
        let n = f.num_vars();
        let polarities: Vec<TruthTable> = if f.is_balanced() {
            vec![f.clone(), f.negated()]
        } else {
            vec![normalize_polarity(f)]
        };
        let mut best: Option<TruthTable> = None;
        let mut remaining = self.budget;
        for base in polarities {
            if n == 0 {
                consider(base.clone(), &mut best);
                continue;
            }
            // Variables with tied cofactor counts have ambiguous phase.
            let ambiguous: Vec<usize> = (0..n)
                .filter(|&v| base.cofactor_count(v, false) == base.cofactor_count(v, true))
                .collect();
            // Deterministic phase for the rest.
            let mut phased = base.clone();
            for v in 0..n {
                if phased.cofactor_count(v, false) > phased.cofactor_count(v, true) {
                    phased.flip_var_in_place(v);
                }
            }
            let combos = 1u64.checked_shl(ambiguous.len() as u32).unwrap_or(u64::MAX);
            'phase: for mask in 0..combos {
                let mut t = phased.clone();
                for (k, &v) in ambiguous.iter().enumerate() {
                    if (mask >> k) & 1 == 1 {
                        t.flip_var_in_place(v);
                    }
                }
                let mut groups = profile_groups(&t);
                if self.symmetry_collapse {
                    groups = collapse_symmetric_groups(&t, groups);
                }
                let stop = !enumerate_orders(&groups, &mut |order| {
                    if remaining == 0 {
                        return false;
                    }
                    remaining -= 1;
                    let mut img = vec![0usize; n];
                    for (k, &v) in order.iter().enumerate() {
                        img[v] = k;
                    }
                    let perm = Permutation::from_slice(&img).expect("bijective order");
                    consider(t.permute_vars(&perm), &mut best);
                    true
                });
                if stop {
                    break 'phase;
                }
            }
        }
        best.expect("at least one candidate is always applied")
    }
}

fn consider(cand: TruthTable, best: &mut Option<TruthTable>) {
    if best.as_ref().is_none_or(|b| cand < *b) {
        *best = Some(cand);
    }
}

fn normalize_polarity(f: &TruthTable) -> TruthTable {
    if f.count_ones() * 2 > f.num_bits() {
        f.negated()
    } else {
        f.clone()
    }
}

/// Groups variables by their (unordered cofactor pair, influence)
/// profile; groups are ordered by profile, members ascend.
fn profile_groups(t: &TruthTable) -> Vec<Vec<usize>> {
    let n = t.num_vars();
    let key = |v: usize| {
        let c0 = t.cofactor_count(v, false);
        let c1 = t.cofactor_count(v, true);
        (c0.min(c1), c0.max(c1), influence(t, v))
    };
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| key(v));
    let mut out: Vec<Vec<usize>> = Vec::new();
    for v in order {
        match out.last_mut() {
            Some(last) if key(last[0]) == key(v) => last.push(v),
            _ => out.push(vec![v]),
        }
    }
    out
}

/// Visits every concatenation of per-group permutations; returns `false`
/// if the visitor aborted.
fn enumerate_orders(groups: &[Vec<usize>], visit: &mut impl FnMut(&[usize]) -> bool) -> bool {
    let mut current = Vec::with_capacity(groups.iter().map(Vec::len).sum());
    walk(groups, 0, &mut current, visit)
}

fn walk(
    groups: &[Vec<usize>],
    depth: usize,
    current: &mut Vec<usize>,
    visit: &mut impl FnMut(&[usize]) -> bool,
) -> bool {
    if depth == groups.len() {
        return visit(current);
    }
    let mut members = groups[depth].clone();
    permutations_of(&mut members, 0, &mut |perm| {
        current.extend_from_slice(perm);
        let cont = walk(groups, depth + 1, current, visit);
        current.truncate(current.len() - perm.len());
        cont
    })
}

fn permutations_of(
    items: &mut Vec<usize>,
    start: usize,
    visit: &mut impl FnMut(&[usize]) -> bool,
) -> bool {
    if start == items.len() {
        return visit(items);
    }
    for i in start..items.len() {
        items.swap(start, i);
        if !permutations_of(items, start + 1, visit) {
            items.swap(start, i);
            return false;
        }
        items.swap(start, i);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::exact_npn_canonical;
    use facepoint_truth::NpnTransform;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn near_exact_on_random_functions() {
        // With a generous budget, Zhou20 should classify random 4-var
        // workloads exactly (random functions are rarely symmetric).
        let z = Zhou20::new(100_000);
        let mut rng = StdRng::seed_from_u64(151);
        let mut mismatches = 0;
        for _ in 0..40 {
            let f = TruthTable::random(4, &mut rng).unwrap();
            let t = NpnTransform::random(4, &mut rng);
            let g = t.apply(&f);
            if z.canonical_form(&f) != z.canonical_form(&g) {
                mismatches += 1;
            }
        }
        assert_eq!(mismatches, 0, "uncapped Zhou20 is exact on these");
    }

    #[test]
    fn exactness_against_ground_truth_with_big_budget() {
        // With the budget effectively unbounded the hybrid enumeration
        // covers every unresolved ambiguity, so its partition refines to
        // the exact one on small n.
        let z = Zhou20::new(10_000_000);
        let mut rng = StdRng::seed_from_u64(157);
        for _ in 0..30 {
            let f = TruthTable::random(3, &mut rng).unwrap();
            let t = NpnTransform::random(3, &mut rng);
            let g = t.apply(&f);
            assert_eq!(
                z.canonical_form(&f) == z.canonical_form(&g),
                exact_npn_canonical(&f) == exact_npn_canonical(&g),
                "f = {f}"
            );
        }
    }

    #[test]
    fn candidate_space_explodes_on_symmetric_functions() {
        let z = Zhou20::default();
        let sym = TruthTable::majority(7); // fully symmetric: one group of 7
        let mut rng = StdRng::seed_from_u64(163);
        let rand = TruthTable::random(7, &mut rng).unwrap();
        assert!(
            z.candidate_space(&sym) > 100 * z.candidate_space(&rand).max(1),
            "symmetric {} vs random {}",
            z.candidate_space(&sym),
            z.candidate_space(&rand)
        );
    }

    #[test]
    fn budget_caps_runtime_not_validity() {
        let z = Zhou20::new(10);
        let f = TruthTable::parity(6); // everything tied
        let c = z.canonical_form(&f);
        assert!(crate::matcher::are_npn_equivalent(&f, &c));
    }

    #[test]
    fn symmetry_collapse_preserves_canonical_forms() {
        // Collapsing true symmetry groups skips only duplicate orders,
        // so the representative must be unchanged wherever the budget
        // was already sufficient.
        let plain = Zhou20::new(1_000_000);
        let fast = Zhou20::new(1_000_000).with_symmetry_collapse(true);
        let mut rng = StdRng::seed_from_u64(241);
        for _ in 0..20 {
            let f = TruthTable::random(4, &mut rng).unwrap();
            assert_eq!(plain.canonical_form(&f), fast.canonical_form(&f), "{f}");
        }
        // And on fully symmetric functions, where the saving is maximal.
        for f in [TruthTable::majority(5), TruthTable::parity(5)] {
            assert_eq!(plain.canonical_form(&f), fast.canonical_form(&f));
        }
    }

    #[test]
    fn symmetry_collapse_equivalence_preserved_under_transforms() {
        let fast = Zhou20::new(1_000_000).with_symmetry_collapse(true);
        let mut rng = StdRng::seed_from_u64(251);
        for _ in 0..15 {
            let f = TruthTable::random(4, &mut rng).unwrap();
            let g = NpnTransform::random(4, &mut rng).apply(&f);
            assert_eq!(fast.canonical_form(&f), fast.canonical_form(&g), "f = {f}");
        }
    }
}
