//! The Abdollahi–Pedram style *signature-based canonical form* (cited as
//! \[3\] in the paper; IEEE TCAD 2008).
//!
//! Where the linear heuristics order variables by raw cofactor counts,
//! this method runs a **color refinement** (1-WL) loop over the
//! variables: each variable's color is iteratively refined by the
//! multiset of (neighbour color, joint 2-ary cofactor profile) pairs
//! until a fixpoint. The refined coloring discriminates variables that
//! first-order signatures tie, so far fewer orders remain to enumerate —
//! the canonical form is "signature-based" in exactly the paper's sense
//! of using cofactor signatures to pin the transformation.

use super::CanonicalClassifier;
use facepoint_truth::{Permutation, TruthTable};

/// Signature-based canonicalizer with color-refined variable ordering.
#[derive(Debug, Clone, Copy)]
pub struct Abdollahi08 {
    /// Maximum number of residual-tie orders applied per function.
    budget: usize,
}

impl Abdollahi08 {
    /// Creates the classifier with an enumeration budget for residual
    /// ties.
    pub fn new(budget: usize) -> Self {
        Abdollahi08 {
            budget: budget.max(1),
        }
    }
}

impl Default for Abdollahi08 {
    /// Default budget of 720 (= 6!) residual orders.
    fn default() -> Self {
        Abdollahi08::new(720)
    }
}

impl CanonicalClassifier for Abdollahi08 {
    fn name(&self) -> &'static str {
        "abdollahi08 (signature-based)"
    }

    fn canonical_form(&self, f: &TruthTable) -> TruthTable {
        let n = f.num_vars();
        let polarities: Vec<TruthTable> = if f.is_balanced() {
            vec![f.clone(), f.negated()]
        } else if f.count_ones() * 2 > f.num_bits() {
            vec![f.negated()]
        } else {
            vec![f.clone()]
        };
        let mut best: Option<TruthTable> = None;
        let mut remaining = self.budget;
        for mut base in polarities {
            if n == 0 {
                consider(base, &mut best);
                continue;
            }
            // Deterministic input phases where the cofactor pair decides;
            // variables with tied pairs stay ambiguous and are enumerated
            // (the signature cannot see their polarity).
            let mut ambiguous = Vec::new();
            for v in 0..n {
                let c0 = base.cofactor_count(v, false);
                let c1 = base.cofactor_count(v, true);
                if c0 > c1 {
                    base.flip_var_in_place(v);
                } else if c0 == c1 {
                    ambiguous.push(v);
                }
            }
            let combos = 1u64.checked_shl(ambiguous.len() as u32).unwrap_or(u64::MAX);
            'phase: for mask in 0..combos {
                let mut t = base.clone();
                for (k, &v) in ambiguous.iter().enumerate() {
                    if (mask >> k) & 1 == 1 {
                        t.flip_var_in_place(v);
                    }
                }
                let colors = refine_colors(&t);
                // Group variables by final color, order groups by color.
                let mut order: Vec<usize> = (0..n).collect();
                order.sort_by_key(|&v| (colors[v], v));
                let mut groups: Vec<Vec<usize>> = Vec::new();
                for v in order {
                    match groups.last_mut() {
                        Some(g) if colors[g[0]] == colors[v] => g.push(v),
                        _ => groups.push(vec![v]),
                    }
                }
                let stop = !enumerate_group_orders(&groups, &mut |candidate| {
                    if remaining == 0 {
                        return false;
                    }
                    remaining -= 1;
                    let mut img = vec![0usize; n];
                    for (k, &v) in candidate.iter().enumerate() {
                        img[v] = k;
                    }
                    let perm = Permutation::from_slice(&img).expect("bijective order");
                    consider(t.permute_vars(&perm), &mut best);
                    true
                });
                if stop {
                    break 'phase;
                }
            }
        }
        best.expect("at least one candidate examined")
    }
}

fn consider(cand: TruthTable, best: &mut Option<TruthTable>) {
    if best.as_ref().is_none_or(|b| cand < *b) {
        *best = Some(cand);
    }
}

/// Color refinement over variables: start from the (unordered) cofactor
/// pair, refine with sorted (neighbour-color, pair-profile) multisets,
/// stop at the fixpoint (color counts stable) — at most `n` rounds.
fn refine_colors(t: &TruthTable) -> Vec<u64> {
    let n = t.num_vars();
    // Initial color: the unordered 1-ary cofactor pair.
    let mut colors: Vec<u64> = (0..n)
        .map(|v| {
            let c0 = t.cofactor_count(v, false);
            let c1 = t.cofactor_count(v, true);
            hash_key(&[c0.min(c1), c0.max(c1)])
        })
        .collect();
    for _round in 0..n {
        let mut new_colors = Vec::with_capacity(n);
        for i in 0..n {
            let mut neigh: Vec<u64> = (0..n)
                .filter(|&j| j != i)
                .map(|j| {
                    // Phase-insensitive joint profile of (i, j): the four
                    // 2-ary cofactor counts, normalized per variable
                    // polarity class: sort the two (i-fixed) pairs.
                    let c = |vi: bool, vj: bool| t.cofactor_count_multi(&[i, j], &[vi, vj]);
                    let mut pair0 = [c(false, false), c(false, true)];
                    let mut pair1 = [c(true, false), c(true, true)];
                    pair0.sort_unstable();
                    pair1.sort_unstable();
                    let (lo, hi) = if pair0 <= pair1 {
                        (pair0, pair1)
                    } else {
                        (pair1, pair0)
                    };
                    hash_key(&[colors[j], lo[0], lo[1], hi[0], hi[1]])
                })
                .collect();
            neigh.sort_unstable();
            let mut key = vec![colors[i]];
            key.extend(neigh);
            new_colors.push(hash_key(&key));
        }
        let stable = count_distinct(&new_colors) == count_distinct(&colors);
        colors = new_colors;
        if stable {
            break;
        }
    }
    colors
}

fn hash_key(words: &[u64]) -> u64 {
    // FNV-1a 64 over the words; deterministic and cheap.
    let mut h: u64 = 0xcbf29ce484222325;
    for &w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

fn count_distinct(colors: &[u64]) -> usize {
    let mut v = colors.to_vec();
    v.sort_unstable();
    v.dedup();
    v.len()
}

/// Visits every concatenation of per-group permutations.
fn enumerate_group_orders(groups: &[Vec<usize>], visit: &mut impl FnMut(&[usize]) -> bool) -> bool {
    fn walk(
        groups: &[Vec<usize>],
        depth: usize,
        current: &mut Vec<usize>,
        visit: &mut impl FnMut(&[usize]) -> bool,
    ) -> bool {
        if depth == groups.len() {
            return visit(current);
        }
        let mut members = groups[depth].clone();
        permute(&mut members, 0, &mut |perm| {
            current.extend_from_slice(perm);
            let cont = walk(groups, depth + 1, current, visit);
            current.truncate(current.len() - perm.len());
            cont
        })
    }
    fn permute(
        items: &mut Vec<usize>,
        start: usize,
        visit: &mut impl FnMut(&[usize]) -> bool,
    ) -> bool {
        if start == items.len() {
            return visit(items);
        }
        for i in start..items.len() {
            items.swap(start, i);
            if !permute(items, start + 1, visit) {
                items.swap(start, i);
                return false;
            }
            items.swap(start, i);
        }
        true
    }
    let mut current = Vec::with_capacity(groups.iter().map(Vec::len).sum());
    walk(groups, 0, &mut current, visit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use facepoint_truth::NpnTransform;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn colors_are_transform_covariant() {
        // NE-symmetric variables must share a color; asymmetric ones
        // usually split.
        let f = TruthTable::from_fn(3, |m| (m & 1 == 1) && (m & 0b110 != 0)).unwrap();
        let colors = refine_colors(&f);
        assert_eq!(colors[1], colors[2], "symmetric pair shares a color");
        assert_ne!(colors[0], colors[1], "the AND input splits off");
    }

    #[test]
    fn representative_in_orbit() {
        let a = Abdollahi08::default();
        let mut rng = StdRng::seed_from_u64(271);
        for n in 1..=6usize {
            for _ in 0..5 {
                let f = TruthTable::random(n, &mut rng).unwrap();
                assert!(crate::matcher::are_npn_equivalent(
                    &f,
                    &a.canonical_form(&f)
                ));
            }
        }
    }

    #[test]
    fn near_exact_on_random_workloads() {
        let a = Abdollahi08::new(100_000);
        let mut rng = StdRng::seed_from_u64(277);
        let mut mismatches = 0;
        for _ in 0..40 {
            let f = TruthTable::random(4, &mut rng).unwrap();
            let t = NpnTransform::random(4, &mut rng);
            if a.canonical_form(&f) != a.canonical_form(&t.apply(&f)) {
                mismatches += 1;
            }
        }
        // Color refinement resolves almost every tie on random functions;
        // residual misses come from phase ties, allowed but rare.
        assert!(mismatches <= 2, "{mismatches} misses of 40");
    }

    #[test]
    fn refinement_beats_raw_cofactor_ordering() {
        use super::super::{CanonicalClassifier, Huang13};
        // Transform-closure workload: the refined ordering over-splits
        // strictly less than the linear heuristic.
        let mut rng = StdRng::seed_from_u64(281);
        let mut fns = Vec::new();
        for _ in 0..30 {
            let f = TruthTable::random(4, &mut rng).unwrap();
            for _ in 0..4 {
                fns.push(NpnTransform::random(4, &mut rng).apply(&f));
            }
        }
        let a = Abdollahi08::default().classify(&fns).num_classes();
        let h = Huang13.classify(&fns).num_classes();
        assert!(a <= h, "abdollahi {a} <= huang {h}");
    }
}
