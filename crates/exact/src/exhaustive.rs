//! Exhaustive exact NPN canonicalization — the analog of Kitty's
//! `exact_npn_canonization` used as the paper's ground truth for `n ≤ 6`.
//!
//! The canonical form of `f` is the numerically smallest truth table in
//! its NPN orbit. The walk visits permutations in plain-changes order
//! (one adjacent variable swap per step) and, per permutation, all input
//! phases in Gray-code order (one variable flip per step), checking both
//! output polarities — `n!·2^n` states, two comparisons each, with O(1)
//! table updates between states.
//!
//! Cost grows as `n!·2^n`: microseconds up to `n = 5`, ~milliseconds at
//! `n = 6`, ~a second at `n = 8`. Beyond that use
//! [`exact_classify`](crate::exact_classify), which needs no canonical form.

use crate::enumerate::{factorial, gray_flip_bit, plain_changes};
use facepoint_truth::words::{flip_var_word, swap_vars_word, valid_bits_mask, WORD_VARS};
use facepoint_truth::TruthTable;

/// The exact NPN canonical representative of `f`: the minimum truth table
/// over all `n!·2^{n+1}` transforms.
///
/// Two functions are NPN-equivalent **iff** their canonical forms are
/// equal — this is the complete-and-unique canonical form the paper's
/// Section I attributes to classical classification methods.
///
/// # Panics
///
/// Panics if `num_vars > 10` — the enumeration would be prohibitively
/// large; use the pairwise matcher / exact classifier instead.
///
/// # Examples
///
/// ```
/// use facepoint_exact::exact_npn_canonical;
/// use facepoint_truth::{NpnTransform, TruthTable};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(9);
/// let f = TruthTable::random(5, &mut rng)?;
/// let g = NpnTransform::random(5, &mut rng).apply(&f);
/// assert_eq!(exact_npn_canonical(&f), exact_npn_canonical(&g));
/// # Ok::<(), facepoint_truth::Error>(())
/// ```
pub fn exact_npn_canonical(f: &TruthTable) -> TruthTable {
    let n = f.num_vars();
    assert!(n <= 10, "exhaustive canonicalization is limited to n ≤ 10");
    if n <= WORD_VARS {
        let canon = canonical_u64(f.as_u64(), n);
        return TruthTable::from_u64(n, canon).expect("n ≤ 6");
    }
    canonical_multiword(f)
}

/// Exhaustive canonical form of a single-word function (`n ≤ 6`),
/// operating on the raw `u64` for speed.
///
/// # Panics
///
/// Panics if `num_vars > 6`.
pub fn canonical_u64(tt: u64, num_vars: usize) -> u64 {
    assert!(num_vars <= WORD_VARS, "canonical_u64 requires n ≤ 6");
    let mask = valid_bits_mask(num_vars);
    let tt = tt & mask;
    if num_vars == 0 {
        // Output negation maps the two constants onto constant 0.
        return 0;
    }
    let mut best = u64::MAX;
    let swaps = plain_changes(num_vars);
    let mut cur = tt;
    let phases = 1u64 << num_vars;
    for swap in swaps.iter().map(Some).chain(std::iter::once(None)) {
        // All input phases of the current permutation, Gray-code order.
        best = best.min(cur).min(!cur & mask);
        for g in 1..phases {
            cur = flip_var_word(cur, gray_flip_bit(g) as usize);
            best = best.min(cur).min(!cur & mask);
        }
        // The Gray walk ends at phase 100…0; one more flip restores 0.
        cur = flip_var_word(cur, num_vars - 1);
        if let Some(&p) = swap {
            cur = swap_vars_word(cur, p, p + 1);
        }
    }
    best
}

fn canonical_multiword(f: &TruthTable) -> TruthTable {
    let n = f.num_vars();
    let swaps = plain_changes(n);
    let mut cur = f.clone();
    let mut best: Option<TruthTable> = None;
    let phases = 1u64 << n;
    let consider = |t: &TruthTable, best: &mut Option<TruthTable>| {
        let neg = t.negated();
        let cand = if neg < *t { neg } else { t.clone() };
        match best {
            Some(b) if *b <= cand => {}
            _ => *best = Some(cand),
        }
    };
    for swap in swaps.iter().map(Some).chain(std::iter::once(None)) {
        consider(&cur, &mut best);
        for g in 1..phases {
            cur.flip_var_in_place(gray_flip_bit(g) as usize);
            consider(&cur, &mut best);
        }
        cur.flip_var_in_place(n - 1);
        if let Some(&p) = swap {
            cur.swap_adjacent_in_place(p);
        }
    }
    best.expect("at least one candidate")
}

/// Exact canonical form that also returns a witness transform `t` with
/// `t.apply(f) == canonical`.
///
/// Slower than [`exact_npn_canonical`] (it materializes each transform);
/// intended for tests and for callers that need the witness.
///
/// # Panics
///
/// Panics if `num_vars > 8`.
pub fn exact_npn_canonical_with_witness(
    f: &TruthTable,
) -> (TruthTable, facepoint_truth::NpnTransform) {
    let n = f.num_vars();
    let mut best: Option<(TruthTable, facepoint_truth::NpnTransform)> = None;
    for t in crate::enumerate::all_transforms(n) {
        let g = t.apply(f);
        if best.as_ref().is_none_or(|(b, _)| g < *b) {
            best = Some((g, t));
        }
    }
    let (canon, t) = best.expect("non-empty transform group");
    debug_assert_eq!(t.apply(f), canon);
    (canon, t)
}

/// Number of states the exhaustive walk visits for `n` variables
/// (`n!·2^n` phase/permutation pairs; each state checks both output
/// polarities).
pub fn exhaustive_states(num_vars: usize) -> u64 {
    factorial(num_vars) << num_vars
}

#[cfg(test)]
mod tests {
    use super::*;
    use facepoint_truth::NpnTransform;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn canonical_is_npn_invariant_small() {
        let mut rng = StdRng::seed_from_u64(81);
        for n in 0..=5usize {
            for _ in 0..10 {
                let f = TruthTable::random(n, &mut rng).unwrap();
                let t = NpnTransform::random(n, &mut rng);
                assert_eq!(
                    exact_npn_canonical(&f),
                    exact_npn_canonical(&t.apply(&f)),
                    "n = {n}, f = {f}, t = {t}"
                );
            }
        }
    }

    #[test]
    fn canonical_is_in_orbit() {
        let mut rng = StdRng::seed_from_u64(83);
        for _ in 0..10 {
            let f = TruthTable::random(4, &mut rng).unwrap();
            let canon = exact_npn_canonical(&f);
            let found = crate::enumerate::all_transforms(4).any(|t| t.apply(&f) == canon);
            assert!(found, "canonical form must be reachable, f = {f}");
        }
    }

    #[test]
    fn canonical_is_minimum_of_orbit() {
        let mut rng = StdRng::seed_from_u64(87);
        for _ in 0..5 {
            let f = TruthTable::random(4, &mut rng).unwrap();
            let canon = exact_npn_canonical(&f);
            let min = crate::enumerate::all_transforms(4)
                .map(|t| t.apply(&f))
                .min()
                .unwrap();
            assert_eq!(canon, min);
        }
    }

    #[test]
    fn witness_maps_to_canonical() {
        let mut rng = StdRng::seed_from_u64(89);
        for _ in 0..5 {
            let f = TruthTable::random(4, &mut rng).unwrap();
            let (canon, t) = exact_npn_canonical_with_witness(&f);
            assert_eq!(t.apply(&f), canon);
            assert_eq!(canon, exact_npn_canonical(&f));
        }
    }

    #[test]
    fn multiword_agrees_with_word_path() {
        // Build a 7-variable function that ignores x6; its canonical form
        // under the multiword path must be consistent under transforms.
        let mut rng = StdRng::seed_from_u64(91);
        for _ in 0..3 {
            let f = TruthTable::random(7, &mut rng).unwrap();
            let t = NpnTransform::random(7, &mut rng);
            assert_eq!(exact_npn_canonical(&f), exact_npn_canonical(&t.apply(&f)));
        }
    }

    #[test]
    fn constants_canonicalize_to_zero() {
        for n in 0..=4usize {
            assert_eq!(
                exact_npn_canonical(&TruthTable::one(n).unwrap()),
                TruthTable::zero(n).unwrap()
            );
            assert_eq!(
                exact_npn_canonical(&TruthTable::zero(n).unwrap()),
                TruthTable::zero(n).unwrap()
            );
        }
    }

    #[test]
    fn known_npn_class_counts_tiny() {
        // The number of NPN classes of n-variable functions is a classical
        // sequence: 1 (n=0... counting both constants as one class), 2, 4,
        // 14 for n = 0..3.
        use std::collections::HashSet;
        for (n, expect) in [(0usize, 1usize), (1, 2), (2, 4), (3, 14)] {
            let total = 1u64 << (1u64 << n);
            let classes: HashSet<u64> = (0..total).map(|bits| canonical_u64(bits, n)).collect();
            assert_eq!(classes.len(), expect, "n = {n}");
        }
    }

    #[test]
    fn state_counts() {
        assert_eq!(exhaustive_states(3), 48);
        assert_eq!(exhaustive_states(6), 46080);
    }
}
