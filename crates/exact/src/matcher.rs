//! Pairwise exact NPN equivalence: a backtracking Boolean matcher with
//! signature pruning.
//!
//! Where canonical forms answer "what is the class representative?", the
//! matcher answers the cheaper question "are these two functions NPN
//! equivalent?" directly, which is all exact *classification* needs once
//! signature buckets have pre-grouped the candidates (the architecture of
//! the paper's `exact version in \[19\]` comparison point, and of the
//! sensitivity-pruned matcher of Zhang et al. \[6\]).
//!
//! The search assigns, one source variable at a time, a target variable
//! and phase, pruning with per-variable profiles (cofactor pair +
//! influence) and validating every partial assignment with joint cofactor
//! counts. On NPN-equivalent inputs the profiles typically pin the
//! mapping almost uniquely; on non-equivalent inputs that survived the
//! signature bucket the partial-assignment checks cut the tree quickly.

use facepoint_sig::influence;
use facepoint_truth::{NpnTransform, Permutation, TruthTable};

/// Decides NPN equivalence of `f` and `g`, returning a witness transform
/// `t` (with `t.apply(f) == g`) when equivalent.
///
/// # Panics
///
/// Panics if the functions have different variable counts (functions of
/// different arity are never NPN-equivalent; the caller buckets by arity
/// first).
///
/// # Examples
///
/// ```
/// use facepoint_exact::npn_match;
/// use facepoint_truth::{NpnTransform, TruthTable};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(2);
/// let f = TruthTable::random(6, &mut rng)?;
/// let g = NpnTransform::random(6, &mut rng).apply(&f);
/// let witness = npn_match(&f, &g).expect("equivalent by construction");
/// assert_eq!(witness.apply(&f), g);
/// # Ok::<(), facepoint_truth::Error>(())
/// ```
pub fn npn_match(f: &TruthTable, g: &TruthTable) -> Option<NpnTransform> {
    assert_eq!(
        f.num_vars(),
        g.num_vars(),
        "NPN matching requires equal variable counts"
    );
    let n = f.num_vars();
    let ones_f = f.count_ones();
    let ones_g = g.count_ones();
    let total = f.num_bits();

    // Output phase: |t(f)| is |f| (no output negation) or 2^n − |f|.
    let mut phases = Vec::with_capacity(2);
    if ones_f == ones_g {
        phases.push(false);
    }
    if total - ones_f == ones_g {
        phases.push(true);
    }
    for out in phases {
        let h = if out { f.negated() } else { f.clone() };
        if n == 0 {
            // Constants: equality after output phase settles it.
            if h == *g {
                return Some(NpnTransform::phase(0, 0, out));
            }
            continue;
        }
        if let Some((perm, neg)) = match_pn(&h, g) {
            let t = NpnTransform::new(perm, neg, out);
            debug_assert_eq!(t.apply(f), *g);
            return Some(t);
        }
    }
    None
}

/// Whether `f` and `g` are NPN-equivalent (no witness needed).
pub fn are_npn_equivalent(f: &TruthTable, g: &TruthTable) -> bool {
    npn_match(f, g).is_some()
}

/// Decides **PN equivalence** (input negation + permutation, no output
/// negation): `g(X) = f(Y)`, `Y_i = X_{perm[i]} ⊕ neg_i`.
///
/// The restriction the paper's Theorems 1, 2 and 4 are stated for.
///
/// # Panics
///
/// Panics if the functions have different variable counts.
pub fn pn_match(f: &TruthTable, g: &TruthTable) -> Option<NpnTransform> {
    assert_eq!(
        f.num_vars(),
        g.num_vars(),
        "PN matching requires equal variable counts"
    );
    if f.count_ones() != g.count_ones() {
        return None;
    }
    if f.num_vars() == 0 {
        return (f == g).then(|| NpnTransform::identity(0));
    }
    let (perm, neg) = match_pn(f, g)?;
    let t = NpnTransform::new(perm, neg, false);
    debug_assert_eq!(t.apply(f), *g);
    Some(t)
}

/// Decides **P equivalence** (permutation only): `g(X) = f(π(X))`.
///
/// # Panics
///
/// Panics if the functions have different variable counts.
pub fn p_match(f: &TruthTable, g: &TruthTable) -> Option<Permutation> {
    assert_eq!(
        f.num_vars(),
        g.num_vars(),
        "P matching requires equal variable counts"
    );
    let n = f.num_vars();
    if f.count_ones() != g.count_ones() {
        return None;
    }
    if n == 0 {
        return (f == g).then(|| Permutation::identity(0));
    }
    // Candidates must preserve the *ordered* cofactor pair (no phase
    // freedom here).
    let key = |t: &TruthTable, v: usize| (t.cofactor_count(v, false), t.cofactor_count(v, true));
    let mut order: Vec<usize> = (0..n).collect();
    let candidates: Vec<Vec<usize>> = (0..n)
        .map(|i| (0..n).filter(|&j| key(g, j) == key(f, i)).collect())
        .collect();
    order.sort_by_key(|&i| candidates[i].len());
    fn descend(
        f: &TruthTable,
        g: &TruthTable,
        order: &[usize],
        candidates: &[Vec<usize>],
        assignment: &mut Vec<usize>,
        used: &mut Vec<bool>,
        depth: usize,
    ) -> bool {
        let n = f.num_vars();
        if depth == n {
            let perm = Permutation::from_slice(assignment).expect("bijective");
            return f.permute_vars(&perm) == *g;
        }
        let fv = order[depth];
        for &gv in &candidates[fv] {
            if used[gv] {
                continue;
            }
            assignment[fv] = gv;
            used[gv] = true;
            if descend(f, g, order, candidates, assignment, used, depth + 1) {
                return true;
            }
            assignment[fv] = usize::MAX;
            used[gv] = false;
        }
        false
    }
    let mut assignment = vec![usize::MAX; n];
    let mut used = vec![false; n];
    if descend(f, g, &order, &candidates, &mut assignment, &mut used, 0) {
        let perm = Permutation::from_slice(&assignment).expect("bijective");
        debug_assert_eq!(f.permute_vars(&perm), *g);
        Some(perm)
    } else {
        None
    }
}

/// Per-variable invariant profile: the unordered cofactor-count pair and
/// the influence. A variable of `h` can only map to a variable of `g`
/// with an identical profile.
#[derive(PartialEq, Eq, PartialOrd, Ord, Clone, Copy, Debug)]
struct VarProfile {
    cof_lo: u64,
    cof_hi: u64,
    influence: u32,
}

fn profile(t: &TruthTable, var: usize) -> VarProfile {
    let c0 = t.cofactor_count(var, false);
    let c1 = t.cofactor_count(var, true);
    VarProfile {
        cof_lo: c0.min(c1),
        cof_hi: c0.max(c1),
        influence: influence(t, var),
    }
}

/// PN matching: find `(perm, neg)` with `g(X) = h(Y)`, `Y_i = X_{perm[i]}
/// ⊕ neg_i`.
fn match_pn(h: &TruthTable, g: &TruthTable) -> Option<(Permutation, u16)> {
    let n = h.num_vars();
    let h_profiles: Vec<VarProfile> = (0..n).map(|v| profile(h, v)).collect();
    let g_profiles: Vec<VarProfile> = (0..n).map(|v| profile(g, v)).collect();

    // The profile multisets must agree.
    {
        let mut a = h_profiles.clone();
        let mut b = g_profiles.clone();
        a.sort_unstable();
        b.sort_unstable();
        if a != b {
            return None;
        }
    }

    // Candidate g-variables per h-variable; search scarcest-first.
    let mut order: Vec<usize> = (0..n).collect();
    let candidates: Vec<Vec<usize>> = (0..n)
        .map(|i| (0..n).filter(|&j| g_profiles[j] == h_profiles[i]).collect())
        .collect();
    order.sort_by_key(|&i| candidates[i].len());

    let mut state = SearchState {
        h,
        g,
        order: &order,
        candidates: &candidates,
        assignment: vec![usize::MAX; n],
        used: vec![false; n],
        neg: 0,
    };
    if state.descend(0) {
        let mut perm_img = vec![0usize; n];
        for (i, &j) in state.assignment.iter().enumerate() {
            perm_img[i] = j;
        }
        let perm = Permutation::from_slice(&perm_img).expect("bijective assignment");
        Some((perm, state.neg))
    } else {
        None
    }
}

struct SearchState<'a> {
    h: &'a TruthTable,
    g: &'a TruthTable,
    order: &'a [usize],
    candidates: &'a [Vec<usize>],
    /// `assignment[i] = perm[i]`: g-position read by h-variable `i`.
    assignment: Vec<usize>,
    used: Vec<bool>,
    /// Input negation mask on h-variables.
    neg: u16,
}

impl SearchState<'_> {
    fn descend(&mut self, depth: usize) -> bool {
        let n = self.h.num_vars();
        if depth == n {
            return self.full_check();
        }
        let hv = self.order[depth];
        let cands = &self.candidates[hv];
        for &gv in cands {
            if self.used[gv] {
                continue;
            }
            for neg_bit in [false, true] {
                // A negated mapping only differs when the cofactor counts
                // differ; when they're equal both phases must be explored
                // (they lead to different completions), when they differ
                // only the count-matching phase can work.
                let c0h = self.h.cofactor_count(hv, false);
                let c1h = self.h.cofactor_count(hv, true);
                let c0g = self.g.cofactor_count(gv, false);
                let c1g = self.g.cofactor_count(gv, true);
                let (m0, m1) = if neg_bit { (c1h, c0h) } else { (c0h, c1h) };
                if (m0, m1) != (c0g, c1g) {
                    continue;
                }
                self.assignment[hv] = gv;
                self.used[gv] = true;
                if neg_bit {
                    self.neg |= 1 << hv;
                }
                if self.partial_check(depth + 1) && self.descend(depth + 1) {
                    return true;
                }
                self.assignment[hv] = usize::MAX;
                self.used[gv] = false;
                self.neg &= !(1 << hv);
            }
        }
        false
    }

    /// Joint cofactor counts over the currently assigned variables must
    /// match between h and g under the partial mapping.
    fn partial_check(&self, assigned: usize) -> bool {
        let h_vars: Vec<usize> = self.order[..assigned].to_vec();
        let g_vars: Vec<usize> = h_vars.iter().map(|&i| self.assignment[i]).collect();
        let k = h_vars.len();
        if k > 4 {
            // Joint checks beyond 4 variables cost more than they prune;
            // deeper levels are validated by the final equality test.
            return true;
        }
        for a in 0..(1u32 << k) {
            let h_vals: Vec<bool> = (0..k)
                .map(|b| ((a >> b) & 1 == 1) ^ ((self.neg >> h_vars[b]) & 1 == 1))
                .collect();
            let g_vals: Vec<bool> = (0..k).map(|b| (a >> b) & 1 == 1).collect();
            if self.h.cofactor_count_multi(&h_vars, &h_vals)
                != self.g.cofactor_count_multi(&g_vars, &g_vals)
            {
                return false;
            }
        }
        true
    }

    fn full_check(&self) -> bool {
        let perm =
            Permutation::from_slice(&self.assignment).expect("complete bijective assignment");
        let t = NpnTransform::new(perm, self.neg, false);
        t.apply(self.h) == *self.g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn equivalent_pairs_match_with_witness() {
        let mut rng = StdRng::seed_from_u64(101);
        for n in 0..=7usize {
            for _ in 0..8 {
                let f = TruthTable::random(n, &mut rng).unwrap();
                let t = NpnTransform::random(n, &mut rng);
                let g = t.apply(&f);
                let w = npn_match(&f, &g).unwrap_or_else(|| panic!("n = {n}, f = {f}"));
                assert_eq!(w.apply(&f), g);
            }
        }
    }

    #[test]
    fn matcher_agrees_with_exhaustive_canonical() {
        let mut rng = StdRng::seed_from_u64(103);
        for _ in 0..60 {
            let f = TruthTable::random(4, &mut rng).unwrap();
            let g = TruthTable::random(4, &mut rng).unwrap();
            let via_canon = crate::exhaustive::exact_npn_canonical(&f)
                == crate::exhaustive::exact_npn_canonical(&g);
            assert_eq!(are_npn_equivalent(&f, &g), via_canon, "f = {f}, g = {g}");
        }
    }

    #[test]
    fn non_equivalent_rejected() {
        // Same satisfy count, different classes.
        let maj = TruthTable::majority(3); // |f| = 4, balanced
        let proj = TruthTable::projection(3, 0).unwrap(); // |f| = 4, balanced
        assert!(npn_match(&maj, &proj).is_none());
    }

    #[test]
    fn output_phase_only() {
        let f = TruthTable::from_hex(4, "0123").unwrap();
        let g = f.negated();
        let w = npn_match(&f, &g).expect("complement is NPN-equivalent");
        assert_eq!(w.apply(&f), g);
    }

    #[test]
    fn symmetric_functions_match_quickly() {
        // Total symmetry = worst case for canonical forms, easy for the
        // matcher (first candidate succeeds).
        let f = TruthTable::majority(9);
        let mut g = f.clone();
        g.flip_var_in_place(3);
        g.flip_var_in_place(7);
        let w = npn_match(&f, &g).expect("phase change of majority");
        assert_eq!(w.apply(&f), g);
    }

    #[test]
    fn constants_and_arity_zero() {
        let zero = TruthTable::zero(0).unwrap();
        let one = TruthTable::one(0).unwrap();
        assert!(
            are_npn_equivalent(&zero, &one),
            "output negation links them"
        );
        let c0 = TruthTable::zero(3).unwrap();
        let c1 = TruthTable::one(3).unwrap();
        assert!(are_npn_equivalent(&c0, &c1));
        assert!(!are_npn_equivalent(&c0, &TruthTable::majority(3)));
    }

    #[test]
    fn pn_match_excludes_output_negation() {
        let f = TruthTable::from_hex(4, "0abc").unwrap();
        let g = f.negated();
        assert!(npn_match(&f, &g).is_some(), "NPN links complements");
        assert!(pn_match(&f, &g).is_none(), "PN must not");
        // But PN finds pure input transforms.
        let h = f.flip_var(2).swap_vars(0, 3);
        let w = pn_match(&f, &h).expect("input-only transform");
        assert!(!w.output_neg());
        assert_eq!(w.apply(&f), h);
    }

    #[test]
    fn p_match_is_permutation_only() {
        let f = TruthTable::from_hex(4, "1780").unwrap();
        let g = f.swap_vars(1, 3).swap_vars(0, 2);
        let perm = p_match(&f, &g).expect("permuted copy");
        assert_eq!(f.permute_vars(&perm), g);
        // Negating an input breaks pure-P equivalence for this function.
        let h = f.flip_var(0);
        assert!(p_match(&f, &h).is_none());
    }

    #[test]
    fn match_hierarchy_is_consistent() {
        use rand::RngExt;
        // P ⊆ PN ⊆ NPN on random pairs.
        let mut rng = StdRng::seed_from_u64(331);
        for _ in 0..30 {
            let f = TruthTable::random(4, &mut rng).unwrap();
            let g = if rng.random::<bool>() {
                NpnTransform::random(4, &mut rng).apply(&f)
            } else {
                TruthTable::random(4, &mut rng).unwrap()
            };
            let p = p_match(&f, &g).is_some();
            let pn = pn_match(&f, &g).is_some();
            let npn = npn_match(&f, &g).is_some();
            assert!(!p || pn, "P implies PN");
            assert!(!pn || npn, "PN implies NPN");
        }
    }

    #[test]
    fn parity_class_is_closed() {
        // Every input/output phasing of parity is the same function ±.
        let p = TruthTable::parity(5);
        let mut rng = StdRng::seed_from_u64(107);
        for _ in 0..5 {
            let t = NpnTransform::random(5, &mut rng);
            assert!(are_npn_equivalent(&p, &t.apply(&p)));
        }
        // And parity is not equivalent to majority.
        assert!(!are_npn_equivalent(&p, &TruthTable::majority(5)));
    }
}
