//! Engine tuning knobs.

use facepoint_sig::SignatureSet;
use std::path::PathBuf;

/// When the durable store flushes its journals to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// Never `fsync`: records reach the OS page cache on every buffer
    /// flush but survival of a *power* failure is up to the kernel's
    /// writeback. Survives process crashes (SIGKILL) in full.
    Never,
    /// `fsync` at epoch barriers — [`Engine::flush`](crate::Engine::flush),
    /// checkpoints and [`Engine::finish`](crate::Engine::finish). The
    /// default: crash recovery loses at most the un-fsync'd tail epoch,
    /// and the journal tax stays a buffered `memcpy` per record.
    #[default]
    Barrier,
    /// `fsync` after every insert. Every acknowledged submission is
    /// durable the moment `submit` returns from the store — and
    /// throughput is bounded by disk sync latency. For tests and
    /// small, precious streams.
    Always,
}

/// Durability knobs of an [`Engine`](crate::Engine) — present when the
/// engine journals to disk, absent for a purely in-memory run.
///
/// The on-disk layout under [`PersistConfig::dir`] is one manifest
/// (`store.meta`) plus, per shard, an append-only segment log
/// (`shard-NNNN.log.<gen>`) and the newest checkpoint
/// (`shard-NNNN.ckpt`); see the `facepoint_core::wire` docs for the
/// record format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistConfig {
    /// Directory holding the store (created if missing). One store per
    /// directory.
    pub dir: PathBuf,
    /// Journal records a shard accumulates before it is compacted into
    /// a fresh checkpoint segment (bounding recovery replay by live
    /// classes, not total submissions). `0` disables automatic
    /// compaction; [`Engine::finish`](crate::Engine::finish) still
    /// writes a final checkpoint.
    pub checkpoint_interval: u64,
    /// When journal writes are fsync'd.
    pub sync: SyncPolicy,
}

impl PersistConfig {
    /// Durability at `dir` with the default checkpoint interval (8192
    /// records per shard) and [`SyncPolicy::Barrier`].
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        PersistConfig {
            dir: dir.into(),
            checkpoint_interval: 8192,
            sync: SyncPolicy::Barrier,
        }
    }
}

/// Configuration of an [`Engine`](crate::Engine).
///
/// The defaults are tuned for throughput on commodity multi-core
/// machines; every knob exists because it moved a benchmark
/// (`facepoint-bench`'s `engine` bench exercises the space).
///
/// ```
/// use facepoint_engine::{Engine, EngineConfig};
/// use facepoint_sig::SignatureSet;
///
/// let engine = Engine::with_config(EngineConfig {
///     set: SignatureSet::OIV | SignatureSet::OSV,
///     workers: 2,
///     shards: 16,
///     ..EngineConfig::default()
/// });
/// assert_eq!(engine.config().workers, 2);
/// ```
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Signature families used for keys (default: the paper's "All").
    pub set: SignatureSet,
    /// Worker threads computing signature keys. `0` selects the
    /// machine's available parallelism.
    pub workers: usize,
    /// Shard count of the partition store (rounded up to a power of
    /// two). More shards mean less lock contention and a finer-grained
    /// occupancy report; 64 is plenty below a few hundred cores.
    pub shards: usize,
    /// Functions per work item. Chunking amortizes channel and queue
    /// costs; within a chunk a worker runs lock-free except for store
    /// inserts.
    pub chunk_size: usize,
    /// Bounded capacity of each worker's ingest deque, in *chunks*
    /// (minimum 1). The pool's total capacity is
    /// `workers × deque_capacity`; `submit` blocks when every deque is
    /// full — backpressure instead of unbounded memory.
    pub deque_capacity: usize,
    /// Chunks a worker steals from a victim's deque in one go when its
    /// own deque runs dry (clamped to `1..=deque_capacity`). Larger
    /// batches amortize the victim's lock over more work; smaller ones
    /// keep load spread finer. Steals are counted in
    /// [`EngineStats::steals`](crate::EngineStats::steals).
    pub steal_batch: usize,
    /// Whether to record the per-submission label log that
    /// [`Engine::finish`](crate::Engine::finish) assembles into the
    /// input-ordered [`Classification`](facepoint_core::Classification)
    /// (default `true`). The log costs 4 bytes per submitted function;
    /// set this to `false` for **census-only streaming** — partition
    /// counts, snapshots, `top_classes` and persistence all still work,
    /// `finish` reports the classes through
    /// [`EngineReport::census`](crate::EngineReport::census), and
    /// steady-state engine memory stays flat however long the stream
    /// runs (streams larger than RAM become feasible).
    pub track_labels: bool,
    /// Capacity of the table→key memo cache in entries (`0` disables
    /// it). The cache pays off exactly when the stream repeats
    /// functions, as AIG cut traffic does. Enabling it also enables
    /// the ingestion-side **dedup fast path**: `submit` probes the
    /// cache first and resolves repeated functions without a queue
    /// round-trip (see [`EngineStats::dedup_hits`](crate::EngineStats)).
    pub cache_capacity: usize,
    /// Durable-store settings; `None` (the default) keeps all state in
    /// memory. Usually set through [`Engine::open`](crate::Engine::open)
    /// rather than by hand.
    pub persist: Option<PersistConfig>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            set: SignatureSet::all(),
            workers: 0,
            shards: 64,
            chunk_size: 256,
            deque_capacity: 8,
            steal_batch: 4,
            track_labels: true,
            cache_capacity: 0,
            persist: None,
        }
    }
}

impl EngineConfig {
    /// The configuration with a specific signature set and defaults
    /// elsewhere.
    pub fn with_set(set: SignatureSet) -> Self {
        EngineConfig {
            set,
            ..EngineConfig::default()
        }
    }

    /// Resolved worker count (`workers` unless `0`, then the machine's
    /// available parallelism).
    pub fn resolved_workers(&self) -> usize {
        if self.workers == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.workers
        }
    }

    /// Resolved shard count: `shards` rounded up to a power of two (so
    /// shard selection is a shift of the key's high bits), minimum 1.
    pub fn resolved_shards(&self) -> usize {
        self.shards.max(1).next_power_of_two()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_resolve() {
        let cfg = EngineConfig::default();
        assert!(cfg.resolved_workers() >= 1);
        assert_eq!(cfg.resolved_shards(), 64);
        assert_eq!(cfg.set, SignatureSet::all());
        assert!(cfg.track_labels);
        assert!(cfg.deque_capacity >= 1);
        assert!(cfg.steal_batch >= 1);
    }

    #[test]
    fn shards_round_up_to_powers_of_two() {
        for (requested, resolved) in [(0, 1), (1, 1), (3, 4), (64, 64), (65, 128)] {
            let cfg = EngineConfig {
                shards: requested,
                ..EngineConfig::default()
            };
            assert_eq!(cfg.resolved_shards(), resolved, "requested {requested}");
        }
    }
}
