//! Engine tuning knobs.

use facepoint_sig::SignatureSet;
use std::path::PathBuf;

/// When the durable store flushes its journals to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// Never `fsync`: records reach the OS page cache on every buffer
    /// flush but survival of a *power* failure is up to the kernel's
    /// writeback. Survives process crashes (SIGKILL) in full.
    Never,
    /// `fsync` at epoch barriers — [`Engine::flush`](crate::Engine::flush),
    /// checkpoints and [`Engine::finish`](crate::Engine::finish). The
    /// default: crash recovery loses at most the un-fsync'd tail epoch,
    /// and the journal tax stays a buffered `memcpy` per record.
    #[default]
    Barrier,
    /// `fsync` after every insert. Every acknowledged submission is
    /// durable the moment `submit` returns from the store — and
    /// throughput is bounded by disk sync latency. For tests and
    /// small, precious streams.
    Always,
}

/// Durability knobs of an [`Engine`](crate::Engine) — present when the
/// engine journals to disk, absent for a purely in-memory run.
///
/// The on-disk layout under [`PersistConfig::dir`] is one manifest
/// (`store.meta`) plus, per shard, an append-only segment log
/// (`shard-NNNN.log.<gen>`) and the newest checkpoint
/// (`shard-NNNN.ckpt`); see the `facepoint_core::wire` docs for the
/// record format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistConfig {
    /// Directory holding the store (created if missing). One store per
    /// directory.
    pub dir: PathBuf,
    /// Journal records a shard accumulates before it is compacted into
    /// a fresh checkpoint segment (bounding recovery replay by live
    /// classes, not total submissions). `0` disables automatic
    /// compaction; [`Engine::finish`](crate::Engine::finish) still
    /// writes a final checkpoint.
    pub checkpoint_interval: u64,
    /// When journal writes are fsync'd.
    pub sync: SyncPolicy,
}

impl PersistConfig {
    /// Durability at `dir` with the default checkpoint interval (8192
    /// records per shard) and [`SyncPolicy::Barrier`].
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        PersistConfig {
            dir: dir.into(),
            checkpoint_interval: 8192,
            sync: SyncPolicy::Barrier,
        }
    }
}

/// How far the engine resolves submitted functions into classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Resolution {
    /// Classes are keyed by signature digests. Digest equality is a
    /// *necessary* condition for NPN equivalence, so digest classes
    /// may merge (never split) true classes — probable classes, at
    /// full signature throughput. The default.
    #[default]
    Digest,
    /// Every digest bucket is additionally resolved into **proved**
    /// NPN classes: a bucket's first member is canonicalized eagerly
    /// (Gray-code walk, influence/cofactor-pruned above six
    /// variables), later members take the exact pairwise-matcher
    /// witness path against the cached representative. The census
    /// then counts exact NPN classes and every representative is a
    /// proved one.
    Certified,
}

impl std::fmt::Display for Resolution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Resolution::Digest => "digest",
            Resolution::Certified => "certified",
        })
    }
}

/// Configuration of an [`Engine`](crate::Engine).
///
/// The defaults are tuned for throughput on commodity multi-core
/// machines; every knob exists because it moved a benchmark
/// (`facepoint-bench`'s `engine` bench exercises the space).
///
/// Build configurations through [`EngineConfig::builder`], which
/// validates and clamps every knob in one place:
///
/// ```
/// use facepoint_engine::{Engine, EngineConfig};
/// use facepoint_sig::SignatureSet;
///
/// let cfg = EngineConfig::builder()
///     .set(SignatureSet::OIV | SignatureSet::OSV)
///     .workers(2)
///     .shards(16)
///     .build();
/// let engine = Engine::builder().config(cfg).build().unwrap();
/// assert_eq!(engine.config().workers, 2);
/// ```
///
/// Struct-literal construction (`EngineConfig { .. }` with field
/// access) remains supported for one deprecation cycle; new code
/// should use the builder.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Signature families used for keys (default: the paper's "All").
    pub set: SignatureSet,
    /// Worker threads computing signature keys. `0` selects the
    /// machine's available parallelism.
    pub workers: usize,
    /// Shard count of the partition store (rounded up to a power of
    /// two). More shards mean less lock contention and a finer-grained
    /// occupancy report; 64 is plenty below a few hundred cores.
    pub shards: usize,
    /// Functions per work item. Chunking amortizes channel and queue
    /// costs; within a chunk a worker runs lock-free except for store
    /// inserts.
    pub chunk_size: usize,
    /// Bounded capacity of each worker's ingest deque, in *chunks*
    /// (minimum 1). The pool's total capacity is
    /// `workers × deque_capacity`; `submit` blocks when every deque is
    /// full — backpressure instead of unbounded memory.
    pub deque_capacity: usize,
    /// Chunks a worker steals from a victim's deque in one go when its
    /// own deque runs dry (clamped to `1..=deque_capacity`). Larger
    /// batches amortize the victim's lock over more work; smaller ones
    /// keep load spread finer. Steals are counted in
    /// [`EngineStats::steals`](crate::EngineStats::steals).
    pub steal_batch: usize,
    /// Whether to record the per-submission label log that
    /// [`Engine::finish`](crate::Engine::finish) assembles into the
    /// input-ordered [`Classification`](facepoint_core::Classification)
    /// (default `true`). The log costs 4 bytes per submitted function;
    /// set this to `false` for **census-only streaming** — partition
    /// counts, snapshots, `top_classes` and persistence all still work,
    /// `finish` reports the classes through
    /// [`EngineReport::census`](crate::EngineReport::census), and
    /// steady-state engine memory stays flat however long the stream
    /// runs (streams larger than RAM become feasible).
    pub track_labels: bool,
    /// Capacity of the table→key memo cache in entries (`0` disables
    /// it). The cache pays off exactly when the stream repeats
    /// functions, as AIG cut traffic does. Enabling it also enables
    /// the ingestion-side **dedup fast path**: `submit` probes the
    /// cache first and resolves repeated functions without a queue
    /// round-trip (see [`EngineStats::dedup_hits`](crate::EngineStats)).
    pub cache_capacity: usize,
    /// Durable-store settings; `None` (the default) keeps all state in
    /// memory. Usually set through
    /// [`Engine::builder`](crate::Engine::builder)`.persist(dir)`
    /// rather than by hand.
    pub persist: Option<PersistConfig>,
    /// Class-resolution tier: digest-keyed probable classes (the
    /// default) or exactly resolved, certified NPN classes (see
    /// [`Resolution`]).
    pub resolution: Resolution,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            set: SignatureSet::all(),
            workers: 0,
            shards: 64,
            chunk_size: 256,
            deque_capacity: 8,
            steal_batch: 4,
            track_labels: true,
            cache_capacity: 0,
            persist: None,
            resolution: Resolution::Digest,
        }
    }
}

impl EngineConfig {
    /// A builder over the defaults — the one place where every knob is
    /// validated and clamped (worker/shard resolution, minimum queue
    /// geometry).
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder {
            cfg: EngineConfig::default(),
        }
    }

    /// The configuration with a specific signature set and defaults
    /// elsewhere.
    pub fn with_set(set: SignatureSet) -> Self {
        EngineConfig {
            set,
            ..EngineConfig::default()
        }
    }

    /// Resolved worker count (`workers` unless `0`, then the machine's
    /// available parallelism).
    pub fn resolved_workers(&self) -> usize {
        if self.workers == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.workers
        }
    }

    /// Resolved shard count: `shards` rounded up to a power of two (so
    /// shard selection is a shift of the key's high bits), minimum 1.
    pub fn resolved_shards(&self) -> usize {
        self.shards.max(1).next_power_of_two()
    }
}

/// Typed builder for [`EngineConfig`].
///
/// Every setter takes the raw requested value; [`build`] is the single
/// place where clamping happens (shard power-of-two round-up, minimum
/// chunk/deque/steal geometry), so the produced configuration is
/// always internally consistent. Obtained via [`EngineConfig::builder`].
///
/// [`build`]: EngineConfigBuilder::build
#[derive(Debug, Clone)]
pub struct EngineConfigBuilder {
    cfg: EngineConfig,
}

impl EngineConfigBuilder {
    /// Signature families used for keys.
    pub fn set(mut self, set: SignatureSet) -> Self {
        self.cfg.set = set;
        self
    }

    /// Worker threads (`0` = the machine's available parallelism).
    pub fn workers(mut self, workers: usize) -> Self {
        self.cfg.workers = workers;
        self
    }

    /// Partition-store shard count (rounded up to a power of two by
    /// [`build`](Self::build)).
    pub fn shards(mut self, shards: usize) -> Self {
        self.cfg.shards = shards;
        self
    }

    /// Functions per work item (minimum 1 after
    /// [`build`](Self::build)).
    pub fn chunk_size(mut self, chunk_size: usize) -> Self {
        self.cfg.chunk_size = chunk_size;
        self
    }

    /// Bounded per-worker deque capacity in chunks (minimum 1 after
    /// [`build`](Self::build)).
    pub fn deque_capacity(mut self, deque_capacity: usize) -> Self {
        self.cfg.deque_capacity = deque_capacity;
        self
    }

    /// Chunks stolen from a victim in one go (clamped to
    /// `1..=deque_capacity` by [`build`](Self::build)).
    pub fn steal_batch(mut self, steal_batch: usize) -> Self {
        self.cfg.steal_batch = steal_batch;
        self
    }

    /// Whether to record per-submission labels (`false` = census-only
    /// streaming with flat memory).
    pub fn track_labels(mut self, track_labels: bool) -> Self {
        self.cfg.track_labels = track_labels;
        self
    }

    /// Table→key memo-cache capacity in entries (`0` disables it).
    pub fn cache_capacity(mut self, cache_capacity: usize) -> Self {
        self.cfg.cache_capacity = cache_capacity;
        self
    }

    /// Durable-store settings (`None` keeps all state in memory).
    pub fn persist(mut self, persist: Option<PersistConfig>) -> Self {
        self.cfg.persist = persist;
        self
    }

    /// Class-resolution tier (see [`Resolution`]).
    pub fn resolution(mut self, resolution: Resolution) -> Self {
        self.cfg.resolution = resolution;
        self
    }

    /// Shorthand for `resolution(Resolution::Certified)`.
    pub fn certified(self) -> Self {
        self.resolution(Resolution::Certified)
    }

    /// Finalizes the configuration, clamping every knob into its valid
    /// range: shards round up to a power of two (minimum 1), chunk
    /// size and deque capacity clamp to at least 1, and the steal
    /// batch clamps to `1..=deque_capacity`.
    pub fn build(self) -> EngineConfig {
        let mut cfg = self.cfg;
        cfg.shards = cfg.shards.max(1).next_power_of_two();
        cfg.chunk_size = cfg.chunk_size.max(1);
        cfg.deque_capacity = cfg.deque_capacity.max(1);
        cfg.steal_batch = cfg.steal_batch.clamp(1, cfg.deque_capacity);
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_resolve() {
        let cfg = EngineConfig::default();
        assert!(cfg.resolved_workers() >= 1);
        assert_eq!(cfg.resolved_shards(), 64);
        assert_eq!(cfg.set, SignatureSet::all());
        assert!(cfg.track_labels);
        assert!(cfg.deque_capacity >= 1);
        assert!(cfg.steal_batch >= 1);
    }

    #[test]
    fn shards_round_up_to_powers_of_two() {
        for (requested, resolved) in [(0, 1), (1, 1), (3, 4), (64, 64), (65, 128)] {
            let cfg = EngineConfig {
                shards: requested,
                ..EngineConfig::default()
            };
            assert_eq!(cfg.resolved_shards(), resolved, "requested {requested}");
        }
    }

    #[test]
    fn builder_clamps_every_knob() {
        let cfg = EngineConfig::builder()
            .shards(3)
            .chunk_size(0)
            .deque_capacity(0)
            .steal_batch(0)
            .build();
        assert_eq!(cfg.shards, 4);
        assert_eq!(cfg.chunk_size, 1);
        assert_eq!(cfg.deque_capacity, 1);
        assert_eq!(cfg.steal_batch, 1);
        // The steal batch never exceeds the deque capacity.
        let cfg = EngineConfig::builder()
            .deque_capacity(2)
            .steal_batch(99)
            .build();
        assert_eq!(cfg.steal_batch, 2);
    }

    #[test]
    fn builder_defaults_match_default() {
        let built = EngineConfig::builder().build();
        let default = EngineConfig::default();
        assert_eq!(built.set, default.set);
        assert_eq!(built.workers, default.workers);
        assert_eq!(built.shards, default.shards);
        assert_eq!(built.chunk_size, default.chunk_size);
        assert_eq!(built.track_labels, default.track_labels);
        assert_eq!(built.resolution, Resolution::Digest);
    }

    #[test]
    fn builder_sets_resolution() {
        let cfg = EngineConfig::builder().certified().build();
        assert_eq!(cfg.resolution, Resolution::Certified);
        assert_eq!(cfg.resolution.to_string(), "certified");
        assert_eq!(Resolution::Digest.to_string(), "digest");
    }
}
