//! # facepoint-engine
//!
//! A sharded, parallel, **streaming** NPN classification engine on top
//! of [`facepoint_core`] — the throughput layer the paper's scalability
//! claim calls for: signature-hash classification is embarrassingly
//! parallel because every function is processed independently (no
//! transformation search), so an engine only has to keep workers fed
//! and partition state contention-free.
//!
//! Where [`facepoint_core::Classifier`] is one-shot (`Vec` in, map
//! out), the [`Engine`]:
//!
//! * **streams** — [`Engine::submit`] / [`Engine::submit_batch`] accept
//!   functions while classification is in flight, and
//!   [`Engine::snapshot`] answers queries mid-stream;
//! * **parallelizes** — a **work-stealing** worker pool computes
//!   [`signature_key`](facepoint_core::signature_key)s concurrently
//!   with ingestion: each worker drains its own bounded deque (LIFO)
//!   and steals from its peers (FIFO) when it runs dry, so no global
//!   queue lock exists and `submit` blocks only when every deque is
//!   full (backpressure instead of unbounded buffering). Concurrent
//!   producers feed the same pool through [`SubmitHandle`]s without
//!   touching the engine object;
//! * **shards** — the partition store spreads classes over `S` shards
//!   keyed by the *high bits* of the 128-bit MSV digest (the digest is
//!   uniform, so shards load-balance), each behind its own lock, so
//!   workers touching different classes never contend;
//! * **memoizes** — an optional sharded table→key cache short-circuits
//!   repeated-function traffic (cut workloads repeat heavily);
//! * **certifies** — [`Resolution::Certified`] resolves every digest
//!   bucket into **proved** NPN classes: a bucket's first member is
//!   canonicalized eagerly (Gray-code walk, influence/cofactor-pruned
//!   above six variables), later members take the exact
//!   pairwise-matcher witness path against the cached representative,
//!   and [`Engine::canon`] answers point queries with the proved
//!   representative plus a witness transform;
//! * **persists** — [`Engine::builder`]`.persist(dir)` journals every
//!   class mutation to
//!   an append-only, CRC-guarded, per-shard segment log with periodic
//!   checkpoint compaction, so a library-scale census survives
//!   restarts and SIGKILLs: recovery replays the newest checkpoint
//!   plus the log tail, truncating torn writes. What a crash can cost
//!   depends on [`SyncPolicy`]: at most the final un-fsync'd epoch
//!   under the default [`SyncPolicy::Barrier`], nothing acknowledged
//!   under [`SyncPolicy::Always`], and up to the kernel's writeback
//!   under [`SyncPolicy::Never`] (layout and crash-safety argument in
//!   the `store` module source; knobs on [`PersistConfig`]);
//! * **reports** — [`EngineStats`] carries throughput, shard occupancy,
//!   cache hit rates and journal counters.
//!
//! [`Engine::finish`] drains the pipeline and returns the exact same
//! partition a single-threaded [`Classifier`](facepoint_core::Classifier)
//! would produce, as a standard
//! [`Classification`](facepoint_core::Classification) — worker count
//! and interleaving never change the result.
//!
//! # Quick start
//!
//! ```
//! use facepoint_engine::Engine;
//! use facepoint_sig::SignatureSet;
//! use facepoint_truth::TruthTable;
//!
//! let mut engine = Engine::new(SignatureSet::all());
//! engine.submit(TruthTable::majority(3));
//! engine.submit_batch([
//!     TruthTable::majority(3).flip_var(0), // same class as majority
//!     TruthTable::parity(3),               // a different class
//! ]);
//! let report = engine.finish();
//! assert_eq!(report.classification.num_classes(), 2);
//! assert_eq!(report.stats.functions_processed, 3);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

mod cache;
mod config;
mod engine;
mod pool;
mod stats;
mod store;

pub use config::{EngineConfig, EngineConfigBuilder, PersistConfig, Resolution, SyncPolicy};
pub use engine::{
    certified_key, CanonAnswer, CanonHandle, Engine, EngineBuilder, EngineReport,
    RecoveredSnapshot, SubmitHandle,
};
pub use stats::{DurabilityStats, EngineSnapshot, EngineStats, RecoveryReport};
pub use store::ClassSummary;
