//! The sharded partition store: classes spread over independently
//! locked shards, selected by the high bits of the 128-bit MSV digest.

use facepoint_truth::TruthTable;
use std::collections::HashMap;
use std::sync::Mutex;

/// One NPN class as the store sees it.
#[derive(Debug, Clone)]
pub(crate) struct ClassEntry {
    /// The member with the smallest submission number seen so far.
    /// Workers insert out of order, so the earliest-submitted member
    /// may arrive late; tracking `rep_seq` keeps the representative
    /// deterministic (input order) regardless of interleaving — the
    /// same member `Classifier::classify` would pick.
    pub representative: TruthTable,
    /// Submission number of `representative`.
    pub rep_seq: u64,
    /// Members inserted so far.
    pub size: usize,
}

/// A mid-stream view of one class, returned by
/// [`Engine::top_classes`](crate::Engine::top_classes).
#[derive(Debug, Clone)]
pub struct ClassSummary {
    /// The class's 128-bit signature key.
    pub key: u128,
    /// A member of the class (the earliest-submitted one recorded so
    /// far).
    pub representative: TruthTable,
    /// Members counted so far.
    pub size: usize,
}

/// Classes sharded by the top bits of their key.
///
/// The MSV digest is an FNV-1a output, uniform over `u128`, so high-bit
/// sharding load-balances without any extra hashing, and every key's
/// shard is stable for the lifetime of the engine. Each shard is an
/// independent `Mutex<HashMap>`: with `S` shards and `W` workers the
/// collision probability of two workers needing the same lock at the
/// same instant is ~`W/S` and inserts hold the lock for a map probe
/// only (signature computation — the expensive part — happens outside).
#[derive(Debug)]
pub(crate) struct ShardedStore {
    shards: Vec<Mutex<HashMap<u128, ClassEntry>>>,
    /// How far to shift a key right so its top bits index `shards`.
    shift: u32,
}

impl ShardedStore {
    /// Creates a store with `shards` shards (must be a power of two).
    pub fn new(shards: usize) -> Self {
        assert!(shards.is_power_of_two(), "shard count must be 2^k");
        ShardedStore {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            shift: 128 - shards.trailing_zeros(),
        }
    }

    fn shard_of(&self, key: u128) -> usize {
        if self.shift == 128 {
            0 // single shard: `>> 128` would overflow
        } else {
            (key >> self.shift) as usize
        }
    }

    /// Records the member with submission number `seq` into class
    /// `key`; the earliest-submitted member becomes (or stays) the
    /// representative. Returns `true` when this insert created the
    /// class.
    pub fn insert(&self, key: u128, table: &TruthTable, seq: u64) -> bool {
        let mut shard = self.shards[self.shard_of(key)]
            .lock()
            .expect("store shard poisoned");
        match shard.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let entry = e.get_mut();
                entry.size += 1;
                if seq < entry.rep_seq {
                    entry.representative = table.clone();
                    entry.rep_seq = seq;
                }
                false
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(ClassEntry {
                    representative: table.clone(),
                    rep_seq: seq,
                    size: 1,
                });
                true
            }
        }
    }

    /// The representative and current size of class `key`, if present.
    pub fn get(&self, key: u128) -> Option<(TruthTable, usize)> {
        let shard = self.shards[self.shard_of(key)]
            .lock()
            .expect("store shard poisoned");
        shard.get(&key).map(|e| (e.representative.clone(), e.size))
    }

    /// Classes per shard (locks each shard briefly, one at a time).
    pub fn shard_class_counts(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| s.lock().expect("store shard poisoned").len())
            .collect()
    }

    /// Total number of classes. (Production callers derive this from
    /// one `shard_class_counts` sweep to keep counters consistent.)
    #[cfg(test)]
    pub fn num_classes(&self) -> usize {
        self.shard_class_counts().iter().sum()
    }

    /// The `limit` largest classes so far, largest first (ties broken
    /// by key for determinism). A mid-stream heavy-hitter report: locks
    /// shards one at a time, so it runs concurrently with ingestion.
    pub fn top_classes(&self, limit: usize) -> Vec<ClassSummary> {
        let mut all: Vec<ClassSummary> = Vec::new();
        for shard in &self.shards {
            let guard = shard.lock().expect("store shard poisoned");
            all.extend(guard.iter().map(|(&key, e)| ClassSummary {
                key,
                representative: e.representative.clone(),
                size: e.size,
            }));
        }
        all.sort_by(|a, b| b.size.cmp(&a.size).then(a.key.cmp(&b.key)));
        all.truncate(limit);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(bits: u64) -> TruthTable {
        TruthTable::from_u64(3, bits).unwrap()
    }

    #[test]
    fn insert_counts_and_representatives() {
        let store = ShardedStore::new(4);
        assert!(store.insert(7, &t(0xe8), 0));
        assert!(!store.insert(7, &t(0xd4), 1));
        assert!(store.insert(u128::MAX, &t(0x96), 2));
        assert_eq!(store.num_classes(), 2);
        let (rep, size) = store.get(7).unwrap();
        assert_eq!(rep, t(0xe8)); // earliest submission wins
        assert_eq!(size, 2);
        assert!(store.get(8).is_none());
    }

    #[test]
    fn representative_is_earliest_submission_not_insert_order() {
        // Workers race: the member submitted first may be inserted
        // last. The representative must still be the earliest
        // submission, matching `Classifier::classify`.
        let store = ShardedStore::new(4);
        store.insert(7, &t(0xd4), 5);
        store.insert(7, &t(0x2b), 3);
        store.insert(7, &t(0xe8), 0);
        store.insert(7, &t(0x17), 9);
        let (rep, size) = store.get(7).unwrap();
        assert_eq!(rep, t(0xe8));
        assert_eq!(size, 4);
    }

    #[test]
    fn high_bits_select_shard() {
        let store = ShardedStore::new(4);
        assert_eq!(store.shard_of(0), 0);
        assert_eq!(store.shard_of(u128::MAX), 3);
        assert_eq!(store.shard_of(1u128 << 127), 2);
        assert_eq!(store.shard_of(1u128 << 126), 1);
        let single = ShardedStore::new(1);
        assert_eq!(single.shard_of(u128::MAX), 0);
    }

    #[test]
    fn top_classes_orders_by_size_then_key() {
        let store = ShardedStore::new(2);
        for seq in 0..3 {
            store.insert(1, &t(1), seq);
        }
        store.insert(2, &t(2), 3);
        store.insert(u128::MAX / 3, &t(3), 4);
        let top = store.top_classes(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].size, 3);
        assert_eq!(top[0].key, 1);
        assert_eq!(top[1].size, 1);
    }
}
