//! The sharded partition store: classes spread over independently
//! locked shards, selected by the high bits of the 128-bit MSV digest —
//! with an optional durable backend journaling every class mutation to
//! disk.
//!
//! # On-disk layout
//!
//! A durable store owns one directory:
//!
//! ```text
//! store.meta            manifest: version, shard count, signature set
//! shard-0000.ckpt       newest checkpoint segment of shard 0
//! shard-0000.log.7      append-only tail log (generation 7)
//! shard-0001.ckpt
//! shard-0001.log.3
//! ...
//! ```
//!
//! All files are sequences of CRC-guarded, length-prefixed frames
//! (see [`facepoint_core::wire`]). Each shard journals its mutations
//! **under its own shard lock**, so the log order equals the mutation
//! order and no cross-shard coordination exists on the write path:
//!
//! * class creation and representative changes append a full
//!   [`Class`](wire::Record::Class) record (key, rep seq, count,
//!   table);
//! * every other member append is a 29-byte
//!   [`Bump`](wire::Record::Bump);
//! * [`Engine::flush`](crate::Engine::flush) appends
//!   [`Epoch`](wire::Record::Epoch) barriers and (by default) fsyncs.
//!
//! Once a shard accumulates [`PersistConfig::checkpoint_interval`]
//! journal records it is **compacted**: the live class map is written
//! to `shard-NNNN.ckpt.tmp` (header + one `Class` frame per class),
//! fsync'd, renamed over the old checkpoint, and a fresh log
//! generation starts. Recovery cost is therefore bounded by *live
//! classes + one checkpoint interval*, not by total submissions.
//!
//! # Crash safety
//!
//! The checkpoint rename is atomic and the header names the log
//! generation replay must resume from (`next_gen`), so a crash at any
//! instant leaves either the old checkpoint + old log or the new
//! checkpoint (+ a possibly missing new log) — both consistent. A torn
//! tail (partial frame or CRC mismatch at the end of a log) is
//! truncated on open, losing at most the records of the final
//! un-fsync'd epoch.

use crate::config::{PersistConfig, SyncPolicy};
use crate::stats::{DurabilityStats, RecoveryReport};
use facepoint_core::wire::{self, Record, WireError, WIRE_VERSION};
use facepoint_telemetry::LatencyHistogram;
use facepoint_truth::TruthTable;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Latency instruments of the durable write path, shared across
/// shards. The engine hands in histograms registered in its
/// [`Registry`](facepoint_telemetry::Registry); a standalone store
/// (tests, tools) uses `StoreTelemetry::default()`, whose detached
/// histograms record into nothing anyone reads — same code path, no
/// `Option` in the hot path.
#[derive(Debug, Clone, Default)]
pub(crate) struct StoreTelemetry {
    /// Buffered journal append latency, per record.
    pub append_nanos: Arc<LatencyHistogram>,
    /// `fsync` (sync_data/sync_all) latency, per call.
    pub fsync_nanos: Arc<LatencyHistogram>,
    /// Checkpoint compaction duration, per compaction.
    pub checkpoint_nanos: Arc<LatencyHistogram>,
}

/// One NPN class as the store sees it.
#[derive(Debug, Clone)]
pub(crate) struct ClassEntry {
    /// The member with the smallest submission number seen so far.
    /// Workers insert out of order, so the earliest-submitted member
    /// may arrive late; tracking `rep_seq` keeps the representative
    /// deterministic (input order) regardless of interleaving — the
    /// same member `Classifier::classify` would pick.
    pub representative: TruthTable,
    /// Submission number of `representative`.
    pub rep_seq: u64,
    /// Members inserted so far.
    pub size: usize,
}

/// A mid-stream view of one class, returned by
/// [`Engine::top_classes`](crate::Engine::top_classes).
#[derive(Debug, Clone)]
pub struct ClassSummary {
    /// The class's 128-bit signature key.
    pub key: u128,
    /// A member of the class (the earliest-submitted one recorded so
    /// far).
    pub representative: TruthTable,
    /// Members counted so far.
    pub size: usize,
}

/// Write-side counters of the durable backend, shared across shards.
#[derive(Debug, Default)]
pub(crate) struct DurabilityCounters {
    journal_bytes: AtomicU64,
    journal_records: AtomicU64,
    checkpoints: AtomicU64,
    checkpoint_bytes: AtomicU64,
    segments_created: AtomicU64,
    fsyncs: AtomicU64,
    epochs: AtomicU64,
}

impl DurabilityCounters {
    pub fn snapshot(&self) -> DurabilityStats {
        DurabilityStats {
            journal_bytes: self.journal_bytes.load(Ordering::Relaxed),
            journal_records: self.journal_records.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            checkpoint_bytes: self.checkpoint_bytes.load(Ordering::Relaxed),
            segments_created: self.segments_created.load(Ordering::Relaxed),
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            epochs: self.epochs.load(Ordering::Relaxed),
        }
    }
}

fn ckpt_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard:04}.ckpt"))
}

fn ckpt_tmp_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard:04}.ckpt.tmp"))
}

fn log_path(dir: &Path, shard: usize, gen: u64) -> PathBuf {
    dir.join(format!("shard-{shard:04}.log.{gen}"))
}

fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("store.meta")
}

fn lock_path(dir: &Path) -> PathBuf {
    dir.join("store.lock")
}

/// Takes the store's advisory write lock (`store.lock`). The OS
/// releases it when the file handle closes — including on SIGKILL — so
/// a crashed process never wedges its store, while a *live* second
/// writer is refused instead of silently interleaving appends with the
/// first. Read-only recovery does not take the lock (inspection of a
/// live store is safe by the same torn-tail tolerance that handles
/// crashes).
fn acquire_lock(dir: &Path) -> io::Result<File> {
    let file = OpenOptions::new()
        .create(true)
        .truncate(false)
        .write(true)
        .open(lock_path(dir))?;
    file.try_lock().map_err(|e| {
        io::Error::new(
            io::ErrorKind::WouldBlock,
            format!(
                "{}: store is already open for writing by another process ({e})",
                dir.display()
            ),
        )
    })?;
    Ok(file)
}

fn corrupt(path: &Path, what: impl std::fmt::Display) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("{}: {what}", path.display()),
    )
}

/// The append side of one shard's journal. Lives inside the shard's
/// mutex, so appends are serialized with the map mutations they
/// describe.
#[derive(Debug)]
struct ShardJournal {
    dir: PathBuf,
    shard_id: usize,
    /// Generation of the live log segment; bumped by every compaction.
    gen: u64,
    writer: io::BufWriter<File>,
    records_since_ckpt: u64,
    /// Records appended since the last barrier or compaction; a clean
    /// shard skips its epoch marker, so an idle flush loop does not
    /// grow the logs.
    dirty: bool,
    /// Highest barrier this shard's state is covered by. Persisted in
    /// the checkpoint header, because compaction deletes the old log
    /// and the `Epoch` markers in it — epoch numbering must survive a
    /// clean restart.
    last_epoch: u64,
    /// Frame-encoding scratch, reused across appends.
    scratch: Vec<u8>,
    sync: SyncPolicy,
    /// Records per shard between compactions; `0` = never compact
    /// automatically.
    checkpoint_interval: u64,
    counters: Arc<DurabilityCounters>,
    telemetry: StoreTelemetry,
}

impl ShardJournal {
    /// Writes the scratch buffer to the log and applies the per-record
    /// sync policy.
    fn commit_scratch(&mut self) -> io::Result<()> {
        let started = Instant::now();
        self.writer.write_all(&self.scratch)?;
        self.telemetry
            .append_nanos
            .record_duration(started.elapsed());
        self.counters
            .journal_bytes
            .fetch_add(self.scratch.len() as u64, Ordering::Relaxed);
        self.counters
            .journal_records
            .fetch_add(1, Ordering::Relaxed);
        self.records_since_ckpt += 1;
        self.dirty = true;
        self.scratch.clear();
        if self.sync == SyncPolicy::Always {
            self.writer.flush()?;
            self.timed_fsync(|j| j.writer.get_ref().sync_data())?;
        }
        Ok(())
    }

    /// Runs one fsync-class call, timing it into the fsync histogram
    /// and counting it — every `sync_data`/`sync_all` of the write
    /// path goes through here so the latency series and the
    /// [`DurabilityCounters::fsyncs`] total can never drift apart.
    fn timed_fsync(&mut self, f: impl FnOnce(&mut Self) -> io::Result<()>) -> io::Result<()> {
        let started = Instant::now();
        f(self)?;
        self.telemetry
            .fsync_nanos
            .record_duration(started.elapsed());
        self.counters.fsyncs.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Appends an epoch barrier and makes everything before it durable
    /// per the sync policy. A shard with nothing new since the last
    /// barrier writes nothing — repeated flushes of an idle engine must
    /// not grow the logs.
    fn barrier(&mut self, epoch: u64) -> io::Result<()> {
        // Even a clean shard is *covered* by this barrier — only the
        // on-disk marker is skipped.
        self.last_epoch = self.last_epoch.max(epoch);
        if !self.dirty {
            return Ok(());
        }
        self.dirty = false;
        Record::Epoch { epoch }.encode(&mut self.scratch);
        let len = self.scratch.len() as u64;
        self.writer.write_all(&self.scratch)?;
        self.scratch.clear();
        self.counters
            .journal_bytes
            .fetch_add(len, Ordering::Relaxed);
        self.writer.flush()?;
        if self.sync != SyncPolicy::Never {
            self.timed_fsync(|j| j.writer.get_ref().sync_data())?;
        }
        Ok(())
    }

    /// Compacts the shard: snapshots `map` into a fresh checkpoint
    /// segment (atomic rename) and rolls the log to the next
    /// generation.
    fn compact(&mut self, map: &HashMap<u128, ClassEntry>) -> io::Result<()> {
        let compact_started = Instant::now();
        // Everything in the current log is contained in `map`; the log
        // itself needs no sync before being superseded.
        self.writer.flush()?;
        let next_gen = self.gen + 1;
        let tmp = ckpt_tmp_path(&self.dir, self.shard_id);
        let mut buf = Vec::with_capacity(64 + map.len() * 64);
        Record::CheckpointHeader {
            version: WIRE_VERSION,
            next_gen,
            classes: map.len() as u64,
            last_epoch: self.last_epoch,
        }
        .encode(&mut buf);
        for (&key, entry) in map {
            wire::encode_class_frame(
                &mut buf,
                key,
                entry.rep_seq,
                entry.size as u64,
                &entry.representative,
            );
        }
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&buf)?;
            if self.sync != SyncPolicy::Never {
                self.timed_fsync(|_| f.sync_data())?;
            }
        }
        std::fs::rename(&tmp, ckpt_path(&self.dir, self.shard_id))?;
        if self.sync != SyncPolicy::Never {
            // Persist the rename itself.
            let dir_handle = File::open(&self.dir)?;
            self.timed_fsync(|_| dir_handle.sync_all())?;
        }
        self.counters.checkpoints.fetch_add(1, Ordering::Relaxed);
        self.counters
            .checkpoint_bytes
            .fetch_add(buf.len() as u64, Ordering::Relaxed);
        let old_gen = self.gen;
        self.writer =
            io::BufWriter::new(File::create(log_path(&self.dir, self.shard_id, next_gen))?);
        self.counters
            .segments_created
            .fetch_add(1, Ordering::Relaxed);
        let _ = std::fs::remove_file(log_path(&self.dir, self.shard_id, old_gen));
        self.gen = next_gen;
        self.records_since_ckpt = 0;
        self.dirty = false;
        self.telemetry
            .checkpoint_nanos
            .record_duration(compact_started.elapsed());
        Ok(())
    }
}

/// One shard: the class map plus (when durable) its journal, both
/// behind the same lock so the log order equals the mutation order.
#[derive(Debug)]
struct Shard {
    map: HashMap<u128, ClassEntry>,
    journal: Option<ShardJournal>,
}

/// Classes sharded by the top bits of their key.
///
/// The MSV digest is an FNV-1a output, uniform over `u128`, so high-bit
/// sharding load-balances without any extra hashing, and every key's
/// shard is stable for the lifetime of the engine *and of the on-disk
/// store*. Each shard is an independent `Mutex`: with `S` shards and
/// `W` workers the collision probability of two workers needing the
/// same lock at the same instant is ~`W/S` and inserts hold the lock
/// for a map probe plus (when durable) a buffered journal append —
/// signature computation, the expensive part, happens outside.
#[derive(Debug)]
pub(crate) struct ShardedStore {
    shards: Vec<Mutex<Shard>>,
    /// How far to shift a key right so its top bits index `shards`.
    shift: u32,
    counters: Option<Arc<DurabilityCounters>>,
    /// When set, a class's representative is **pinned** at creation:
    /// later inserts only bump the member count, they never steal the
    /// slot on a lower `seq`. Certified-resolution engines run this
    /// way — the creating insert carries the *proved* canonical table
    /// (`certified_key(rep) == key`), while the dedup fast paths insert
    /// raw member tables that must never become the representative.
    pinned_reps: bool,
    /// Held for the store's lifetime when durable; dropping it (or the
    /// process dying) releases the advisory lock.
    _lock: Option<File>,
}

impl ShardedStore {
    /// Creates an in-memory store with `shards` shards (must be a power
    /// of two).
    pub fn new(shards: usize) -> Self {
        assert!(shards.is_power_of_two(), "shard count must be 2^k");
        ShardedStore {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        journal: None,
                    })
                })
                .collect(),
            shift: 128 - shards.trailing_zeros(),
            counters: None,
            pinned_reps: false,
            _lock: None,
        }
    }

    /// Switches the store to pinned-representative mode (see
    /// [`ShardedStore::pinned_reps`]). Called once at engine
    /// construction for certified-resolution engines, before the store
    /// is shared.
    pub fn pin_representatives(&mut self) {
        self.pinned_reps = true;
    }

    /// Opens (or creates) a durable store under `persist.dir`,
    /// recovering any existing state. `default_shards` is used when the
    /// directory is fresh; an existing manifest's shard count wins
    /// (shard assignment is baked into the files). Returns the store
    /// and what recovery found.
    ///
    /// # Errors
    ///
    /// I/O errors, a manifest recorded under a different key scheme
    /// (`set_name` names the signature set, prefixed `certified:` for a
    /// certified-resolution store — keys of different schemes would be
    /// incomparable), or corruption outside a log tail.
    pub fn open_durable(
        persist: &PersistConfig,
        default_shards: usize,
        set_name: &str,
        telemetry: StoreTelemetry,
    ) -> io::Result<(Self, RecoveryReport)> {
        assert!(default_shards.is_power_of_two(), "shard count must be 2^k");
        let dir = &persist.dir;
        std::fs::create_dir_all(dir)?;
        let lock = acquire_lock(dir)?;
        let shards = match read_manifest(dir)? {
            Some((manifest_shards, manifest_set)) => {
                if manifest_set != set_name {
                    return Err(corrupt(
                        &manifest_path(dir),
                        format!(
                            "store was built with signature set {manifest_set}, \
                             engine configured with {set_name}"
                        ),
                    ));
                }
                manifest_shards
            }
            None => {
                write_manifest(dir, default_shards, set_name, persist.sync)?;
                default_shards
            }
        };
        let counters = Arc::new(DurabilityCounters::default());
        let mut report = RecoveryReport {
            shards,
            ..RecoveryReport::default()
        };
        let mut shard_cells = Vec::with_capacity(shards);
        for shard_id in 0..shards {
            let rec = recover_shard(dir, shard_id)?;
            report.classes += rec.map.len();
            report.members += rec.map.values().map(|e| e.size as u64).sum::<u64>();
            report.checkpoint_classes += rec.checkpoint_classes;
            report.log_records += rec.log_records;
            report.truncated_bytes += rec.truncated_bytes;
            report.torn_shards += usize::from(rec.torn);
            report.last_epoch = report.last_epoch.max(rec.last_epoch);
            // Drop any torn tail, then keep appending to the same
            // segment.
            let path = log_path(dir, shard_id, rec.next_gen);
            let mut file = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(false)
                .open(&path)?;
            if rec.log_exists {
                file.set_len(rec.log_good_len)?;
                file.seek(SeekFrom::End(0))?;
            } else {
                counters.segments_created.fetch_add(1, Ordering::Relaxed);
            }
            remove_stale_files(dir, shard_id, rec.next_gen);
            let journal = ShardJournal {
                dir: dir.clone(),
                shard_id,
                gen: rec.next_gen,
                writer: io::BufWriter::new(file),
                records_since_ckpt: rec.log_records,
                // Tail records inherited from the previous process have
                // no barrier after them yet.
                dirty: rec.log_records > 0,
                last_epoch: rec.last_epoch,
                scratch: Vec::with_capacity(64),
                sync: persist.sync,
                checkpoint_interval: persist.checkpoint_interval,
                counters: Arc::clone(&counters),
                telemetry: telemetry.clone(),
            };
            shard_cells.push(Mutex::new(Shard {
                map: rec.map,
                journal: Some(journal),
            }));
        }
        Ok((
            ShardedStore {
                shards: shard_cells,
                shift: 128 - shards.trailing_zeros(),
                counters: Some(counters),
                pinned_reps: false,
                _lock: Some(lock),
            },
            report,
        ))
    }

    fn shard_of(&self, key: u128) -> usize {
        if self.shift == 128 {
            0 // single shard: `>> 128` would overflow
        } else {
            (key >> self.shift) as usize
        }
    }

    /// Records the member with submission number `seq` into class
    /// `key`; the earliest-submitted member becomes (or stays) the
    /// representative — unless the store runs in
    /// pinned-representative mode ([`ShardedStore::pin_representatives`]),
    /// where the creating insert's table is the proved canonical form
    /// and is kept whatever `seq` later members arrive with. Returns
    /// `true` when this insert created the class. When durable, the
    /// mutation is journaled before the shard lock is released.
    ///
    /// # Panics
    ///
    /// Panics if a journal append or compaction fails — durability was
    /// promised and can no longer be provided, so the engine stops
    /// rather than silently diverging from its log.
    pub fn insert(&self, key: u128, table: &TruthTable, seq: u64) -> bool {
        let mut guard = self.shards[self.shard_of(key)]
            .lock()
            .expect("store shard poisoned");
        let shard = &mut *guard;
        let journaling = shard.journal.is_some();
        // What the journal must record: Some((rep_seq, count)) for a
        // full class record (creation / new representative), None for a
        // bump.
        let (created, class_record) = match shard.map.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let entry = e.get_mut();
                entry.size += 1;
                if !self.pinned_reps && seq < entry.rep_seq {
                    entry.representative = table.clone();
                    entry.rep_seq = seq;
                    (false, Some((seq, entry.size as u64)))
                } else {
                    // Pinned mode: a duplicate classified out of chunk
                    // order may carry a raw (non-canonical) member
                    // table with a lower seq; it bumps the count only,
                    // so `certified_key(rep) == key` holds for the
                    // store's — and the journal's — whole lifetime.
                    (false, None)
                }
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(ClassEntry {
                    representative: table.clone(),
                    rep_seq: seq,
                    size: 1,
                });
                (true, Some((seq, 1)))
            }
        };
        if journaling {
            let journal = shard.journal.as_mut().expect("checked above");
            match class_record {
                Some((rep_seq, count)) => {
                    wire::encode_class_frame(&mut journal.scratch, key, rep_seq, count, table);
                }
                None => Record::Bump { key }.encode(&mut journal.scratch),
            }
            journal
                // analysis: allow(lock-discipline, "journal append happens under the shard guard BY DESIGN: the guard is what orders log records identically to map mutations")
                .commit_scratch()
                .expect("journal append failed; durable store is inconsistent");
            if journal.checkpoint_interval > 0
                && journal.records_since_ckpt >= journal.checkpoint_interval
            {
                journal
                    // analysis: allow(lock-discipline, "checkpoint compaction snapshots shard.map, which only the held guard keeps consistent with the log")
                    .compact(&shard.map)
                    .expect("checkpoint compaction failed; durable store is inconsistent");
            }
        }
        created
    }

    /// Appends an epoch barrier to every shard journal and flushes (and
    /// per the sync policy fsyncs) it. A no-op for in-memory stores.
    pub fn sync_barrier(&self, epoch: u64) -> io::Result<()> {
        if self.counters.is_none() {
            return Ok(());
        }
        for cell in &self.shards {
            let mut guard = cell.lock().expect("store shard poisoned");
            if let Some(journal) = guard.journal.as_mut() {
                // analysis: allow(lock-discipline, "the epoch barrier must land after every record the guard ordered before it; appending outside the guard could interleave a racing insert")
                journal.barrier(epoch)?;
            }
        }
        if let Some(c) = &self.counters {
            c.epochs.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Compacts every shard that has journal records outstanding — the
    /// clean-shutdown path of [`Engine::finish`](crate::Engine::finish):
    /// afterwards recovery reads checkpoints only. A no-op for
    /// in-memory stores.
    pub fn checkpoint_all(&self) -> io::Result<()> {
        for cell in &self.shards {
            let mut guard = cell.lock().expect("store shard poisoned");
            let shard = &mut *guard;
            if let Some(journal) = shard.journal.as_mut() {
                if journal.records_since_ckpt > 0 {
                    // analysis: allow(lock-discipline, "shutdown checkpoint: compaction snapshots shard.map under the guard that keeps it consistent with the log")
                    journal.compact(&shard.map)?;
                } else {
                    // analysis: allow(lock-discipline, "shutdown flush of an already-checkpointed shard; no writers race a finishing engine")
                    journal.writer.flush()?;
                }
            }
        }
        Ok(())
    }

    /// Current write-side durability counters (`None` when in-memory).
    pub fn durability_snapshot(&self) -> Option<DurabilityStats> {
        self.counters.as_ref().map(|c| c.snapshot())
    }

    /// Visits every class (locks shards one at a time).
    pub fn for_each(&self, mut f: impl FnMut(u128, &ClassEntry)) {
        for cell in &self.shards {
            let guard = cell.lock().expect("store shard poisoned");
            for (&key, entry) in &guard.map {
                f(key, entry);
            }
        }
    }

    /// The representative and current size of class `key`, if present.
    pub fn get(&self, key: u128) -> Option<(TruthTable, usize)> {
        let shard = self.shards[self.shard_of(key)]
            .lock()
            .expect("store shard poisoned");
        shard
            .map
            .get(&key)
            .map(|e| (e.representative.clone(), e.size))
    }

    /// Classes per shard (locks each shard briefly, one at a time).
    pub fn shard_class_counts(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| s.lock().expect("store shard poisoned").map.len())
            .collect()
    }

    /// Total number of classes. (Production callers derive this from
    /// one `shard_class_counts` sweep to keep counters consistent.)
    #[cfg(test)]
    pub fn num_classes(&self) -> usize {
        self.shard_class_counts().iter().sum()
    }

    /// The `limit` largest classes so far, largest first (ties broken
    /// by key for determinism). A mid-stream heavy-hitter report: locks
    /// shards one at a time, so it runs concurrently with ingestion.
    pub fn top_classes(&self, limit: usize) -> Vec<ClassSummary> {
        let mut all: Vec<ClassSummary> = Vec::new();
        for shard in &self.shards {
            let guard = shard.lock().expect("store shard poisoned");
            all.extend(guard.map.iter().map(|(&key, e)| ClassSummary {
                key,
                representative: e.representative.clone(),
                size: e.size,
            }));
        }
        all.sort_by(|a, b| b.size.cmp(&a.size).then(a.key.cmp(&b.key)));
        all.truncate(limit);
        all
    }
}

// --- recovery --------------------------------------------------------

/// What one shard's files contained.
struct ShardRecovery {
    map: HashMap<u128, ClassEntry>,
    /// Generation of the live tail log (from the checkpoint header; 0
    /// for a checkpoint-less shard).
    next_gen: u64,
    /// Whether the tail log file existed at all.
    log_exists: bool,
    /// Valid prefix of the tail log; bytes past this are a torn tail.
    log_good_len: u64,
    checkpoint_classes: u64,
    log_records: u64,
    truncated_bytes: u64,
    torn: bool,
    last_epoch: u64,
}

/// Reads one shard's checkpoint + tail log without modifying anything.
fn recover_shard(dir: &Path, shard_id: usize) -> io::Result<ShardRecovery> {
    let mut rec = ShardRecovery {
        map: HashMap::new(),
        next_gen: 0,
        log_exists: false,
        log_good_len: 0,
        checkpoint_classes: 0,
        log_records: 0,
        truncated_bytes: 0,
        torn: false,
        last_epoch: 0,
    };
    let ckpt = ckpt_path(dir, shard_id);
    match std::fs::read(&ckpt) {
        Ok(bytes) => {
            let mut stream = wire::FrameStream::new(&bytes);
            // Checkpoints are written to a temp file and renamed into
            // place, so unlike a log tail they are all-or-nothing; any
            // decode failure is real corruption.
            let header = stream
                .next_record()
                .map_err(|e| corrupt(&ckpt, e))?
                .ok_or_else(|| corrupt(&ckpt, "empty checkpoint"))?;
            let (version, next_gen, classes, last_epoch) = match header {
                Record::CheckpointHeader {
                    version,
                    next_gen,
                    classes,
                    last_epoch,
                } => (version, next_gen, classes, last_epoch),
                _ => return Err(corrupt(&ckpt, "first record is not a checkpoint header")),
            };
            if version != WIRE_VERSION {
                return Err(corrupt(&ckpt, format!("unsupported version {version}")));
            }
            rec.next_gen = next_gen;
            rec.last_epoch = last_epoch;
            loop {
                match stream.next_record().map_err(|e| corrupt(&ckpt, e))? {
                    Some(Record::Class {
                        key,
                        rep_seq,
                        count,
                        representative,
                    }) => {
                        rec.map.insert(
                            key,
                            ClassEntry {
                                representative,
                                rep_seq,
                                size: count as usize,
                            },
                        );
                    }
                    Some(_) => return Err(corrupt(&ckpt, "non-class record in checkpoint body")),
                    None => break,
                }
            }
            if rec.map.len() as u64 != classes {
                return Err(corrupt(&ckpt, "checkpoint class count mismatch"));
            }
            rec.checkpoint_classes = classes;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    let log = log_path(dir, shard_id, rec.next_gen);
    let bytes = match std::fs::read(&log) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(rec),
        Err(e) => return Err(e),
    };
    rec.log_exists = true;
    let mut stream = wire::FrameStream::new(&bytes);
    loop {
        match stream.next_record() {
            Ok(Some(Record::Class {
                key,
                rep_seq,
                count,
                representative,
            })) => {
                match rec.map.entry(key) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        // A representative change: one more member, and
                        // an earlier-submitted table takes over.
                        let entry = e.get_mut();
                        entry.size += 1;
                        if rep_seq < entry.rep_seq {
                            entry.representative = representative;
                            entry.rep_seq = rep_seq;
                        }
                    }
                    std::collections::hash_map::Entry::Vacant(v) => {
                        v.insert(ClassEntry {
                            representative,
                            rep_seq,
                            size: count as usize,
                        });
                    }
                }
                rec.log_records += 1;
            }
            Ok(Some(Record::Bump { key })) => match rec.map.get_mut(&key) {
                Some(entry) => {
                    entry.size += 1;
                    rec.log_records += 1;
                }
                None => {
                    return Err(corrupt(&log, "bump for a class never created"));
                }
            },
            Ok(Some(Record::Epoch { epoch })) => {
                rec.last_epoch = rec.last_epoch.max(epoch);
            }
            Ok(Some(_)) => {
                return Err(corrupt(&log, "header record inside a log segment"));
            }
            Ok(None) => {
                rec.log_good_len = bytes.len() as u64;
                break;
            }
            Err(WireError::TornTail { good_len }) => {
                rec.log_good_len = good_len as u64;
                rec.truncated_bytes = (bytes.len() - good_len) as u64;
                rec.torn = true;
                break;
            }
            Err(e @ WireError::Malformed { .. }) => {
                return Err(corrupt(&log, e));
            }
        }
    }
    Ok(rec)
}

/// What [`recover_dir`] hands back: the recovered class maps in shard
/// order, the signature-set name from the manifest, and the aggregate
/// report.
pub(crate) type RecoveredDir = (Vec<HashMap<u128, ClassEntry>>, String, RecoveryReport);

/// Reads a whole store directory without modifying it: the manifest,
/// every shard's checkpoint + tail log.
pub(crate) fn recover_dir(dir: &Path) -> io::Result<RecoveredDir> {
    let (shards, set) = read_manifest(dir)?.ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::NotFound,
            format!("{}: no store manifest", manifest_path(dir).display()),
        )
    })?;
    let mut report = RecoveryReport {
        shards,
        ..RecoveryReport::default()
    };
    let mut maps = Vec::with_capacity(shards);
    for shard_id in 0..shards {
        let rec = recover_shard(dir, shard_id)?;
        report.classes += rec.map.len();
        report.members += rec.map.values().map(|e| e.size as u64).sum::<u64>();
        report.checkpoint_classes += rec.checkpoint_classes;
        report.log_records += rec.log_records;
        report.truncated_bytes += rec.truncated_bytes;
        report.torn_shards += usize::from(rec.torn);
        report.last_epoch = report.last_epoch.max(rec.last_epoch);
        maps.push(rec.map);
    }
    Ok((maps, set, report))
}

/// Reads and validates the manifest; `Ok(None)` when the directory has
/// none yet.
fn read_manifest(dir: &Path) -> io::Result<Option<(usize, String)>> {
    let path = manifest_path(dir);
    let bytes = match std::fs::read(&path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let mut stream = wire::FrameStream::new(&bytes);
    match stream.next_record().map_err(|e| corrupt(&path, e))? {
        Some(Record::Manifest {
            version,
            shards,
            set,
        }) => {
            if version != WIRE_VERSION {
                return Err(corrupt(&path, format!("unsupported version {version}")));
            }
            if shards == 0 || !(shards as usize).is_power_of_two() {
                return Err(corrupt(&path, format!("invalid shard count {shards}")));
            }
            Ok(Some((shards as usize, set)))
        }
        _ => Err(corrupt(&path, "not a manifest")),
    }
}

fn write_manifest(dir: &Path, shards: usize, set: &str, sync: SyncPolicy) -> io::Result<()> {
    let mut buf = Vec::new();
    Record::Manifest {
        version: WIRE_VERSION,
        shards: shards as u32,
        set: set.to_string(),
    }
    .encode(&mut buf);
    let path = manifest_path(dir);
    let mut f = File::create(&path)?;
    f.write_all(&buf)?;
    if sync != SyncPolicy::Never {
        f.sync_data()?;
        File::open(dir)?.sync_all()?;
    }
    Ok(())
}

/// Deletes leftovers a crash may have stranded: the checkpoint temp
/// file and log segments of superseded generations. Best-effort — a
/// failure here only wastes disk.
fn remove_stale_files(dir: &Path, shard_id: usize, live_gen: u64) {
    let _ = std::fs::remove_file(ckpt_tmp_path(dir, shard_id));
    let prefix = format!("shard-{shard_id:04}.log.");
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(gen) = name
            .strip_prefix(&prefix)
            .and_then(|g| g.parse::<u64>().ok())
        {
            if gen != live_gen {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(bits: u64) -> TruthTable {
        TruthTable::from_u64(3, bits).unwrap()
    }

    #[test]
    fn insert_counts_and_representatives() {
        let store = ShardedStore::new(4);
        assert!(store.insert(7, &t(0xe8), 0));
        assert!(!store.insert(7, &t(0xd4), 1));
        assert!(store.insert(u128::MAX, &t(0x96), 2));
        assert_eq!(store.num_classes(), 2);
        let (rep, size) = store.get(7).unwrap();
        assert_eq!(rep, t(0xe8)); // earliest submission wins
        assert_eq!(size, 2);
        assert!(store.get(8).is_none());
    }

    #[test]
    fn representative_is_earliest_submission_not_insert_order() {
        // Workers race: the member submitted first may be inserted
        // last. The representative must still be the earliest
        // submission, matching `Classifier::classify`.
        let store = ShardedStore::new(4);
        store.insert(7, &t(0xd4), 5);
        store.insert(7, &t(0x2b), 3);
        store.insert(7, &t(0xe8), 0);
        store.insert(7, &t(0x17), 9);
        let (rep, size) = store.get(7).unwrap();
        assert_eq!(rep, t(0xe8));
        assert_eq!(size, 4);
    }

    #[test]
    fn pinned_reps_ignore_lower_seq_inserts() {
        // Certified mode: the creating insert carries the proved
        // canonical table; a duplicate classified out of chunk order
        // arrives later with a *lower* seq and a raw member table. It
        // must bump the count only — never steal the representative.
        let mut store = ShardedStore::new(4);
        store.pin_representatives();
        assert!(store.insert(7, &t(0xe8), 100));
        assert!(!store.insert(7, &t(0xd4), 5));
        assert!(!store.insert(7, &t(0x2b), 0));
        let (rep, size) = store.get(7).unwrap();
        assert_eq!(rep, t(0xe8), "creating insert's table must stay pinned");
        assert_eq!(size, 3);
    }

    #[test]
    fn high_bits_select_shard() {
        let store = ShardedStore::new(4);
        assert_eq!(store.shard_of(0), 0);
        assert_eq!(store.shard_of(u128::MAX), 3);
        assert_eq!(store.shard_of(1u128 << 127), 2);
        assert_eq!(store.shard_of(1u128 << 126), 1);
        let single = ShardedStore::new(1);
        assert_eq!(single.shard_of(u128::MAX), 0);
    }

    #[test]
    fn top_classes_orders_by_size_then_key() {
        let store = ShardedStore::new(2);
        for seq in 0..3 {
            store.insert(1, &t(1), seq);
        }
        store.insert(2, &t(2), 3);
        store.insert(u128::MAX / 3, &t(3), 4);
        let top = store.top_classes(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].size, 3);
        assert_eq!(top[0].key, 1);
        assert_eq!(top[1].size, 1);
    }

    fn test_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("facepoint-store-tests")
            .join(format!("{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn durable(dir: &Path, interval: u64) -> (ShardedStore, RecoveryReport) {
        let cfg = PersistConfig {
            dir: dir.to_path_buf(),
            checkpoint_interval: interval,
            sync: SyncPolicy::Never, // tests don't need real fsyncs
        };
        ShardedStore::open_durable(
            &cfg,
            4,
            &facepoint_sig::SignatureSet::all().to_string(),
            StoreTelemetry::default(),
        )
        .unwrap()
    }

    #[test]
    fn durable_roundtrip_without_checkpoints() {
        let dir = test_dir("roundtrip");
        {
            let (store, report) = durable(&dir, 0);
            assert_eq!(report.classes, 0);
            store.insert(7, &t(0xe8), 0);
            store.insert(7, &t(0xd4), 1);
            store.insert(u128::MAX, &t(0x96), 2);
            store.checkpoint_all().unwrap();
        }
        let (store, report) = durable(&dir, 0);
        assert_eq!(report.classes, 2);
        assert_eq!(report.members, 3);
        let (rep, size) = store.get(7).unwrap();
        assert_eq!(rep, t(0xe8));
        assert_eq!(size, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_preserves_state_and_rolls_generations() {
        let dir = test_dir("compaction");
        {
            // Interval 3: plenty of compactions over 20 inserts.
            let (store, _) = durable(&dir, 3);
            for seq in 0..20u64 {
                store.insert(u128::from(seq % 5) << 100, &t(seq % 7), seq);
            }
            let stats = store.durability_snapshot().unwrap();
            assert!(stats.checkpoints > 0, "{stats:?}");
            // Dropped without checkpoint_all: the tail log still covers
            // the delta since the last compaction.
        }
        let (store, report) = durable(&dir, 3);
        assert_eq!(report.classes, 5);
        assert_eq!(report.members, 20);
        assert!(report.checkpoint_classes > 0);
        for class in 0..5u128 {
            let (_, size) = store.get(class << 100).unwrap();
            assert_eq!(size, 4);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovered_representative_matches_in_memory() {
        let dir = test_dir("rep");
        let mem = ShardedStore::new(4);
        {
            let (store, _) = durable(&dir, 4);
            // Out-of-order inserts exercising the rep-change record.
            for (bits, seq) in [(0xd4u64, 5), (0x2b, 3), (0xe8, 0), (0x17, 9)] {
                store.insert(7, &t(bits), seq);
                mem.insert(7, &t(bits), seq);
            }
        }
        let (store, _) = durable(&dir, 4);
        let (rep, size) = store.get(7).unwrap();
        let (mem_rep, mem_size) = mem.get(7).unwrap();
        assert_eq!(rep, mem_rep);
        assert_eq!(size, mem_size);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pinned_reps_survive_a_durable_reopen() {
        // The pinned (canonical) representative must be what the
        // journal records: an out-of-order lower-seq duplicate is a
        // bump frame, not a rep-change frame, so recovery rebuilds the
        // same pinned table.
        let dir = test_dir("pinned-rep");
        {
            let (mut store, _) = durable(&dir, 0);
            store.pin_representatives();
            store.insert(7, &t(0xe8), 100);
            store.insert(7, &t(0xd4), 5);
        }
        let (store, report) = durable(&dir, 0);
        assert_eq!(report.members, 2);
        let (rep, size) = store.get(7).unwrap();
        assert_eq!(rep, t(0xe8), "journal recorded a stolen representative");
        assert_eq!(size, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_set_mismatch_is_refused() {
        let dir = test_dir("set-mismatch");
        {
            let _ = durable(&dir, 0);
        }
        let cfg = PersistConfig {
            dir: dir.clone(),
            checkpoint_interval: 0,
            sync: SyncPolicy::Never,
        };
        let err = ShardedStore::open_durable(
            &cfg,
            4,
            &facepoint_sig::SignatureSet::OIV.to_string(),
            StoreTelemetry::default(),
        )
        .map(|_| ())
        .expect_err("set mismatch must be refused");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_shard_count_wins_over_config() {
        let dir = test_dir("shard-adopt");
        {
            let (store, _) = durable(&dir, 0); // 4 shards
            store.insert(u128::MAX, &t(0x96), 0);
        }
        let cfg = PersistConfig {
            dir: dir.clone(),
            checkpoint_interval: 0,
            sync: SyncPolicy::Never,
        };
        // Ask for 16 shards; the store keeps its persisted 4.
        let (store, report) = ShardedStore::open_durable(
            &cfg,
            16,
            &facepoint_sig::SignatureSet::all().to_string(),
            StoreTelemetry::default(),
        )
        .unwrap();
        assert_eq!(report.shards, 4);
        assert_eq!(store.shards.len(), 4);
        assert!(store.get(u128::MAX).is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_reported() {
        let dir = test_dir("torn");
        {
            let (store, _) = durable(&dir, 0);
            // Keys with zero high bits keep both classes in shard 0's
            // log; no checkpoint, so recovery replays the log alone
            // (the BufWriter flushes on drop).
            store.insert(1, &t(0xe8), 0);
            store.insert(2, &t(0x96), 1);
        }
        let log = log_path(&dir, 0, 0);
        let mut bytes = std::fs::read(&log).unwrap();
        let len = bytes.len();
        bytes[len - 3] ^= 0xFF; // corrupt the tail record
        std::fs::write(&log, &bytes).unwrap();
        let (store, report) = durable(&dir, 0);
        assert_eq!(report.classes, 1, "{report}");
        assert_eq!(report.torn_shards, 1);
        assert!(report.truncated_bytes > 0);
        assert!(store.get(1).is_some());
        assert!(store.get(2).is_none());
        // The torn tail was truncated on open: appending works and the
        // next recovery is clean.
        store.insert(2, &t(0x96), 2);
        drop(store);
        let (_, report) = durable(&dir, 0);
        assert_eq!(report.classes, 2);
        assert_eq!(report.torn_shards, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
