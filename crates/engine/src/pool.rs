//! The work-stealing ingest pool: per-worker bounded deques instead of
//! one queue behind one lock.
//!
//! The previous ingest path handed every chunk through a single
//! `Mutex<Receiver<Job>>` — workers serialized on one lock to pop, and
//! at high core counts the queue, not the signature kernel, became the
//! ceiling. This pool removes that last global contention point:
//!
//! * **one bounded deque per worker** ([`PoolConfig::deque_capacity`]
//!   items each). Producers push to the least-loaded deque (cheap
//!   atomic length scan, one short per-deque lock), so two producers —
//!   or a producer and a stealing worker — only ever collide on a
//!   single deque, never on a global structure;
//! * **LIFO own-drain, FIFO steal**: a worker pops its own deque from
//!   the back (the chunk most recently pushed is the one warmest in
//!   cache) and, when its deque runs dry, steals up to
//!   [`PoolConfig::steal_batch`] items from the *front* of a victim's
//!   deque — the items the owner would reach last — re-queueing all but
//!   one locally so a single steal amortizes over several chunks;
//! * **parking, not spinning**: a worker that finds every deque empty
//!   registers as a sleeper and blocks on a condvar; producers wake one
//!   sleeper per push only when someone is actually asleep, so the
//!   loaded steady state performs no wakeup syscalls at all. Producers
//!   park symmetrically when every deque is full (backpressure —
//!   `submit` still blocks rather than buffering unboundedly);
//! * **clean quiescence**: [`StealPool::close`] marks the pool closed
//!   and then locks every deque once, which fences stragglers — any
//!   push that observed the pool open lands before the fence, and any
//!   push after it is refused with its item returned. Workers exit once
//!   the pool is closed *and* globally empty; whatever a refused-push
//!   race could strand is swept by [`StealPool::drain_remaining`] after
//!   the workers are joined, so every accepted item is processed
//!   exactly once.
//!
//! The wake/sleep handshake is the classic two-counter pattern: the
//! producer bumps the queued count (`SeqCst`) and *then* reads the
//! sleeper count; the worker registers as a sleeper (`SeqCst`, under
//! the coordination lock) and *then* re-reads the queued count before
//! waiting. In the total order of those four operations at least one
//! side observes the other, so a push is never lost to a sleeping
//! worker — without any lock on the hot path.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Tuning of a [`StealPool`], resolved from
/// [`EngineConfig`](crate::EngineConfig).
#[derive(Debug, Clone, Copy)]
pub(crate) struct PoolConfig {
    /// Worker (and deque) count, at least 1.
    pub workers: usize,
    /// Items each deque holds before producers block, at least 1.
    pub deque_capacity: usize,
    /// Items moved per steal, clamped to `1..=deque_capacity`.
    pub steal_batch: usize,
}

/// One worker's deque: the queue behind a short lock, plus an atomic
/// length so producers and thieves can pick a target without locking.
#[derive(Debug)]
struct DequeSlot<T> {
    q: Mutex<VecDeque<T>>,
    len: AtomicUsize,
}

/// The pool. Generic over the item type so its scheduling logic can be
/// unit-tested without dragging the engine in.
#[derive(Debug)]
pub(crate) struct StealPool<T> {
    deques: Vec<DequeSlot<T>>,
    capacity: usize,
    steal_batch: usize,
    /// Items queued across all deques (excludes items being processed).
    queued: AtomicUsize,
    closed: AtomicBool,
    /// Round-robin tiebreaker for producers picking a target deque.
    rr: AtomicUsize,
    /// Coordination lock for the two condvars; never taken on the
    /// loaded hot path.
    coord: Mutex<()>,
    /// Workers wait here when every deque is empty.
    work_cv: Condvar,
    /// Producers wait here when every deque is full.
    space_cv: Condvar,
    sleepers: AtomicUsize,
    waiting_producers: AtomicUsize,
    steals: AtomicU64,
    parks: AtomicU64,
}

impl<T> StealPool<T> {
    pub fn new(cfg: PoolConfig) -> Self {
        let workers = cfg.workers.max(1);
        let capacity = cfg.deque_capacity.max(1);
        StealPool {
            deques: (0..workers)
                .map(|_| DequeSlot {
                    q: Mutex::new(VecDeque::with_capacity(capacity)),
                    len: AtomicUsize::new(0),
                })
                .collect(),
            capacity,
            steal_batch: cfg.steal_batch.clamp(1, capacity),
            queued: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
            rr: AtomicUsize::new(0),
            coord: Mutex::new(()),
            work_cv: Condvar::new(),
            space_cv: Condvar::new(),
            sleepers: AtomicUsize::new(0),
            waiting_producers: AtomicUsize::new(0),
            steals: AtomicU64::new(0),
            parks: AtomicU64::new(0),
        }
    }

    /// Whether [`StealPool::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }

    /// Items stolen between deques so far.
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Times a worker went to sleep on an empty pool so far.
    pub fn parks(&self) -> u64 {
        self.parks.load(Ordering::Relaxed)
    }

    /// Items currently queued across all deques (excludes items a
    /// worker has already taken and is processing) — the live deque
    /// depth behind the `engine_deque_depth` gauge.
    pub fn queued(&self) -> usize {
        self.queued.load(Ordering::SeqCst)
    }

    fn lock_deque(&self, i: usize) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.deques[i].q.lock().expect("ingest deque poisoned")
    }

    /// One push attempt: probe every deque starting from the
    /// least-loaded one; `Ok` on success, `Err(item)` when the pool is
    /// closed or every deque is full.
    fn try_push(&self, item: T) -> Result<(), T> {
        // Least-loaded first (atomic scan, no locks), round-robin on
        // ties so an all-empty pool still spreads work over workers.
        let n = self.deques.len();
        let start = self.rr.fetch_add(1, Ordering::Relaxed) % n;
        let mut best = start;
        let mut best_len = self.deques[start].len.load(Ordering::Relaxed);
        for off in 1..n {
            let i = (start + off) % n;
            let len = self.deques[i].len.load(Ordering::Relaxed);
            if len < best_len {
                best = i;
                best_len = len;
            }
        }
        for off in 0..n {
            let i = (best + off) % n;
            let mut q = self.lock_deque(i);
            // Checked under the deque lock: `close` fences every deque
            // after setting the flag, so a push that sees the pool open
            // here lands before the close sweep completes (and is
            // therefore drained), while any later push is refused.
            if self.closed.load(Ordering::SeqCst) {
                return Err(item);
            }
            if q.len() < self.capacity {
                let was_empty = q.is_empty();
                q.push_back(item);
                self.deques[i].len.store(q.len(), Ordering::Relaxed);
                // Count the item while still holding the deque lock: a
                // consumer can only pop it after this unlock, so its
                // `note_taken` decrement always follows this increment
                // — `queued` can never transiently underflow (which
                // would wrap and mute the producer wake).
                self.queued.fetch_add(1, Ordering::SeqCst);
                drop(q);
                // Wake a sleeper only on the deque's empty→non-empty
                // transition: workers only ever park when the whole
                // pool is empty (every deque included), so a push onto
                // a non-empty deque cannot be the one a sleeper is
                // waiting for — skipping the coordination lock here
                // keeps the loaded steady state syscall-free.
                if was_empty && self.sleepers.load(Ordering::SeqCst) > 0 {
                    let _g = self.coord.lock().expect("pool coord poisoned");
                    self.work_cv.notify_one();
                }
                return Ok(());
            }
        }
        Err(item)
    }

    /// Pushes `item`, blocking while every deque is full
    /// (backpressure). `Err(item)` only when the pool is closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut item = item;
        loop {
            if self.is_closed() {
                return Err(item);
            }
            match self.try_push(item) {
                Ok(()) => return Ok(()),
                Err(back) => item = back,
            }
            if self.is_closed() {
                return Err(item);
            }
            // Full everywhere: park until a worker makes space.
            let total = self.capacity * self.deques.len();
            let mut g = self.coord.lock().expect("pool coord poisoned");
            self.waiting_producers.fetch_add(1, Ordering::SeqCst);
            while self.queued.load(Ordering::SeqCst) >= total && !self.is_closed() {
                g = self.space_cv.wait(g).expect("pool coord poisoned");
            }
            self.waiting_producers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// A worker removed `taken` items from the queued set: update the
    /// global count and wake blocked producers once real room exists.
    ///
    /// The wake has **hysteresis**: producers block only when every
    /// deque is full, and are woken when the pool drains below half —
    /// not the instant one slot frees. Per-slot wakeups would cost two
    /// context switches per item in the saturated steady state (wake
    /// producer, push one, block again); draining to half lets a woken
    /// producer refill in one long burst. Producers never wait while
    /// the pool is below capacity, so the deferred wake costs no
    /// progress — only the workers get longer uninterrupted runs.
    fn note_taken(&self, taken: usize) {
        let after = self.queued.fetch_sub(taken, Ordering::SeqCst) - taken;
        let threshold = (self.capacity * self.deques.len() / 2).max(1);
        if after < threshold && self.waiting_producers.load(Ordering::SeqCst) > 0 {
            let _g = self.coord.lock().expect("pool coord poisoned");
            self.space_cv.notify_all();
        }
    }

    /// Pops the newest item of worker `me`'s own deque (LIFO: the chunk
    /// pushed last is the warmest, and thieves take from the other
    /// end).
    ///
    /// A **single-worker** pool drains FIFO instead: with no peers to
    /// steal the oldest items, LIFO would let a fast producer starve
    /// the front of the deque and would reverse processing order — a
    /// sequential engine keeps its deterministic submission-order
    /// processing (which per-shard journal replay tests rely on).
    fn pop_own(&self, me: usize) -> Option<T> {
        if self.deques[me].len.load(Ordering::Relaxed) == 0 {
            return None;
        }
        let mut q = self.lock_deque(me);
        let item = if self.deques.len() == 1 {
            q.pop_front()
        } else {
            q.pop_back()
        };
        self.deques[me].len.store(q.len(), Ordering::Relaxed);
        drop(q);
        if item.is_some() {
            self.note_taken(1);
        }
        item
    }

    /// Steals up to `steal_batch` items from the *front* of the first
    /// non-empty victim deque (FIFO — the items the owner would reach
    /// last), keeps one to process and re-queues the rest onto `me`'s
    /// own deque.
    fn steal(&self, me: usize) -> Option<T> {
        let n = self.deques.len();
        for off in 1..n {
            let victim = (me + off) % n;
            if self.deques[victim].len.load(Ordering::Relaxed) == 0 {
                continue;
            }
            let mut batch = {
                let mut q = self.lock_deque(victim);
                let take = self.steal_batch.min(q.len());
                let batch: Vec<T> = q.drain(..take).collect();
                self.deques[victim].len.store(q.len(), Ordering::Relaxed);
                batch
            };
            if batch.is_empty() {
                continue;
            }
            self.steals.fetch_add(batch.len() as u64, Ordering::Relaxed);
            let first = batch.remove(0);
            self.note_taken(1);
            if !batch.is_empty() {
                let mut own = self.lock_deque(me);
                // `steal_batch <= capacity` and the thief's deque was
                // empty a moment ago; even if a producer raced some
                // pushes in, exceeding the soft bound momentarily beats
                // dropping work.
                own.extend(batch);
                self.deques[me].len.store(own.len(), Ordering::Relaxed);
            }
            return Some(first);
        }
        None
    }

    /// Blocks worker `me` until an item is available and returns it, or
    /// returns `None` once the pool is closed **and** empty — the
    /// worker-loop driver.
    pub fn next_item(&self, me: usize) -> Option<T> {
        loop {
            if let Some(item) = self.pop_own(me) {
                return Some(item);
            }
            if let Some(item) = self.steal(me) {
                return Some(item);
            }
            if self.is_closed() && self.queued.load(Ordering::SeqCst) == 0 {
                return None;
            }
            // Nothing anywhere: sleep until a producer pushes (or the
            // pool closes). The queued re-check under the coordination
            // lock pairs with the producer's post-push sleeper check.
            self.parks.fetch_add(1, Ordering::Relaxed);
            let mut g = self.coord.lock().expect("pool coord poisoned");
            self.sleepers.fetch_add(1, Ordering::SeqCst);
            while self.queued.load(Ordering::SeqCst) == 0 && !self.is_closed() {
                g = self.work_cv.wait(g).expect("pool coord poisoned");
            }
            self.sleepers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Closes the pool: no push started after this call can succeed,
    /// workers drain what is queued and then exit their
    /// [`StealPool::next_item`] loops. Idempotent.
    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        // Fence: a racing push holds some deque lock while it checks
        // the flag; taking every lock once means that after this loop,
        // every push either already landed (and will be drained) or
        // will observe `closed` and be refused.
        for i in 0..self.deques.len() {
            drop(self.lock_deque(i));
        }
        let _g = self.coord.lock().expect("pool coord poisoned");
        self.work_cv.notify_all();
        self.space_cv.notify_all();
    }

    /// Sweeps every deque after the workers are joined, returning
    /// whatever a close-racing push may have stranded (normally
    /// nothing). Must only be called on a closed pool.
    pub fn drain_remaining(&self) -> Vec<T> {
        debug_assert!(self.is_closed());
        let mut out = Vec::new();
        for i in 0..self.deques.len() {
            let mut q = self.lock_deque(i);
            out.extend(q.drain(..));
            self.deques[i].len.store(0, Ordering::Relaxed);
        }
        if !out.is_empty() {
            self.queued.fetch_sub(out.len(), Ordering::SeqCst);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    fn pool(workers: usize, cap: usize, batch: usize) -> Arc<StealPool<u64>> {
        Arc::new(StealPool::new(PoolConfig {
            workers,
            deque_capacity: cap,
            steal_batch: batch,
        }))
    }

    #[test]
    fn every_item_is_delivered_exactly_once() {
        for workers in [1usize, 2, 4] {
            let pool = pool(workers, 4, 2);
            let sum = Arc::new(AtomicU64::new(0));
            let count = Arc::new(AtomicU64::new(0));
            let handles: Vec<_> = (0..workers)
                .map(|me| {
                    let pool = Arc::clone(&pool);
                    let sum = Arc::clone(&sum);
                    let count = Arc::clone(&count);
                    std::thread::spawn(move || {
                        while let Some(v) = pool.next_item(me) {
                            sum.fetch_add(v, Ordering::Relaxed);
                            count.fetch_add(1, Ordering::Relaxed);
                        }
                    })
                })
                .collect();
            let n = 1000u64;
            for v in 1..=n {
                pool.push(v).expect("pool open");
            }
            pool.close();
            for h in handles {
                h.join().unwrap();
            }
            assert!(pool.drain_remaining().is_empty());
            assert_eq!(count.load(Ordering::Relaxed), n, "{workers} workers");
            assert_eq!(sum.load(Ordering::Relaxed), n * (n + 1) / 2);
        }
    }

    #[test]
    fn lone_consumer_steals_from_other_deques() {
        // Two deques, one consumer: pushes spread over both (least
        // loaded), so worker 0 must steal everything routed to deque 1.
        let pool = pool(2, 8, 3);
        for v in 0..8u64 {
            pool.push(v).unwrap();
        }
        assert!(pool.deques[1].len.load(Ordering::Relaxed) > 0);
        let mut got = Vec::new();
        pool.close();
        while let Some(v) = pool.next_item(0) {
            got.push(v);
        }
        got.sort_unstable();
        assert_eq!(got, (0..8u64).collect::<Vec<_>>());
        assert!(pool.steals() > 0, "worker 0 never stole");
    }

    #[test]
    fn own_deque_drains_lifo_steals_take_fifo() {
        let pool = pool(2, 8, 2);
        // Fill deque 0 directly so the order is known.
        {
            let mut q = pool.lock_deque(0);
            q.extend([1u64, 2, 3, 4]);
            pool.deques[0].len.store(4, Ordering::Relaxed);
            pool.queued.store(4, Ordering::SeqCst);
        }
        // Owner pops the back (LIFO).
        assert_eq!(pool.pop_own(0), Some(4));
        // A thief takes from the front (FIFO), keeping the first and
        // re-queueing the second onto its own deque.
        assert_eq!(pool.steal(1), Some(1));
        assert_eq!(pool.deques[1].len.load(Ordering::Relaxed), 1);
        assert_eq!(pool.pop_own(1), Some(2));
        assert_eq!(pool.pop_own(0), Some(3));
    }

    #[test]
    fn single_worker_pool_drains_in_submission_order() {
        // The sequential configuration keeps deterministic FIFO order —
        // the property per-shard journal-replay tests rely on.
        let pool = pool(1, 16, 4);
        for v in 0..10u64 {
            pool.push(v).unwrap();
        }
        pool.close();
        let mut got = Vec::new();
        while let Some(v) = pool.next_item(0) {
            got.push(v);
        }
        assert_eq!(got, (0..10u64).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_deques_block_and_release_producers() {
        let pool = pool(2, 2, 1); // 4 items total, producer-wake threshold 2
        for v in 0..4u64 {
            pool.push(v).unwrap();
        }
        assert_eq!(pool.queued.load(Ordering::SeqCst), 4);
        // The fifth push must block until consumers make room.
        let p = Arc::clone(&pool);
        let pusher = std::thread::spawn(move || p.push(99).is_ok());
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert!(!pusher.is_finished(), "push past capacity did not block");
        // Producer wakes have hysteresis: the blocked push resumes once
        // the pool drains below half capacity, not per freed slot.
        let mut taken = 0;
        while taken < 3 {
            assert!(pool.next_item(0).is_some());
            taken += 1;
        }
        assert!(pusher.join().unwrap());
        pool.close();
        while pool.next_item(0).is_some() {
            taken += 1;
        }
        assert_eq!(taken, 5, "all five pushed items must be delivered");
    }

    #[test]
    fn close_refuses_new_pushes_and_wakes_sleepers() {
        let pool = pool(2, 4, 2);
        // A parked worker (empty pool) must wake and exit on close.
        let p = Arc::clone(&pool);
        let worker = std::thread::spawn(move || p.next_item(0));
        std::thread::sleep(std::time::Duration::from_millis(30));
        pool.close();
        assert_eq!(worker.join().unwrap(), None);
        assert!(pool.parks() > 0, "empty-pool worker never parked");
        assert_eq!(pool.push(7), Err(7), "closed pool accepted a push");
        assert!(pool.drain_remaining().is_empty());
    }

    #[test]
    fn drain_remaining_returns_undelivered_items() {
        let pool = pool(2, 4, 2);
        for v in 0..5u64 {
            pool.push(v).unwrap();
        }
        pool.close();
        let mut left = pool.drain_remaining();
        left.sort_unstable();
        assert_eq!(left, vec![0, 1, 2, 3, 4]);
        assert_eq!(pool.queued.load(Ordering::SeqCst), 0);
        // And the sweep is idempotent.
        assert!(pool.drain_remaining().is_empty());
    }
}
