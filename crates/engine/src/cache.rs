//! A sharded table→key memo cache for repeated-function traffic.
//!
//! Cut streams from real netlists repeat functions heavily (the same
//! AND/MUX/XOR shapes appear in every cone), so memoizing the
//! signature-key computation — the engine's only expensive step —
//! converts repeat traffic into a hash probe. The cache is sharded
//! like the partition store so workers rarely contend, and bounded:
//! once a shard is full new entries are simply not recorded (no
//! eviction churn; the hot entries of a repeating stream are inserted
//! early by construction).

use facepoint_truth::TruthTable;
use std::collections::HashMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of cache shards (fixed; the capacity knob is what matters).
const CACHE_SHARDS: usize = 16;

#[derive(Debug)]
pub(crate) struct MemoCache {
    shards: Vec<Mutex<HashMap<TruthTable, u128>>>,
    /// Per-shard entry limits; they sum to exactly the requested
    /// capacity (the remainder after dividing by the shard count goes
    /// to the first shards).
    shard_capacity: Vec<usize>,
    disabled: bool,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl MemoCache {
    /// A cache holding at most `capacity` entries in total; `0`
    /// disables caching entirely (every lookup is a miss and nothing is
    /// stored).
    pub fn new(capacity: usize) -> Self {
        MemoCache {
            shards: (0..CACHE_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            shard_capacity: (0..CACHE_SHARDS)
                .map(|i| capacity / CACHE_SHARDS + usize::from(i < capacity % CACHE_SHARDS))
                .collect(),
            disabled: capacity == 0,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, table: &TruthTable) -> usize {
        let mut h = DefaultHasher::new();
        table.hash(&mut h);
        (h.finish() as usize) % CACHE_SHARDS
    }

    /// Returns the memoized key of `table` if it is already cached —
    /// the ingestion-side dedup probe. Counts as a cache hit when it
    /// succeeds; a failed probe is *not* counted as a miss (the worker
    /// that later computes the key records the miss), so
    /// `hits + misses` still equals the number of keyed functions.
    pub fn peek(&self, table: &TruthTable) -> Option<u128> {
        if self.disabled {
            return None;
        }
        let idx = self.shard_of(table);
        let key = self.shards[idx]
            .lock()
            .expect("cache shard poisoned")
            .get(table)
            .copied();
        if key.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        key
    }

    /// Seeds the cache with an already-known `table → key` pair without
    /// touching the hit/miss counters — used to warm the cache from a
    /// recovered store's representatives, so a reopened engine's dedup
    /// fast path works from the first submission. Respects capacity
    /// like any other insert, and clones the table only when it is
    /// actually stored (warming from a store far larger than the cache
    /// must not allocate per rejected entry).
    pub fn prime(&self, table: &TruthTable, key: u128) {
        if self.disabled {
            return;
        }
        let idx = self.shard_of(table);
        let mut shard = self.shards[idx].lock().expect("cache shard poisoned");
        if shard.len() < self.shard_capacity[idx] {
            shard.insert(table.clone(), key);
        }
    }

    /// Records a freshly computed `table → key` pair and counts the
    /// miss. Workers probe with [`Self::peek`] (which counts hits),
    /// collect the misses of a chunk into one bit-sliced lane pass, and
    /// feed each computed key back through here, so `hits + misses`
    /// still equals the number of keyed functions. Keys are pure, so
    /// racing duplicate records of the same table are harmless (both
    /// count as the misses they were).
    pub fn record(&self, table: &TruthTable, key: u128) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        if self.disabled {
            return;
        }
        let idx = self.shard_of(table);
        let mut shard = self.shards[idx].lock().expect("cache shard poisoned");
        if shard.len() < self.shard_capacity[idx] {
            shard.insert(table.clone(), key);
        }
    }

    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(bits: u64) -> TruthTable {
        TruthTable::from_u64(4, bits).unwrap()
    }

    #[test]
    fn caches_repeat_lookups() {
        let cache = MemoCache::new(1024);
        cache.record(&t(0xbeef), 42);
        for _ in 0..4 {
            assert_eq!(cache.peek(&t(0xbeef)), Some(42));
        }
        assert_eq!(cache.hits(), 4);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn peek_probes_without_recording_misses() {
        let cache = MemoCache::new(64);
        assert_eq!(cache.peek(&t(5)), None);
        assert_eq!(cache.misses(), 0, "failed probes are not misses");
        cache.record(&t(5), 99);
        assert_eq!(cache.peek(&t(5)), Some(99));
        assert_eq!(cache.hits(), 1);
        let disabled = MemoCache::new(0);
        assert_eq!(disabled.peek(&t(5)), None);
        assert_eq!(disabled.hits(), 0);
    }

    #[test]
    fn record_counts_misses_and_feeds_later_peeks() {
        let cache = MemoCache::new(64);
        assert_eq!(cache.peek(&t(7)), None);
        cache.record(&t(7), 123);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.peek(&t(7)), Some(123));
        assert_eq!(cache.hits(), 1);
        // Disabled cache: the miss is still accounted, nothing stored.
        let disabled = MemoCache::new(0);
        disabled.record(&t(7), 123);
        assert_eq!(disabled.misses(), 1);
        assert_eq!(disabled.peek(&t(7)), None);
    }

    #[test]
    fn zero_capacity_disables() {
        let cache = MemoCache::new(0);
        for _ in 0..3 {
            assert_eq!(cache.peek(&t(1)), None);
            cache.record(&t(1), 7);
        }
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 3);
    }

    #[test]
    fn bounded_capacity_stops_growing() {
        // The total entry count must never exceed the requested
        // capacity, whatever it is (the bound the docs promise).
        for capacity in [1usize, 5, 16, 40] {
            let cache = MemoCache::new(capacity);
            for i in 0..1000u64 {
                cache.record(&t(i), i as u128);
            }
            let total: usize = cache.shards.iter().map(|s| s.lock().unwrap().len()).sum();
            assert!(total <= capacity, "capacity {capacity} grew to {total}");
        }
        // Entries that made it in still hit.
        let cache = MemoCache::new(16);
        cache.record(&t(0), 0);
        let hits_before = cache.hits();
        assert_eq!(cache.peek(&t(0)), Some(0));
        assert_eq!(cache.hits(), hits_before + 1);
    }
}
