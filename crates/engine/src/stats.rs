//! Engine observability: mid-stream snapshots and end-of-run stats.

use crate::config::Resolution;
use std::time::Duration;

/// A consistent-enough view of the engine while a stream is still being
/// ingested — see [`Engine::snapshot`](crate::Engine::snapshot).
#[derive(Debug, Clone)]
pub struct EngineSnapshot {
    /// Functions accepted by `submit`/`submit_batch` so far (some may
    /// still be queued or in flight).
    pub functions_submitted: u64,
    /// Functions whose class is already recorded in the store.
    pub functions_processed: u64,
    /// Candidate classes discovered so far.
    pub num_classes: usize,
    /// Classes currently held by each store shard, in shard order. The
    /// MSV digest is uniform, so a healthy engine shows a flat profile.
    pub shard_class_counts: Vec<usize>,
}

impl EngineSnapshot {
    /// Functions submitted but not yet classified (queued or in
    /// flight). Saturating: the two counters are read without a common
    /// lock, so a racing reader can observe `processed` bumped by a
    /// worker before it sees the `submitted` increment that covered the
    /// same function — a plain subtraction would wrap to ~`u64::MAX`.
    pub fn backlog(&self) -> u64 {
        self.functions_submitted
            .saturating_sub(self.functions_processed)
    }

    /// Occupancy skew: largest shard count over the ideal per-shard
    /// average (1.0 is perfectly flat). Meaningful once a few hundred
    /// classes exist.
    pub fn shard_skew(&self) -> f64 {
        let max = self.shard_class_counts.iter().copied().max().unwrap_or(0);
        let avg = self.num_classes as f64 / self.shard_class_counts.len().max(1) as f64;
        if avg == 0.0 {
            1.0
        } else {
            max as f64 / avg
        }
    }
}

/// End-of-run report of an [`Engine`](crate::Engine).
#[derive(Debug, Clone)]
pub struct EngineStats {
    /// Total functions ingested.
    pub functions_submitted: u64,
    /// Total functions classified (equals `functions_submitted` after
    /// [`finish`](crate::Engine::finish)).
    pub functions_processed: u64,
    /// Candidate NPN classes found.
    pub num_classes: usize,
    /// Worker threads the engine ran.
    pub workers: usize,
    /// Shards of the partition store.
    pub shards: usize,
    /// Shards holding at least one class.
    pub occupied_shards: usize,
    /// Classes in the fullest shard.
    pub max_shard_classes: usize,
    /// Memo-cache hits (0 when the cache is disabled). Includes the
    /// ingestion-side probes of the dedup fast path.
    pub cache_hits: u64,
    /// Memo-cache misses (every function, when the cache is disabled).
    pub cache_misses: u64,
    /// Functions resolved by the ingestion-side dedup fast path: the
    /// memo cache already knew their key, so they skipped the queue
    /// round-trip entirely (0 when the cache is disabled).
    pub dedup_hits: u64,
    /// Chunks that migrated between worker deques via work stealing. A
    /// balanced stream on an idle machine steals rarely (producers
    /// target the least-loaded deque); a high rate means load arrived
    /// unevenly — or some workers run slower than others — and the pool
    /// rebalanced it. Stealing is how the pool keeps every core busy
    /// without a shared queue, so a nonzero value is health, not
    /// trouble.
    pub steals: u64,
    /// Times a worker found every deque empty and went to sleep on the
    /// pool's condvar (it is woken by the next push). High `parks` with
    /// high throughput means ingestion, not classification, is the
    /// bottleneck; near-zero `parks` under load means the workers never
    /// starve.
    pub parks: u64,
    /// Wall-clock time from engine creation to the report.
    pub elapsed: Duration,
    /// Members recovered from an existing durable store before this run
    /// started (`0` for fresh or in-memory engines). They are included
    /// in `functions_submitted`/`functions_processed`, so the census
    /// view stays cumulative; [`EngineStats::throughput`] subtracts
    /// them.
    pub recovered_members: u64,
    /// Journal counters when the engine persists to disk, `None` for an
    /// in-memory run.
    pub durability: Option<DurabilityStats>,
    /// Resolution tier the engine ran
    /// ([`Resolution::Digest`]/[`Resolution::Certified`]).
    pub resolution: Resolution,
    /// Certified classes created by an eager canonicalization with an
    /// orbit-invariant label (Gray-code walk up to six variables, the
    /// pruned walk above). `0` in digest mode.
    pub canon_walks: u64,
    /// Members resolved against an already-cached certified
    /// representative via the exact pairwise matcher. `0` in digest
    /// mode.
    pub canon_matches: u64,
    /// Certified classes whose label came from the deterministic
    /// budget fallback (heavy symmetry blew the pruned walk's
    /// transform budget; the partition is still exact). `0` in digest
    /// mode.
    pub canon_fallbacks: u64,
}

/// Counters of the durable store's write side.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DurabilityStats {
    /// Bytes appended to shard journals (records and epoch markers;
    /// checkpoint segments are counted in `checkpoint_bytes`).
    pub journal_bytes: u64,
    /// Records appended to shard journals (class creations,
    /// representative updates and bumps — one per classified member).
    pub journal_records: u64,
    /// Checkpoint compactions performed.
    pub checkpoints: u64,
    /// Bytes written into checkpoint segments.
    pub checkpoint_bytes: u64,
    /// Log segments created (each shard starts one; every compaction
    /// rolls one more).
    pub segments_created: u64,
    /// `fsync` calls issued, all files included.
    pub fsyncs: u64,
    /// Epoch barriers issued (see
    /// [`Engine::flush`](crate::Engine::flush)); shards with nothing
    /// new since the previous barrier skip the on-disk marker.
    pub epochs: u64,
}

impl std::fmt::Display for DurabilityStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} journal records / {} B, {} checkpoints / {} B, \
             {} segments, {} fsyncs, {} epochs",
            self.journal_records,
            self.journal_bytes,
            self.checkpoints,
            self.checkpoint_bytes,
            self.segments_created,
            self.fsyncs,
            self.epochs,
        )
    }
}

/// What [`Engine::open`](crate::Engine::open) and
/// [`Engine::recover`](crate::Engine::recover) found on disk.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Shards of the recovered store (from the manifest).
    pub shards: usize,
    /// Live classes rebuilt.
    pub classes: usize,
    /// Members across all recovered classes.
    pub members: u64,
    /// Classes loaded from checkpoint segments (the rest replayed from
    /// tail logs).
    pub checkpoint_classes: u64,
    /// Tail-log records replayed on top of the checkpoints.
    pub log_records: u64,
    /// Bytes dropped from torn tails (un-fsync'd partial writes cut
    /// short by a crash). `0` after a clean shutdown.
    pub truncated_bytes: u64,
    /// Shards whose tail log was torn and truncated.
    pub torn_shards: usize,
    /// Highest epoch-barrier marker seen in any journal.
    pub last_epoch: u64,
}

impl std::fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "recovered {} classes / {} members over {} shards \
             ({} from checkpoints, {} log records replayed, \
             epoch {}); torn tails: {} shards / {} bytes dropped",
            self.classes,
            self.members,
            self.shards,
            self.checkpoint_classes,
            self.log_records,
            self.last_epoch,
            self.torn_shards,
            self.truncated_bytes,
        )
    }
}

impl EngineStats {
    /// Functions classified *by this run* per second of wall-clock time
    /// (members recovered from disk are not counted — they cost a
    /// replay, not a classification).
    pub fn throughput(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            (self.functions_processed - self.recovered_members) as f64 / self.elapsed.as_secs_f64()
        }
    }

    /// Fraction of key computations answered by the memo cache.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

impl std::fmt::Display for EngineStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} functions -> {} classes | {} workers, {} shards \
             ({} occupied, max {}) | {:.0} fn/s | cache {:.1}% of {} \
             | {} deduped at ingest | {} steals, {} parks",
            self.functions_processed,
            self.num_classes,
            self.workers,
            self.shards,
            self.occupied_shards,
            self.max_shard_classes,
            self.throughput(),
            self.cache_hit_rate() * 100.0,
            self.cache_hits + self.cache_misses,
            self.dedup_hits,
            self.steals,
            self.parks,
        )?;
        if self.resolution == Resolution::Certified {
            write!(
                f,
                " | certified: {} walks, {} matches, {} fallbacks",
                self.canon_walks, self.canon_matches, self.canon_fallbacks,
            )?;
        }
        if let Some(d) = &self.durability {
            write!(f, " | journal: {d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> EngineStats {
        EngineStats {
            functions_submitted: 100,
            functions_processed: 100,
            num_classes: 10,
            workers: 4,
            shards: 8,
            occupied_shards: 6,
            max_shard_classes: 3,
            cache_hits: 25,
            cache_misses: 75,
            dedup_hits: 10,
            steals: 3,
            parks: 7,
            elapsed: Duration::from_secs(2),
            recovered_members: 0,
            durability: None,
            resolution: Resolution::Digest,
            canon_walks: 0,
            canon_matches: 0,
            canon_fallbacks: 0,
        }
    }

    #[test]
    fn derived_rates() {
        let s = stats();
        assert_eq!(s.throughput(), 50.0);
        assert_eq!(s.cache_hit_rate(), 0.25);
        let display = s.to_string();
        assert!(display.contains("100 functions -> 10 classes"), "{display}");
        // Digest mode stays silent about the certified tier…
        assert!(!display.contains("certified"), "{display}");
        // …a certified run reports its resolver counters.
        let certified = EngineStats {
            resolution: Resolution::Certified,
            canon_walks: 10,
            canon_matches: 88,
            canon_fallbacks: 2,
            ..stats()
        };
        let display = certified.to_string();
        assert!(
            display.contains("certified: 10 walks, 88 matches, 2 fallbacks"),
            "{display}"
        );
    }

    #[test]
    fn snapshot_backlog_and_skew() {
        let snap = EngineSnapshot {
            functions_submitted: 10,
            functions_processed: 7,
            num_classes: 4,
            shard_class_counts: vec![2, 0, 2, 0],
        };
        assert_eq!(snap.backlog(), 3);
        assert_eq!(snap.shard_skew(), 2.0);
        // A racy read can see `processed` ahead of `submitted`; the
        // backlog clamps to zero instead of wrapping.
        let racy = EngineSnapshot {
            functions_submitted: 5,
            functions_processed: 7,
            num_classes: 1,
            shard_class_counts: vec![1],
        };
        assert_eq!(racy.backlog(), 0);
        let empty = EngineSnapshot {
            functions_submitted: 0,
            functions_processed: 0,
            num_classes: 0,
            shard_class_counts: vec![0; 4],
        };
        assert_eq!(empty.shard_skew(), 1.0);
    }
}
