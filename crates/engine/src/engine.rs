//! The engine proper: ingestion, the work-stealing worker pool, and
//! result assembly.

use crate::cache::MemoCache;
use crate::config::{EngineConfig, PersistConfig, Resolution};
use crate::pool::{PoolConfig, StealPool};
use crate::stats::{EngineSnapshot, EngineStats, RecoveryReport};
use crate::store::{self, ClassSummary, ShardedStore, StoreTelemetry};
use facepoint_core::{
    fnv128, signature_key, CensusEntry, CensusView, Classification, NpnClass, SignatureKernel,
};
use facepoint_exact::{certified_canonical, npn_match, BucketResolver};
use facepoint_sig::SignatureSet;
use facepoint_telemetry::{LatencyHistogram, Registry};
use facepoint_truth::{NpnTransform, TruthTable};
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// A chunk of work: each entry carries its own submission number.
/// Explicit numbering (rather than a base + offset) is required because
/// the dedup fast path consumes submission numbers without entering the
/// buffer, leaving buffered chunks with non-contiguous sequences.
struct Job {
    entries: Vec<(u64, TruthTable)>,
    /// When the chunk started accumulating — the earliest submission
    /// it carries. The `engine_chunk_classify_nanos` histogram records
    /// `submitted_at → classified` per chunk, so queue wait (and any
    /// time a partial chunk sat buffered) is part of the latency, not
    /// hidden from it.
    submitted_at: Instant,
}

/// The store key of a certified class: the FNV-128 digest of its
/// canonical representative's serialized form (arity word followed by
/// the table words). Purely a function of the proved representative,
/// so any process — recovery included — recomputes the same key from
/// the stored table.
pub fn certified_key(representative: &TruthTable) -> u128 {
    let words = representative.words();
    let mut data = Vec::with_capacity(1 + words.len());
    data.push(representative.num_vars() as u64);
    data.extend_from_slice(words);
    fnv128(&data)
}

/// The worker-side state of [`Resolution::Certified`]: the shared
/// bucket resolver plus its latency instrument. `None` everywhere in
/// digest mode.
struct CertifiedResolve {
    resolver: Arc<BucketResolver>,
    resolve_nanos: Arc<LatencyHistogram>,
}

impl CertifiedResolve {
    /// Resolves one keyed miss to its certified class: digest bucket →
    /// proved representative → store key.
    fn resolve(&self, digest: u128, table: &TruthTable) -> (u128, TruthTable) {
        let started = Instant::now();
        let resolved = self.resolver.resolve(digest, table);
        self.resolve_nanos.record_duration(started.elapsed());
        (
            certified_key(&resolved.representative),
            resolved.representative,
        )
    }
}

/// What [`Engine::canon`] answers: the proved class entry plus the
/// witness transform mapping the queried function onto the
/// representative.
#[derive(Debug, Clone)]
pub struct CanonAnswer {
    /// The certified class: key (FNV-128 of the representative), the
    /// member count observed so far (`0` unless the engine runs
    /// [`Resolution::Certified`] and has seen the class), and the
    /// proved canonical representative.
    pub entry: CensusEntry,
    /// Transform `t` with `t.apply(query) == entry.representative`.
    pub witness: NpnTransform,
}

/// A read-only canonicalization endpoint detached from the [`Engine`]
/// object — see [`Engine::canon_handle`]. Cloneable; every clone keeps
/// the underlying store and resolver alive.
#[derive(Clone)]
pub struct CanonHandle {
    store: Arc<ShardedStore>,
    certified: Option<Arc<CertifiedResolve>>,
    set: SignatureSet,
}

impl CanonHandle {
    /// Answers exactly like [`Engine::canon`], without touching the
    /// engine object: resolver-cached classes come back with their
    /// store key and member count, everything else is canonicalized on
    /// the calling thread.
    pub fn canon(&self, f: &TruthTable) -> CanonAnswer {
        answer_canon(&self.store, self.certified.as_deref(), self.set, f)
    }
}

/// The one `canon` code path, shared by [`Engine::canon`] and
/// [`CanonHandle::canon`]: try the resolver's cached representative
/// (certified engines only), fall back to canonicalizing `f` on the
/// spot. Read-only — it never creates a class, counts a member or
/// touches the stream.
fn answer_canon(
    store: &ShardedStore,
    certified: Option<&CertifiedResolve>,
    set: SignatureSet,
    f: &TruthTable,
) -> CanonAnswer {
    if let Some(tier) = certified {
        let digest = signature_key(f, set);
        if let Some((representative, witness)) = tier.resolver.witness(digest, f) {
            let key = certified_key(&representative);
            let size = store.get(key).map_or(0, |(_, size)| size as u64);
            return CanonAnswer {
                entry: CensusEntry {
                    key,
                    size,
                    representative,
                },
                witness,
            };
        }
    }
    let (representative, _) = certified_canonical(f);
    let witness = npn_match(f, &representative).expect("a canonical form is in its own orbit");
    let key = certified_key(&representative);
    let size = if certified.is_some() {
        store.get(key).map_or(0, |(_, size)| size as u64)
    } else {
        0
    };
    CanonAnswer {
        entry: CensusEntry {
            key,
            size,
            representative,
        },
        witness,
    }
}

/// The streaming replacement for the old per-worker `(seq, key)` log.
///
/// Workers used to accumulate every submission into a worker-local
/// `Vec` that was only collected at [`Engine::finish`] — memory grew
/// linearly with stream length, unbounded for streams larger than RAM
/// and flatly contradicting the streaming design. Now every chunk is
/// **applied as soon as it is classified**: under one short lock the
/// sink interns the chunk's keys into dense `u32` class ids and writes
/// them into a submission-indexed label array. Steady-state cost drops
/// from 24 bytes per function (`(u64, u128)` pairs) to 4, and with
/// [`EngineConfig::track_labels`] off the sink is disabled entirely —
/// the census lives in the sharded store alone and engine memory stays
/// **flat** however long the stream runs (enforced by the
/// counting-allocator regression test in `tests/memory.rs`).
#[derive(Debug)]
struct OrderSink {
    enabled: bool,
    /// First submission number of this run; labels are indexed by
    /// `seq - base`.
    base: u64,
    inner: Mutex<OrderState>,
}

#[derive(Debug, Default)]
struct OrderState {
    /// Set by [`OrderSink::seal`]; late appliers (a `SubmitHandle`
    /// racing `finish`) become no-ops instead of corrupting the result.
    sealed: bool,
    /// key → dense internal id, in first-applied order (remapped to
    /// first-*submitted* order when the result is assembled).
    ids: HashMap<u128, u32>,
    /// internal id → key.
    keys: Vec<u128>,
    /// `seq - base` → internal id (`u32::MAX` = not yet applied).
    labels: Vec<u32>,
}

impl OrderSink {
    fn new(enabled: bool, base: u64) -> Self {
        OrderSink {
            enabled,
            base,
            inner: Mutex::new(OrderState::default()),
        }
    }

    /// Records a classified chunk. One lock per chunk, not per
    /// function; cheap enough that workers apply in their own loop.
    // analysis: no_alloc
    fn apply(&self, entries: &[(u64, u128)]) {
        if !self.enabled || entries.is_empty() {
            return;
        }
        let mut state = self.inner.lock().expect("order sink poisoned");
        if state.sealed {
            return;
        }
        let OrderState {
            ids, keys, labels, ..
        } = &mut *state;
        for &(seq, key) in entries {
            let id = *ids.entry(key).or_insert_with(|| {
                let id = u32::try_from(keys.len()).expect("more than u32::MAX classes");
                // analysis: allow(no-alloc, "interns a NEW class id; grows with distinct classes, not stream length (the flat-memory test pins this)")
                keys.push(key);
                id
            });
            let idx = (seq - self.base) as usize;
            if labels.len() <= idx {
                labels.resize(idx + 1, u32::MAX);
            }
            labels[idx] = id;
        }
    }

    /// Takes the accumulated state and marks the sink sealed: anything
    /// applied afterwards is dropped.
    fn seal(&self) -> OrderState {
        let mut state = self.inner.lock().expect("order sink poisoned");
        let taken = std::mem::take(&mut *state);
        state.sealed = true;
        taken
    }
}

/// The sharded, parallel, streaming NPN classification engine.
///
/// See the [crate docs](crate) for the architecture. Lifecycle:
///
/// 1. create ([`Engine::new`] / [`Engine::builder`]) — workers
///    start idle;
/// 2. feed it ([`Engine::submit`], [`Engine::submit_batch`], or
///    concurrently through [`SubmitHandle`]s) — keys are computed and
///    classes recorded concurrently with ingestion;
/// 3. observe mid-stream ([`Engine::snapshot`], [`Engine::top_classes`])
///    — no pause, no drain;
/// 4. [`Engine::finish`] — drains the queue, joins the workers and
///    returns the input-ordered [`Classification`] plus [`EngineStats`].
///
/// Dropping an unfinished engine shuts the workers down without
/// assembling a result.
pub struct Engine {
    cfg: EngineConfig,
    workers: usize,
    shards: usize,
    store: Arc<ShardedStore>,
    cache: Arc<MemoCache>,
    processed: Arc<AtomicU64>,
    pool: Arc<StealPool<Job>>,
    order: Arc<OrderSink>,
    handles: Vec<JoinHandle<()>>,
    /// Chunk being accumulated by `submit` calls, with each function's
    /// submission number (dedup fast-path hits leave gaps).
    pending: Vec<(u64, TruthTable)>,
    /// Next submission number — shared with every [`SubmitHandle`], so
    /// submission order is the global allocation order of this counter.
    next_seq: Arc<AtomicU64>,
    /// Functions that skipped the queue via the dedup fast path
    /// (engine-side and handle-side).
    dedup_hits: Arc<AtomicU64>,
    /// In-flight [`SubmitHandle`] calls; [`Engine::finish`] waits for
    /// zero after closing the pool so a call that passed the open check
    /// completes — and lands in the result — before assembly starts.
    handle_ops: Arc<AtomicU64>,
    /// First submission number of *this run*: `0` for a fresh engine,
    /// the recovered member count after [`Engine::open`] — so
    /// resubmitted members never outrank a recovered representative.
    base_seq: u64,
    /// What recovery found when the engine was [`Engine::open`]ed over
    /// existing state.
    recovery: Option<RecoveryReport>,
    /// Epoch barriers issued so far (see [`Engine::flush`]).
    epoch: u64,
    started: Instant,
    /// The metrics registry behind [`Engine::telemetry`]: every
    /// instrument of this engine (and, through `facepoint serve`, of
    /// the service wrapping it) lives here.
    telemetry: Arc<Registry>,
    /// Submit→classified chunk latency; threaded to the workers and
    /// every inline-classification fallback.
    chunk_latency: Arc<LatencyHistogram>,
    /// When `pending` went empty→non-empty — the `submitted_at` of the
    /// chunk it will become. Meaningless while `pending` is empty.
    pending_since: Instant,
    /// The certified bucket resolver. Constructed in every mode so the
    /// telemetry schema (`engine_canon_*`) is stable across modes; only
    /// [`Resolution::Certified`] routes classifications through it.
    resolver: Arc<BucketResolver>,
    /// Worker-side certified-resolution context; `None` in digest mode.
    certified: Option<Arc<CertifiedResolve>>,
}

/// A read-only view of a durable store's contents, produced by
/// [`Engine::recover`] without starting any workers or modifying a
/// byte on disk.
#[derive(Debug, Clone)]
pub struct RecoveredSnapshot {
    /// Signature set the store's keys were computed under (from the
    /// manifest).
    pub set: SignatureSet,
    /// Resolution tier the store was built under (from the manifest's
    /// key-scheme marker): certified stores key classes by their proved
    /// representative, digest stores by the signature digest.
    pub resolution: Resolution,
    /// Every recovered class, largest first (ties broken by key).
    pub classes: Vec<ClassSummary>,
    /// Replay accounting: classes, members, torn tails, epochs.
    pub report: RecoveryReport,
}

impl RecoveredSnapshot {
    /// Total members across all recovered classes.
    pub fn members(&self) -> u64 {
        self.report.members
    }

    /// The recovered census as the shared render path (largest class
    /// first; same ordering and line format as every other census
    /// consumer).
    pub fn census_view(&self) -> CensusView {
        CensusView::new(
            self.classes
                .iter()
                .map(|c| CensusEntry {
                    key: c.key,
                    size: c.size as u64,
                    representative: c.representative.clone(),
                })
                .collect(),
        )
    }
}

/// What [`Engine::finish`] returns.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// The partition, identical to what a one-shot
    /// [`Classifier`](facepoint_core::Classifier) on the same stream
    /// (in submission order) would produce.
    ///
    /// Empty for a census-only engine
    /// ([`EngineConfig::track_labels`]` == false`): per-submission
    /// labels were never recorded, so the stream's census is reported
    /// through [`EngineReport::census`] (and
    /// [`EngineStats::num_classes`]) instead.
    pub classification: Classification,
    /// Throughput and occupancy counters for the run.
    pub stats: EngineStats,
    /// The final classes, largest first, straight from the partition
    /// store — always populated, and for a durable engine cumulative
    /// across runs (recovered members included). For a census-only
    /// engine ([`EngineConfig::track_labels`]` == false`) this is the
    /// *entire* result, since `classification` is empty by design.
    pub census: Vec<ClassSummary>,
}

impl EngineReport {
    /// The final census as the shared render path (largest class
    /// first; same ordering and line format as every other census
    /// consumer).
    pub fn census_view(&self) -> CensusView {
        CensusView::new(
            self.census
                .iter()
                .map(|c| CensusEntry {
                    key: c.key,
                    size: c.size as u64,
                    representative: c.representative.clone(),
                })
                .collect(),
        )
    }
}

/// An ingestion endpoint detached from the [`Engine`]'s `&mut` API:
/// many handles submit **concurrently** — from different threads —
/// into the same work-stealing pool, while the engine object stays
/// free for observation calls (`snapshot`, `stats`, `top_classes`).
///
/// This is the service front-end's fairness primitive: one connection
/// streaming a huge batch pushes through its own handle (blocking on
/// pool backpressure, not on a shared engine lock), so other
/// connections' snapshot/stats requests are never queued behind it.
///
/// Submission numbers are allocated from the engine's shared counter,
/// so handle and engine submissions interleave into one global
/// submission order. Handles buffer nothing between calls: every
/// `submit`/`submit_batch` call is fully dispatched before it returns,
/// which keeps [`Engine::drain`]'s quiescence contract intact.
///
/// A handle may outlive its engine's [`Engine::finish`]; submissions
/// that lose that race are refused (`None`) **before a submission
/// number is consumed**, and `finish` waits for handle calls already
/// past that check — so every submission a handle accepts is in the
/// finished result, and every refused one left no trace. A batch *in
/// flight* when the pool closes is classified inline on the
/// submitting thread.
pub struct SubmitHandle {
    pool: Arc<StealPool<Job>>,
    store: Arc<ShardedStore>,
    cache: Arc<MemoCache>,
    order: Arc<OrderSink>,
    processed: Arc<AtomicU64>,
    next_seq: Arc<AtomicU64>,
    dedup_hits: Arc<AtomicU64>,
    /// In-flight handle calls, shared with the engine: incremented
    /// *before* the closed check, so [`Engine::finish`] (which waits
    /// for zero after closing the pool) either sees this call's count
    /// or this call sees the closed pool — never neither.
    handle_ops: Arc<AtomicU64>,
    chunk_size: usize,
    set: SignatureSet,
    /// Kernel for the close-race inline path; built on first use.
    fallback: Option<Box<SignatureKernel>>,
    log_scratch: Vec<(u64, u128)>,
    miss_scratch: Vec<usize>,
    chunk_latency: Arc<LatencyHistogram>,
    /// Certified-resolution context for the inline path; `None` in
    /// digest mode.
    certified: Option<Arc<CertifiedResolve>>,
}

/// One buffered [`SubmitHandle::submit_batch`] entry, held *without* a
/// submission number until its chunk is flushed (see `flush_batch`).
enum BatchEntry {
    /// The memo cache already knows this table's key.
    Hit(u128, TruthTable),
    /// Needs keying by a worker.
    Miss(TruthTable),
}

/// Decrements the in-flight handle-call count on every exit path.
/// Owns its counter (an `Arc` clone) so holding it does not borrow the
/// handle, which keeps mutating the handle's own state underneath.
struct OpGuard(Arc<AtomicU64>);

impl Drop for OpGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

impl SubmitHandle {
    /// Registers an in-flight call, or refuses it (`None`) when the
    /// engine is finishing. Order matters: the count goes up *before*
    /// the closed check (see [`SubmitHandle::handle_ops`]).
    fn begin_op(&self) -> Option<OpGuard> {
        self.handle_ops.fetch_add(1, Ordering::SeqCst);
        let guard = OpGuard(Arc::clone(&self.handle_ops));
        if self.pool.is_closed() {
            return None; // guard drop undoes the increment
        }
        Some(guard)
    }

    /// Submits one function; returns its submission number, or `None`
    /// if the engine has already been finished (the submission is
    /// refused before a number is consumed).
    ///
    /// Repeated functions take the same dedup fast path as
    /// [`Engine::submit`] when the memo cache is enabled.
    pub fn submit(&mut self, f: TruthTable) -> Option<u64> {
        let _op = self.begin_op()?;
        let seq = self.next_seq.fetch_add(1, Ordering::AcqRel);
        if let Some(key) = self.cache.peek(&f) {
            self.store.insert(key, &f, seq);
            self.order.apply(&[(seq, key)]);
            self.dedup_hits.fetch_add(1, Ordering::Relaxed);
            self.processed.fetch_add(1, Ordering::AcqRel);
            return Some(seq);
        }
        self.dispatch(vec![(seq, f)], Instant::now());
        Some(seq)
    }

    /// Submits every function of `fns` in order; returns the
    /// submission number of the first one (consecutive within each
    /// dispatched chunk; another handle can interleave only at chunk
    /// boundaries), or `None` if the engine has already been finished.
    pub fn submit_batch(&mut self, fns: impl IntoIterator<Item = TruthTable>) -> Option<u64> {
        let _op = self.begin_op()?;
        let chunk_size = self.chunk_size.max(1);
        let mut first = None;
        // Entries are buffered WITHOUT submission numbers; a chunk's
        // numbers are allocated en bloc at flush time. A caller's
        // iterator panicking mid-batch therefore just drops unnumbered
        // tables — it can never strand an allocated submission number,
        // which would wedge `drain` and break `finish`'s accounting.
        let mut buf: Vec<BatchEntry> = Vec::with_capacity(chunk_size);
        let mut chunk_since = Instant::now();
        for f in fns {
            if buf.is_empty() {
                chunk_since = Instant::now();
            }
            let entry = match self.cache.peek(&f) {
                Some(key) => BatchEntry::Hit(key, f),
                None => BatchEntry::Miss(f),
            };
            buf.push(entry);
            if buf.len() >= chunk_size {
                self.flush_batch(&mut buf, &mut first, chunk_since);
            }
        }
        self.flush_batch(&mut buf, &mut first, chunk_since);
        Some(first.unwrap_or_else(|| self.next_seq.load(Ordering::Acquire)))
    }

    /// Numbers and dispatches one buffered chunk: dedup hits resolve
    /// inline (store bump, order log, progress — the fast path, just
    /// batched), misses go to the pool.
    fn flush_batch(&mut self, buf: &mut Vec<BatchEntry>, first: &mut Option<u64>, since: Instant) {
        if buf.is_empty() {
            return;
        }
        let base = self.next_seq.fetch_add(buf.len() as u64, Ordering::AcqRel);
        first.get_or_insert(base);
        let mut hits: Vec<(u64, u128)> = Vec::new();
        let mut misses: Vec<(u64, TruthTable)> = Vec::with_capacity(buf.len());
        for (i, entry) in buf.drain(..).enumerate() {
            let seq = base + i as u64;
            match entry {
                BatchEntry::Hit(key, table) => {
                    self.store.insert(key, &table, seq);
                    hits.push((seq, key));
                }
                BatchEntry::Miss(table) => misses.push((seq, table)),
            }
        }
        if !hits.is_empty() {
            self.order.apply(&hits);
            self.dedup_hits
                .fetch_add(hits.len() as u64, Ordering::Relaxed);
            self.processed
                .fetch_add(hits.len() as u64, Ordering::AcqRel);
        }
        if !misses.is_empty() {
            self.dispatch(misses, since);
        }
    }

    /// Pushes a chunk into the pool; if the pool closed mid-call, the
    /// chunk's submission numbers are already allocated, so it is
    /// classified inline here rather than dropped.
    fn dispatch(&mut self, entries: Vec<(u64, TruthTable)>, since: Instant) {
        if let Err(job) = self.pool.push(Job {
            entries,
            submitted_at: since,
        }) {
            let kernel = self
                .fallback
                .get_or_insert_with(|| Box::new(SignatureKernel::new(self.set)));
            classify_job(
                job,
                kernel,
                &self.store,
                &self.cache,
                &self.processed,
                &self.order,
                &mut self.log_scratch,
                &mut self.miss_scratch,
                &self.chunk_latency,
                self.certified.as_deref(),
            );
        }
    }
}

/// The one construction spine of [`Engine`]: configuration, optional
/// durability directory, then [`build`](EngineBuilder::build) (or
/// [`recover`](EngineBuilder::recover) for a read-only snapshot of the
/// same directory). Obtained via [`Engine::builder`]; replaces the
/// retired `with_config`/`try_with_config`/`open` trio.
///
/// ```no_run
/// use facepoint_engine::{Engine, EngineConfig};
///
/// let cfg = EngineConfig::builder().workers(4).certified().build();
/// let engine = Engine::builder()
///     .config(cfg)
///     .persist("/var/lib/facepoint/census")
///     .build()?;
/// # drop(engine);
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct EngineBuilder {
    cfg: EngineConfig,
    dir: Option<PathBuf>,
}

impl EngineBuilder {
    /// The engine configuration (default: [`EngineConfig::default`]).
    pub fn config(mut self, cfg: EngineConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Makes the engine **durable** under `dir`: every classified
    /// member is journaled to a per-shard segment log, and any state
    /// already in `dir` is recovered first — the partition store, the
    /// certified-class tables and (when enabled) the memo cache pick
    /// up exactly where the previous process stopped, torn tails
    /// truncated. Inspect what was found via [`Engine::recovery`].
    ///
    /// Durability knobs other than the directory (checkpoint interval,
    /// sync policy) are taken from the configuration's
    /// [`EngineConfig::persist`] when set, defaults otherwise.
    pub fn persist(mut self, dir: impl Into<PathBuf>) -> Self {
        self.dir = Some(dir.into());
        self
    }

    /// Builds the engine: resolves the configuration through
    /// [`EngineConfig::builder`]'s clamping, opens (or creates) the
    /// durable store when [`persist`](Self::persist) was given, and
    /// starts the worker pool.
    ///
    /// # Errors
    ///
    /// Only for durable engines: I/O failures, a store recorded under
    /// a different signature set or resolution tier, or corruption
    /// outside a log tail.
    pub fn build(self) -> io::Result<Engine> {
        let EngineBuilder { mut cfg, dir } = self;
        if let Some(dir) = dir {
            let mut persist = cfg
                .persist
                .take()
                .unwrap_or_else(|| PersistConfig::new(PathBuf::new()));
            persist.dir = dir;
            cfg.persist = Some(persist);
        }
        Engine::build_from(cfg)
    }

    /// Reads the durable store under the [`persist`](Self::persist)
    /// directory without opening it for writing: no workers, no
    /// truncation, no new segments — the inspection path behind the
    /// CLI's `recover` subcommand.
    ///
    /// # Errors
    ///
    /// Same conditions as [`build`](Self::build), plus `NotFound` when
    /// the directory holds no store manifest.
    ///
    /// # Panics
    ///
    /// Panics if no `persist` directory was set — there is nothing to
    /// recover from.
    pub fn recover(self) -> io::Result<RecoveredSnapshot> {
        let dir = self
            .dir
            .or_else(|| self.cfg.persist.map(|p| p.dir))
            .expect("EngineBuilder::recover needs a persist directory");
        let (maps, set_name, report) = store::recover_dir(&dir)?;
        let (resolution, set_name) = match set_name.strip_prefix(CERTIFIED_SET_PREFIX) {
            Some(rest) => (Resolution::Certified, rest.to_string()),
            None => (Resolution::Digest, set_name),
        };
        let set = SignatureSet::parse(&set_name).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("manifest names unknown signature set {set_name:?}"),
            )
        })?;
        let mut classes: Vec<ClassSummary> = maps
            .into_iter()
            .flat_map(|map| {
                map.into_iter().map(|(key, e)| ClassSummary {
                    key,
                    representative: e.representative,
                    size: e.size,
                })
            })
            .collect();
        classes.sort_by(|a, b| b.size.cmp(&a.size).then(a.key.cmp(&b.key)));
        Ok(RecoveredSnapshot {
            set,
            resolution,
            classes,
            report,
        })
    }
}

/// Manifest key-scheme marker of a certified-resolution store. A
/// certified store's keys are representative digests, not signature
/// digests, so reopening it under the other resolution is refused the
/// same way a signature-set mismatch is.
const CERTIFIED_SET_PREFIX: &str = "certified:";

impl Engine {
    /// An engine over `set` with default tuning (all cores, 64 shards,
    /// cache off).
    pub fn new(set: facepoint_sig::SignatureSet) -> Self {
        Self::build_from(EngineConfig::with_set(set)).expect("in-memory engine cannot fail")
    }

    /// The construction spine: see [`EngineBuilder`].
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// An engine with explicit tuning.
    ///
    /// # Panics
    ///
    /// Panics if [`EngineConfig::persist`] is set and the durable store
    /// fails to open.
    #[deprecated(
        since = "0.1.0",
        note = "use Engine::builder().config(cfg).build() — the builder reports \
                store-opening failures instead of panicking"
    )]
    pub fn with_config(cfg: EngineConfig) -> Self {
        Self::build_from(cfg).expect("failed to open the durable store")
    }

    /// Opens (or creates) a **durable** engine whose class store lives
    /// under `dir`.
    ///
    /// # Errors
    ///
    /// I/O failures, a store recorded under a different signature set
    /// or resolution tier, or corruption outside a log tail.
    #[deprecated(
        since = "0.1.0",
        note = "use Engine::builder().config(cfg).persist(dir).build()"
    )]
    pub fn open(dir: impl Into<PathBuf>, cfg: EngineConfig) -> io::Result<Self> {
        Self::builder().config(cfg).persist(dir).build()
    }

    /// Reads the durable store under `dir` without opening it for
    /// writing — shorthand for
    /// [`Engine::builder`]`.persist(dir).recover()`, see
    /// [`EngineBuilder::recover`].
    ///
    /// # Errors
    ///
    /// See [`EngineBuilder::recover`].
    pub fn recover(dir: impl AsRef<Path>) -> io::Result<RecoveredSnapshot> {
        Self::builder().persist(dir.as_ref()).recover()
    }

    /// An engine with explicit tuning, reporting store-opening failures
    /// instead of panicking.
    ///
    /// # Errors
    ///
    /// Only when [`EngineConfig::persist`] is set.
    #[deprecated(since = "0.1.0", note = "use Engine::builder().config(cfg).build()")]
    pub fn try_with_config(cfg: EngineConfig) -> io::Result<Self> {
        Self::build_from(cfg)
    }

    /// The one code path every constructor funnels into.
    fn build_from(cfg: EngineConfig) -> io::Result<Self> {
        let workers = cfg.resolved_workers();
        // The registry exists before anything it instruments:
        // recovery-replay timing below covers the store open itself.
        let telemetry = Arc::new(Registry::new());
        let chunk_latency = telemetry.histogram("engine_chunk_classify_nanos");
        let store_telemetry = StoreTelemetry {
            append_nanos: telemetry.histogram("store_journal_append_nanos"),
            fsync_nanos: telemetry.histogram("store_fsync_nanos"),
            checkpoint_nanos: telemetry.histogram("store_checkpoint_nanos"),
        };
        let opened = Instant::now();
        // The manifest records the key scheme: the signature set, with
        // a resolution marker in front for certified stores (their keys
        // are representative digests — incomparable with digest keys,
        // so cross-mode reopens must be refused like set mismatches).
        let store_set_name = match cfg.resolution {
            Resolution::Digest => cfg.set.to_string(),
            Resolution::Certified => format!("{CERTIFIED_SET_PREFIX}{}", cfg.set),
        };
        let (mut store, recovery) = match &cfg.persist {
            Some(persist) => {
                let (store, report) = ShardedStore::open_durable(
                    persist,
                    cfg.resolved_shards(),
                    &store_set_name,
                    store_telemetry,
                )?;
                (store, Some(report))
            }
            None => (ShardedStore::new(cfg.resolved_shards()), None),
        };
        if cfg.resolution == Resolution::Certified {
            // A certified class's representative is the proved
            // canonical table its creating insert carried; pin it so
            // the dedup fast paths — which insert raw member tables —
            // can never steal the slot with a lower seq (duplicates
            // classified out of chunk order would otherwise overwrite
            // it, break `certified_key(rep) == key`, and split the
            // class after a reopen primes the resolver from the store).
            store.pin_representatives();
        }
        // Wall-clock cost of opening the store and replaying its
        // checkpoints + log tails (0 for in-memory engines).
        let replay_nanos = if recovery.is_some() {
            u64::try_from(opened.elapsed().as_nanos()).unwrap_or(u64::MAX)
        } else {
            0
        };
        telemetry.counter_fn("store_recovery_replay_nanos", move || replay_nanos);
        // A pre-existing store's shard count overrides the config (the
        // key→shard mapping is baked into the segment files).
        let shards = recovery
            .as_ref()
            .map_or_else(|| cfg.resolved_shards(), |r| r.shards);
        // New submissions must never outrank a recovered representative
        // (`seq < rep_seq` steals the slot), so the sequence restarts
        // above BOTH the recovered member count and the highest
        // recovered rep_seq — the latter can exceed the former when a
        // torn tail lost records in one shard while another shard
        // durably holds later submissions.
        let base_seq = recovery.as_ref().map_or(0, |r| {
            let mut floor = r.members;
            store.for_each(|_, entry| floor = floor.max(entry.rep_seq + 1));
            floor
        });
        let store = Arc::new(store);
        let cache = Arc::new(MemoCache::new(cfg.cache_capacity));
        if recovery.is_some() && cfg.cache_capacity > 0 {
            // Warm the dedup fast path with the recovered census.
            store.for_each(|key, entry| cache.prime(&entry.representative, key));
        }
        let resolver = Arc::new(BucketResolver::new());
        let resolve_nanos = telemetry.histogram("engine_canon_resolve_nanos");
        let certified = match cfg.resolution {
            Resolution::Digest => None,
            Resolution::Certified => Some(Arc::new(CertifiedResolve {
                resolver: Arc::clone(&resolver),
                resolve_nanos: Arc::clone(&resolve_nanos),
            })),
        };
        if certified.is_some() && recovery.is_some() {
            // Rebuild the bucket tables from the recovered census: a
            // stored representative's signature digest equals its whole
            // class's digest (signatures are NPN invariants), so
            // re-keying the representatives reconstructs exactly the
            // buckets the previous process had — no Gray-code walk is
            // repeated for a recovered class.
            store.for_each(|_, entry| {
                resolver.prime(
                    signature_key(&entry.representative, cfg.set),
                    entry.representative.clone(),
                );
            });
        }
        let processed = Arc::new(AtomicU64::new(base_seq));
        let order = Arc::new(OrderSink::new(cfg.track_labels, base_seq));
        let pool = Arc::new(StealPool::new(PoolConfig {
            workers,
            deque_capacity: cfg.deque_capacity.max(1),
            steal_batch: cfg.steal_batch.max(1),
        }));
        let next_seq = Arc::new(AtomicU64::new(base_seq));
        let dedup_hits = Arc::new(AtomicU64::new(0));
        // Totals the subsystems already track in their own atomics are
        // surfaced as sampled series — read at scrape time, never
        // double-counted on the hot path.
        {
            let p = Arc::clone(&pool);
            telemetry.counter_fn("engine_steals_total", move || p.steals());
            let p = Arc::clone(&pool);
            telemetry.counter_fn("engine_parks_total", move || p.parks());
            let p = Arc::clone(&pool);
            telemetry.gauge_fn("engine_deque_depth", move || p.queued() as f64);
            let c = Arc::clone(&cache);
            telemetry.counter_fn("engine_cache_hits_total", move || c.hits());
            let c = Arc::clone(&cache);
            telemetry.counter_fn("engine_cache_misses_total", move || c.misses());
            let c = Arc::clone(&cache);
            telemetry.gauge_fn("engine_cache_hit_ratio", move || {
                let (hits, misses) = (c.hits(), c.misses());
                let total = hits + misses;
                if total == 0 {
                    0.0
                } else {
                    hits as f64 / total as f64
                }
            });
            let n = Arc::clone(&next_seq);
            telemetry.counter_fn("engine_functions_submitted_total", move || {
                n.load(Ordering::Acquire)
            });
            let p = Arc::clone(&processed);
            telemetry.counter_fn("engine_functions_processed_total", move || {
                p.load(Ordering::Acquire)
            });
            let (n, p) = (Arc::clone(&next_seq), Arc::clone(&processed));
            telemetry.gauge_fn("engine_backlog", move || {
                // Saturating for the same racy-read reason as
                // `EngineSnapshot::backlog`.
                n.load(Ordering::Acquire)
                    .saturating_sub(p.load(Ordering::Acquire)) as f64
            });
            let d = Arc::clone(&dedup_hits);
            telemetry.counter_fn("engine_dedup_hits_total", move || d.load(Ordering::Relaxed));
            telemetry.gauge_fn("engine_workers", move || workers as f64);
            // Certified-resolution counters: registered in every mode
            // (a digest engine scrapes zeros) so the series schema is
            // stable whatever the resolution.
            let r = Arc::clone(&resolver);
            telemetry.counter_fn("engine_canon_walks_total", move || r.walks());
            let r = Arc::clone(&resolver);
            telemetry.counter_fn("engine_canon_matches_total", move || r.matches());
            let r = Arc::clone(&resolver);
            telemetry.counter_fn("engine_canon_fallbacks_total", move || r.fallbacks());
            // Weak, not Arc: the registry outlives the engine when a
            // caller keeps `Engine::telemetry()` after `finish`, and a
            // strong reference here would pin the durable store — and
            // its advisory file lock — for the registry's lifetime,
            // refusing a reopen of the same directory. A post-finish
            // scrape reads these totals as 0 instead.
            let s = Arc::downgrade(&store);
            telemetry.counter_fn("store_journal_records_total", move || {
                s.upgrade()
                    .and_then(|s| s.durability_snapshot())
                    .map_or(0, |d| d.journal_records)
            });
            let s = Arc::downgrade(&store);
            telemetry.counter_fn("store_fsyncs_total", move || {
                s.upgrade()
                    .and_then(|s| s.durability_snapshot())
                    .map_or(0, |d| d.fsyncs)
            });
            let s = Arc::downgrade(&store);
            telemetry.counter_fn("store_checkpoints_total", move || {
                s.upgrade()
                    .and_then(|s| s.durability_snapshot())
                    .map_or(0, |d| d.checkpoints)
            });
        }
        let handles = (0..workers)
            .map(|me| {
                let pool = Arc::clone(&pool);
                let store = Arc::clone(&store);
                let cache = Arc::clone(&cache);
                let processed = Arc::clone(&processed);
                let order = Arc::clone(&order);
                let set = cfg.set;
                let chunk_latency = Arc::clone(&chunk_latency);
                let certified = certified.clone();
                std::thread::spawn(move || {
                    worker_loop(
                        me,
                        &pool,
                        &store,
                        &cache,
                        &processed,
                        &order,
                        set,
                        &chunk_latency,
                        certified.as_deref(),
                    )
                })
            })
            .collect();
        Ok(Engine {
            workers,
            shards,
            store,
            cache,
            processed,
            pool,
            order,
            handles,
            pending: Vec::with_capacity(cfg.chunk_size),
            next_seq,
            dedup_hits,
            handle_ops: Arc::new(AtomicU64::new(0)),
            base_seq,
            // Epoch numbers stay monotonic across reopens of the same
            // store: resume from the highest barrier recovery saw.
            epoch: recovery.as_ref().map_or(0, |r| r.last_epoch),
            recovery,
            started: Instant::now(),
            telemetry,
            chunk_latency,
            pending_since: Instant::now(),
            resolver,
            certified,
            cfg,
        })
    }

    /// The engine's metrics registry, for in-process consumers: every
    /// engine and store series (`engine_*`, `store_*`) is registered
    /// here, and `facepoint serve` adds its `serve_*` series to the
    /// same registry — one
    /// [`render_text`](facepoint_telemetry::Registry::render_text)
    /// call covers all three layers. Recording into the returned
    /// registry's instruments is lock-free and allocation-free;
    /// snapshotting locks it briefly and allocates the output.
    pub fn telemetry(&self) -> Arc<Registry> {
        Arc::clone(&self.telemetry)
    }

    /// What recovery found when this engine was [`Engine::open`]ed over
    /// an existing store; `None` for fresh or in-memory engines.
    pub fn recovery(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// A detached ingestion endpoint feeding this engine's worker pool;
    /// see [`SubmitHandle`]. Create one per producer thread (the
    /// service front-end creates one per connection).
    pub fn submit_handle(&self) -> SubmitHandle {
        SubmitHandle {
            pool: Arc::clone(&self.pool),
            store: Arc::clone(&self.store),
            cache: Arc::clone(&self.cache),
            order: Arc::clone(&self.order),
            processed: Arc::clone(&self.processed),
            next_seq: Arc::clone(&self.next_seq),
            dedup_hits: Arc::clone(&self.dedup_hits),
            handle_ops: Arc::clone(&self.handle_ops),
            chunk_size: self.cfg.chunk_size.max(1),
            set: self.cfg.set,
            fallback: None,
            log_scratch: Vec::new(),
            miss_scratch: Vec::new(),
            chunk_latency: Arc::clone(&self.chunk_latency),
            certified: self.certified.clone(),
        }
    }

    /// Resolves `f` to its **proved** NPN class: the certified
    /// canonical representative, the witness transform mapping `f` onto
    /// it, and — when the engine runs [`Resolution::Certified`] and has
    /// already seen the class — the class key and member count from the
    /// store. The query itself is read-only: it never creates a class,
    /// counts a member or touches the stream.
    ///
    /// In certified mode the answer comes from the resolver's cached
    /// representative when the class is known (so the key and size
    /// match the census even for heavy-symmetry classes whose label
    /// came from the budget fallback); otherwise — unknown class, or a
    /// digest-mode engine — the representative is computed on the spot
    /// and the size reported as `0`.
    pub fn canon(&self, f: &TruthTable) -> CanonAnswer {
        answer_canon(&self.store, self.certified.as_deref(), self.cfg.set, f)
    }

    /// A detached, read-only endpoint answering [`Engine::canon`]
    /// queries **without the engine**: it shares the store, the
    /// resolver and the signature set through `Arc`s, so a caller that
    /// keeps the engine behind a lock (the service front-end does) can
    /// run the canonicalization — up to a full Gray-code walk for an
    /// unknown class — without holding that lock and stalling every
    /// other engine user. Answers stay correct (if increasingly stale
    /// in their member counts) even after [`Engine::finish`].
    pub fn canon_handle(&self) -> CanonHandle {
        CanonHandle {
            store: Arc::clone(&self.store),
            certified: self.certified.clone(),
            set: self.cfg.set,
        }
    }

    /// Submits one function for classification and returns its
    /// submission number (the index it will have in the final
    /// [`Classification`]'s label vector).
    ///
    /// Functions are buffered into chunks; a full chunk is handed to
    /// the worker pool, **blocking if every worker deque is full**
    /// (backpressure). Use [`Engine::flush`] to push a partial chunk
    /// early.
    ///
    /// When the memo cache is enabled (a positive
    /// [`EngineConfig::cache_capacity`]) a repeated function takes the
    /// **dedup fast path**: its cached key bumps the class counts right
    /// here, skipping the queue round-trip entirely. Fast-path
    /// resolutions are counted in [`EngineStats::dedup_hits`].
    pub fn submit(&mut self, f: TruthTable) -> u64 {
        let seq = self.next_seq.fetch_add(1, Ordering::AcqRel);
        if let Some(key) = self.cache.peek(&f) {
            self.store.insert(key, &f, seq);
            self.order.apply(&[(seq, key)]);
            self.dedup_hits.fetch_add(1, Ordering::Relaxed);
            self.processed.fetch_add(1, Ordering::AcqRel);
            return seq;
        }
        if self.pending.is_empty() {
            self.pending_since = Instant::now();
        }
        self.pending.push((seq, f));
        if self.pending.len() >= self.cfg.chunk_size.max(1) {
            self.dispatch_pending();
        }
        seq
    }

    /// Submits every function of `fns` in order; returns the submission
    /// number of the first one (consecutive for this batch unless a
    /// concurrent [`SubmitHandle`] interleaves its own submissions).
    pub fn submit_batch(&mut self, fns: impl IntoIterator<Item = TruthTable>) -> u64 {
        // Taken from the first actual submission, not read up front: a
        // concurrent handle could otherwise claim the read number
        // first and the returned index would name its function.
        let mut first = None;
        for f in fns {
            let seq = self.submit(f);
            first.get_or_insert(seq);
        }
        first.unwrap_or_else(|| self.next_seq.load(Ordering::Acquire))
    }

    /// Hands any buffered partial chunk to the workers now.
    ///
    /// For a durable engine this is also the **epoch barrier**: an
    /// epoch marker is appended to every shard journal and the
    /// journals are flushed — fsync'd under the default
    /// [`SyncPolicy::Barrier`](crate::SyncPolicy::Barrier) — so every
    /// member classified *before* the call is crash-durable when it
    /// returns. Members still queued or in flight are covered by the
    /// next barrier (or by [`Engine::finish`]'s final checkpoint);
    /// after a crash, recovery loses at most that un-fsync'd tail.
    ///
    /// # Panics
    ///
    /// Panics if the journals cannot be flushed — durability was
    /// promised and can no longer be provided.
    pub fn flush(&mut self) {
        self.dispatch_pending();
        if self.cfg.persist.is_some() {
            self.epoch += 1;
            self.store
                .sync_barrier(self.epoch)
                .expect("epoch barrier failed; durable store is inconsistent");
        }
    }

    fn dispatch_pending(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let entries = std::mem::take(&mut self.pending);
        self.pending = Vec::with_capacity(self.cfg.chunk_size);
        self.pool
            .push(Job {
                entries,
                submitted_at: self.pending_since,
            })
            .unwrap_or_else(|_| unreachable!("pool closed while the engine is alive"));
    }

    /// Functions accepted so far (including any buffered, queued or
    /// in-flight ones).
    pub fn functions_submitted(&self) -> u64 {
        self.next_seq.load(Ordering::Acquire)
    }

    /// A mid-stream view: how much is classified, how many classes
    /// exist, and how they spread over shards. Runs concurrently with
    /// ingestion (locks shards one at a time, briefly).
    ///
    /// Buffered-but-undispatched functions count as backlog; call
    /// [`Engine::flush`] first if you want them moving.
    pub fn snapshot(&self) -> EngineSnapshot {
        let shard_class_counts = self.store.shard_class_counts();
        EngineSnapshot {
            functions_submitted: self.next_seq.load(Ordering::Acquire),
            functions_processed: self.processed.load(Ordering::Acquire),
            num_classes: shard_class_counts.iter().sum(),
            shard_class_counts,
        }
    }

    /// The `limit` largest classes discovered so far, largest first —
    /// a heavy-hitter report usable while the stream is still running.
    pub fn top_classes(&self, limit: usize) -> Vec<ClassSummary> {
        self.store.top_classes(limit)
    }

    /// Pushes any buffered partial chunk to the workers and waits until
    /// everything submitted so far is classified, without ending the
    /// stream — the quiescence hook for long-running services, where
    /// [`Engine::finish`] (which consumes the engine) is reserved for
    /// shutdown.
    ///
    /// Returns `true` once the backlog is zero, `false` if `timeout`
    /// elapsed first (the engine keeps working either way; partial
    /// progress is kept). After `drain` returns `true`, a
    /// [`Engine::snapshot`] reflects every prior submission:
    /// `functions_processed == functions_submitted` and the class
    /// census is complete for the stream so far.
    ///
    /// Progress is counted **per function**, not per chunk, so the
    /// backlog observed while waiting shrinks smoothly even when a
    /// single huge chunk is in flight (see
    /// [`EngineSnapshot::backlog`]).
    ///
    /// Unlike [`Engine::flush`] this issues no epoch barrier — combine
    /// the two (`flush` then `drain`, or `drain` then `flush`) when a
    /// service wants both a quiescent view and durability of it.
    pub fn drain(&mut self, timeout: std::time::Duration) -> bool {
        self.dispatch_pending();
        let deadline = Instant::now() + timeout;
        let mut polls = 0u32;
        while self.processed.load(Ordering::Acquire) < self.next_seq.load(Ordering::Acquire) {
            if Instant::now() >= deadline {
                return false;
            }
            // Yield while the backlog is about to clear, then back off
            // to sleeping: spinning for a long drain would pin a core
            // against the very workers being waited on.
            if polls < 64 {
                polls += 1;
                std::thread::yield_now();
            } else {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        true
    }

    /// Drains the pipeline, joins the workers and assembles the final
    /// input-ordered [`Classification`] plus run statistics.
    ///
    /// The classification covers the functions submitted to *this*
    /// engine instance; for an engine recovered via [`Engine::open`],
    /// class representatives may predate this run (they are the
    /// earliest-known members, recovered ones included) and the durable
    /// store's class counts keep accumulating across runs.
    ///
    /// A census-only engine ([`EngineConfig::track_labels`]` == false`)
    /// returns an **empty** classification — per-submission labels were
    /// never recorded, which is what keeps its memory flat — and
    /// reports the final classes through [`EngineReport::census`].
    ///
    /// A durable engine writes a final checkpoint of every shard before
    /// returning, so a subsequent [`Engine::open`] replays checkpoints
    /// only — no log tail, nothing to lose.
    ///
    /// # Panics
    ///
    /// Panics if a worker panicked or (durable engines) the final
    /// checkpoint cannot be written.
    pub fn finish(mut self) -> EngineReport {
        self.dispatch_pending();
        self.pool.close();
        // Wait out in-flight `SubmitHandle` calls: a call that passed
        // its open check before the close above completes (a push that
        // loses the race classifies inline — possibly a whole batch's
        // tail, hence the sleep backoff instead of a pure spin), and
        // any call starting now is refused before it consumes a
        // submission number — so after this loop the submission count
        // is final and the order sink can be sealed without dropping
        // anything.
        let mut polls = 0u32;
        while self.handle_ops.load(Ordering::SeqCst) > 0 {
            if polls < 64 {
                polls += 1;
                std::thread::yield_now();
            } else {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        for handle in self.handles.drain(..) {
            handle.join().expect("worker panicked");
        }
        // Sweep whatever a close-racing `SubmitHandle` push may have
        // stranded (normally nothing) so every allocated submission
        // number is classified.
        let leftovers = self.pool.drain_remaining();
        if !leftovers.is_empty() {
            let mut kernel = SignatureKernel::new(self.cfg.set);
            let mut log = Vec::new();
            let mut misses = Vec::new();
            for job in leftovers {
                classify_job(
                    job,
                    &mut kernel,
                    &self.store,
                    &self.cache,
                    &self.processed,
                    &self.order,
                    &mut log,
                    &mut misses,
                    &self.chunk_latency,
                    self.certified.as_deref(),
                );
            }
        }
        if self.cfg.persist.is_some() {
            self.store
                .checkpoint_all()
                .expect("final checkpoint failed; durable store is inconsistent");
        }
        let submitted_this_run = (self.next_seq.load(Ordering::Acquire) - self.base_seq) as usize;
        let state = self.order.seal();
        // The census always reflects the store (cumulative for durable
        // engines); for a census-only engine it is the entire result.
        let census = self.store.top_classes(usize::MAX);
        if !self.cfg.track_labels {
            let stats = self.stats_inner(Some(census.len()));
            return EngineReport {
                classification: Classification::from_parts(Vec::new(), Vec::new()),
                stats,
                census,
            };
        }
        // Remap the sink's applied-order internal ids to
        // first-*submitted* order — the exact grouping rule of
        // `Classifier::classify`, so the result is independent of
        // worker count and interleaving.
        debug_assert_eq!(state.labels.len(), submitted_this_run);
        let mut remap: Vec<u32> = vec![u32::MAX; state.keys.len()];
        let mut class_keys: Vec<u128> = Vec::new();
        let mut sizes: Vec<usize> = Vec::new();
        let mut labels: Vec<usize> = Vec::with_capacity(state.labels.len());
        for &internal in &state.labels {
            assert!(
                internal != u32::MAX,
                "submission missing from the order log"
            );
            let internal = internal as usize;
            if remap[internal] == u32::MAX {
                remap[internal] = class_keys.len() as u32;
                class_keys.push(state.keys[internal]);
                sizes.push(0);
            }
            let id = remap[internal] as usize;
            sizes[id] += 1;
            labels.push(id);
        }
        let classes: Vec<NpnClass> = class_keys
            .iter()
            .enumerate()
            .map(|(id, &key)| {
                let (representative, _) = self
                    .store
                    .get(key)
                    .expect("every processed key has a store entry");
                NpnClass::new(id, representative, sizes[id])
            })
            .collect();
        let stats = self.stats_inner(Some(classes.len()));
        EngineReport {
            classification: Classification::from_parts(labels, classes),
            stats,
            census,
        }
    }

    /// Current run statistics (also available mid-stream; `num_classes`
    /// and shard occupancy reflect what is classified so far).
    pub fn stats(&self) -> EngineStats {
        self.stats_inner(None)
    }

    /// One shard sweep for all counters, so `num_classes` and the
    /// occupancy figures come from the same consistent view (and the
    /// shards are locked once, not twice).
    fn stats_inner(&self, num_classes_override: Option<usize>) -> EngineStats {
        let shard_counts = self.store.shard_class_counts();
        let num_classes = num_classes_override.unwrap_or_else(|| shard_counts.iter().sum());
        EngineStats {
            functions_submitted: self.next_seq.load(Ordering::Acquire),
            functions_processed: self.processed.load(Ordering::Acquire),
            num_classes,
            workers: self.workers,
            shards: self.shards,
            occupied_shards: shard_counts.iter().filter(|&&c| c > 0).count(),
            max_shard_classes: shard_counts.iter().copied().max().unwrap_or(0),
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            dedup_hits: self.dedup_hits.load(Ordering::Relaxed),
            steals: self.pool.steals(),
            parks: self.pool.parks(),
            elapsed: self.started.elapsed(),
            recovered_members: self.base_seq,
            durability: self.store.durability_snapshot(),
            resolution: self.cfg.resolution,
            canon_walks: self.resolver.walks(),
            canon_matches: self.resolver.matches(),
            canon_fallbacks: self.resolver.fallbacks(),
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // Close the pool so detached workers terminate; `finish`
        // already closed it on the normal path.
        self.pool.close();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Classifies one chunk in two phases. Phase one probes the memo cache
/// per entry: hits land in the store immediately, misses queue their
/// entry index. Phase two keys **all misses of the chunk through one
/// bit-sliced lane pass** ([`SignatureKernel::key_batch_with`]), so up
/// to [`facepoint_sig::LANE_WIDTH`] same-arity functions share each
/// Walsh–Hadamard butterfly. Progress is still counted **per
/// function** — the kernel emits keys one at a time as it serializes
/// each lane slot — so `pending()` and [`Engine::drain`] observe
/// smooth, never-overshooting progress even mid-chunk. The chunk's
/// `(seq, key)` pairs then stream into the order sink in one short
/// lock and the submit→classified latency is recorded.
///
/// Allocation-free in steady state: the reused `log` and `misses`
/// scratch stop growing once they have seen the largest chunk, and the
/// kernel's lane buffers are warmed the same way.
///
/// Accounting note: entries of one chunk that duplicate an *uncached*
/// table are all keyed by the lane pass and all count as cache misses
/// (the retired per-entry compute-or-insert path resolved intra-chunk
/// repeats against the entry inserted moments earlier). `hits +
/// misses` still equals the number of keyed functions, and cross-chunk
/// repeats hit as before.
#[allow(clippy::too_many_arguments)]
fn classify_job(
    job: Job,
    kernel: &mut SignatureKernel,
    store: &ShardedStore,
    cache: &MemoCache,
    processed: &AtomicU64,
    order: &OrderSink,
    log: &mut Vec<(u64, u128)>,
    misses: &mut Vec<usize>,
    chunk_latency: &LatencyHistogram,
    certified: Option<&CertifiedResolve>,
) {
    let submitted_at = job.submitted_at;
    let entries = job.entries;
    for (i, (seq, table)) in entries.iter().enumerate() {
        if let Some(key) = cache.peek(table) {
            store.insert(key, table, *seq);
            log.push((*seq, key));
            processed.fetch_add(1, Ordering::AcqRel);
        } else {
            // Placeholder; patched by the lane pass below.
            log.push((*seq, 0));
            misses.push(i);
        }
    }
    let miss_idx: &[usize] = misses;
    kernel.key_batch_with(
        miss_idx.len(),
        |j| &entries[miss_idx[j]].1,
        |j, digest| {
            let i = miss_idx[j];
            let (seq, table) = &entries[i];
            // In certified mode the signature digest only names the
            // bucket; the store key and the stored representative are
            // the *proved* ones from the resolver. Either way the
            // store insert lands before the cache records the key, so
            // a dedup fast-path hit always finds an occupied entry.
            let key = match certified {
                None => {
                    store.insert(digest, table, *seq);
                    digest
                }
                Some(tier) => {
                    let (key, representative) = tier.resolve(digest, table);
                    store.insert(key, &representative, *seq);
                    key
                }
            };
            cache.record(table, key);
            log[i].1 = key;
            processed.fetch_add(1, Ordering::AcqRel);
        },
    );
    misses.clear();
    order.apply(log);
    log.clear();
    chunk_latency.record_duration(submitted_at.elapsed());
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    me: usize,
    pool: &StealPool<Job>,
    store: &ShardedStore,
    cache: &MemoCache,
    processed: &AtomicU64,
    order: &OrderSink,
    set: facepoint_sig::SignatureSet,
    chunk_latency: &LatencyHistogram,
    certified: Option<&CertifiedResolve>,
) {
    // One kernel per worker, reused for the whole stream: scratch
    // buffers grow to the largest arity seen, then key computation is
    // allocation-free. The chunk log is reused the same way, so the
    // steady-state worker allocates nothing per chunk.
    let mut kernel = SignatureKernel::new(set);
    let mut log: Vec<(u64, u128)> = Vec::new();
    let mut misses: Vec<usize> = Vec::new();
    while let Some(job) = pool.next_item(me) {
        classify_job(
            job,
            &mut kernel,
            store,
            cache,
            processed,
            order,
            &mut log,
            &mut misses,
            chunk_latency,
            certified,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use facepoint_bench::transform_closure_workload as workload;
    use facepoint_core::{signature_key, Classifier};
    use facepoint_sig::SignatureSet;

    #[test]
    fn empty_engine_finishes_clean() {
        let report = Engine::new(SignatureSet::all()).finish();
        assert_eq!(report.classification.num_functions(), 0);
        assert_eq!(report.classification.num_classes(), 0);
        assert_eq!(report.stats.functions_processed, 0);
    }

    #[test]
    fn matches_one_shot_classifier() {
        let fns = workload(5, 10, 6, 42);
        let expected = Classifier::new(SignatureSet::all()).classify(fns.clone());
        let mut engine = Engine::builder()
            .config(EngineConfig {
                workers: 4,
                chunk_size: 7, // force many small, oddly-sized chunks
                ..EngineConfig::default()
            })
            .build()
            .unwrap();
        engine.submit_batch(fns);
        let report = engine.finish();
        assert_eq!(report.classification.labels(), expected.labels());
        assert_eq!(report.classification.num_classes(), expected.num_classes());
    }

    #[test]
    fn representatives_are_class_members() {
        let fns = workload(4, 6, 4, 7);
        let mut engine = Engine::builder()
            .config(EngineConfig {
                workers: 3,
                chunk_size: 5,
                ..EngineConfig::default()
            })
            .build()
            .unwrap();
        engine.submit_batch(fns);
        let report = engine.finish();
        for class in report.classification.classes() {
            // A representative must carry the key of its own class.
            let key = signature_key(class.representative(), SignatureSet::all());
            let others: Vec<u128> = report
                .classification
                .classes()
                .iter()
                .map(|c| signature_key(c.representative(), SignatureSet::all()))
                .collect();
            assert_eq!(others.iter().filter(|&&k| k == key).count(), 1);
            assert!(class.size() >= 1);
        }
    }

    #[test]
    fn snapshot_mid_stream_progresses() {
        let fns = workload(5, 8, 8, 99);
        let total = fns.len() as u64;
        let mut engine = Engine::builder()
            .config(EngineConfig {
                workers: 2,
                chunk_size: 16,
                ..EngineConfig::default()
            })
            .build()
            .unwrap();
        engine.submit_batch(fns);
        engine.flush();
        let snap = engine.snapshot();
        assert_eq!(snap.functions_submitted, total);
        assert!(snap.functions_processed <= total);
        let report = engine.finish();
        assert_eq!(report.stats.functions_processed, total);
        assert_eq!(report.stats.functions_submitted, total);
        // After finish, every submitted function is classified.
        let final_classes = report.classification.num_classes();
        assert!(final_classes >= snap.num_classes);
    }

    #[test]
    fn memo_cache_sees_repeat_traffic() {
        let f = TruthTable::majority(5);
        let mut engine = Engine::builder()
            .config(EngineConfig {
                workers: 2,
                cache_capacity: 1024,
                chunk_size: 8,
                ..EngineConfig::default()
            })
            .build()
            .unwrap();
        for _ in 0..64 {
            engine.submit(f.clone());
        }
        let report = engine.finish();
        assert_eq!(report.classification.num_classes(), 1);
        assert_eq!(report.stats.cache_hits + report.stats.cache_misses, 64);
        // With one distinct function, almost everything hits; allow for
        // racy duplicate computation across workers.
        assert!(report.stats.cache_hits >= 32, "{}", report.stats);
    }

    #[test]
    fn top_classes_reports_heavy_hitters() {
        let mut fns = workload(4, 1, 9, 5); // 9 copies of one class
        fns.extend(workload(4, 1, 2, 6)); // 2 of another
        let expected = Classifier::new(SignatureSet::all()).classify(fns.clone());
        let total = fns.len() as u64;
        let mut engine = Engine::builder()
            .config(EngineConfig {
                workers: 2,
                chunk_size: 3,
                ..EngineConfig::default()
            })
            .build()
            .unwrap();
        engine.submit_batch(fns);
        engine.flush();
        // Wait (bounded) for the stream to drain, then the mid-stream
        // report must be complete and correct.
        let deadline = Instant::now() + std::time::Duration::from_secs(10);
        while engine.snapshot().functions_processed < total {
            assert!(Instant::now() < deadline, "engine failed to drain");
            std::thread::yield_now();
        }
        let top = engine.top_classes(usize::MAX);
        assert_eq!(top.len(), expected.num_classes());
        assert_eq!(
            top.iter().map(|c| c.size).sum::<usize>(),
            expected.num_functions()
        );
        // Largest first, and the heavy hitter matches the classifier's.
        assert!(top.windows(2).all(|w| w[0].size >= w[1].size));
        let expected_max = expected
            .classes_by_size()
            .first()
            .map(|c| c.size())
            .unwrap();
        assert_eq!(top[0].size, expected_max);
        // Its representative carries the heavy class's signature key.
        let top1 = engine.top_classes(1);
        assert_eq!(top1.len(), 1);
        assert_eq!(
            signature_key(&top1[0].representative, SignatureSet::all()),
            top1[0].key
        );
        let report = engine.finish();
        assert_eq!(report.classification.labels(), expected.labels());
    }

    #[test]
    fn drain_quiesces_without_finishing() {
        let fns = workload(5, 10, 8, 17);
        let total = fns.len() as u64;
        let expected = Classifier::new(SignatureSet::all()).classify(fns.clone());
        let mut engine = Engine::builder()
            .config(EngineConfig {
                workers: 3,
                chunk_size: 9,
                ..EngineConfig::default()
            })
            .build()
            .unwrap();
        // Interleave submission with mid-stream drains: after each
        // drain, the snapshot must account for every prior submission
        // (the service invariant behind `facepoint serve`'s SNAPSHOT).
        for chunk in fns.chunks(23) {
            engine.submit_batch(chunk.iter().cloned());
            assert!(engine.drain(std::time::Duration::from_secs(30)));
            let snap = engine.snapshot();
            assert_eq!(snap.functions_processed, snap.functions_submitted);
            assert_eq!(snap.backlog(), 0);
        }
        let snap = engine.snapshot();
        assert_eq!(snap.functions_processed, total);
        assert_eq!(snap.num_classes, expected.num_classes());
        // The stream is still open: more work and a normal finish.
        engine.submit(TruthTable::majority(5));
        let report = engine.finish();
        assert_eq!(report.stats.functions_processed, total + 1);
    }

    #[test]
    fn stats_display_is_informative() {
        let mut engine = Engine::new(SignatureSet::all());
        engine.submit(TruthTable::majority(3));
        let report = engine.finish();
        let line = report.stats.to_string();
        assert!(line.contains("1 functions -> 1 classes"), "{line}");
    }

    #[test]
    fn progress_is_counted_per_function_mid_chunk() {
        // One giant chunk on one worker: `processed` must advance
        // *inside* the chunk (per-function counting), so `drain` and
        // `backlog()` never overshoot while a chunk is in flight.
        let fns = facepoint_bench::random_workload(8, 400, 0x9A9);
        let total = fns.len() as u64;
        let mut engine = Engine::builder()
            .config(EngineConfig {
                workers: 1,
                chunk_size: fns.len(),
                ..EngineConfig::default()
            })
            .build()
            .unwrap();
        engine.submit_batch(fns);
        engine.flush();
        let deadline = Instant::now() + std::time::Duration::from_secs(120);
        let mut saw_partial = false;
        loop {
            let snap = engine.snapshot();
            assert!(snap.functions_processed <= total, "progress overshot");
            if snap.functions_processed > 0 && snap.functions_processed < total {
                saw_partial = true;
            }
            if snap.functions_processed == total {
                break;
            }
            assert!(Instant::now() < deadline, "engine failed to drain");
            std::thread::yield_now();
        }
        assert!(
            saw_partial,
            "processed jumped 0 -> total; chunk-granular counting is back"
        );
        let report = engine.finish();
        assert_eq!(report.stats.functions_processed, total);
    }

    #[test]
    fn forced_steal_schedule_matches_classifier() {
        // Deque capacity 1 and chunk size 1 force constant migration
        // between deques; the partition must not notice.
        let fns = workload(4, 9, 5, 0x57EA);
        let expected = Classifier::new(SignatureSet::all()).classify(fns.clone());
        let mut engine = Engine::builder()
            .config(EngineConfig {
                workers: 8,
                chunk_size: 1,
                deque_capacity: 1,
                steal_batch: 1,
                ..EngineConfig::default()
            })
            .build()
            .unwrap();
        engine.submit_batch(fns.iter().cloned());
        let report = engine.finish();
        assert_eq!(report.classification.labels(), expected.labels());
        // The counters surfaced for observability never go backwards
        // and are wired up (parks are guaranteed: idle workers on a
        // drained pool must sleep, not spin).
        assert!(report.stats.parks > 0, "{}", report.stats);
    }

    #[test]
    fn census_only_mode_reports_through_census() {
        let fns = workload(4, 7, 3, 0xCE45);
        let expected = Classifier::new(SignatureSet::all()).classify(fns.clone());
        let mut engine = Engine::builder()
            .config(EngineConfig {
                workers: 2,
                chunk_size: 4,
                track_labels: false,
                ..EngineConfig::default()
            })
            .build()
            .unwrap();
        engine.submit_batch(fns.iter().cloned());
        let report = engine.finish();
        // No labels were tracked…
        assert_eq!(report.classification.num_functions(), 0);
        assert_eq!(report.classification.num_classes(), 0);
        // …but the census is complete and correct.
        assert_eq!(report.census.len(), expected.num_classes());
        assert_eq!(
            report.census.iter().map(|c| c.size).sum::<usize>(),
            expected.num_functions()
        );
        assert_eq!(report.stats.num_classes, expected.num_classes());
        assert_eq!(report.stats.functions_processed, fns.len() as u64);
    }

    #[test]
    fn submit_handles_interleave_with_engine_submissions() {
        let fns = workload(4, 8, 6, 0x4A4D);
        let expected_classes = Classifier::new(SignatureSet::all())
            .classify(fns.clone())
            .num_classes();
        let mut engine = Engine::builder()
            .config(EngineConfig {
                workers: 2,
                chunk_size: 4,
                ..EngineConfig::default()
            })
            .build()
            .unwrap();
        let (left, right) = fns.split_at(fns.len() / 2);
        let mut handle = engine.submit_handle();
        let right = right.to_vec();
        let feeder = std::thread::spawn(move || {
            handle.submit_batch(right).expect("engine is open");
        });
        for f in left.iter().cloned() {
            engine.submit(f);
        }
        feeder.join().unwrap();
        let report = engine.finish();
        // Interleaving order is nondeterministic, so compare the
        // partition's shape rather than its labels.
        assert_eq!(report.stats.functions_processed, fns.len() as u64);
        assert_eq!(report.classification.num_functions(), fns.len());
        assert_eq!(report.classification.num_classes(), expected_classes);
    }

    /// Reads one series out of a text exposition, panicking with the
    /// whole scrape when it is absent (every value renders as a number,
    /// so `f64` covers counters, gauges and histogram fields alike).
    fn series(text: &str, name: &str) -> f64 {
        let prefix = format!("{name} ");
        text.lines()
            .find_map(|l| l.strip_prefix(&prefix))
            .unwrap_or_else(|| panic!("series {name} missing from scrape:\n{text}"))
            .parse()
            .unwrap_or_else(|e| panic!("series {name} is not numeric: {e}"))
    }

    #[test]
    fn telemetry_scrape_covers_engine_series() {
        let fns = workload(4, 6, 5, 0x7E1E);
        let total = fns.len() as u64;
        let mut engine = Engine::builder()
            .config(EngineConfig {
                workers: 2,
                chunk_size: 4,
                cache_capacity: 64,
                ..EngineConfig::default()
            })
            .build()
            .unwrap();
        let telemetry = engine.telemetry();
        engine.submit_batch(fns);
        engine.flush();
        assert!(engine.drain(std::time::Duration::from_secs(30)));
        let text = telemetry.render_text();
        assert_eq!(
            series(&text, "engine_functions_submitted_total") as u64,
            total
        );
        assert_eq!(
            series(&text, "engine_functions_processed_total") as u64,
            total
        );
        assert_eq!(series(&text, "engine_backlog"), 0.0);
        assert_eq!(series(&text, "engine_workers"), 2.0);
        // Every chunk's latency was recorded, and the percentile chain
        // holds in a real scrape, not just in the histogram's unit
        // tests.
        assert!(series(&text, "engine_chunk_classify_nanos_count") >= 1.0);
        let (p50, p90, p99, max) = (
            series(&text, "engine_chunk_classify_nanos_p50"),
            series(&text, "engine_chunk_classify_nanos_p90"),
            series(&text, "engine_chunk_classify_nanos_p99"),
            series(&text, "engine_chunk_classify_nanos_max"),
        );
        assert!(p50 <= p90 && p90 <= p99 && p99 <= max, "{text}");
        // The cache saw traffic; ratio stays within [0, 1].
        let ratio = series(&text, "engine_cache_hit_ratio");
        assert!((0.0..=1.0).contains(&ratio), "{ratio}");
        // In-memory engine: the store series exist but stay zero.
        assert_eq!(series(&text, "store_journal_records_total"), 0.0);
        assert_eq!(series(&text, "store_recovery_replay_nanos"), 0.0);
        engine.finish();
    }

    #[test]
    fn durable_engine_records_store_latencies() {
        let dir = std::env::temp_dir()
            .join("facepoint-engine-tests")
            .join(format!("telemetry-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = EngineConfig {
            workers: 2,
            chunk_size: 4,
            persist: Some(PersistConfig {
                dir: dir.clone(),
                checkpoint_interval: 8,
                sync: crate::SyncPolicy::Barrier,
            }),
            ..EngineConfig::default()
        };
        let mut engine = Engine::builder()
            .config(cfg.clone())
            .persist(&dir)
            .build()
            .unwrap();
        let telemetry = engine.telemetry();
        engine.submit_batch(workload(4, 6, 8, 0xD0C));
        engine.flush(); // epoch barrier → fsync under Barrier policy
        assert!(engine.drain(std::time::Duration::from_secs(30)));
        // 48 submissions at checkpoint_interval 8 force compactions
        // while the stream is live.
        let text = telemetry.render_text();
        assert!(
            series(&text, "store_journal_append_nanos_count") >= 1.0,
            "{text}"
        );
        assert!(series(&text, "store_journal_records_total") >= 1.0);
        assert!(series(&text, "store_fsync_nanos_count") >= 1.0);
        assert!(series(&text, "store_fsyncs_total") >= 1.0);
        assert!(series(&text, "store_checkpoint_nanos_count") >= 1.0);
        assert!(series(&text, "store_checkpoints_total") >= 1.0);
        engine.finish(); // final checkpoint; drops the store
                         // The registry holds the store only weakly, so finishing the
                         // engine releases the store's directory lock even while this
                         // telemetry handle lives on — sampled store totals read 0 now.
        let text = telemetry.render_text();
        assert_eq!(series(&text, "store_journal_records_total"), 0.0);
        // Reopening replays the checkpoints; the replay gauge reflects
        // the measured open cost.
        let reopened = Engine::builder().config(cfg).persist(&dir).build().unwrap();
        let text = reopened.telemetry().render_text();
        assert!(
            series(&text, "store_recovery_replay_nanos") >= 1.0,
            "{text}"
        );
        drop(reopened);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn submit_handle_refuses_after_finish() {
        let mut engine = Engine::builder()
            .config(EngineConfig {
                workers: 2,
                ..EngineConfig::default()
            })
            .build()
            .unwrap();
        let mut handle = engine.submit_handle();
        engine.submit(TruthTable::majority(3));
        let report = engine.finish();
        assert_eq!(report.stats.functions_processed, 1);
        assert_eq!(handle.submit(TruthTable::parity(3)), None);
        assert_eq!(handle.submit_batch([TruthTable::parity(3)]), None);
    }
}
