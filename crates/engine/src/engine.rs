//! The engine proper: ingestion, the worker pool, and result assembly.

use crate::cache::MemoCache;
use crate::config::{EngineConfig, PersistConfig};
use crate::stats::{EngineSnapshot, EngineStats, RecoveryReport};
use crate::store::{self, ClassSummary, ShardedStore};
use facepoint_core::{Classification, NpnClass, SignatureKernel};
use facepoint_sig::SignatureSet;
use facepoint_truth::TruthTable;
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// A chunk of work: each entry carries its own submission number.
/// Explicit numbering (rather than a base + offset) is required because
/// the dedup fast path consumes submission numbers without entering the
/// buffer, leaving buffered chunks with non-contiguous sequences.
struct Job {
    entries: Vec<(u64, TruthTable)>,
}

/// Per-worker record of what went where: `(submission seq, key)`.
/// Collected at [`Engine::finish`] to rebuild the input-ordered
/// partition without any cross-worker coordination during the run.
type WorkerLog = Vec<(u64, u128)>;

/// The sharded, parallel, streaming NPN classification engine.
///
/// See the [crate docs](crate) for the architecture. Lifecycle:
///
/// 1. create ([`Engine::new`] / [`Engine::with_config`]) — workers
///    start idle;
/// 2. feed it ([`Engine::submit`], [`Engine::submit_batch`]) — keys are
///    computed and classes recorded concurrently with ingestion;
/// 3. observe mid-stream ([`Engine::snapshot`], [`Engine::top_classes`])
///    — no pause, no drain;
/// 4. [`Engine::finish`] — drains the queue, joins the workers and
///    returns the input-ordered [`Classification`] plus [`EngineStats`].
///
/// Dropping an unfinished engine shuts the workers down without
/// assembling a result.
pub struct Engine {
    cfg: EngineConfig,
    workers: usize,
    shards: usize,
    store: Arc<ShardedStore>,
    cache: Arc<MemoCache>,
    processed: Arc<AtomicU64>,
    tx: Option<SyncSender<Job>>,
    handles: Vec<JoinHandle<WorkerLog>>,
    /// Chunk being accumulated by `submit` calls, with each function's
    /// submission number (dedup fast-path hits leave gaps).
    pending: Vec<(u64, TruthTable)>,
    next_seq: u64,
    /// `(seq, key)` records of functions resolved by the ingestion-side
    /// dedup fast path (memo-cache probe), merged with the worker logs
    /// at [`Engine::finish`].
    dedup_log: WorkerLog,
    /// Functions that skipped the queue via the dedup fast path.
    dedup_hits: u64,
    /// First submission number of *this run*: `0` for a fresh engine,
    /// the recovered member count after [`Engine::open`] — so
    /// resubmitted members never outrank a recovered representative.
    base_seq: u64,
    /// What recovery found when the engine was [`Engine::open`]ed over
    /// existing state.
    recovery: Option<RecoveryReport>,
    /// Epoch barriers issued so far (see [`Engine::flush`]).
    epoch: u64,
    started: Instant,
}

/// A read-only view of a durable store's contents, produced by
/// [`Engine::recover`] without starting any workers or modifying a
/// byte on disk.
#[derive(Debug, Clone)]
pub struct RecoveredSnapshot {
    /// Signature set the store's keys were computed under (from the
    /// manifest).
    pub set: SignatureSet,
    /// Every recovered class, largest first (ties broken by key).
    pub classes: Vec<ClassSummary>,
    /// Replay accounting: classes, members, torn tails, epochs.
    pub report: RecoveryReport,
}

impl RecoveredSnapshot {
    /// Total members across all recovered classes.
    pub fn members(&self) -> u64 {
        self.report.members
    }
}

/// What [`Engine::finish`] returns.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// The partition, identical to what a one-shot
    /// [`Classifier`](facepoint_core::Classifier) on the same stream
    /// (in submission order) would produce.
    pub classification: Classification,
    /// Throughput and occupancy counters for the run.
    pub stats: EngineStats,
}

impl Engine {
    /// An engine over `set` with default tuning (all cores, 64 shards,
    /// cache off).
    pub fn new(set: facepoint_sig::SignatureSet) -> Self {
        Self::with_config(EngineConfig::with_set(set))
    }

    /// An engine with explicit tuning.
    ///
    /// # Panics
    ///
    /// Panics if [`EngineConfig::persist`] is set and the durable store
    /// fails to open — use [`Engine::try_with_config`] (or
    /// [`Engine::open`]) when disk errors should be handled instead.
    pub fn with_config(cfg: EngineConfig) -> Self {
        Self::try_with_config(cfg).expect("failed to open the durable store")
    }

    /// Opens (or creates) a **durable** engine whose class store lives
    /// under `dir`: every classified member is journaled to a per-shard
    /// segment log, and any state already in `dir` is recovered first —
    /// the partition store and (when enabled) the memo cache pick up
    /// exactly where the previous process stopped, torn tails
    /// truncated. Inspect what was found via [`Engine::recovery`].
    ///
    /// Durability knobs other than the directory (checkpoint interval,
    /// sync policy) are taken from `cfg.persist` when set, defaults
    /// otherwise.
    ///
    /// # Errors
    ///
    /// I/O failures, a store recorded under a different signature set,
    /// or corruption outside a log tail.
    pub fn open(dir: impl Into<PathBuf>, mut cfg: EngineConfig) -> io::Result<Self> {
        let mut persist = cfg
            .persist
            .take()
            .unwrap_or_else(|| PersistConfig::new(PathBuf::new()));
        persist.dir = dir.into();
        cfg.persist = Some(persist);
        Self::try_with_config(cfg)
    }

    /// Reads the durable store under `dir` without opening it for
    /// writing: no workers, no truncation, no new segments — the
    /// inspection path behind the CLI's `recover` subcommand.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Engine::open`], plus `NotFound` when `dir`
    /// holds no store manifest.
    pub fn recover(dir: impl AsRef<Path>) -> io::Result<RecoveredSnapshot> {
        let (maps, set_name, report) = store::recover_dir(dir.as_ref())?;
        let set = SignatureSet::parse(&set_name).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("manifest names unknown signature set {set_name:?}"),
            )
        })?;
        let mut classes: Vec<ClassSummary> = maps
            .into_iter()
            .flat_map(|map| {
                map.into_iter().map(|(key, e)| ClassSummary {
                    key,
                    representative: e.representative,
                    size: e.size,
                })
            })
            .collect();
        classes.sort_by(|a, b| b.size.cmp(&a.size).then(a.key.cmp(&b.key)));
        Ok(RecoveredSnapshot {
            set,
            classes,
            report,
        })
    }

    /// An engine with explicit tuning, reporting store-opening failures
    /// instead of panicking.
    ///
    /// # Errors
    ///
    /// Only when [`EngineConfig::persist`] is set: see
    /// [`Engine::open`].
    pub fn try_with_config(cfg: EngineConfig) -> io::Result<Self> {
        let workers = cfg.resolved_workers();
        let (store, recovery) = match &cfg.persist {
            Some(persist) => {
                let (store, report) =
                    ShardedStore::open_durable(persist, cfg.resolved_shards(), cfg.set)?;
                (store, Some(report))
            }
            None => (ShardedStore::new(cfg.resolved_shards()), None),
        };
        // A pre-existing store's shard count overrides the config (the
        // key→shard mapping is baked into the segment files).
        let shards = recovery
            .as_ref()
            .map_or_else(|| cfg.resolved_shards(), |r| r.shards);
        // New submissions must never outrank a recovered representative
        // (`seq < rep_seq` steals the slot), so the sequence restarts
        // above BOTH the recovered member count and the highest
        // recovered rep_seq — the latter can exceed the former when a
        // torn tail lost records in one shard while another shard
        // durably holds later submissions.
        let base_seq = recovery.as_ref().map_or(0, |r| {
            let mut floor = r.members;
            store.for_each(|_, entry| floor = floor.max(entry.rep_seq + 1));
            floor
        });
        let store = Arc::new(store);
        let cache = Arc::new(MemoCache::new(cfg.cache_capacity));
        if recovery.is_some() && cfg.cache_capacity > 0 {
            // Warm the dedup fast path with the recovered census.
            store.for_each(|key, entry| cache.prime(&entry.representative, key));
        }
        let processed = Arc::new(AtomicU64::new(base_seq));
        let (tx, rx) = std::sync::mpsc::sync_channel::<Job>(cfg.queue_chunks.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..workers)
            .map(|_| {
                let rx = Arc::clone(&rx);
                let store = Arc::clone(&store);
                let cache = Arc::clone(&cache);
                let processed = Arc::clone(&processed);
                let set = cfg.set;
                std::thread::spawn(move || worker_loop(&rx, &store, &cache, &processed, set))
            })
            .collect();
        Ok(Engine {
            workers,
            shards,
            store,
            cache,
            processed,
            tx: Some(tx),
            handles,
            pending: Vec::with_capacity(cfg.chunk_size),
            next_seq: base_seq,
            dedup_log: Vec::new(),
            dedup_hits: 0,
            base_seq,
            // Epoch numbers stay monotonic across reopens of the same
            // store: resume from the highest barrier recovery saw.
            epoch: recovery.as_ref().map_or(0, |r| r.last_epoch),
            recovery,
            started: Instant::now(),
            cfg,
        })
    }

    /// What recovery found when this engine was [`Engine::open`]ed over
    /// an existing store; `None` for fresh or in-memory engines.
    pub fn recovery(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Submits one function for classification and returns its
    /// submission number (the index it will have in the final
    /// [`Classification`]'s label vector).
    ///
    /// Functions are buffered into chunks; a full chunk is handed to
    /// the worker pool, **blocking if the ingest queue is full**
    /// (backpressure). Use [`Engine::flush`] to push a partial chunk
    /// early.
    ///
    /// When the memo cache is enabled (a positive
    /// [`EngineConfig::cache_capacity`]) a repeated function takes the
    /// **dedup fast path**: its cached key bumps the class counts right
    /// here, skipping the queue round-trip entirely. Fast-path
    /// resolutions are counted in [`EngineStats::dedup_hits`].
    pub fn submit(&mut self, f: TruthTable) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        if let Some(key) = self.cache.peek(&f) {
            self.store.insert(key, &f, seq);
            self.dedup_log.push((seq, key));
            self.dedup_hits += 1;
            self.processed.fetch_add(1, Ordering::AcqRel);
            return seq;
        }
        self.pending.push((seq, f));
        if self.pending.len() >= self.cfg.chunk_size.max(1) {
            self.dispatch_pending();
        }
        seq
    }

    /// Submits every function of `fns` in order; returns the submission
    /// number of the first one (they are consecutive).
    pub fn submit_batch(&mut self, fns: impl IntoIterator<Item = TruthTable>) -> u64 {
        let first = self.next_seq;
        for f in fns {
            self.submit(f);
        }
        first
    }

    /// Hands any buffered partial chunk to the workers now.
    ///
    /// For a durable engine this is also the **epoch barrier**: an
    /// epoch marker is appended to every shard journal and the
    /// journals are flushed — fsync'd under the default
    /// [`SyncPolicy::Barrier`](crate::SyncPolicy::Barrier) — so every
    /// member classified *before* the call is crash-durable when it
    /// returns. Members still queued or in flight are covered by the
    /// next barrier (or by [`Engine::finish`]'s final checkpoint);
    /// after a crash, recovery loses at most that un-fsync'd tail.
    ///
    /// # Panics
    ///
    /// Panics if the journals cannot be flushed — durability was
    /// promised and can no longer be provided.
    pub fn flush(&mut self) {
        self.dispatch_pending();
        if self.cfg.persist.is_some() {
            self.epoch += 1;
            self.store
                .sync_barrier(self.epoch)
                .expect("epoch barrier failed; durable store is inconsistent");
        }
    }

    fn dispatch_pending(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let entries = std::mem::take(&mut self.pending);
        self.pending = Vec::with_capacity(self.cfg.chunk_size);
        let tx = self.tx.as_ref().expect("engine already finished");
        tx.send(Job { entries })
            .expect("worker pool hung up while the engine is alive");
    }

    /// Functions accepted so far (including any buffered, queued or
    /// in-flight ones).
    pub fn functions_submitted(&self) -> u64 {
        self.next_seq
    }

    /// A mid-stream view: how much is classified, how many classes
    /// exist, and how they spread over shards. Runs concurrently with
    /// ingestion (locks shards one at a time, briefly).
    ///
    /// Buffered-but-undispatched functions count as backlog; call
    /// [`Engine::flush`] first if you want them moving.
    pub fn snapshot(&self) -> EngineSnapshot {
        let shard_class_counts = self.store.shard_class_counts();
        EngineSnapshot {
            functions_submitted: self.next_seq,
            functions_processed: self.processed.load(Ordering::Acquire),
            num_classes: shard_class_counts.iter().sum(),
            shard_class_counts,
        }
    }

    /// The `limit` largest classes discovered so far, largest first —
    /// a heavy-hitter report usable while the stream is still running.
    pub fn top_classes(&self, limit: usize) -> Vec<ClassSummary> {
        self.store.top_classes(limit)
    }

    /// Pushes any buffered partial chunk to the workers and waits until
    /// everything submitted so far is classified, without ending the
    /// stream — the quiescence hook for long-running services, where
    /// [`Engine::finish`] (which consumes the engine) is reserved for
    /// shutdown.
    ///
    /// Returns `true` once the backlog is zero, `false` if `timeout`
    /// elapsed first (the engine keeps working either way; partial
    /// progress is kept). After `drain` returns `true`, a
    /// [`Engine::snapshot`] reflects every prior submission:
    /// `functions_processed == functions_submitted` and the class
    /// census is complete for the stream so far.
    ///
    /// Unlike [`Engine::flush`] this issues no epoch barrier — combine
    /// the two (`flush` then `drain`, or `drain` then `flush`) when a
    /// service wants both a quiescent view and durability of it.
    pub fn drain(&mut self, timeout: std::time::Duration) -> bool {
        self.dispatch_pending();
        let deadline = Instant::now() + timeout;
        let mut polls = 0u32;
        while self.processed.load(Ordering::Acquire) < self.next_seq {
            if Instant::now() >= deadline {
                return false;
            }
            // Yield while the backlog is about to clear, then back off
            // to sleeping: spinning for a long drain would pin a core
            // against the very workers being waited on.
            if polls < 64 {
                polls += 1;
                std::thread::yield_now();
            } else {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        true
    }

    /// Drains the pipeline, joins the workers and assembles the final
    /// input-ordered [`Classification`] plus run statistics.
    ///
    /// The classification covers the functions submitted to *this*
    /// engine instance; for an engine recovered via [`Engine::open`],
    /// class representatives may predate this run (they are the
    /// earliest-known members, recovered ones included) and the durable
    /// store's class counts keep accumulating across runs.
    ///
    /// A durable engine writes a final checkpoint of every shard before
    /// returning, so a subsequent [`Engine::open`] replays checkpoints
    /// only — no log tail, nothing to lose.
    ///
    /// # Panics
    ///
    /// Panics if a worker panicked or (durable engines) the final
    /// checkpoint cannot be written.
    pub fn finish(mut self) -> EngineReport {
        self.dispatch_pending();
        drop(self.tx.take()); // close the channel: workers drain and exit
        let submitted_this_run = (self.next_seq - self.base_seq) as usize;
        let mut keyed: Vec<(u64, u128)> = Vec::with_capacity(submitted_this_run);
        keyed.append(&mut self.dedup_log);
        for handle in self.handles.drain(..) {
            keyed.extend(handle.join().expect("worker panicked"));
        }
        if self.cfg.persist.is_some() {
            self.store
                .checkpoint_all()
                .expect("final checkpoint failed; durable store is inconsistent");
        }
        debug_assert_eq!(keyed.len(), submitted_this_run);
        // Rebuild submission order, then group by first occurrence —
        // the exact grouping rule of `Classifier::classify`, so the
        // result is independent of worker count and interleaving.
        keyed.sort_unstable_by_key(|&(seq, _)| seq);
        let mut ids: HashMap<u128, usize> = HashMap::new();
        let mut class_keys: Vec<u128> = Vec::new();
        let mut sizes: Vec<usize> = Vec::new();
        let mut labels: Vec<usize> = Vec::with_capacity(keyed.len());
        for (_, key) in keyed {
            let id = *ids.entry(key).or_insert_with(|| {
                class_keys.push(key);
                sizes.push(0);
                class_keys.len() - 1
            });
            sizes[id] += 1;
            labels.push(id);
        }
        let classes: Vec<NpnClass> = class_keys
            .iter()
            .enumerate()
            .map(|(id, &key)| {
                let (representative, _) = self
                    .store
                    .get(key)
                    .expect("every processed key has a store entry");
                NpnClass::new(id, representative, sizes[id])
            })
            .collect();
        let stats = self.stats_inner(Some(classes.len()));
        EngineReport {
            classification: Classification::from_parts(labels, classes),
            stats,
        }
    }

    /// Current run statistics (also available mid-stream; `num_classes`
    /// and shard occupancy reflect what is classified so far).
    pub fn stats(&self) -> EngineStats {
        self.stats_inner(None)
    }

    /// One shard sweep for all counters, so `num_classes` and the
    /// occupancy figures come from the same consistent view (and the
    /// shards are locked once, not twice).
    fn stats_inner(&self, num_classes_override: Option<usize>) -> EngineStats {
        let shard_counts = self.store.shard_class_counts();
        let num_classes = num_classes_override.unwrap_or_else(|| shard_counts.iter().sum());
        EngineStats {
            functions_submitted: self.next_seq,
            functions_processed: self.processed.load(Ordering::Acquire),
            num_classes,
            workers: self.workers,
            shards: self.shards,
            occupied_shards: shard_counts.iter().filter(|&&c| c > 0).count(),
            max_shard_classes: shard_counts.iter().copied().max().unwrap_or(0),
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            dedup_hits: self.dedup_hits,
            elapsed: self.started.elapsed(),
            recovered_members: self.base_seq,
            durability: self.store.durability_snapshot(),
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // Close the channel so detached workers terminate; `finish`
        // already took `tx` on the normal path.
        drop(self.tx.take());
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(
    rx: &Mutex<Receiver<Job>>,
    store: &ShardedStore,
    cache: &MemoCache,
    processed: &AtomicU64,
    set: facepoint_sig::SignatureSet,
) -> WorkerLog {
    let mut log: WorkerLog = Vec::new();
    // One kernel per worker, reused for the whole stream: scratch
    // buffers grow to the largest arity seen, then key computation is
    // allocation-free.
    let mut kernel = SignatureKernel::new(set);
    loop {
        // Hold the receiver lock only to pop one chunk.
        let job = match rx.lock().expect("ingest queue poisoned").recv() {
            Ok(job) => job,
            Err(_) => return log, // channel closed: engine is finishing
        };
        let n = job.entries.len() as u64;
        for (seq, table) in job.entries {
            let key = cache.key_or_compute(&table, || kernel.key(&table));
            store.insert(key, &table, seq);
            log.push((seq, key));
        }
        processed.fetch_add(n, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use facepoint_bench::transform_closure_workload as workload;
    use facepoint_core::{signature_key, Classifier};
    use facepoint_sig::SignatureSet;

    #[test]
    fn empty_engine_finishes_clean() {
        let report = Engine::new(SignatureSet::all()).finish();
        assert_eq!(report.classification.num_functions(), 0);
        assert_eq!(report.classification.num_classes(), 0);
        assert_eq!(report.stats.functions_processed, 0);
    }

    #[test]
    fn matches_one_shot_classifier() {
        let fns = workload(5, 10, 6, 42);
        let expected = Classifier::new(SignatureSet::all()).classify(fns.clone());
        let mut engine = Engine::with_config(EngineConfig {
            workers: 4,
            chunk_size: 7, // force many small, oddly-sized chunks
            ..EngineConfig::default()
        });
        engine.submit_batch(fns);
        let report = engine.finish();
        assert_eq!(report.classification.labels(), expected.labels());
        assert_eq!(report.classification.num_classes(), expected.num_classes());
    }

    #[test]
    fn representatives_are_class_members() {
        let fns = workload(4, 6, 4, 7);
        let mut engine = Engine::with_config(EngineConfig {
            workers: 3,
            chunk_size: 5,
            ..EngineConfig::default()
        });
        engine.submit_batch(fns);
        let report = engine.finish();
        for class in report.classification.classes() {
            // A representative must carry the key of its own class.
            let key = signature_key(class.representative(), SignatureSet::all());
            let others: Vec<u128> = report
                .classification
                .classes()
                .iter()
                .map(|c| signature_key(c.representative(), SignatureSet::all()))
                .collect();
            assert_eq!(others.iter().filter(|&&k| k == key).count(), 1);
            assert!(class.size() >= 1);
        }
    }

    #[test]
    fn snapshot_mid_stream_progresses() {
        let fns = workload(5, 8, 8, 99);
        let total = fns.len() as u64;
        let mut engine = Engine::with_config(EngineConfig {
            workers: 2,
            chunk_size: 16,
            ..EngineConfig::default()
        });
        engine.submit_batch(fns);
        engine.flush();
        let snap = engine.snapshot();
        assert_eq!(snap.functions_submitted, total);
        assert!(snap.functions_processed <= total);
        let report = engine.finish();
        assert_eq!(report.stats.functions_processed, total);
        assert_eq!(report.stats.functions_submitted, total);
        // After finish, every submitted function is classified.
        let final_classes = report.classification.num_classes();
        assert!(final_classes >= snap.num_classes);
    }

    #[test]
    fn memo_cache_sees_repeat_traffic() {
        let f = TruthTable::majority(5);
        let mut engine = Engine::with_config(EngineConfig {
            workers: 2,
            cache_capacity: 1024,
            chunk_size: 8,
            ..EngineConfig::default()
        });
        for _ in 0..64 {
            engine.submit(f.clone());
        }
        let report = engine.finish();
        assert_eq!(report.classification.num_classes(), 1);
        assert_eq!(report.stats.cache_hits + report.stats.cache_misses, 64);
        // With one distinct function, almost everything hits; allow for
        // racy duplicate computation across workers.
        assert!(report.stats.cache_hits >= 32, "{}", report.stats);
    }

    #[test]
    fn top_classes_reports_heavy_hitters() {
        let mut fns = workload(4, 1, 9, 5); // 9 copies of one class
        fns.extend(workload(4, 1, 2, 6)); // 2 of another
        let expected = Classifier::new(SignatureSet::all()).classify(fns.clone());
        let total = fns.len() as u64;
        let mut engine = Engine::with_config(EngineConfig {
            workers: 2,
            chunk_size: 3,
            ..EngineConfig::default()
        });
        engine.submit_batch(fns);
        engine.flush();
        // Wait (bounded) for the stream to drain, then the mid-stream
        // report must be complete and correct.
        let deadline = Instant::now() + std::time::Duration::from_secs(10);
        while engine.snapshot().functions_processed < total {
            assert!(Instant::now() < deadline, "engine failed to drain");
            std::thread::yield_now();
        }
        let top = engine.top_classes(usize::MAX);
        assert_eq!(top.len(), expected.num_classes());
        assert_eq!(
            top.iter().map(|c| c.size).sum::<usize>(),
            expected.num_functions()
        );
        // Largest first, and the heavy hitter matches the classifier's.
        assert!(top.windows(2).all(|w| w[0].size >= w[1].size));
        let expected_max = expected
            .classes_by_size()
            .first()
            .map(|c| c.size())
            .unwrap();
        assert_eq!(top[0].size, expected_max);
        // Its representative carries the heavy class's signature key.
        let top1 = engine.top_classes(1);
        assert_eq!(top1.len(), 1);
        assert_eq!(
            signature_key(&top1[0].representative, SignatureSet::all()),
            top1[0].key
        );
        let report = engine.finish();
        assert_eq!(report.classification.labels(), expected.labels());
    }

    #[test]
    fn drain_quiesces_without_finishing() {
        let fns = workload(5, 10, 8, 17);
        let total = fns.len() as u64;
        let expected = Classifier::new(SignatureSet::all()).classify(fns.clone());
        let mut engine = Engine::with_config(EngineConfig {
            workers: 3,
            chunk_size: 9,
            ..EngineConfig::default()
        });
        // Interleave submission with mid-stream drains: after each
        // drain, the snapshot must account for every prior submission
        // (the service invariant behind `facepoint serve`'s SNAPSHOT).
        for chunk in fns.chunks(23) {
            engine.submit_batch(chunk.iter().cloned());
            assert!(engine.drain(std::time::Duration::from_secs(30)));
            let snap = engine.snapshot();
            assert_eq!(snap.functions_processed, snap.functions_submitted);
            assert_eq!(snap.backlog(), 0);
        }
        let snap = engine.snapshot();
        assert_eq!(snap.functions_processed, total);
        assert_eq!(snap.num_classes, expected.num_classes());
        // The stream is still open: more work and a normal finish.
        engine.submit(TruthTable::majority(5));
        let report = engine.finish();
        assert_eq!(report.stats.functions_processed, total + 1);
    }

    #[test]
    fn stats_display_is_informative() {
        let mut engine = Engine::new(SignatureSet::all());
        engine.submit(TruthTable::majority(3));
        let report = engine.finish();
        let line = report.stats.to_string();
        assert!(line.contains("1 functions -> 1 classes"), "{line}");
    }
}
