//! Durable-store integration tests: journal round-trips, torn-write
//! truncation at every byte offset of the tail record, and
//! checkpoint-compaction equivalence — the property suite behind the
//! kill-then-recover guarantee (the SIGKILL harness itself lives in
//! `recovery_gauntlet.rs`).

use facepoint_bench::random_workload;
use facepoint_core::wire::{FrameStream, Record};
use facepoint_core::{signature_key, Classifier};
use facepoint_engine::{Engine, EngineConfig, PersistConfig, SyncPolicy};
use facepoint_sig::SignatureSet;
use facepoint_truth::TruthTable;
use proptest::prelude::*;
use std::collections::HashMap;
use std::path::{Path, PathBuf};

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("facepoint-persistence-tests")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A durable config tuned for deterministic tests: one worker and
/// chunk-per-function keep the journal order equal to submission
/// order; no fsyncs keeps the suite fast.
fn durable_cfg(dir: &Path, checkpoint_interval: u64) -> EngineConfig {
    EngineConfig {
        workers: 1,
        shards: 1,
        chunk_size: 1,
        persist: Some(PersistConfig {
            dir: dir.to_path_buf(),
            checkpoint_interval,
            sync: SyncPolicy::Never,
        }),
        ..EngineConfig::default()
    }
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap().flatten() {
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

#[test]
fn open_finish_recover_roundtrip() {
    let dir = test_dir("roundtrip");
    let fns = random_workload(5, 300, 11);
    let expected = Classifier::new(SignatureSet::all()).classify(fns.clone());
    let mut engine = Engine::builder()
        .config(EngineConfig::default())
        .persist(&dir)
        .build()
        .unwrap();
    assert_eq!(engine.recovery().unwrap().classes, 0);
    engine.submit_batch(fns);
    let report = engine.finish();
    assert_eq!(report.classification.num_classes(), expected.num_classes());
    let durability = report
        .stats
        .durability
        .expect("durable run reports journal stats");
    assert_eq!(durability.journal_records, 300);
    assert!(durability.checkpoints > 0, "finish checkpoints every shard");

    let snap = Engine::recover(&dir).unwrap();
    assert_eq!(snap.set, SignatureSet::all());
    assert_eq!(snap.classes.len(), expected.num_classes());
    assert_eq!(snap.members(), 300);
    // After a clean finish, recovery reads checkpoints only.
    assert_eq!(snap.report.log_records, 0, "{}", snap.report);
    assert_eq!(snap.report.truncated_bytes, 0);
    // Every recovered class matches the one-shot partition exactly.
    let expected_by_key: HashMap<u128, (usize, &TruthTable)> = expected
        .classes()
        .iter()
        .map(|c| {
            (
                signature_key(c.representative(), SignatureSet::all()),
                (c.size(), c.representative()),
            )
        })
        .collect();
    for class in &snap.classes {
        let (size, rep) = expected_by_key
            .get(&class.key)
            .expect("recovered class unknown to the classifier");
        assert_eq!(class.size, *size);
        assert_eq!(&&class.representative, rep);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn reopen_accumulates_and_warms_dedup_cache() {
    let dir = test_dir("reopen");
    let fns = random_workload(4, 120, 99);
    let cfg = || EngineConfig {
        cache_capacity: 1 << 12,
        persist: Some(PersistConfig {
            dir: dir.clone(),
            checkpoint_interval: 64,
            sync: SyncPolicy::Never,
        }),
        ..EngineConfig::default()
    };
    let mut first = Engine::builder()
        .config(cfg())
        .persist(&dir)
        .build()
        .unwrap();
    first.submit_batch(fns.clone());
    let first_report = first.finish();

    let mut second = Engine::builder()
        .config(cfg())
        .persist(&dir)
        .build()
        .unwrap();
    let recovered = second.recovery().unwrap().clone();
    assert_eq!(recovered.members, 120);
    assert_eq!(recovered.classes, first_report.classification.num_classes());
    second.submit_batch(fns.clone());
    let second_report = second.finish();
    // Same stream, same grouping — and the recovered census carried
    // over: every repeated function hit the primed memo cache.
    assert_eq!(
        second_report.classification.labels(),
        first_report.classification.labels()
    );
    assert_eq!(second_report.stats.recovered_members, 120);
    assert_eq!(second_report.stats.functions_processed, 240);
    assert!(
        second_report.stats.dedup_hits > 0,
        "recovered representatives prime the dedup fast path: {}",
        second_report.stats
    );
    let snap = Engine::recover(&dir).unwrap();
    assert_eq!(snap.members(), 240);
    for class in &snap.classes {
        assert_eq!(class.size % 2, 0, "every class doubled");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn flush_writes_epoch_barriers() {
    let dir = test_dir("epochs");
    let mut engine = Engine::builder()
        .config(EngineConfig {
            persist: Some(PersistConfig {
                dir: dir.clone(),
                checkpoint_interval: 0,
                sync: SyncPolicy::Barrier,
            }),
            ..EngineConfig::default()
        })
        .persist(&dir)
        .build()
        .unwrap();
    for f in random_workload(4, 50, 3) {
        engine.submit(f);
    }
    engine.flush(); // epoch 1: covers whatever the workers journaled so far
                    // Quiesce, then submit one more member: barrier 2 now
                    // deterministically has at least one record to cover.
                    // (Racing the first barrier against the workers made
                    // this test flaky: on a slow or single-core machine all
                    // 50 records could land *before* marker 1, leaving
                    // barrier 2 nothing to stamp.)
    assert!(
        engine.drain(std::time::Duration::from_secs(30)),
        "engine failed to drain"
    );
    engine.submit(TruthTable::parity(4));
    assert!(
        engine.drain(std::time::Duration::from_secs(30)),
        "engine failed to drain"
    );
    engine.flush();
    // A further flush with nothing new is a no-op on disk: idle flush
    // loops must not grow the logs.
    let bytes_after_covering = engine.stats().durability.unwrap().journal_bytes;
    engine.flush();
    let stats = engine.stats();
    let durability = stats.durability.expect("durable engine");
    assert_eq!(durability.epochs, 3, "barriers issued");
    assert_eq!(
        durability.journal_bytes, bytes_after_covering,
        "idle barrier wrote bytes"
    );
    assert!(durability.fsyncs > 0, "barrier policy fsyncs on flush");
    drop(engine);
    let snap = Engine::recover(&dir).unwrap();
    assert_eq!(snap.members(), 51);
    // The last barrier that covered data is the newest marker on disk:
    // epoch 2 stamped the post-drain member; the idle epoch 3 skipped
    // every shard.
    assert_eq!(snap.report.last_epoch, 2);

    // Epoch numbering resumes (stays monotonic) across a reopen.
    let mut engine = Engine::builder()
        .config(EngineConfig {
            persist: Some(PersistConfig {
                dir: dir.clone(),
                checkpoint_interval: 0,
                sync: SyncPolicy::Barrier,
            }),
            ..EngineConfig::default()
        })
        .persist(&dir)
        .build()
        .unwrap();
    engine.submit(TruthTable::majority(3));
    // Drain first, so the next barrier covers the new member
    // deterministically (epoch 3); a second, idle barrier (4) writes no
    // marker.
    assert!(
        engine.drain(std::time::Duration::from_secs(30)),
        "engine failed to drain"
    );
    engine.flush();
    engine.flush();
    drop(engine);
    let snap = Engine::recover(&dir).unwrap();
    assert_eq!(snap.report.last_epoch, 3, "epochs resume after reopen");

    // A clean finish() compacts every log away, but the epoch survives
    // in the checkpoint headers — numbering never regresses.
    let engine = Engine::builder()
        .config(EngineConfig {
            persist: Some(PersistConfig {
                dir: dir.clone(),
                checkpoint_interval: 0,
                sync: SyncPolicy::Barrier,
            }),
            ..EngineConfig::default()
        })
        .persist(&dir)
        .build()
        .unwrap();
    engine.finish();
    let snap = Engine::recover(&dir).unwrap();
    assert_eq!(snap.report.log_records, 0, "finish compacted the logs");
    assert_eq!(
        snap.report.last_epoch, 3,
        "epoch numbering survives a clean restart"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn second_writer_is_refused_while_store_is_open() {
    let dir = test_dir("locked");
    let first = Engine::builder()
        .config(EngineConfig::default())
        .persist(&dir)
        .build()
        .unwrap();
    let err = Engine::builder()
        .config(EngineConfig::default())
        .persist(&dir)
        .build()
        .map(|_| ())
        .expect_err("two live writers on one store must be refused");
    assert_eq!(err.kind(), std::io::ErrorKind::WouldBlock);
    // Releasing the first engine releases the lock.
    drop(first);
    let reopened = Engine::builder()
        .config(EngineConfig::default())
        .persist(&dir)
        .build();
    assert!(reopened.is_ok(), "{:?}", reopened.err());
    drop(reopened);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn recover_without_store_is_not_found() {
    let dir = test_dir("empty");
    std::fs::create_dir_all(&dir).unwrap();
    let err = Engine::recover(&dir).expect_err("no manifest");
    assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sync_always_survives_unclean_drop() {
    let dir = test_dir("always");
    let fns = random_workload(4, 40, 17);
    let mut engine = Engine::builder()
        .config(EngineConfig {
            workers: 1,
            persist: Some(PersistConfig {
                dir: dir.clone(),
                checkpoint_interval: 16,
                sync: SyncPolicy::Always,
            }),
            ..EngineConfig::default()
        })
        .persist(&dir)
        .build()
        .unwrap();
    engine.submit_batch(fns);
    engine.flush();
    // Wait for the pipeline to drain, then drop without finish(): no
    // final checkpoint, recovery replays checkpoints + tail logs.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while engine.snapshot().functions_processed < 40 {
        assert!(
            std::time::Instant::now() < deadline,
            "engine failed to drain"
        );
        std::thread::yield_now();
    }
    drop(engine);
    let snap = Engine::recover(&dir).unwrap();
    assert_eq!(snap.members(), 40);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Strategy for arbitrary journal records: class entries with any
/// key/rep_seq/count and a table of arity 0..=6, bumps, and epoch
/// markers.
fn arb_record() -> impl Strategy<Value = Record> {
    (
        0u8..3,
        any::<u128>(),
        any::<u64>(),
        1u64..=1 << 40,
        (0usize..=6, any::<u64>()),
    )
        .prop_map(|(kind, key, rep_seq, count, (n, bits))| match kind {
            0 => {
                let masked = if n >= 6 {
                    bits
                } else {
                    bits & ((1u64 << (1 << n)) - 1)
                };
                Record::Class {
                    key,
                    rep_seq,
                    count,
                    representative: TruthTable::from_u64(n, masked).unwrap(),
                }
            }
            1 => Record::Bump { key },
            _ => Record::Epoch { epoch: rep_seq },
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Segment round-trip: any sequence of records encodes to a byte
    /// stream that decodes back to exactly the same sequence.
    #[test]
    fn segment_roundtrip(records in proptest::collection::vec(arb_record(), 0..40)) {
        let mut buf = Vec::new();
        for r in &records {
            r.encode(&mut buf);
        }
        let mut stream = FrameStream::new(&buf);
        let mut got = Vec::new();
        while let Some(r) = stream.next_record().unwrap() {
            got.push(r);
        }
        prop_assert_eq!(got, records);
    }

    /// Torn-write tolerance: corrupting ANY single byte of the tail
    /// record of a shard log truncates recovery to exactly the prefix
    /// before it — never an error, never a wrong class.
    #[test]
    fn torn_tail_truncates_to_prefix(count in 4usize..=10, seed in any::<u64>()) {
        let dir = test_dir("torn-prop");
        let fns = random_workload(4, count, seed);
        let mut engine = Engine::builder().config(durable_cfg(&dir, 0)).build().unwrap();
        engine.submit_batch(fns.iter().cloned());
        // Drain, then drop WITHOUT finish so no checkpoint supersedes
        // the log (single worker: log order == submission order).
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while engine.snapshot().functions_processed < count as u64 {
            prop_assert!(std::time::Instant::now() < deadline, "engine failed to drain");
            std::thread::yield_now();
        }
        drop(engine);

        // What a prefix of one fewer member classifies to.
        let prefix = Classifier::new(SignatureSet::all())
            .classify(fns[..count - 1].iter().cloned());

        let log = dir.join("shard-0000.log.0");
        let clean = std::fs::read(&log).unwrap();
        // Find where the tail frame starts.
        let tail_start = {
            let mut s = FrameStream::new(&clean);
            let mut start = 0;
            loop {
                let before = s.offset();
                match s.next_record().unwrap() {
                    Some(_) => start = before,
                    None => break,
                }
            }
            start
        };
        prop_assert!(tail_start < clean.len());
        for offset in tail_start..clean.len() {
            let mangled = test_dir("torn-prop-mangled");
            copy_dir(&dir, &mangled);
            let mut bytes = clean.clone();
            bytes[offset] ^= 0x40;
            std::fs::write(mangled.join("shard-0000.log.0"), &bytes).unwrap();
            let snap = Engine::recover(&mangled).unwrap();
            prop_assert_eq!(snap.members(), count as u64 - 1, "offset {}", offset);
            prop_assert_eq!(snap.classes.len(), prefix.num_classes(), "offset {}", offset);
            prop_assert_eq!(snap.report.torn_shards, 1);
            prop_assert!(snap.report.truncated_bytes > 0);
            std::fs::remove_dir_all(&mangled).unwrap();
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Compaction changes the files, never the state: a store driven
    /// with compaction after every few records recovers to exactly the
    /// same census as one that never compacts — and both match the
    /// one-shot classifier.
    #[test]
    fn checkpoint_compaction_equivalence(
        count in 1usize..=60,
        interval in 1u64..=7,
        seed in any::<u64>(),
    ) {
        let compacted_dir = test_dir("ckpt-eq-compact");
        let plain_dir = test_dir("ckpt-eq-plain");
        let fns = random_workload(4, count, seed);
        for (dir, ckpt) in [(&compacted_dir, interval), (&plain_dir, 0)] {
            let mut engine = Engine::builder().config(durable_cfg(dir, ckpt)).build().unwrap();
            engine.submit_batch(fns.iter().cloned());
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
            while engine.snapshot().functions_processed < count as u64 {
                prop_assert!(std::time::Instant::now() < deadline, "engine failed to drain");
                std::thread::yield_now();
            }
            drop(engine); // no finish: the compacted dir keeps ckpt + tail
        }
        let compacted = Engine::recover(&compacted_dir).unwrap();
        let plain = Engine::recover(&plain_dir).unwrap();
        prop_assert!(compacted.report.checkpoint_classes > 0 || count < interval as usize);
        let view = |snap: &facepoint_engine::RecoveredSnapshot| {
            let mut v: Vec<(u128, usize, TruthTable)> = snap
                .classes
                .iter()
                .map(|c| (c.key, c.size, c.representative.clone()))
                .collect();
            v.sort_by_key(|entry| entry.0);
            v
        };
        prop_assert_eq!(view(&compacted), view(&plain));
        let expected = Classifier::new(SignatureSet::all()).classify(fns.clone());
        prop_assert_eq!(compacted.classes.len(), expected.num_classes());
        prop_assert_eq!(compacted.members(), count as u64);
        std::fs::remove_dir_all(&compacted_dir).unwrap();
        std::fs::remove_dir_all(&plain_dir).unwrap();
    }
}
