//! The engine's correctness contract: whatever the worker count, the
//! partition is *identical* to the one-shot `Classifier` on the same
//! stream — same labels, same class count, same class sizes.

use facepoint_bench::transform_closure_workload as workload;
use facepoint_core::{signature_key, Classifier};
use facepoint_engine::{Engine, EngineConfig};
use facepoint_sig::SignatureSet;
use facepoint_truth::TruthTable;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn engine_with(workers: usize, set: SignatureSet, chunk_size: usize) -> Engine {
    Engine::builder()
        .config(EngineConfig {
            set,
            workers,
            chunk_size,
            ..EngineConfig::default()
        })
        .build()
        .unwrap()
}

/// The acceptance-scale cross-check: ≥ 10k random tables spanning
/// 3 ≤ n ≤ 6, classified by the engine with 1, 2 and 8 workers, must
/// reproduce `Classifier::classify` exactly.
#[test]
fn ten_thousand_tables_all_worker_counts() {
    let mut fns = Vec::new();
    for n in 3..=6usize {
        fns.extend(workload(n, 13, 50, n as u64 * 0x9E37));
        // Plus fully-random singletons so not everything has a twin.
        let mut rng = StdRng::seed_from_u64(n as u64 * 0x51ED);
        for _ in 0..1950 {
            fns.push(TruthTable::random(n, &mut rng).unwrap());
        }
    }
    assert!(fns.len() >= 10_000, "workload holds {} tables", fns.len());
    let expected = Classifier::new(SignatureSet::all()).classify(fns.clone());
    for workers in [1usize, 2, 8] {
        let mut engine = engine_with(workers, SignatureSet::all(), 128);
        engine.submit_batch(fns.iter().cloned());
        let report = engine.finish();
        assert_eq!(
            report.classification.labels(),
            expected.labels(),
            "labels diverge at {workers} workers"
        );
        assert_eq!(report.classification.num_classes(), expected.num_classes());
        assert_eq!(report.stats.functions_processed, fns.len() as u64);
    }
}

/// Every Table II signature-set preset, cross-checked at 1, 2 and 8
/// workers on a smaller mixed-arity stream.
#[test]
fn all_signature_presets_match() {
    let mut fns = Vec::new();
    for n in 3..=6usize {
        fns.extend(workload(n, 6, 5, n as u64 * 31 + 7));
    }
    for (name, set) in SignatureSet::table2_columns() {
        let expected = Classifier::new(set).classify(fns.clone());
        for workers in [1usize, 2, 8] {
            let mut engine = engine_with(workers, set, 17);
            engine.submit_batch(fns.iter().cloned());
            let got = engine.finish().classification;
            assert_eq!(
                got.labels(),
                expected.labels(),
                "preset {name} diverges at {workers} workers"
            );
            assert_eq!(got.num_classes(), expected.num_classes(), "preset {name}");
        }
    }
}

/// Class sizes and representatives stay coherent under concurrency:
/// sizes sum to the stream length and each representative belongs to
/// the class it fronts.
#[test]
fn classes_stay_coherent_under_concurrency() {
    let fns = workload(5, 20, 12, 0xC0FFEE);
    let mut engine = engine_with(8, SignatureSet::all(), 9);
    engine.submit_batch(fns.iter().cloned());
    let report = engine.finish();
    let c = &report.classification;
    let total: usize = c.classes().iter().map(|k| k.size()).sum();
    assert_eq!(total, fns.len());
    for class in c.classes() {
        let rep_key = signature_key(class.representative(), SignatureSet::all());
        // Find one member of the class and compare keys.
        let member_idx = c
            .labels()
            .iter()
            .position(|&l| l == class.id())
            .expect("non-empty class");
        let member_key = signature_key(&fns[member_idx], SignatureSet::all());
        assert_eq!(rep_key, member_key, "class {}", class.id());
    }
}

/// Streaming in several waves — with snapshots taken in between — ends
/// at the same partition as one-shot classification of the whole
/// stream.
#[test]
fn interleaved_waves_and_snapshots() {
    let waves: Vec<Vec<TruthTable>> = (0..4)
        .map(|w| workload(4 + (w as usize % 2), 8, 4, 0xABC + w))
        .collect();
    let all: Vec<TruthTable> = waves.iter().flatten().cloned().collect();
    let expected = Classifier::new(SignatureSet::all()).classify(all.clone());

    let mut engine = engine_with(4, SignatureSet::all(), 16);
    let mut seen_classes = 0usize;
    for wave in waves {
        engine.submit_batch(wave);
        engine.flush();
        let snap = engine.snapshot();
        // Classes only ever accumulate, and the snapshot stays sane.
        assert!(snap.num_classes >= seen_classes);
        seen_classes = snap.num_classes;
        assert!(snap.functions_processed <= snap.functions_submitted);
        assert_eq!(
            snap.shard_class_counts.iter().sum::<usize>(),
            snap.num_classes
        );
    }
    let report = engine.finish();
    assert_eq!(report.classification.labels(), expected.labels());
    assert_eq!(report.stats.functions_submitted, all.len() as u64);
}

/// The ingestion-side dedup fast path must be invisible in the result:
/// with a warm cache, repeated functions skip the queue (counted in
/// `dedup_hits`) yet the partition stays identical to the one-shot
/// classifier at every worker count.
#[test]
fn dedup_fast_path_is_transparent_across_worker_counts() {
    let base = workload(5, 9, 4, 0xD0D0);
    let mut fns = base.clone();
    fns.extend(base.iter().cloned());
    fns.extend(base.iter().cloned());
    let expected = Classifier::new(SignatureSet::all()).classify(fns.clone());
    for workers in [1usize, 2, 8] {
        let mut engine = Engine::builder()
            .config(EngineConfig {
                set: SignatureSet::all(),
                workers,
                chunk_size: 8,
                cache_capacity: 4096,
                ..EngineConfig::default()
            })
            .build()
            .unwrap();
        // Warm the cache with the first copy of the stream, draining it
        // fully so every repeat can take the fast path.
        engine.submit_batch(base.iter().cloned());
        engine.flush();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while engine.snapshot().functions_processed < base.len() as u64 {
            assert!(
                std::time::Instant::now() < deadline,
                "engine failed to drain"
            );
            std::thread::yield_now();
        }
        // Both repeats now resolve at ingestion.
        engine.submit_batch(base.iter().cloned());
        engine.submit_batch(base.iter().cloned());
        let report = engine.finish();
        assert_eq!(
            report.classification.labels(),
            expected.labels(),
            "labels diverge at {workers} workers with dedup enabled"
        );
        assert_eq!(
            report.stats.dedup_hits,
            2 * base.len() as u64,
            "every repeat takes the fast path at {workers} workers"
        );
        assert_eq!(report.stats.functions_processed, fns.len() as u64);
    }
}

/// Regression: a fast-path hit interleaved with *buffered* (not yet
/// dispatched) functions must not shift their sequence numbers — the
/// buffered chunk's seqs are non-contiguous in that case.
#[test]
fn dedup_interleaved_with_pending_buffer_keeps_submission_order() {
    let known = workload(4, 3, 1, 0x1AB);
    let fresh = workload(4, 6, 1, 0x2CD);
    // Stream: warm-up (known), then alternate fresh (buffered) and
    // known (fast path) without draining in between.
    let mut stream: Vec<TruthTable> = known.clone();
    for (f, k) in fresh.iter().zip(known.iter().cycle()) {
        stream.push(f.clone());
        stream.push(k.clone());
    }
    let expected = Classifier::new(SignatureSet::all()).classify(stream.clone());
    let mut engine = Engine::builder()
        .config(EngineConfig {
            set: SignatureSet::all(),
            workers: 2,
            chunk_size: 64, // larger than the stream: everything stays buffered
            cache_capacity: 1024,
            ..EngineConfig::default()
        })
        .build()
        .unwrap();
    engine.submit_batch(known.iter().cloned());
    engine.flush();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while engine.snapshot().functions_processed < known.len() as u64 {
        assert!(
            std::time::Instant::now() < deadline,
            "engine failed to drain"
        );
        std::thread::yield_now();
    }
    for (f, k) in fresh.iter().zip(known.iter().cycle()) {
        engine.submit(f.clone()); // buffered, queue-bound
        engine.submit(k.clone()); // cache hit, fast path
    }
    let report = engine.finish();
    assert!(report.stats.dedup_hits >= fresh.len() as u64);
    assert_eq!(
        report.classification.labels(),
        expected.labels(),
        "interleaved fast-path hits must not reorder buffered functions"
    );
}

/// The memo cache must be transparent: same partition with and without
/// it, and repeat traffic must actually hit.
#[test]
fn cache_is_transparent_and_hits() {
    let base = workload(5, 10, 3, 77);
    // Repeat the stream so the cache has something to win on.
    let mut fns = base.clone();
    fns.extend(base.iter().cloned());
    let expected = Classifier::new(SignatureSet::all()).classify(fns.clone());
    let mut cached = Engine::builder()
        .config(EngineConfig {
            workers: 4,
            cache_capacity: 4096,
            chunk_size: 8,
            ..EngineConfig::default()
        })
        .build()
        .unwrap();
    cached.submit_batch(fns.iter().cloned());
    let report = cached.finish();
    assert_eq!(report.classification.labels(), expected.labels());
    assert!(
        report.stats.cache_hits >= base.len() as u64 / 2,
        "expected heavy cache traffic, saw {}",
        report.stats
    );
}
