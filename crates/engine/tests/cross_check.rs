//! The engine's correctness contract: whatever the worker count, the
//! partition is *identical* to the one-shot `Classifier` on the same
//! stream — same labels, same class count, same class sizes.

use facepoint_bench::transform_closure_workload as workload;
use facepoint_core::{signature_key, Classifier};
use facepoint_engine::{Engine, EngineConfig};
use facepoint_sig::SignatureSet;
use facepoint_truth::TruthTable;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn engine_with(workers: usize, set: SignatureSet, chunk_size: usize) -> Engine {
    Engine::with_config(EngineConfig {
        set,
        workers,
        chunk_size,
        ..EngineConfig::default()
    })
}

/// The acceptance-scale cross-check: ≥ 10k random tables spanning
/// 3 ≤ n ≤ 6, classified by the engine with 1, 2 and 8 workers, must
/// reproduce `Classifier::classify` exactly.
#[test]
fn ten_thousand_tables_all_worker_counts() {
    let mut fns = Vec::new();
    for n in 3..=6usize {
        fns.extend(workload(n, 13, 50, n as u64 * 0x9E37));
        // Plus fully-random singletons so not everything has a twin.
        let mut rng = StdRng::seed_from_u64(n as u64 * 0x51ED);
        for _ in 0..1950 {
            fns.push(TruthTable::random(n, &mut rng).unwrap());
        }
    }
    assert!(fns.len() >= 10_000, "workload holds {} tables", fns.len());
    let expected = Classifier::new(SignatureSet::all()).classify(fns.clone());
    for workers in [1usize, 2, 8] {
        let mut engine = engine_with(workers, SignatureSet::all(), 128);
        engine.submit_batch(fns.iter().cloned());
        let report = engine.finish();
        assert_eq!(
            report.classification.labels(),
            expected.labels(),
            "labels diverge at {workers} workers"
        );
        assert_eq!(report.classification.num_classes(), expected.num_classes());
        assert_eq!(report.stats.functions_processed, fns.len() as u64);
    }
}

/// Every Table II signature-set preset, cross-checked at 1, 2 and 8
/// workers on a smaller mixed-arity stream.
#[test]
fn all_signature_presets_match() {
    let mut fns = Vec::new();
    for n in 3..=6usize {
        fns.extend(workload(n, 6, 5, n as u64 * 31 + 7));
    }
    for (name, set) in SignatureSet::table2_columns() {
        let expected = Classifier::new(set).classify(fns.clone());
        for workers in [1usize, 2, 8] {
            let mut engine = engine_with(workers, set, 17);
            engine.submit_batch(fns.iter().cloned());
            let got = engine.finish().classification;
            assert_eq!(
                got.labels(),
                expected.labels(),
                "preset {name} diverges at {workers} workers"
            );
            assert_eq!(got.num_classes(), expected.num_classes(), "preset {name}");
        }
    }
}

/// Class sizes and representatives stay coherent under concurrency:
/// sizes sum to the stream length and each representative belongs to
/// the class it fronts.
#[test]
fn classes_stay_coherent_under_concurrency() {
    let fns = workload(5, 20, 12, 0xC0FFEE);
    let mut engine = engine_with(8, SignatureSet::all(), 9);
    engine.submit_batch(fns.iter().cloned());
    let report = engine.finish();
    let c = &report.classification;
    let total: usize = c.classes().iter().map(|k| k.size()).sum();
    assert_eq!(total, fns.len());
    for class in c.classes() {
        let rep_key = signature_key(class.representative(), SignatureSet::all());
        // Find one member of the class and compare keys.
        let member_idx = c
            .labels()
            .iter()
            .position(|&l| l == class.id())
            .expect("non-empty class");
        let member_key = signature_key(&fns[member_idx], SignatureSet::all());
        assert_eq!(rep_key, member_key, "class {}", class.id());
    }
}

/// Streaming in several waves — with snapshots taken in between — ends
/// at the same partition as one-shot classification of the whole
/// stream.
#[test]
fn interleaved_waves_and_snapshots() {
    let waves: Vec<Vec<TruthTable>> = (0..4)
        .map(|w| workload(4 + (w as usize % 2), 8, 4, 0xABC + w))
        .collect();
    let all: Vec<TruthTable> = waves.iter().flatten().cloned().collect();
    let expected = Classifier::new(SignatureSet::all()).classify(all.clone());

    let mut engine = engine_with(4, SignatureSet::all(), 16);
    let mut seen_classes = 0usize;
    for wave in waves {
        engine.submit_batch(wave);
        engine.flush();
        let snap = engine.snapshot();
        // Classes only ever accumulate, and the snapshot stays sane.
        assert!(snap.num_classes >= seen_classes);
        seen_classes = snap.num_classes;
        assert!(snap.functions_processed <= snap.functions_submitted);
        assert_eq!(
            snap.shard_class_counts.iter().sum::<usize>(),
            snap.num_classes
        );
    }
    let report = engine.finish();
    assert_eq!(report.classification.labels(), expected.labels());
    assert_eq!(report.stats.functions_submitted, all.len() as u64);
}

/// The memo cache must be transparent: same partition with and without
/// it, and repeat traffic must actually hit.
#[test]
fn cache_is_transparent_and_hits() {
    let base = workload(5, 10, 3, 77);
    // Repeat the stream so the cache has something to win on.
    let mut fns = base.clone();
    fns.extend(base.iter().cloned());
    let expected = Classifier::new(SignatureSet::all()).classify(fns.clone());
    let mut cached = Engine::with_config(EngineConfig {
        workers: 4,
        cache_capacity: 4096,
        chunk_size: 8,
        ..EngineConfig::default()
    });
    cached.submit_batch(fns.iter().cloned());
    let report = cached.finish();
    assert_eq!(report.classification.labels(), expected.labels());
    assert!(
        report.stats.cache_hits >= base.len() as u64 / 2,
        "expected heavy cache traffic, saw {}",
        report.stats
    );
}
