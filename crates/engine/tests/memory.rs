//! The WorkerLog regression test: **steady-state engine memory must
//! not grow with submissions**.
//!
//! The engine once accumulated a `(seq, key)` pair per submitted
//! function into per-worker logs that were only collected at `finish` —
//! 24 bytes per function, linear in stream length, unbounded for
//! streams larger than RAM and flatly contradicting the streaming
//! design. The fix streams the log out per chunk (4 bytes per function
//! when labels are tracked) and drops it entirely in census-only mode
//! (`EngineConfig::track_labels = false`).
//!
//! This test wraps the system allocator in a live-byte counter (the
//! shared `facepoint-testsupport` harness, same as
//! `crates/core/tests/zero_alloc.rs`) and streams
//! waves of functions through a census-only engine: after a warm-up
//! wave grows every buffer to its high-water mark, the live-byte count
//! must stay flat across arbitrarily many further waves. A second
//! phase proves the harness has teeth: with `track_labels` on, the same
//! stream *does* grow the heap (the label log is real), at roughly
//! 4 bytes per function.
//!
//! The default stream is sized for the debug-mode test suite; CI's
//! release stress job scales it to 10⁶ functions via
//! `MEMORY_STREAM=1000000`.
//!
//! The library crates all keep `#![forbid(unsafe_code)]`; the harness's
//! `unsafe` lives in `facepoint-testsupport`, where it only delegates
//! to `std`'s `System` allocator and keeps a byte counter.

use facepoint_engine::{Engine, EngineConfig};
use facepoint_testsupport::{live_bytes, CountingAllocator};
use facepoint_truth::TruthTable;
use std::time::Duration;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// A small palette of distinct functions, cycled to build streams of
/// any length: repeats keep the class store (the state that *should*
/// stay bounded by distinct classes, not stream length) small, so any
/// per-submission growth stands out.
fn palette() -> Vec<TruthTable> {
    let mut fns = vec![
        TruthTable::parity(5),
        TruthTable::majority(5),
        TruthTable::zero(5).unwrap(),
        TruthTable::one(5).unwrap(),
    ];
    for k in 0..28u64 {
        fns.push(
            TruthTable::from_fn(5, |m| {
                (m ^ (m >> 1)).wrapping_mul(0x9E37_79B9_7F4A_7C15 ^ k) % 5 < 2
            })
            .unwrap(),
        );
    }
    fns
}

fn stream(engine: &mut Engine, palette: &[TruthTable], count: usize) {
    for i in 0..count {
        engine.submit(palette[i % palette.len()].clone());
    }
    assert!(
        engine.drain(Duration::from_secs(600)),
        "engine failed to drain"
    );
}

// One #[test] on purpose: the byte counter is process-global, so a
// second test on a parallel harness thread would bleed its allocations
// into this one's measured window.
#[test]
fn steady_state_memory_is_flat_without_label_tracking() {
    let total = std::env::var("MEMORY_STREAM")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(120_000);
    let warmup = (total / 6).max(1_000);
    let waves = 4;
    let per_wave = total / waves;
    let palette = palette();

    // --- census-only: flat ------------------------------------------
    let mut engine = Engine::builder()
        .config(EngineConfig {
            workers: 2,
            chunk_size: 64,
            shards: 16,
            track_labels: false,
            cache_capacity: 0, // every submission takes the full queue path
            ..EngineConfig::default()
        })
        .build()
        .unwrap();
    // Warm-up: grow chunk buffers, deques, shard maps and kernel
    // scratch to their high-water marks.
    stream(&mut engine, &palette, warmup);
    let baseline = live_bytes();
    let mut peak_growth = 0i64;
    for wave in 0..waves {
        stream(&mut engine, &palette, per_wave);
        let growth = live_bytes() - baseline;
        peak_growth = peak_growth.max(growth);
        println!(
            "census-only wave {wave}: {per_wave} fns, live-byte growth {growth} B \
             (peak {peak_growth} B)"
        );
    }
    // Flat = bounded by noise (allocator bookkeeping, hash-map
    // rounding), not by stream length. 256 KiB over hundreds of
    // thousands of submissions is < 1 byte per function; the broken
    // WorkerLog grew 24 bytes per function (tens of megabytes here).
    assert!(
        peak_growth < 256 * 1024,
        "steady-state memory grew {peak_growth} B over {} submissions — \
         the engine is accumulating per-submission state again",
        waves * per_wave,
    );
    let report = engine.finish();
    assert_eq!(
        report.stats.functions_processed,
        (warmup + waves * per_wave) as u64
    );
    assert_eq!(report.census.len(), report.stats.num_classes);

    // --- label tracking: grows, and by about 4 B/fn, proving the
    // --- harness measures what it claims ----------------------------
    let tracked_stream = (total / 2).max(10_000);
    let mut tracked = Engine::builder()
        .config(EngineConfig {
            workers: 2,
            chunk_size: 64,
            shards: 16,
            track_labels: true,
            cache_capacity: 0,
            ..EngineConfig::default()
        })
        .build()
        .unwrap();
    stream(&mut tracked, &palette, 1_000);
    let tracked_baseline = live_bytes();
    stream(&mut tracked, &palette, tracked_stream);
    let tracked_growth = live_bytes() - tracked_baseline;
    println!("label-tracking: {tracked_stream} fns grew {tracked_growth} B");
    assert!(
        tracked_growth >= 2 * tracked_stream as i64,
        "label tracking grew only {tracked_growth} B over {tracked_stream} \
         submissions; the counting harness is not measuring engine state"
    );
    // …but far below the 24 B/fn of the old WorkerLog (4 B/fn for the
    // label array, doubled for amortized Vec growth headroom).
    assert!(
        tracked_growth <= 10 * tracked_stream as i64,
        "label tracking grew {tracked_growth} B over {tracked_stream} \
         submissions — more than the streamed order log should cost"
    );
    drop(tracked.finish());
}
