//! Property-based tests of the engine's streaming API: how functions
//! are fed in (one at a time, batched, chunk sizing, worker count) must
//! never change the partition.

use facepoint_bench::transform_closure_workload;
use facepoint_core::Classifier;
use facepoint_engine::{Engine, EngineConfig};
use facepoint_sig::SignatureSet;
use facepoint_truth::TruthTable;
use proptest::prelude::*;

/// Strategy: a mixed workload with planted equivalent copies.
fn arb_workload() -> impl Strategy<Value = Vec<TruthTable>> {
    (2usize..=5, 1usize..=10, any::<u64>()).prop_map(|(n, groups, seed)| {
        transform_closure_workload(n, groups, 1 + (seed as usize % 4), seed)
    })
}

fn arb_set() -> impl Strategy<Value = SignatureSet> {
    prop_oneof![
        Just(SignatureSet::OIV),
        Just(SignatureSet::OCV1 | SignatureSet::OSV),
        Just(SignatureSet::OIV | SignatureSet::OSV | SignatureSet::OSDV),
        Just(SignatureSet::all()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn submit_equals_submit_batch(
        fns in arb_workload(),
        set in arb_set(),
        workers in 1usize..=4,
        chunk in 1usize..=32,
    ) {
        let mut one_by_one = Engine::with_config(EngineConfig {
            set,
            workers,
            chunk_size: chunk,
            ..EngineConfig::default()
        });
        for f in fns.iter().cloned() {
            one_by_one.submit(f);
        }
        let a = one_by_one.finish().classification;

        let mut batched = Engine::with_config(EngineConfig {
            set,
            workers,
            chunk_size: chunk,
            ..EngineConfig::default()
        });
        batched.submit_batch(fns.clone());
        let b = batched.finish().classification;

        prop_assert_eq!(a.labels(), b.labels());
        prop_assert_eq!(a.num_classes(), b.num_classes());
    }

    #[test]
    fn engine_equals_classifier(
        fns in arb_workload(),
        set in arb_set(),
        workers in 1usize..=4,
    ) {
        let expected = Classifier::new(set).classify(fns.clone());
        let mut engine = Engine::with_config(EngineConfig {
            set,
            workers,
            chunk_size: 5,
            ..EngineConfig::default()
        });
        engine.submit_batch(fns);
        let got = engine.finish().classification;
        prop_assert_eq!(got.labels(), expected.labels());
    }

    #[test]
    fn submission_numbers_are_dense(fns in arb_workload()) {
        let mut engine = Engine::new(SignatureSet::all());
        for (expected_seq, f) in fns.iter().cloned().enumerate() {
            prop_assert_eq!(engine.submit(f), expected_seq as u64);
        }
        let report = engine.finish();
        prop_assert_eq!(report.classification.num_functions(), fns.len());
    }
}
