//! Property-based tests of the engine's streaming API: how functions
//! are fed in (one at a time, batched, chunk sizing, worker count) must
//! never change the partition.

use facepoint_bench::transform_closure_workload;
use facepoint_core::Classifier;
use facepoint_engine::{Engine, EngineConfig};
use facepoint_sig::SignatureSet;
use facepoint_truth::TruthTable;
use proptest::prelude::*;

/// Strategy: a mixed workload with planted equivalent copies.
fn arb_workload() -> impl Strategy<Value = Vec<TruthTable>> {
    (2usize..=5, 1usize..=10, any::<u64>()).prop_map(|(n, groups, seed)| {
        transform_closure_workload(n, groups, 1 + (seed as usize % 4), seed)
    })
}

fn arb_set() -> impl Strategy<Value = SignatureSet> {
    prop_oneof![
        Just(SignatureSet::OIV),
        Just(SignatureSet::OCV1 | SignatureSet::OSV),
        Just(SignatureSet::OIV | SignatureSet::OSV | SignatureSet::OSDV),
        Just(SignatureSet::all()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn submit_equals_submit_batch(
        fns in arb_workload(),
        set in arb_set(),
        workers in 1usize..=4,
        chunk in 1usize..=32,
    ) {
        let mut one_by_one = Engine::builder().config(EngineConfig {
            set,
            workers,
            chunk_size: chunk,
            ..EngineConfig::default()
        }).build().unwrap();
        for f in fns.iter().cloned() {
            one_by_one.submit(f);
        }
        let a = one_by_one.finish().classification;

        let mut batched = Engine::builder().config(EngineConfig {
            set,
            workers,
            chunk_size: chunk,
            ..EngineConfig::default()
        }).build().unwrap();
        batched.submit_batch(fns.clone());
        let b = batched.finish().classification;

        prop_assert_eq!(a.labels(), b.labels());
        prop_assert_eq!(a.num_classes(), b.num_classes());
    }

    #[test]
    fn engine_equals_classifier(
        fns in arb_workload(),
        set in arb_set(),
        workers in 1usize..=4,
    ) {
        let expected = Classifier::new(set).classify(fns.clone());
        let mut engine = Engine::builder().config(EngineConfig {
            set,
            workers,
            chunk_size: 5,
            ..EngineConfig::default()
        }).build().unwrap();
        engine.submit_batch(fns);
        let got = engine.finish().classification;
        prop_assert_eq!(got.labels(), expected.labels());
    }

    #[test]
    fn submission_numbers_are_dense(fns in arb_workload()) {
        let mut engine = Engine::new(SignatureSet::all());
        for (expected_seq, f) in fns.iter().cloned().enumerate() {
            prop_assert_eq!(engine.submit(f), expected_seq as u64);
        }
        let report = engine.finish();
        prop_assert_eq!(report.classification.num_functions(), fns.len());
    }

    /// Forced-steal schedules: deque capacity 1 with tiny chunks makes
    /// every push land on a different deque and every idle worker
    /// steal, at 1, 2 and 8 workers — the partition must be identical
    /// to the one-shot classifier whatever the migration pattern.
    #[test]
    fn stealing_pools_match_classifier_under_forced_steals(
        fns in arb_workload(),
        set in arb_set(),
        chunk in 1usize..=4,
        steal_batch in 1usize..=4,
    ) {
        let expected = Classifier::new(set).classify(fns.clone());
        for workers in [1usize, 2, 8] {
            let mut engine = Engine::builder().config(EngineConfig {
                set,
                workers,
                chunk_size: chunk,
                deque_capacity: 1,
                steal_batch,
                ..EngineConfig::default()
            }).build().unwrap();
            engine.submit_batch(fns.clone());
            let got = engine.finish().classification;
            prop_assert_eq!(
                got.labels(),
                expected.labels(),
                "{} workers, chunk {}, steal batch {}",
                workers, chunk, steal_batch
            );
            prop_assert_eq!(got.num_classes(), expected.num_classes());
        }
    }

    /// Forced steals with persistence on: the journal (appended under
    /// the shard lock, whatever worker got the chunk) must still
    /// replay to exactly the partition's census after the engine is
    /// gone.
    #[test]
    fn stolen_chunks_keep_the_journal_replayable(
        fns in arb_workload(),
        chunk in 1usize..=4,
        interval in 1u64..=16,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "facepoint-steal-replay-{}-{interval}-{chunk}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let expected = Classifier::new(SignatureSet::all()).classify(fns.clone());
        let mut engine = Engine::builder().config(EngineConfig {
            workers: 8,
            chunk_size: chunk,
            deque_capacity: 1,
            steal_batch: 1,
            shards: 4,
            persist: Some(facepoint_engine::PersistConfig {
                dir: dir.clone(),
                checkpoint_interval: interval,
                sync: facepoint_engine::SyncPolicy::Never,
            }),
            ..EngineConfig::default()
        }).persist(&dir).build().expect("open durable engine");
        engine.submit_batch(fns.clone());
        let report = engine.finish();
        prop_assert_eq!(report.classification.labels(), expected.labels());
        // Replay from disk alone: same classes, same sizes.
        let snap = Engine::recover(&dir).expect("recover");
        prop_assert_eq!(snap.classes.len(), expected.num_classes());
        prop_assert_eq!(snap.members(), fns.len() as u64);
        let mut expected_sizes: Vec<usize> =
            expected.classes().iter().map(|c| c.size()).collect();
        expected_sizes.sort_unstable();
        let mut got_sizes: Vec<usize> = snap.classes.iter().map(|c| c.size).collect();
        got_sizes.sort_unstable();
        prop_assert_eq!(got_sizes, expected_sizes);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The two resolution tiers differ only by splitting: a certified
    /// run on the same stream (including under weak signature sets
    /// chosen to force digest collisions) partitions exactly like the
    /// ground-truth classifier, and every certified class stays inside
    /// one digest bucket — certified never merges what digest
    /// separated, at 1, 2 and 8 workers alike.
    #[test]
    fn certified_splits_digest_buckets_never_merges(
        fns in arb_workload(),
        set in arb_set(),
        chunk in 1usize..=8,
    ) {
        let exact = facepoint_exact::exact_classify(&fns);
        for workers in [1usize, 2, 8] {
            let run = |resolution: facepoint_engine::Resolution| {
                let mut engine = Engine::builder().config(
                    EngineConfig::builder()
                        .set(set)
                        .workers(workers)
                        .chunk_size(chunk)
                        .resolution(resolution)
                        .build(),
                ).build().unwrap();
                engine.submit_batch(fns.clone());
                engine.finish().classification
            };
            let digest = run(facepoint_engine::Resolution::Digest);
            let certified = run(facepoint_engine::Resolution::Certified);

            // Certified is exact: same partition as the ground truth
            // (labels normalized to first-occurrence order).
            let normalized = facepoint_exact::ClassLabels::from_keys(
                certified.labels().iter().copied(),
            );
            prop_assert_eq!(
                normalized.labels(),
                exact.labels(),
                "workers={}", workers
            );

            // Pure refinement: a certified class never spans two
            // digest buckets, so certified can only split.
            prop_assert!(certified.num_classes() >= digest.num_classes());
            for i in 0..fns.len() {
                for j in i + 1..fns.len() {
                    if certified.label(i) == certified.label(j) {
                        prop_assert_eq!(
                            digest.label(i),
                            digest.label(j),
                            "certified merged digest buckets at {} {} ({} workers)",
                            i, j, workers
                        );
                    }
                }
            }
        }
    }
}
