//! The retired constructor trio — `Engine::with_config`,
//! `Engine::try_with_config`, `Engine::open` — must keep compiling and
//! keep delegating to the builder spine until the deprecation window
//! closes. This file is the only caller left in the workspace; the
//! `allow` scopes the exemption so `-D warnings` still flags any new
//! use elsewhere.

#![allow(deprecated)]

use facepoint_engine::{Engine, EngineConfig, Resolution};
use facepoint_sig::SignatureSet;
use facepoint_truth::TruthTable;

fn workload() -> Vec<TruthTable> {
    vec![
        TruthTable::majority(3),
        TruthTable::majority(3).flip_var(0),
        TruthTable::parity(3),
    ]
}

#[test]
fn with_config_still_classifies() {
    let mut engine = Engine::with_config(EngineConfig::builder().workers(2).build());
    engine.submit_batch(workload());
    let report = engine.finish();
    assert_eq!(report.classification.num_classes(), 2);
}

#[test]
fn try_with_config_matches_the_builder() {
    let cfg = EngineConfig::builder().workers(2).certified().build();
    let mut shim = Engine::try_with_config(cfg.clone()).unwrap();
    let mut spine = Engine::builder().config(cfg).build().unwrap();
    shim.submit_batch(workload());
    spine.submit_batch(workload());
    let (a, b) = (shim.finish(), spine.finish());
    assert_eq!(a.classification.labels(), b.classification.labels());
    assert_eq!(a.stats.resolution, Resolution::Certified);
}

#[test]
fn open_reopens_a_builder_store() {
    let dir = std::env::temp_dir().join(format!("facepoint-shim-open-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut engine = Engine::builder()
        .config(EngineConfig::with_set(SignatureSet::all()))
        .persist(&dir)
        .build()
        .unwrap();
    engine.submit_batch(workload());
    engine.finish();

    let mut reopened = Engine::open(&dir, EngineConfig::with_set(SignatureSet::all())).unwrap();
    assert_eq!(reopened.recovery().unwrap().members, 3);
    reopened.submit(TruthTable::parity(3));
    let report = reopened.finish();
    // This run's classification saw only parity; the census stays
    // cumulative across the reopen.
    assert_eq!(report.classification.num_classes(), 1);
    assert_eq!(
        report.census.len(),
        2,
        "recovered classes dropped from the census"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
