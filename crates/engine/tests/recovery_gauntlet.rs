//! The recovery gauntlet: stream tens of thousands of tables through a
//! durable engine in a **child process**, SIGKILL it mid-stream at a
//! different point each round, then prove the kill-then-recover
//! property:
//!
//! 1. `Engine::recover` succeeds for *any* kill point;
//! 2. the recovered snapshot is a prefix-consistent subset of the
//!    one-shot `Classifier` partition (every class known, every count
//!    bounded, every representative a member of its class);
//! 3. reopening the store and re-submitting the full stream converges
//!    to exactly the one-shot result.
//!
//! The child is this same test binary re-executed with
//! `FACEPOINT_GAUNTLET_CHILD` set (keep this file to a single `#[test]`
//! so the re-exec never races another test). CI scales the stream up
//! via `GAUNTLET_STREAM` / `GAUNTLET_ROUNDS`, and re-runs the whole
//! gauntlet at the certified resolution tier via `GAUNTLET_CERTIFIED`
//! (kill points then land on proved-class journal records and the
//! expectations come from the exact classifier).

use facepoint_bench::random_workload;
use facepoint_core::{signature_key, Classifier};
use facepoint_engine::{
    certified_key, Engine, EngineConfig, PersistConfig, Resolution, SyncPolicy,
};
use facepoint_exact::{certified_canonical, exact_classify, ClassLabels};
use facepoint_sig::SignatureSet;
use facepoint_truth::TruthTable;
use std::collections::HashMap;
use std::path::PathBuf;
use std::time::Duration;

const CHILD_ENV: &str = "FACEPOINT_GAUNTLET_CHILD";
const DIR_ENV: &str = "FACEPOINT_GAUNTLET_DIR";
const SYNC_ENV: &str = "FACEPOINT_GAUNTLET_SYNC";
const STREAM_ENV: &str = "GAUNTLET_STREAM";
const ROUNDS_ENV: &str = "GAUNTLET_ROUNDS";
/// Worker-pool width of the child (default 2). CI's steal-pool stress
/// job sets 8 so SIGKILLs land while chunks are spread over — and
/// stolen between — eight deques.
const WORKERS_ENV: &str = "GAUNTLET_WORKERS";
/// When set, the whole gauntlet (child stream, recovery, convergence)
/// runs at [`Resolution::Certified`]: kill points land on proved-class
/// journal records and the expectations come from the exact classifier
/// instead of the signature digest. CI's certified job sets it.
const CERTIFIED_ENV: &str = "GAUNTLET_CERTIFIED";

fn resolution() -> Resolution {
    if std::env::var(CERTIFIED_ENV).is_ok() {
        Resolution::Certified
    } else {
        Resolution::Digest
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The deterministic gauntlet stream: two thirds fresh random tables,
/// one third repeats of earlier submissions — so the journal carries
/// creations, bumps *and* dedup-fast-path inserts.
fn gauntlet_stream(total: usize) -> Vec<TruthTable> {
    let fresh = random_workload(6, (2 * total).div_ceil(3).max(1), 0xFACE);
    let mut out: Vec<TruthTable> = Vec::with_capacity(total);
    let mut next_fresh = 0;
    for i in 0..total {
        if i % 3 == 2 {
            out.push(out[i / 2].clone());
        } else {
            out.push(fresh[next_fresh % fresh.len()].clone());
            next_fresh += 1;
        }
    }
    out
}

fn child_cfg(dir: PathBuf, sync: SyncPolicy) -> EngineConfig {
    EngineConfig {
        workers: env_usize(WORKERS_ENV, 2),
        resolution: resolution(),
        // Shallow deques at 8 workers: chunks spread over every deque
        // and idle workers steal, so kill points land mid-migration.
        deque_capacity: 2,
        chunk_size: 64,
        cache_capacity: 1 << 14, // exercise the dedup fast path's journal writes
        persist: Some(PersistConfig {
            // Low per-shard interval: with 64 shards, compactions start
            // a few thousand records in, so kills land on them too.
            dir,
            checkpoint_interval: 64,
            sync,
        }),
        ..EngineConfig::default()
    }
}

/// The child: stream with persistence on until killed. Throttled just
/// enough that a SIGKILL lands mid-stream even on fast machines.
fn child_main() -> ! {
    let dir = PathBuf::from(std::env::var(DIR_ENV).expect("child needs a store dir"));
    let total = env_usize(STREAM_ENV, 8_000);
    let sync = match std::env::var(SYNC_ENV).as_deref() {
        Ok("always") => SyncPolicy::Always,
        _ => SyncPolicy::Barrier,
    };
    let mut engine = Engine::builder()
        .config(child_cfg(dir.clone(), sync))
        .persist(&dir)
        .build()
        .expect("child open");
    for (i, f) in gauntlet_stream(total).into_iter().enumerate() {
        engine.submit(f);
        if i % 256 == 255 {
            engine.flush(); // epoch barrier: fsync what's classified
        }
        if i % 64 == 0 {
            std::thread::sleep(Duration::from_micros(150));
        }
    }
    engine.finish();
    std::process::exit(0);
}

#[test]
fn kill_then_recover_converges() {
    if std::env::var(CHILD_ENV).is_ok() {
        child_main();
    }
    let total = env_usize(STREAM_ENV, 8_000);
    let rounds = env_usize(ROUNDS_ENV, 3);
    let certified = resolution() == Resolution::Certified;
    let fns = gauntlet_stream(total);
    // The expected partition and the store-key → class-size map, under
    // the active resolution: digest keys come from the one-shot
    // classifier, certified keys from each class's proved canonical
    // representative (orbit-invariant at n = 6: the exact walk always
    // completes, no fallback labeling exists).
    let (expected_labels, expected_by_key): (Vec<usize>, HashMap<u128, usize>) = if certified {
        let labels = exact_classify(&fns);
        let mut key_of_label: HashMap<usize, u128> = HashMap::new();
        let mut sizes: HashMap<u128, usize> = HashMap::new();
        for (i, f) in fns.iter().enumerate() {
            let key = *key_of_label
                .entry(labels.label(i))
                .or_insert_with(|| certified_key(&certified_canonical(f).0));
            *sizes.entry(key).or_insert(0) += 1;
        }
        (labels.labels().to_vec(), sizes)
    } else {
        let expected = Classifier::new(SignatureSet::all()).classify(fns.clone());
        let by_key = expected
            .classes()
            .iter()
            .map(|c| {
                (
                    signature_key(c.representative(), SignatureSet::all()),
                    c.size(),
                )
            })
            .collect();
        (expected.labels().to_vec(), by_key)
    };
    let num_expected = expected_by_key.len();

    for round in 0..rounds {
        let dir =
            std::env::temp_dir().join(format!("facepoint-gauntlet-{}-{round}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let sync = if round % 2 == 0 { "barrier" } else { "always" };
        let mut child = std::process::Command::new(std::env::current_exe().unwrap())
            .env(CHILD_ENV, "1")
            .env(DIR_ENV, &dir)
            .env(STREAM_ENV, total.to_string())
            .env(SYNC_ENV, sync)
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("spawn gauntlet child");
        // A different kill point every round (the assertions must hold
        // for any of them, including "child already finished").
        std::thread::sleep(Duration::from_millis(20 + 60 * round as u64));
        child.kill().expect("SIGKILL the child"); // SIGKILL on unix
        let _ = child.wait();

        // 1. Recovery always succeeds, whatever the kill cut through.
        let snap = Engine::recover(&dir)
            .unwrap_or_else(|e| panic!("round {round} ({sync}): recover failed: {e}"));

        // 2. Prefix-consistent subset of the one-shot partition.
        assert!(snap.members() <= total as u64, "round {round}");
        assert_eq!(snap.resolution, resolution(), "round {round}");
        for class in &snap.classes {
            let exp_size = expected_by_key.get(&class.key).unwrap_or_else(|| {
                panic!(
                    "round {round}: recovered class {:032x} unknown to the classifier",
                    class.key
                )
            });
            assert!(
                class.size <= *exp_size,
                "round {round}: class {:032x} overcounted: {} > {}",
                class.key,
                class.size,
                exp_size
            );
            // The representative really is a member of its class: its
            // key under the active resolution is the stored key.
            let rep_key = if certified {
                certified_key(&certified_canonical(&class.representative).0)
            } else {
                signature_key(&class.representative, SignatureSet::all())
            };
            assert_eq!(
                rep_key, class.key,
                "round {round}: representative outside its class"
            );
        }

        // 3. Reopen, re-submit the full stream: the partition converges
        // to the one-shot result and the census accumulates exactly.
        let mut engine = Engine::builder()
            .config(child_cfg(dir.clone(), SyncPolicy::Barrier))
            .persist(&dir)
            .build()
            .expect("reopen");
        let recovered_members = engine.recovery().unwrap().members;
        assert_eq!(recovered_members, snap.members(), "round {round}");
        engine.submit_batch(fns.iter().cloned());
        let report = engine.finish();
        if certified {
            // Certified label ids depend on recovered-class ordering;
            // compare the partitions in first-occurrence order.
            let normalized = ClassLabels::from_keys(report.classification.labels().iter().copied());
            assert_eq!(
                normalized.labels(),
                &expected_labels[..],
                "round {round}: resubmitted stream grouped differently"
            );
        } else {
            assert_eq!(
                report.classification.labels(),
                &expected_labels[..],
                "round {round}: resubmitted stream grouped differently"
            );
        }
        assert_eq!(
            report.classification.num_classes(),
            num_expected,
            "round {round}"
        );

        let final_snap = Engine::recover(&dir).expect("post-finish recover");
        assert_eq!(final_snap.classes.len(), num_expected, "round {round}");
        assert_eq!(
            final_snap.members(),
            recovered_members + total as u64,
            "round {round}: cumulative census drifted"
        );
        let recovered_sizes: HashMap<u128, usize> =
            snap.classes.iter().map(|c| (c.key, c.size)).collect();
        for class in &final_snap.classes {
            let before = recovered_sizes.get(&class.key).copied().unwrap_or(0);
            let exp_size = expected_by_key[&class.key];
            assert_eq!(
                class.size,
                before + exp_size,
                "round {round}: class {:032x} count is not recovered + resubmitted",
                class.key
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
        println!(
            "round {round} ({sync}): killed with {} members durable; {}",
            recovered_members, snap.report
        );
    }
}
