//! Cross-checks of the certified resolution tier against the exact
//! classifier: exhaustively over every function at small arity,
//! statistically above, across worker counts — plus the durable-store
//! roundtrip (recovered censuses prime the resolver, so nothing is
//! re-walked) and the cross-mode reopen refusal.

use facepoint_bench::{random_workload, transform_closure_workload};
use facepoint_engine::{certified_key, Engine, EngineConfig, EngineReport, Resolution};
use facepoint_exact::{certified_canonical, exact_classify, ClassLabels};
use facepoint_sig::SignatureSet;
use facepoint_truth::TruthTable;
use std::path::PathBuf;

fn certified_cfg(workers: usize) -> EngineConfig {
    EngineConfig::builder()
        .workers(workers)
        .chunk_size(16)
        // The memo cache would dedup repeated tables before resolution;
        // off, so every member exercises the walk-or-witness path.
        .cache_capacity(0)
        .certified()
        .build()
}

/// Streams `fns` through a certified engine and returns the report plus
/// the engine's labels normalized to first-occurrence order (the order
/// [`exact_classify`] reports).
fn certified_run(fns: &[TruthTable], workers: usize) -> (ClassLabels, EngineReport) {
    let mut engine = Engine::builder()
        .config(certified_cfg(workers))
        .build()
        .unwrap();
    engine.submit_batch(fns.iter().cloned());
    let report = engine.finish();
    let labels = ClassLabels::from_keys(report.classification.labels().iter().copied());
    (labels, report)
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("facepoint-certified-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Every function of up to three variables: the certified census is the
/// known class ladder (2, 4, 14) and the partition is exactly the
/// ground-truth classifier's, at one and at eight workers.
#[test]
fn exhaustive_small_arity_census_is_proved() {
    for (n, expected_classes) in [(1usize, 2usize), (2, 4), (3, 14)] {
        let fns: Vec<TruthTable> = (0..1u64 << (1usize << n))
            .map(|bits| TruthTable::from_u64(n, bits).unwrap())
            .collect();
        let expected = exact_classify(&fns);
        assert_eq!(
            expected.num_classes(),
            expected_classes,
            "oracle drifted at n={n}"
        );
        for workers in [1usize, 8] {
            let (labels, report) = certified_run(&fns, workers);
            assert_eq!(
                labels.labels(),
                expected.labels(),
                "n={n} workers={workers}"
            );
            assert_eq!(report.stats.num_classes, expected_classes);
            assert_eq!(report.stats.resolution, Resolution::Certified);
        }
    }
}

/// All 65 536 four-variable functions resolve to the paper's 222
/// classes, every stored key is the digest of its proved
/// representative, and the partition matches [`exact_classify`].
#[test]
fn exhaustive_n4_census_matches_exact_classifier() {
    let fns: Vec<TruthTable> = (0..1u64 << 16)
        .map(|bits| TruthTable::from_u64(4, bits).unwrap())
        .collect();
    let expected = exact_classify(&fns);
    assert_eq!(expected.num_classes(), 222, "oracle drifted at n=4");
    for workers in [1usize, 8] {
        let (labels, report) = certified_run(&fns, workers);
        assert_eq!(labels.labels(), expected.labels(), "workers={workers}");
        assert_eq!(report.stats.num_classes, 222);
        let mut members = 0u64;
        for class in &report.census {
            assert_eq!(
                certified_key(&class.representative),
                class.key,
                "stored key is not its representative's digest"
            );
            members += class.size as u64;
        }
        assert_eq!(members, fns.len() as u64);
    }
}

/// Statistical cross-check above exhaustive reach: planted equivalence
/// groups plus distinct random tables at n = 5..8, across 1, 2 and 8
/// workers, always equal to the exact classifier's partition.
#[test]
fn statistical_cross_check_matches_exact_classifier() {
    for n in 5..=8 {
        let mut fns = transform_closure_workload(n, 10, 5, 0x5EED ^ n as u64);
        fns.extend(random_workload(n, 60, 0xFACE ^ n as u64));
        let expected = exact_classify(&fns);
        for workers in [1usize, 2, 8] {
            let (labels, report) = certified_run(&fns, workers);
            assert_eq!(
                labels.labels(),
                expected.labels(),
                "n={n} workers={workers}"
            );
            assert_eq!(report.stats.num_classes, expected.num_classes());
            // The resolver accounted every member: one walk or fallback
            // per class, one witness match for everyone else. Two
            // workers racing on a fresh class both walk (the loser's
            // insert is double-checked away and re-counted as a match),
            // so only the single-worker run is exact; concurrent runs
            // bound from below.
            let stats = &report.stats;
            let creations = stats.canon_walks + stats.canon_fallbacks;
            let class_count = expected.num_classes() as u64;
            let member_count = (fns.len() - expected.num_classes()) as u64;
            if workers == 1 {
                assert_eq!(creations, class_count, "n={n}");
                assert_eq!(stats.canon_matches, member_count, "n={n}");
            } else {
                assert!(creations >= class_count, "n={n} workers={workers}");
                assert!(
                    stats.canon_matches >= member_count,
                    "n={n} workers={workers}"
                );
            }
        }
    }
}

/// [`Engine::canon`] answers every query with a witness that really
/// maps the query onto the returned representative, whose digest is
/// the returned key.
#[test]
fn canon_answers_carry_valid_witnesses() {
    let fns = transform_closure_workload(4, 6, 5, 0x0C41);
    let mut engine = Engine::builder().config(certified_cfg(2)).build().unwrap();
    engine.submit_batch(fns.iter().cloned());
    // Drain before querying so every class is in the store (flush
    // pushes the partial trailing chunk out of the submit buffer).
    engine.flush();
    while engine.snapshot().functions_processed < fns.len() as u64 {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    for f in &fns {
        let answer = engine.canon(f);
        assert_eq!(answer.witness.apply(f), answer.entry.representative);
        assert_eq!(
            certified_key(&answer.entry.representative),
            answer.entry.key
        );
        assert!(answer.entry.size >= 1, "class missing from the store");
    }
    engine.finish();
}

/// Durable certified roundtrip: the snapshot reports the certified
/// tier and the same census through the shared render path; reopening
/// primes the resolver from the stored representatives, so resubmitting
/// the identical stream performs zero canonicalization walks.
#[test]
fn certified_store_persists_and_primes_the_resolver() {
    let dir = scratch_dir("roundtrip");
    let fns = transform_closure_workload(5, 8, 6, 0xD1CE);
    let expected = exact_classify(&fns);

    let mut engine = Engine::builder()
        .config(certified_cfg(2))
        .persist(&dir)
        .build()
        .unwrap();
    engine.submit_batch(fns.iter().cloned());
    let first = engine.finish();
    assert_eq!(first.stats.num_classes, expected.num_classes());
    assert!(first.stats.canon_walks + first.stats.canon_fallbacks >= expected.num_classes() as u64);

    let snap = Engine::recover(&dir).expect("recover certified store");
    assert_eq!(snap.resolution, Resolution::Certified);
    assert_eq!(snap.set, SignatureSet::all());
    assert_eq!(snap.classes.len(), expected.num_classes());
    assert_eq!(snap.members(), fns.len() as u64);
    assert_eq!(
        snap.census_view().render_top(usize::MAX),
        first.census_view().render_top(usize::MAX),
        "snapshot and report disagree through the shared render path"
    );

    let mut engine = Engine::builder()
        .config(certified_cfg(2))
        .persist(&dir)
        .build()
        .unwrap();
    assert_eq!(engine.recovery().unwrap().members, fns.len() as u64);
    engine.submit_batch(fns.iter().cloned());
    let second = engine.finish();
    assert_eq!(
        second.stats.canon_walks, 0,
        "recovered classes were re-walked"
    );
    assert_eq!(second.stats.canon_fallbacks, 0);
    assert_eq!(second.stats.canon_matches, fns.len() as u64);
    assert_eq!(second.stats.num_classes, expected.num_classes());

    let cumulative = Engine::recover(&dir).expect("post-finish recover");
    assert_eq!(cumulative.members(), 2 * fns.len() as u64);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The shipped configuration: `facepoint serve --certified` runs with
/// the memo cache **on**, so repeated tables take the dedup fast paths
/// (submit-time peek, the worker's per-entry cache probe, a
/// [`SubmitHandle`](facepoint_engine::SubmitHandle)'s batched hits) —
/// all of which insert *raw* member tables. With chunks of one table
/// and eight workers, duplicates routinely classify out of chunk
/// order, which once let such an insert steal the representative slot
/// on a lower seq (`seq < rep_seq`), replacing the proved canonical
/// table and — after a reopen primed the resolver with the raw table —
/// permanently splitting the class. Every stored representative must
/// satisfy `certified_key(rep) == key` and be its own canonical form,
/// after `finish` and after a durable reopen alike.
#[test]
fn dedup_cache_never_steals_certified_representatives() {
    fn cached_cfg() -> EngineConfig {
        EngineConfig::builder()
            .workers(8)
            // One table per chunk: maximal cross-worker reordering, so
            // lower-seq duplicates race higher-seq canonical inserts.
            .chunk_size(1)
            .cache_capacity(1 << 12)
            .certified()
            .build()
    }
    fn assert_proved(census: &[facepoint_engine::ClassSummary]) {
        for class in census {
            assert_eq!(
                certified_key(&class.representative),
                class.key,
                "stored key is not its representative's digest"
            );
            let (canon, _) = certified_canonical(&class.representative);
            assert_eq!(
                canon, class.representative,
                "stored representative is not canonical — a dedup insert stole the slot"
            );
        }
    }

    let dir = scratch_dir("dedup-cache");
    let base = transform_closure_workload(4, 6, 5, 0xCAFE);
    let expected = exact_classify(&base);
    // Duplicate-heavy stream: the same tables over and over, so later
    // rounds hit the cache while earlier chunks may still be queued.
    let mut fns = Vec::new();
    for _ in 0..8 {
        fns.extend(base.iter().cloned());
    }

    let mut engine = Engine::builder()
        .config(cached_cfg())
        .persist(&dir)
        .build()
        .unwrap();
    // Cross-handle duplicates exercise the handle's batched hit path.
    let mut handle = engine.submit_handle();
    engine.submit_batch(fns.iter().cloned());
    handle.submit_batch(base.iter().cloned()).unwrap();
    // The handle's `Arc`s keep the store — and its advisory file lock —
    // alive; release them before the reopen below.
    drop(handle);
    let first = engine.finish();
    assert_eq!(first.stats.num_classes, expected.num_classes());
    assert!(
        first.stats.cache_hits + first.stats.dedup_hits > 0,
        "no duplicate ever hit the cache — the fast paths went unexercised"
    );
    assert_proved(&first.census);

    // The reopened store primes resolver and cache from the stored
    // representatives; had a raw table been journaled as one, the
    // identical re-feed would split its class (and walk it again).
    let snap = Engine::recover(&dir).expect("recover certified store");
    for class in &snap.classes {
        assert_eq!(certified_key(&class.representative), class.key);
    }
    let mut engine = Engine::builder()
        .config(cached_cfg())
        .persist(&dir)
        .build()
        .unwrap();
    engine.submit_batch(fns.iter().cloned());
    let second = engine.finish();
    assert_eq!(
        second.stats.num_classes,
        expected.num_classes(),
        "reopen split a certified class"
    );
    assert_eq!(
        second.stats.canon_walks + second.stats.canon_fallbacks,
        0,
        "recovered classes were re-walked"
    );
    assert_proved(&second.census);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A store journaled under one resolution refuses to reopen under the
/// other — certified keys are representative digests, digest keys are
/// signature digests, and silently mixing them would corrupt the
/// census.
#[test]
fn cross_mode_reopen_is_refused() {
    let digest_cfg = EngineConfig::builder().workers(1).build();
    for (first, second) in [
        (digest_cfg.clone(), certified_cfg(1)),
        (certified_cfg(1), digest_cfg),
    ] {
        let dir = scratch_dir(if first.resolution == Resolution::Digest {
            "digest-first"
        } else {
            "certified-first"
        });
        let mut engine = Engine::builder()
            .config(first)
            .persist(&dir)
            .build()
            .unwrap();
        engine.submit(TruthTable::majority(3));
        engine.finish();
        let err = match Engine::builder().config(second).persist(&dir).build() {
            Ok(_) => panic!("cross-mode reopen must be refused"),
            Err(err) => err,
        };
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
