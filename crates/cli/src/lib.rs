//! # facepoint-cli
//!
//! The `facepoint` command-line tool: NPN classification, signature
//! inspection, canonical forms, pairwise matching and cut-function
//! extraction from AIGER files — the whole workspace behind one binary.
//!
//! ```text
//! facepoint classify [--set ALL] [--exact] [FILE]    # lines of truth tables
//! facepoint sig <table>                              # all signature vectors
//! facepoint canon <table> [--method exact|huang13|petkovska16|zhou20]
//! facepoint match <table> <table>                    # NPN equivalence + witness
//! facepoint cuts <file.aag> [--support N] [--limit K]
//! facepoint suite [--support N] [--limit K]          # synthetic workload
//! facepoint serve <addr> [--persist DIR]             # TCP census service
//! facepoint client <addr> [FILE]                     # stream tables to it
//! ```
//!
//! Truth tables are written as hex strings, optionally prefixed by the
//! variable count: `e8` (3 variables inferred from 2 digits) or `3:e8`.
//! The logic lives in this library crate so it is unit-testable; the
//! binary in `main.rs` is a thin shell.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

mod commands;
mod parse;

pub use commands::{run, CliError};
pub use parse::{infer_num_vars, parse_table};
