//! Thin shell around [`facepoint_cli::run`].
#![forbid(unsafe_code)]

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match facepoint_cli::run(&args) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}
