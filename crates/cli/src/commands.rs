//! Subcommand implementations. Every command returns its report as a
//! `String` so it can be asserted in tests; `main` only prints.

use crate::parse::parse_table;
use facepoint_aig::{Aig, Extractor};
use facepoint_core::{Classification, Classifier};
use facepoint_engine::{Engine, EngineConfig, Resolution};
use facepoint_exact::baselines::{CanonicalClassifier, Huang13, Petkovska16, Zhou20};
use facepoint_exact::{exact_npn_canonical, npn_match};
use facepoint_serve::{Client, Server, ServerConfig};
use facepoint_sig::{ocv1, ocv2, oiv, osdv, osdv0, osdv1, osv, osv0, osv1, SignatureSet};
use facepoint_truth::TruthTable;
use std::fmt;

/// CLI-level errors (argument and input problems).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CliError {
    /// Unknown subcommand or missing arguments.
    Usage(String),
    /// A truth-table argument failed to parse.
    BadTable(String),
    /// A file could not be read or parsed.
    BadInput(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage: {m}"),
            CliError::BadTable(m) => write!(f, "bad truth table: {m}"),
            CliError::BadInput(m) => write!(f, "bad input: {m}"),
        }
    }
}

impl std::error::Error for CliError {}

const USAGE: &str = "facepoint <classify|sig|canon|match|cuts|suite|recover|serve|client> [args]
  classify [--set SET] [--exact] [--certified] [--parallel N] [--persist DIR] [FILE]
                                           classify hex tables (stdin or FILE);
                                           --parallel routes through the sharded
                                           engine with N workers (0 = all cores);
                                           --certified resolves every signature
                                           bucket to a proved NPN class (implies
                                           the engine);
                                           --persist journals the class store to
                                           DIR (implies the engine) and resumes
                                           any census already stored there
  sig <table>                              print every signature vector
  canon <table> [--method M]               canonical form (exact default)
  match <a> <b>                            NPN equivalence + witness
  cuts <file.aag> [--support N] [--limit K]  cut functions of an AIGER file
  suite [--support N] [--limit K] [--classify] [--certified] [--parallel N] [--persist DIR]
                                           synthetic benchmark workload; with
                                           --classify, stream it through the
                                           engine and report classes instead
  recover <dir> [FILE]                     read a persisted class store without
                                           writing; with FILE, diff the stored
                                           census against a one-shot
                                           classification of FILE's tables
  serve <addr> [--set SET] [--certified] [--parallel N] [--persist DIR]
        [--metrics-interval SECS]          serve the engine over TCP (wire
                                           protocol: docs/PROTOCOL.md) until
                                           SIGTERM/SIGINT, which checkpoints
                                           and exits; --persist resumes and
                                           journals the census under DIR;
                                           --metrics-interval emits the full
                                           telemetry snapshot to stderr every
                                           SECS seconds, one JSON object per
                                           line
  client <addr> [FILE] [--top K]           stream FILE's tables (stdin without
         [--metrics]                       FILE) to a running server, wait for
                                           the census to drain, print the
                                           snapshot and the top K classes;
                                           --metrics instead scrapes and prints
                                           the server's telemetry snapshot
                                           (docs/PROTOCOL.md §4.12)";

/// Dispatches a full argument vector (without the program name) and
/// returns the textual report.
///
/// # Errors
///
/// Returns a [`CliError`] on unknown commands or malformed input.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let cmd = args.first().map(String::as_str);
    match cmd {
        Some("classify") => classify(&args[1..]),
        Some("sig") => sig(&args[1..]),
        Some("canon") => canon(&args[1..]),
        Some("match") => match_cmd(&args[1..]),
        Some("cuts") => cuts(&args[1..]),
        Some("suite") => suite(&args[1..]),
        Some("recover") => recover(&args[1..]),
        Some("serve") => serve(&args[1..]),
        Some("client") => client(&args[1..]),
        _ => Err(CliError::Usage(USAGE.to_string())),
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn positional(args: &[String]) -> Vec<&String> {
    let mut out = Vec::new();
    let mut skip = false;
    for (i, a) in args.iter().enumerate() {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            // Flags with values; boolean flags are known by name.
            skip = !matches!(
                a.as_str(),
                "--exact" | "--verbose" | "--classify" | "--certified"
            );
            let _ = i;
            continue;
        }
        out.push(a);
    }
    out
}

/// Parses `--parallel N` (`Some(workers)` when present; `0` = all
/// cores). A bare trailing `--parallel` is an error, not a silent
/// fallback to the serial path.
fn parallel_flag(args: &[String]) -> Result<Option<usize>, CliError> {
    let usage = || CliError::Usage("--parallel N (a worker count, 0 = auto)".into());
    match args.iter().position(|a| a == "--parallel") {
        None => Ok(None),
        Some(i) => {
            let value = args.get(i + 1).ok_or_else(usage)?;
            value.parse().map(Some).map_err(|_| usage())
        }
    }
}

/// Parses a table-per-line text (hex or `N:hex`; blank lines and `#`
/// comments skipped) — the shared input format of `classify` and
/// `recover`.
fn parse_table_lines(text: &str) -> Result<Vec<TruthTable>, CliError> {
    let mut fns = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        fns.push(parse_table(line)?);
    }
    Ok(fns)
}

/// Streams `fns` through the sharded engine — journaling to `persist`
/// when given — and returns the partition plus a stats report.
fn engine_classify(
    fns: Vec<TruthTable>,
    set: SignatureSet,
    workers: usize,
    persist: Option<&str>,
    resolution: Resolution,
) -> Result<(Classification, String), CliError> {
    let cfg = EngineConfig::builder()
        .set(set)
        .workers(workers)
        // Command-line streams routinely repeat functions (cut files,
        // concatenated dumps): a modest memo cache is nearly free and
        // pays off exactly there.
        .cache_capacity(1 << 16)
        .resolution(resolution)
        .build();
    let mut engine = match persist {
        Some(dir) => Engine::builder()
            .config(cfg)
            .persist(dir)
            .build()
            .map_err(|e| CliError::BadInput(format!("{dir}: {e}")))?,
        None => Engine::builder().config(cfg).build().unwrap(),
    };
    let mut lines = String::new();
    if let Some(recovered) = engine.recovery() {
        if recovered.members > 0 {
            lines.push_str(&format!("resumed: {recovered}\n"));
        }
    }
    engine.submit_batch(fns);
    let report = engine.finish();
    lines.push_str(&format!("engine: {}\n", report.stats));
    Ok((report.classification, lines))
}

fn classify(args: &[String]) -> Result<String, CliError> {
    let set = match flag_value(args, "--set") {
        Some(s) => SignatureSet::parse(s)
            .ok_or_else(|| CliError::Usage(format!("unknown signature set {s:?}")))?,
        None => SignatureSet::all(),
    };
    let exact = args.iter().any(|a| a == "--exact");
    let verbose = args.iter().any(|a| a == "--verbose");
    let parallel = parallel_flag(args)?;
    let files = positional(args);
    let text = match files.first() {
        Some(path) => {
            std::fs::read_to_string(path).map_err(|e| CliError::BadInput(format!("{path}: {e}")))?
        }
        None => {
            use std::io::Read;
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| CliError::BadInput(e.to_string()))?;
            buf
        }
    };
    let fns = parse_table_lines(&text)?;
    // Only --exact needs the tables after classification; skip the
    // full-stream clone otherwise (streams can be huge).
    let fns_for_refine = if exact { fns.clone() } else { Vec::new() };
    let persist = flag_value(args, "--persist");
    let certified = args.iter().any(|a| a == "--certified");
    let resolution = if certified {
        Resolution::Certified
    } else {
        Resolution::Digest
    };
    // --persist and --certified imply the engine (the serial classifier
    // has neither store nor resolver); --parallel alone keeps the
    // previous behavior.
    let (classification, engine_line) = if parallel.is_some() || persist.is_some() || certified {
        let (c, line) = engine_classify(fns, set, parallel.unwrap_or(0), persist, resolution)?;
        (c, Some(line))
    } else {
        (Classifier::new(set).classify(fns), None)
    };
    let mut out = format!(
        "{} functions, {} {} classes (signatures: {set})\n",
        classification.num_functions(),
        classification.num_classes(),
        if certified { "certified" } else { "candidate" },
    );
    if let Some(line) = engine_line {
        out.push_str(&line);
    }
    if exact {
        let exact_labels = facepoint_core::refine_to_exact(&fns_for_refine, &classification);
        out.push_str(&format!(
            "{} exact classes after in-bucket matching\n",
            exact_labels.num_classes()
        ));
    }
    if verbose {
        for class in classification.classes_by_size() {
            out.push_str(&format!(
                "class {:>5}  size {:>6}  representative {}:{}\n",
                class.id(),
                class.size(),
                class.representative().num_vars(),
                class.representative().to_hex()
            ));
        }
    }
    Ok(out)
}

fn sig(args: &[String]) -> Result<String, CliError> {
    let spec = positional(args)
        .first()
        .copied()
        .ok_or_else(|| CliError::Usage("sig <table>".into()))?;
    let f = parse_table(spec)?;
    let fmt_u32 = |v: &[u32]| {
        let items: Vec<String> = v.iter().map(|x| x.to_string()).collect();
        format!("({})", items.join(","))
    };
    let fmt_u64 = |v: &[u64]| {
        let items: Vec<String> = v.iter().map(|x| x.to_string()).collect();
        format!("({})", items.join(","))
    };
    let mut out = format!(
        "function {}:{} |f| = {} balanced = {}\n",
        f.num_vars(),
        f.to_hex(),
        f.count_ones(),
        f.is_balanced()
    );
    out.push_str(&format!("OCV1  = {}\n", fmt_u32(&ocv1(&f))));
    out.push_str(&format!("OCV2  = {}\n", fmt_u32(&ocv2(&f))));
    out.push_str(&format!("OIV   = {}\n", fmt_u32(&oiv(&f))));
    out.push_str(&format!("OSV   = {}\n", fmt_u32(&osv(&f))));
    out.push_str(&format!("OSV0  = {}\n", fmt_u32(&osv0(&f))));
    out.push_str(&format!("OSV1  = {}\n", fmt_u32(&osv1(&f))));
    out.push_str(&format!("OSDV  = {}\n", fmt_u64(&osdv(&f).flatten())));
    out.push_str(&format!("OSDV0 = {}\n", fmt_u64(&osdv0(&f).flatten())));
    out.push_str(&format!("OSDV1 = {}\n", fmt_u64(&osdv1(&f).flatten())));
    Ok(out)
}

fn canon(args: &[String]) -> Result<String, CliError> {
    let spec = positional(args)
        .first()
        .copied()
        .ok_or_else(|| CliError::Usage("canon <table> [--method M]".into()))?;
    let f = parse_table(spec)?;
    let method = flag_value(args, "--method").unwrap_or("exact");
    let canon = match method {
        "exact" => exact_npn_canonical(&f),
        "huang13" => Huang13.canonical_form(&f),
        "petkovska16" => Petkovska16::default().canonical_form(&f),
        "zhou20" => Zhou20::default().canonical_form(&f),
        other => {
            return Err(CliError::Usage(format!(
                "unknown method {other:?} (exact|huang13|petkovska16|zhou20)"
            )))
        }
    };
    Ok(format!(
        "{method} canonical form of {}:{} = {}:{}\n",
        f.num_vars(),
        f.to_hex(),
        canon.num_vars(),
        canon.to_hex()
    ))
}

fn match_cmd(args: &[String]) -> Result<String, CliError> {
    let pos = positional(args);
    let (a, b) = match pos.as_slice() {
        [a, b] => (parse_table(a)?, parse_table(b)?),
        _ => return Err(CliError::Usage("match <table> <table>".into())),
    };
    if a.num_vars() != b.num_vars() {
        return Ok("NOT equivalent (different variable counts)\n".into());
    }
    match npn_match(&a, &b) {
        Some(t) => Ok(format!("NPN-EQUIVALENT via {t}\n")),
        None => Ok("NOT equivalent\n".into()),
    }
}

fn cuts(args: &[String]) -> Result<String, CliError> {
    let pos = positional(args);
    let path = pos
        .first()
        .copied()
        .ok_or_else(|| CliError::Usage("cuts <file.aag> [--support N] [--limit K]".into()))?;
    let support: usize = flag_value(args, "--support")
        .map(|v| v.parse().map_err(|_| CliError::Usage("--support N".into())))
        .transpose()?
        .unwrap_or(4);
    let limit: usize = flag_value(args, "--limit")
        .map(|v| v.parse().map_err(|_| CliError::Usage("--limit K".into())))
        .transpose()?
        .unwrap_or(0);
    let text =
        std::fs::read_to_string(path).map_err(|e| CliError::BadInput(format!("{path}: {e}")))?;
    let aig = Aig::from_aiger(&text).map_err(|e| CliError::BadInput(e.to_string()))?;
    let mut fns = Extractor::for_support(support).extract(&aig);
    if limit != 0 {
        fns.truncate(limit);
    }
    Ok(format_tables(&fns))
}

fn suite(args: &[String]) -> Result<String, CliError> {
    let support: usize = flag_value(args, "--support")
        .map(|v| v.parse().map_err(|_| CliError::Usage("--support N".into())))
        .transpose()?
        .unwrap_or(4);
    let limit: usize = flag_value(args, "--limit")
        .map(|v| v.parse().map_err(|_| CliError::Usage("--limit K".into())))
        .transpose()?
        .unwrap_or(1000);
    let fns = facepoint_aig::cut_workload(support, limit);
    let persist = flag_value(args, "--persist");
    if args.iter().any(|a| a == "--classify") || persist.is_some() {
        // Route the workload through the streaming engine instead of
        // printing it — the end-to-end Section V flow as one command.
        let workers = parallel_flag(args)?.unwrap_or(0);
        let resolution = if args.iter().any(|a| a == "--certified") {
            Resolution::Certified
        } else {
            Resolution::Digest
        };
        let (classification, engine_line) =
            engine_classify(fns, SignatureSet::all(), workers, persist, resolution)?;
        let mut out = format!(
            "{} cut functions, {} candidate classes (signatures: {})\n",
            classification.num_functions(),
            classification.num_classes(),
            SignatureSet::all(),
        );
        out.push_str(&engine_line);
        return Ok(out);
    }
    Ok(format_tables(&fns))
}

/// `recover <dir> [FILE]`: read a persisted class store without
/// touching it; with FILE, diff the stored census against a one-shot
/// classification of FILE's tables (the convergence check of the
/// recovery gauntlet, as a command).
fn recover(args: &[String]) -> Result<String, CliError> {
    let pos = positional(args);
    let dir = pos
        .first()
        .copied()
        .ok_or_else(|| CliError::Usage("recover <dir> [FILE]".into()))?;
    let snap = Engine::recover(dir).map_err(|e| CliError::BadInput(format!("{dir}: {e}")))?;
    let mut out = format!("{}\n", snap.report);
    out.push_str(&format!(
        "signature set: {} | {} resolution | {} classes, {} members\n",
        snap.set,
        snap.resolution,
        snap.classes.len(),
        snap.members()
    ));
    out.push_str(&snap.census_view().render_top(5));
    let Some(path) = pos.get(1) else {
        return Ok(out);
    };
    // Diff against a one-shot partition of FILE's tables, matched the
    // way the store partitions its classes: by signature digest for a
    // digest store, by exact NPN orbit for a certified one.
    let text =
        std::fs::read_to_string(path).map_err(|e| CliError::BadInput(format!("{path}: {e}")))?;
    let tables = parse_table_lines(&text)?;
    let num_functions = tables.len();
    // `expected_by_key` maps *store* keys to the expected class size;
    // `num_expected`/`missing` count the one-shot classes overall and
    // the ones no stored class corresponds to.
    let (num_expected, expected_by_key, missing): (
        usize,
        std::collections::HashMap<u128, usize>,
        usize,
    ) = match snap.resolution {
        Resolution::Digest => {
            let expected = Classifier::new(snap.set).classify(tables);
            let by_key: std::collections::HashMap<u128, usize> = expected
                .classes()
                .iter()
                .map(|c| {
                    (
                        facepoint_core::signature_key(c.representative(), snap.set),
                        c.size(),
                    )
                })
                .collect();
            let stored_keys: std::collections::HashSet<u128> =
                snap.classes.iter().map(|c| c.key).collect();
            let missing = by_key.keys().filter(|k| !stored_keys.contains(k)).count();
            (expected.num_classes(), by_key, missing)
        }
        Resolution::Certified => {
            // One joint exact classification of stored representatives
            // and the file's tables: a stored class and a file class
            // are the same class iff their members share a label. This
            // is robust to budget-fallback representatives, whose key
            // cannot be recomputed from an arbitrary orbit member.
            let mut joint: Vec<TruthTable> = snap
                .classes
                .iter()
                .map(|c| c.representative.clone())
                .collect();
            joint.extend(tables);
            let labels = facepoint_exact::exact_classify(&joint);
            let n_stored = snap.classes.len();
            let mut size_by_label = std::collections::HashMap::new();
            for &l in &labels.labels()[n_stored..] {
                *size_by_label.entry(l).or_insert(0usize) += 1;
            }
            let by_key: std::collections::HashMap<u128, usize> = snap
                .classes
                .iter()
                .enumerate()
                .filter_map(|(i, c)| size_by_label.get(&labels.label(i)).map(|&s| (c.key, s)))
                .collect();
            let stored_labels: std::collections::HashSet<usize> =
                labels.labels()[..n_stored].iter().copied().collect();
            let missing = size_by_label
                .keys()
                .filter(|l| !stored_labels.contains(l))
                .count();
            (size_by_label.len(), by_key, missing)
        }
    };
    let mut matching = 0usize;
    let mut behind = 0usize;
    let mut ahead = 0usize;
    let mut unknown = 0usize;
    for class in &snap.classes {
        match expected_by_key.get(&class.key) {
            Some(&size) if class.size == size => matching += 1,
            Some(&size) if class.size < size => behind += 1,
            Some(_) => ahead += 1,
            None => unknown += 1,
        }
    }
    out.push_str(&format!(
        "diff vs one-shot classification of {path} \
         ({num_functions} functions, {num_expected} classes):\n",
    ));
    out.push_str(&format!(
        "  {matching} classes match exactly, {behind} behind (lost tail or \
         partial stream), {ahead} ahead (store saw more), \
         {missing} missing from store, {unknown} only in store\n",
    ));
    if missing == 0 && unknown == 0 && behind == 0 && ahead == 0 {
        out.push_str("  store census == one-shot classification\n");
    }
    Ok(out)
}

/// Spawns the `--metrics-interval` emitter: every `every`, one flat
/// JSON object (the full registry snapshot) is written to `sink` as a
/// single line — JSONL an operator can tail or pipe into a collector.
/// The thread sleeps in short ticks so the returned stop flag is
/// honored within ~25 ms, not an `every` later.
fn spawn_metrics_emitter(
    registry: std::sync::Arc<facepoint_telemetry::Registry>,
    every: std::time::Duration,
    mut sink: impl std::io::Write + Send + 'static,
) -> (
    std::sync::Arc<std::sync::atomic::AtomicBool>,
    std::thread::JoinHandle<()>,
) {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::{Duration, Instant};
    let stop = std::sync::Arc::new(AtomicBool::new(false));
    let flag = std::sync::Arc::clone(&stop);
    let handle = std::thread::spawn(move || {
        const TICK: Duration = Duration::from_millis(25);
        let mut next = Instant::now() + every;
        while !flag.load(Ordering::SeqCst) {
            std::thread::sleep(TICK.min(every));
            if Instant::now() < next {
                continue;
            }
            next += every;
            if writeln!(sink, "{}", registry.render_json()).is_err() {
                return; // a dead sink ends the emitter, not the server
            }
            let _ = sink.flush();
        }
    });
    (stop, handle)
}

/// Parses `--metrics-interval SECS` (fractional seconds allowed).
fn metrics_interval_flag(args: &[String]) -> Result<Option<std::time::Duration>, CliError> {
    let usage = || CliError::Usage("--metrics-interval SECS (a positive number)".into());
    match flag_value(args, "--metrics-interval") {
        None => {
            // A bare trailing flag is an error, not a silent no-op.
            if args.iter().any(|a| a == "--metrics-interval") {
                return Err(usage());
            }
            Ok(None)
        }
        Some(v) => {
            let secs: f64 = v.parse().map_err(|_| usage())?;
            if !(secs > 0.0 && secs.is_finite()) {
                return Err(usage());
            }
            Ok(Some(std::time::Duration::from_secs_f64(secs)))
        }
    }
}

/// `serve <addr>`: expose the engine over TCP (wire spec:
/// `docs/PROTOCOL.md`) until SIGTERM/SIGINT, then checkpoint (when
/// persistent) and report the final census. The listening banner goes
/// to stderr immediately; the returned report is printed on exit.
fn serve(args: &[String]) -> Result<String, CliError> {
    let pos = positional(args);
    let addr = pos.first().copied().ok_or_else(|| {
        CliError::Usage(
            "serve <addr> [--set SET] [--certified] [--parallel N] [--persist DIR] \
             [--metrics-interval SECS]"
                .into(),
        )
    })?;
    let set = match flag_value(args, "--set") {
        Some(s) => SignatureSet::parse(s)
            .ok_or_else(|| CliError::Usage(format!("unknown signature set {s:?}")))?,
        None => SignatureSet::all(),
    };
    let workers = parallel_flag(args)?.unwrap_or(0);
    let metrics_interval = metrics_interval_flag(args)?;
    let persist = flag_value(args, "--persist");
    let resolution = if args.iter().any(|a| a == "--certified") {
        Resolution::Certified
    } else {
        Resolution::Digest
    };
    let cfg = EngineConfig::builder()
        .set(set)
        .workers(workers)
        .cache_capacity(1 << 16)
        .resolution(resolution)
        .build();
    let engine = match persist {
        Some(dir) => Engine::builder()
            .config(cfg)
            .persist(dir)
            .build()
            .map_err(|e| CliError::BadInput(format!("{dir}: {e}")))?,
        None => Engine::builder().config(cfg).build().unwrap(),
    };
    // Announce recovery *now*, not at exit: the operator of a
    // days-long serve needs immediate confirmation that the census
    // resumed rather than silently starting fresh.
    if let Some(recovered) = engine.recovery() {
        if recovered.members > 0 {
            eprintln!("resumed: {recovered}");
        }
    }
    // The registry outlives the engine handoff to the server, so the
    // emitter keeps sampling while the server owns the engine.
    let registry = engine.telemetry();
    let server = Server::bind(addr, engine, ServerConfig::default())
        .map_err(|e| CliError::BadInput(format!("{addr}: {e}")))?;
    let local = server
        .local_addr()
        .map_err(|e| CliError::BadInput(e.to_string()))?;
    eprintln!(
        "facepoint serve: listening on {local} (set {set}, {resolution} resolution, \
         protocol v{}); SIGTERM/SIGINT checkpoints and exits",
        facepoint_serve::PROTO_VERSION
    );
    let emitter =
        metrics_interval.map(|every| spawn_metrics_emitter(registry, every, std::io::stderr()));
    facepoint_serve::signal::install();
    let report = server
        .run()
        .map_err(|e| CliError::BadInput(format!("serve: {e}")))?;
    if let Some((stop, handle)) = emitter {
        stop.store(true, std::sync::atomic::Ordering::SeqCst);
        let _ = handle.join();
    }
    match report {
        Some(r) => Ok(format!("engine: {}\n", r.stats)),
        None => Ok(String::new()),
    }
}

/// `client <addr> [FILE]`: stream a file of tables to a running
/// server, wait until the census drains, and print the snapshot plus
/// the largest classes — the spec's quickstart flow as one command.
fn client(args: &[String]) -> Result<String, CliError> {
    let pos = positional(args);
    let addr = pos
        .first()
        .copied()
        .ok_or_else(|| CliError::Usage("client <addr> [FILE] [--top K] [--metrics]".into()))?;
    let top_k: usize = flag_value(args, "--top")
        .map(|v| v.parse().map_err(|_| CliError::Usage("--top K".into())))
        .transpose()?
        .unwrap_or(5);
    // --metrics: scrape the server's telemetry snapshot (PROTOCOL.md
    // §4.12) and print it instead of streaming tables.
    if args.iter().any(|a| a == "--metrics") {
        let remote = |e: facepoint_serve::ProtoError| CliError::BadInput(format!("{addr}: {e}"));
        let mut client = Client::connect(addr).map_err(remote)?;
        let scrape = client.metrics().map_err(remote)?;
        client.quit().map_err(remote)?;
        return Ok(scrape);
    }
    use std::io::BufRead;
    let mut reader: Box<dyn BufRead> = match pos.get(1) {
        Some(path) => Box::new(std::io::BufReader::new(
            std::fs::File::open(path).map_err(|e| CliError::BadInput(format!("{path}: {e}")))?,
        )),
        None => Box::new(std::io::BufReader::new(std::io::stdin())),
    };
    let remote = |e: facepoint_serve::ProtoError| CliError::BadInput(format!("{addr}: {e}"));
    let mut client = Client::connect(addr).map_err(remote)?;
    let info = client.server_info().clone();
    let mut out = format!(
        "connected to {addr}: protocol v{} set {} workers {} persistent {} resolution {}\n",
        info.version,
        info.set,
        info.workers,
        info.persistent,
        // Pre-resolution servers omit the field; their census is the
        // candidate (digest) tier.
        if info.resolution.is_empty() {
            "digest"
        } else {
            &info.resolution
        }
    );
    // Stream the input instead of materializing it: parse each line
    // locally (errors name the offending line, and tables go out in
    // the spec's normalized `n:hex` form), send per chunk, and let the
    // server's backpressure pace the reads — a census-sized file never
    // has to fit in this process's memory.
    let mut sent = 0usize;
    let mut lineno = 0usize;
    let mut chunk: Vec<String> = Vec::with_capacity(4096);
    let mut line = String::new();
    loop {
        line.clear();
        let eof = reader
            .read_line(&mut line)
            .map_err(|e| CliError::BadInput(e.to_string()))?
            == 0;
        if !eof {
            lineno += 1;
            let trimmed = line.trim();
            if !trimmed.is_empty() && !trimmed.starts_with('#') {
                let f = parse_table(trimmed)
                    .map_err(|e| CliError::BadInput(format!("line {lineno}: {e}")))?;
                chunk.push(format!("{}:{}", f.num_vars(), f.to_hex()));
            }
        }
        if chunk.len() == 4096 || (eof && !chunk.is_empty()) {
            client
                .submit_batch(chunk.iter().map(String::as_str))
                .map_err(remote)?;
            sent += chunk.len();
            chunk.clear();
        }
        if eof {
            break;
        }
    }
    let snap = client
        .wait_drained(std::time::Duration::from_secs(600))
        .map_err(remote)?;
    out.push_str(&format!(
        "sent {sent} tables; census: {} submitted, {} classes\n",
        snap.submitted, snap.classes
    ));
    for class in client.top(top_k).map_err(remote)? {
        out.push_str(&format!(
            "class {:032x}  size {:>8}  representative {}\n",
            class.key, class.size, class.representative
        ));
    }
    out.push_str(&format!("server: {}\n", client.stats().map_err(remote)?));
    client.quit().map_err(remote)?;
    Ok(out)
}

fn format_tables(fns: &[TruthTable]) -> String {
    let mut out = String::new();
    for f in fns {
        out.push_str(&format!("{}:{}\n", f.num_vars(), f.to_hex()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn usage_on_unknown_command() {
        assert!(matches!(
            run(&args(&["frobnicate"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(run(&[]), Err(CliError::Usage(_))));
    }

    #[test]
    fn sig_prints_table1_values() {
        let out = run(&args(&["sig", "e8"])).unwrap();
        assert!(out.contains("OCV1  = (1,1,1,3,3,3)"), "{out}");
        assert!(out.contains("OIV   = (2,2,2)"), "{out}");
        assert!(out.contains("OSV1  = (0,2,2,2)"), "{out}");
    }

    #[test]
    fn canon_methods_agree_on_majority_orbit() {
        let a = run(&args(&["canon", "e8"])).unwrap();
        let b = run(&args(&["canon", "d4"])).unwrap(); // maj with x0 negated
        let canon_of = |s: &str| s.split('=').nth(1).unwrap().trim().to_string();
        assert_eq!(canon_of(&a), canon_of(&b));
    }

    #[test]
    fn canon_rejects_unknown_method() {
        assert!(matches!(
            run(&args(&["canon", "e8", "--method", "magic"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn match_finds_witness() {
        let out = run(&args(&["match", "e8", "d4"])).unwrap();
        assert!(out.starts_with("NPN-EQUIVALENT"), "{out}");
        let out = run(&args(&["match", "e8", "96"])).unwrap();
        assert!(out.starts_with("NOT equivalent"), "{out}");
        let out = run(&args(&["match", "e8", "cafe"])).unwrap();
        assert!(out.contains("different variable counts"), "{out}");
    }

    #[test]
    fn classify_reads_file() {
        let dir = std::env::temp_dir().join("facepoint-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tables.txt");
        std::fs::write(&path, "# comment\ne8\nd4\n96\n\n3:69\n").unwrap();
        let out = run(&args(&["classify", "--verbose", path.to_str().unwrap()])).unwrap();
        assert!(out.contains("4 functions, 2 candidate classes"), "{out}");
        let out = run(&args(&["classify", "--exact", path.to_str().unwrap()])).unwrap();
        assert!(out.contains("2 exact classes"), "{out}");
    }

    #[test]
    fn classify_parallel_routes_through_engine() {
        let dir = std::env::temp_dir().join("facepoint-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tables-parallel.txt");
        std::fs::write(&path, "e8\nd4\n96\n3:69\n").unwrap();
        let serial = run(&args(&["classify", path.to_str().unwrap()])).unwrap();
        let parallel = run(&args(&[
            "classify",
            "--parallel",
            "2",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(
            parallel.contains("4 functions, 2 candidate classes"),
            "{parallel}"
        );
        assert!(parallel.contains("engine:"), "{parallel}");
        // Same partition summary as the one-shot classifier.
        assert_eq!(
            serial.lines().next().unwrap(),
            parallel.lines().next().unwrap()
        );
        assert!(matches!(
            run(&args(&[
                "classify",
                "--parallel",
                "nope",
                path.to_str().unwrap()
            ])),
            Err(CliError::Usage(_))
        ));
        // A bare trailing --parallel must error, not silently run the
        // serial path.
        assert!(matches!(
            run(&args(&["classify", path.to_str().unwrap(), "--parallel"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn suite_classify_reports_classes() {
        let out = run(&args(&[
            "suite",
            "--support",
            "4",
            "--limit",
            "200",
            "--classify",
            "--parallel",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("cut functions"), "{out}");
        assert!(out.contains("candidate classes"), "{out}");
        assert!(out.contains("engine:"), "{out}");
    }

    #[test]
    fn suite_emits_parseable_tables() {
        let out = run(&args(&["suite", "--support", "4", "--limit", "10"])).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 10);
        for line in lines {
            let t = crate::parse::parse_table(line).unwrap();
            assert_eq!(t.num_vars(), 4);
        }
    }

    #[test]
    fn classify_persist_resumes_and_recover_diffs() {
        let dir =
            std::env::temp_dir().join(format!("facepoint-cli-persist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let tables = std::env::temp_dir().join("facepoint-cli-test");
        std::fs::create_dir_all(&tables).unwrap();
        let path = tables.join("persist-tables.txt");
        std::fs::write(&path, "e8\nd4\n96\n3:69\n").unwrap();
        let store = dir.to_str().unwrap().to_string();

        // First run: creates the store (engine implied by --persist).
        let out = run(&args(&[
            "classify",
            "--persist",
            &store,
            path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("4 functions, 2 candidate classes"), "{out}");
        assert!(out.contains("engine:"), "{out}");
        assert!(
            !out.contains("resumed:"),
            "fresh store resumes nothing: {out}"
        );

        // recover alone prints the stored census read-only.
        let out = run(&args(&["recover", &store])).unwrap();
        assert!(out.contains("2 classes, 4 members"), "{out}");
        assert!(out.contains("signature set: "), "{out}");

        // recover with the same FILE reports exact convergence.
        let out = run(&args(&["recover", &store, path.to_str().unwrap()])).unwrap();
        assert!(
            out.contains("store census == one-shot classification"),
            "{out}"
        );

        // Second classify run resumes the census and doubles counts.
        let out = run(&args(&[
            "classify",
            "--persist",
            &store,
            path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("resumed:"), "{out}");
        let out = run(&args(&["recover", &store])).unwrap();
        assert!(out.contains("2 classes, 8 members"), "{out}");
        // Now the store is ahead of a single FILE's worth.
        let out = run(&args(&["recover", &store, path.to_str().unwrap()])).unwrap();
        assert!(out.contains("2 ahead"), "{out}");

        // Missing directory is a usable error, not a panic.
        assert!(matches!(
            run(&args(&["recover", "/nonexistent/facepoint-store"])),
            Err(CliError::BadInput(_))
        ));
        assert!(matches!(run(&args(&["recover"])), Err(CliError::Usage(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn classify_certified_persists_and_recovers() {
        let dir =
            std::env::temp_dir().join(format!("facepoint-cli-certified-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let tables = std::env::temp_dir().join("facepoint-cli-test");
        std::fs::create_dir_all(&tables).unwrap();
        let path = tables.join("certified-tables.txt");
        // {e8,d4} are one NPN class, {96,69} another (parity and its
        // complement).
        std::fs::write(&path, "e8\nd4\n96\n3:69\n").unwrap();
        let store = dir.to_str().unwrap().to_string();

        // --certified implies the engine and proves the partition.
        let out = run(&args(&["classify", "--certified", path.to_str().unwrap()])).unwrap();
        assert!(out.contains("4 functions, 2 certified classes"), "{out}");
        assert!(out.contains("certified: "), "{out}");

        // A certified census persists and recovers as certified.
        let out = run(&args(&[
            "classify",
            "--certified",
            "--persist",
            &store,
            path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("2 certified classes"), "{out}");
        let out = run(&args(&["recover", &store])).unwrap();
        assert!(out.contains("certified resolution"), "{out}");
        assert!(out.contains("2 classes, 4 members"), "{out}");
        let out = run(&args(&["recover", &store, path.to_str().unwrap()])).unwrap();
        assert!(
            out.contains("store census == one-shot classification"),
            "{out}"
        );

        // A digest engine must refuse the certified store (and vice
        // versa): silently mixing tiers would corrupt the census.
        assert!(matches!(
            run(&args(&[
                "classify",
                "--persist",
                &store,
                path.to_str().unwrap()
            ])),
            Err(CliError::BadInput(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn suite_persist_writes_a_store() {
        let dir = std::env::temp_dir().join(format!(
            "facepoint-cli-suite-persist-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = dir.to_str().unwrap().to_string();
        // --persist implies engine classification even without
        // --classify.
        let out = run(&args(&[
            "suite",
            "--support",
            "4",
            "--limit",
            "100",
            "--persist",
            &store,
        ]))
        .unwrap();
        assert!(out.contains("cut functions"), "{out}");
        assert!(out.contains("engine:"), "{out}");
        let recovered = run(&args(&["recover", &store])).unwrap();
        assert!(recovered.contains("100 members"), "{recovered}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn serve_and_client_usage_errors() {
        assert!(matches!(run(&args(&["serve"])), Err(CliError::Usage(_))));
        assert!(matches!(run(&args(&["client"])), Err(CliError::Usage(_))));
        assert!(matches!(
            run(&args(&["serve", "127.0.0.1:0", "--set", "bogus"])),
            Err(CliError::Usage(_))
        ));
        // --metrics-interval wants a positive number of seconds.
        for bad in ["nope", "0", "-1", "inf"] {
            assert!(
                matches!(
                    run(&args(&["serve", "127.0.0.1:0", "--metrics-interval", bad])),
                    Err(CliError::Usage(_))
                ),
                "--metrics-interval {bad} accepted"
            );
        }
        assert!(matches!(
            run(&args(&["serve", "127.0.0.1:0", "--metrics-interval"])),
            Err(CliError::Usage(_))
        ));
        // Nothing listening on a reserved port: a usable error.
        assert!(matches!(
            run(&args(&["client", "127.0.0.1:1", "/no/such/file"])),
            Err(CliError::BadInput(_))
        ));
    }

    /// A `Write` sink the emitter test can inspect from outside the
    /// emitter thread.
    #[derive(Clone, Default)]
    struct SharedSink(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

    impl std::io::Write for SharedSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn metrics_emitter_writes_jsonl_and_stops() {
        let engine = facepoint_engine::Engine::builder()
            .config(facepoint_engine::EngineConfig {
                workers: 2,
                ..facepoint_engine::EngineConfig::default()
            })
            .build()
            .unwrap();
        let sink = SharedSink::default();
        let (stop, handle) = spawn_metrics_emitter(
            engine.telemetry(),
            std::time::Duration::from_millis(20),
            sink.clone(),
        );
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while sink.0.lock().unwrap().is_empty() {
            assert!(
                std::time::Instant::now() < deadline,
                "emitter never produced a line"
            );
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        stop.store(true, std::sync::atomic::Ordering::SeqCst);
        handle.join().unwrap();
        let text = String::from_utf8(sink.0.lock().unwrap().clone()).unwrap();
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"engine_workers\": 2"), "{line}");
            assert!(
                line.contains("\"engine_chunk_classify_nanos_count\""),
                "{line}"
            );
        }
        drop(engine.finish());
    }

    #[test]
    fn client_streams_to_an_in_process_server() {
        let engine = facepoint_engine::Engine::builder()
            .config(facepoint_engine::EngineConfig {
                workers: 2,
                ..facepoint_engine::EngineConfig::default()
            })
            .build()
            .unwrap();
        let server = Server::bind("127.0.0.1:0", engine, ServerConfig::default()).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.shutdown_handle();
        let run_thread = std::thread::spawn(move || server.run());

        let dir = std::env::temp_dir().join("facepoint-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("client-tables.txt");
        std::fs::write(&path, "# census\ne8\nd4\n96\n3:69\n").unwrap();
        let out = run(&args(&[
            "client",
            &addr.to_string(),
            path.to_str().unwrap(),
            "--top",
            "3",
        ]))
        .unwrap();
        assert!(out.contains("protocol v1"), "{out}");
        assert!(out.contains("sent 4 tables"), "{out}");
        assert!(out.contains("2 classes"), "{out}");
        assert!(out.contains("representative 3:"), "{out}");
        assert!(out.contains("server: "), "{out}");

        // --metrics scrapes the telemetry snapshot instead of streaming.
        let scrape = run(&args(&["client", &addr.to_string(), "--metrics"])).unwrap();
        assert!(scrape.contains("engine_workers 2.000000\n"), "{scrape}");
        assert!(
            scrape.contains("engine_functions_processed_total 4\n"),
            "{scrape}"
        );
        assert!(scrape.contains("serve_metrics_nanos_count"), "{scrape}");

        handle.shutdown();
        let report = run_thread.join().unwrap().unwrap().unwrap();
        assert_eq!(report.classification.num_classes(), 2);
    }

    #[test]
    fn cuts_on_written_aiger() {
        let mut aig = Aig::new(4);
        let (a, b) = (aig.input(0), aig.input(1));
        let (c, d) = (aig.input(2), aig.input(3));
        let x = aig.and(a, b);
        let y = aig.and(c, d);
        let o = aig.or(x, y);
        aig.add_output(o);
        let dir = std::env::temp_dir().join("facepoint-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("circ.aag");
        std::fs::write(&path, aig.to_aiger()).unwrap();
        let out = run(&args(&["cuts", path.to_str().unwrap(), "--support", "4"])).unwrap();
        assert!(!out.is_empty());
        for line in out.lines() {
            assert!(crate::parse::parse_table(line).is_ok(), "{line}");
        }
    }
}
