//! Truth-table argument parsing for the CLI.

use crate::commands::CliError;
use facepoint_truth::TruthTable;

/// Infers the variable count from a hex digit count: `d = 2^(n-2)` for
/// `n ≥ 2`. One digit means two variables (use an `n:` prefix for 0- or
/// 1-variable tables).
///
/// # Examples
///
/// ```
/// use facepoint_cli::infer_num_vars;
///
/// assert_eq!(infer_num_vars(2), Some(3));   // "e8"
/// assert_eq!(infer_num_vars(16), Some(6));
/// assert_eq!(infer_num_vars(3), None);      // not a power of two
/// ```
pub fn infer_num_vars(hex_digits: usize) -> Option<usize> {
    if hex_digits == 0 || !hex_digits.is_power_of_two() {
        return None;
    }
    Some(hex_digits.trailing_zeros() as usize + 2)
}

/// Parses `"e8"`, `"0xe8"` or `"3:e8"` into a truth table.
///
/// # Errors
///
/// Returns a [`CliError`] describing malformed prefixes, impossible
/// digit counts, or invalid hex.
pub fn parse_table(spec: &str) -> Result<TruthTable, CliError> {
    let spec = spec.trim();
    if let Some((n_str, hex)) = spec.split_once(':') {
        let n: usize = n_str
            .parse()
            .map_err(|_| CliError::BadTable(format!("bad variable count {n_str:?}")))?;
        return TruthTable::from_hex(n, hex)
            .map_err(|e| CliError::BadTable(format!("{spec:?}: {e}")));
    }
    let hex = spec
        .strip_prefix("0x")
        .or_else(|| spec.strip_prefix("0X"))
        .unwrap_or(spec);
    let n = infer_num_vars(hex.len()).ok_or_else(|| {
        CliError::BadTable(format!(
            "{spec:?}: cannot infer the variable count from {} digits; use n:hex",
            hex.len()
        ))
    })?;
    TruthTable::from_hex(n, hex).map_err(|e| CliError::BadTable(format!("{spec:?}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inference_table() {
        assert_eq!(infer_num_vars(1), Some(2));
        assert_eq!(infer_num_vars(2), Some(3));
        assert_eq!(infer_num_vars(4), Some(4));
        assert_eq!(infer_num_vars(8), Some(5));
        assert_eq!(infer_num_vars(256), Some(10));
        assert_eq!(infer_num_vars(0), None);
        assert_eq!(infer_num_vars(6), None);
    }

    #[test]
    fn parses_plain_and_prefixed() {
        assert_eq!(parse_table("e8").unwrap(), TruthTable::majority(3));
        assert_eq!(parse_table("0xE8").unwrap(), TruthTable::majority(3));
        assert_eq!(parse_table("3:e8").unwrap(), TruthTable::majority(3));
        assert_eq!(
            parse_table("1:2").unwrap(),
            TruthTable::projection(1, 0).unwrap()
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_table("zzz").is_err());
        assert!(
            parse_table("abc").is_err(),
            "3 digits is not a power of two"
        );
        assert!(parse_table("x:e8").is_err());
        assert!(parse_table("").is_err());
    }
}
