//! Proves the acceptance property of the signature kernel: **digest
//! mode performs zero per-function heap allocations in steady state**.
//!
//! A counting global allocator wraps the system allocator (the shared
//! `facepoint-testsupport` harness — implementing `GlobalAlloc` is
//! inherently unsafe, and that crate is where the audited `unsafe`
//! lives). After a warm-up pass grows every scratch buffer to its
//! high-water mark, a second pass over the same tables must not
//! allocate at all.

use facepoint_core::SignatureKernel;
use facepoint_sig::SignatureSet;
use facepoint_testsupport::{assert_some_pass_allocates_nothing, CountingAllocator};
use facepoint_truth::TruthTable;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// A deterministic mixed workload: balanced tables (dual-polarity
/// path), unbalanced tables of both polarities, and structured
/// functions whose polarity tie survives every stage.
fn workload(n: usize) -> Vec<TruthTable> {
    let mut fns = vec![
        TruthTable::parity(n),
        TruthTable::majority(if n % 2 == 1 { n } else { n - 1 }),
        TruthTable::zero(n).unwrap(),
        TruthTable::one(n).unwrap(),
    ];
    for k in 0..24u64 {
        let t = TruthTable::from_fn(n, |m| {
            (m ^ (m >> 2)).wrapping_mul(0x9E37_79B9_7F4A_7C15 ^ k) % 7 < 3
        })
        .unwrap();
        fns.push(t);
    }
    fns
}

// One #[test] on purpose: the allocation counter is process-global, so
// a second test running on a parallel harness thread would bleed its
// allocations into this one's measured window.
#[test]
fn steady_state_digest_and_msv_into_allocate_nothing() {
    // Digest keys: the acceptance property.
    for set in [SignatureSet::all(), SignatureSet::all_extended()] {
        for n in [4usize, 6, 8] {
            let fns = workload(n);
            let mut kernel = SignatureKernel::new(set);
            // Warm-up: grow every scratch buffer to its high-water mark
            // and record the expected keys.
            let expected: Vec<u128> = fns.iter().map(|f| kernel.key(f)).collect();
            assert_some_pass_allocates_nothing(
                format_args!("steady-state digest keys (set = {set}, n = {n})"),
                || {
                    for (f, &want) in fns.iter().zip(&expected) {
                        assert_eq!(kernel.key(f), want);
                    }
                },
            );
        }
    }

    // The bit-sliced lane batch: a whole n = 10 batch keyed through
    // `key_batch` must be allocation-free once the lane buffers and the
    // caller's key vector have warmed up.
    {
        let fns = workload(10);
        let mut kernel = SignatureKernel::new(SignatureSet::all());
        let mut keys = Vec::new();
        kernel.key_batch(&fns, &mut keys); // warm-up growth
        let expected = keys.clone();
        assert_some_pass_allocates_nothing(
            format_args!("steady-state batched digest keys (n = 10)"),
            || {
                keys.clear();
                kernel.key_batch(&fns, &mut keys);
                assert_eq!(keys, expected);
            },
        );
    }

    // Materializing into a caller-reused buffer is also allocation-free.
    let fns = workload(7);
    let mut kernel = SignatureKernel::new(SignatureSet::all());
    let mut out = Vec::new();
    for f in &fns {
        kernel.msv_into(f, &mut out); // warm-up growth
    }
    assert_some_pass_allocates_nothing(format_args!("materializing into a reused buffer"), || {
        for f in &fns {
            kernel.msv_into(f, &mut out);
        }
    });
}
