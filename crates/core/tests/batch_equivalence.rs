//! The tentpole acceptance property of the bit-sliced lane batch:
//! [`SignatureKernel::key_batch`] produces **bit-identical** digests to
//! per-function [`SignatureKernel::key`] calls — over every one of the
//! 128 `SignatureSet` subsets, every arity up to 8 (plus spot checks at
//! n = 9 and 10), batch widths around the lane boundaries, and
//! mixed-arity slices that force run splitting.

use facepoint_core::SignatureKernel;
use facepoint_sig::{SignatureSet, LANE_WIDTH};
use facepoint_truth::TruthTable;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// All 128 subsets of the seven signature families.
fn all_signature_subsets() -> Vec<SignatureSet> {
    const FAMILIES: [SignatureSet; 7] = [
        SignatureSet::OCV1,
        SignatureSet::OCV2,
        SignatureSet::OCV3,
        SignatureSet::OIV,
        SignatureSet::OSV,
        SignatureSet::OSDV,
        SignatureSet::WALSH,
    ];
    (0u32..128)
        .map(|mask| {
            FAMILIES
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .fold(SignatureSet::EMPTY, |acc, (_, &fam)| acc | fam)
        })
        .collect()
}

fn scalar_keys(set: SignatureSet, fns: &[TruthTable]) -> Vec<u128> {
    let mut kernel = SignatureKernel::new(set);
    fns.iter().map(|f| kernel.key(f)).collect()
}

fn batch_keys(set: SignatureSet, fns: &[TruthTable]) -> Vec<u128> {
    let mut kernel = SignatureKernel::new(set);
    let mut keys = Vec::new();
    kernel.key_batch(fns, &mut keys);
    keys
}

#[test]
fn every_signature_subset_agrees_at_small_arity() {
    let mut rng = StdRng::seed_from_u64(0x128_5B5);
    for set in all_signature_subsets() {
        // A fresh small batch per subset keeps the full sweep fast
        // while still exercising run splitting (two arities).
        let mut fns: Vec<TruthTable> = Vec::new();
        for n in [6usize, 7] {
            for _ in 0..3 {
                fns.push(TruthTable::random(n, &mut rng).unwrap());
            }
        }
        assert_eq!(batch_keys(set, &fns), scalar_keys(set, &fns), "set = {set}");
    }
}

#[test]
fn batch_widths_across_lane_boundaries_agree() {
    let mut rng = StdRng::seed_from_u64(0x71D7);
    let set = SignatureSet::all();
    for n in 0..=8usize {
        let pool: Vec<TruthTable> = (0..(LANE_WIDTH + 70))
            .map(|_| TruthTable::random(n, &mut rng).unwrap())
            .collect();
        for width in [1usize, 2, 63, 64, 65, 128, 134] {
            let fns = &pool[..width];
            assert_eq!(
                batch_keys(set, fns),
                scalar_keys(set, fns),
                "n = {n}, width = {width}"
            );
        }
    }
}

#[test]
fn large_arity_and_mixed_runs_agree() {
    let mut rng = StdRng::seed_from_u64(0x9A10);
    // Interleaved arities force the run splitter to flush constantly.
    let mut fns: Vec<TruthTable> = Vec::new();
    for i in 0..40usize {
        let n = [9usize, 10, 9, 4][i % 4];
        fns.push(TruthTable::random(n, &mut rng).unwrap());
    }
    for set in [SignatureSet::all(), SignatureSet::all_extended()] {
        assert_eq!(batch_keys(set, &fns), scalar_keys(set, &fns), "set = {set}");
    }
}
