//! Property-based tests of the classifier layer: partition soundness
//! against ground truth, key-mode and threading equivalence, and metric
//! coherence.

use facepoint_core::{refine_to_exact, Classifier, KeyMode, PartitionComparison};
use facepoint_exact::exact_classify;
use facepoint_sig::SignatureSet;
use facepoint_truth::{NpnTransform, Permutation, TruthTable};
use proptest::prelude::*;

/// Strategy: a workload of random tables with planted equivalent copies.
fn arb_workload() -> impl Strategy<Value = Vec<TruthTable>> {
    (2usize..=5, 1usize..=12, any::<u64>()).prop_map(|(n, groups, seed)| {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut fns = Vec::new();
        for _ in 0..groups {
            let f = TruthTable::random(n, &mut rng).unwrap();
            let copies = 1 + (seed as usize % 3);
            for _ in 0..copies {
                fns.push(NpnTransform::random(n, &mut rng).apply(&f));
            }
        }
        fns
    })
}

fn arb_set() -> impl Strategy<Value = SignatureSet> {
    prop_oneof![
        Just(SignatureSet::OIV),
        Just(SignatureSet::OCV1),
        Just(SignatureSet::OSV),
        Just(SignatureSet::OIV | SignatureSet::OSV),
        Just(SignatureSet::OCV1 | SignatureSet::OCV2 | SignatureSet::OSV),
        Just(SignatureSet::all()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn classifier_never_splits(fns in arb_workload(), set in arb_set()) {
        let ours = Classifier::new(set).classify(fns.clone());
        let exact = exact_classify(&fns);
        let cmp = PartitionComparison::compare(ours.labels(), exact.labels());
        prop_assert_eq!(cmp.split_classes, 0, "{:?}", cmp);
        prop_assert!(ours.num_classes() <= exact.num_classes());
    }

    #[test]
    fn key_modes_agree(fns in arb_workload()) {
        let digest = Classifier::new(SignatureSet::all()).classify(fns.clone());
        let full = Classifier::new(SignatureSet::all())
            .with_key_mode(KeyMode::Full)
            .classify(fns);
        prop_assert_eq!(digest.labels(), full.labels());
    }

    #[test]
    fn threading_is_transparent(fns in arb_workload()) {
        let seq = Classifier::new(SignatureSet::all()).classify(fns.clone());
        let par = Classifier::new(SignatureSet::all())
            .with_threads(3)
            .classify(fns);
        prop_assert_eq!(seq.labels(), par.labels());
    }

    #[test]
    fn equivalent_copies_always_collide(
        n in 1usize..=6,
        seed in any::<u64>(),
        set in arb_set(),
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let f = TruthTable::random(n, &mut rng).unwrap();
        let g = NpnTransform::random(n, &mut rng).apply(&f);
        let c = Classifier::new(set).classify(vec![f, g]);
        prop_assert_eq!(c.num_classes(), 1);
    }

    #[test]
    fn refinement_is_exact(fns in arb_workload(), set in arb_set()) {
        let rough = Classifier::new(set).classify(fns.clone());
        let refined = refine_to_exact(&fns, &rough);
        let exact = exact_classify(&fns);
        let cmp = PartitionComparison::compare(refined.labels(), exact.labels());
        prop_assert!(cmp.is_exact(), "{:?}", cmp);
    }

    #[test]
    fn hierarchical_equals_flat(fns in arb_workload(), set in arb_set()) {
        let flat = Classifier::new(set).classify(fns.clone());
        let lazy = Classifier::new(set).classify_hierarchical(fns);
        prop_assert_eq!(flat.num_classes(), lazy.num_classes());
        for i in 0..flat.num_functions() {
            for j in (i + 1)..flat.num_functions() {
                prop_assert_eq!(
                    flat.label(i) == flat.label(j),
                    lazy.label(i) == lazy.label(j)
                );
            }
        }
    }

    #[test]
    fn class_sizes_partition_input(fns in arb_workload()) {
        let c = Classifier::new(SignatureSet::all()).classify(fns.clone());
        let total: usize = c.classes().iter().map(|k| k.size()).sum();
        prop_assert_eq!(total, fns.len());
        // Representative of each class belongs to the class.
        for class in c.classes() {
            let rep_label = c.labels()[fns
                .iter()
                .position(|f| f == class.representative())
                .expect("representative is an input")];
            prop_assert_eq!(rep_label, class.id());
        }
    }

    #[test]
    fn label_permutation_invariance(fns in arb_workload(), seed in any::<u64>()) {
        // Shuffling the input order renames labels but preserves the
        // partition.
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let perm = Permutation::random(fns.len(), &mut rng);
        let shuffled: Vec<TruthTable> =
            (0..fns.len()).map(|i| fns[perm.map(i)].clone()).collect();
        let a = Classifier::new(SignatureSet::all()).classify(fns.clone());
        let b = Classifier::new(SignatureSet::all()).classify(shuffled);
        prop_assert_eq!(a.num_classes(), b.num_classes());
        for i in 0..fns.len() {
            for j in 0..fns.len() {
                prop_assert_eq!(
                    a.label(perm.map(i)) == a.label(perm.map(j)),
                    b.label(i) == b.label(j)
                );
            }
        }
    }
}
