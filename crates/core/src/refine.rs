//! Refinement of a signature classification to an exact one.
//!
//! The paper's conclusion notes that "influence and sensitivity still have
//! great potential to be extended to the traditional method to achieve
//! exact NPN classification" — this module is that extension: take the
//! signature buckets (already NPN-sound) and run the exact pairwise
//! matcher *inside* each bucket only. Because buckets are tiny and almost
//! always pure, the exact pass costs little more than the signature pass.

use crate::classifier::Classification;
use facepoint_exact::{are_npn_equivalent, UnionFind};
use facepoint_truth::TruthTable;

/// Exact class labels obtained by refining `classification` (produced on
/// exactly these `fns`, in the same order) with pairwise NPN matching
/// inside each signature class.
///
/// # Panics
///
/// Panics if `classification` does not label exactly `fns.len()` items.
///
/// # Examples
///
/// ```
/// use facepoint_core::{refine_to_exact, Classifier};
/// use facepoint_sig::SignatureSet;
/// use facepoint_truth::TruthTable;
///
/// let fns = vec![TruthTable::majority(3), TruthTable::parity(3)];
/// // Even a signature-free classification refines to the exact one.
/// let rough = Classifier::new(SignatureSet::EMPTY).classify(fns.clone());
/// assert_eq!(rough.num_classes(), 1);
/// let exact = refine_to_exact(&fns, &rough);
/// assert_eq!(exact.num_classes(), 2);
/// ```
pub fn refine_to_exact(
    fns: &[TruthTable],
    classification: &Classification,
) -> facepoint_exact::ClassLabels {
    assert_eq!(
        fns.len(),
        classification.num_functions(),
        "classification must label exactly these functions"
    );
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); classification.num_classes()];
    for (i, &label) in classification.labels().iter().enumerate() {
        buckets[label].push(i);
    }
    let mut uf = UnionFind::new(fns.len());
    for members in &buckets {
        let mut reps: Vec<usize> = Vec::new();
        for &i in members {
            let mut joined = false;
            for &r in &reps {
                if are_npn_equivalent(&fns[i], &fns[r]) {
                    uf.union(i, r);
                    joined = true;
                    break;
                }
            }
            if !joined {
                reps.push(i);
            }
        }
    }
    let labels = uf.labels();
    facepoint_exact::ClassLabels::from_keys(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::Classifier;
    use facepoint_exact::exact_classify;
    use facepoint_sig::SignatureSet;
    use facepoint_truth::NpnTransform;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn refinement_recovers_exact_partition() {
        let mut rng = StdRng::seed_from_u64(171);
        let mut fns = Vec::new();
        for _ in 0..20 {
            let f = TruthTable::random(4, &mut rng).unwrap();
            fns.push(NpnTransform::random(4, &mut rng).apply(&f));
            fns.push(f);
        }
        for set in [SignatureSet::EMPTY, SignatureSet::OIV, SignatureSet::all()] {
            let rough = Classifier::new(set).classify(fns.clone());
            let refined = refine_to_exact(&fns, &rough);
            let exact = exact_classify(&fns);
            assert_eq!(refined.num_classes(), exact.num_classes(), "set = {set}");
            for i in 0..fns.len() {
                for j in (i + 1)..fns.len() {
                    assert_eq!(
                        refined.label(i) == refined.label(j),
                        exact.label(i) == exact.label(j),
                        "set = {set}, pair ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn already_exact_classification_is_untouched() {
        let fns = vec![
            TruthTable::majority(3),
            TruthTable::majority(3).flip_var(2),
            TruthTable::projection(3, 1).unwrap(),
        ];
        let rough = Classifier::new(SignatureSet::all()).classify(fns.clone());
        let refined = refine_to_exact(&fns, &rough);
        assert_eq!(refined.num_classes(), rough.num_classes());
    }
}
