//! The signature-hash NPN classifier — Algorithm 1 of the paper.
//!
//! Per function: compute the selected signature vectors, assemble the
//! canonical Mixed Signature Vector, hash it, and group equal hashes.
//! There is no transformation enumeration anywhere, so the runtime is a
//! function of *bit-width and function count only* — the stability
//! property the paper demonstrates in its Fig. 5.

use crate::kernel::SignatureKernel;
use facepoint_sig::{Msv, SignatureSet};
use facepoint_truth::TruthTable;
use std::collections::HashMap;

/// How classification keys are stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KeyMode {
    /// 128-bit FNV-1a digest of the MSV: constant memory per class,
    /// deterministic, collision odds ≈ 10⁻²⁰ at 10⁶ functions.
    #[default]
    Digest,
    /// The full MSV as the map key: collision-free, more memory.
    Full,
}

/// The NPN classifier of the paper (Algorithm 1).
///
/// Configure the signature families ([`SignatureSet`]) — the eight
/// Table II columns are preset in
/// [`SignatureSet::table2_columns`] — then feed truth tables to
/// [`Classifier::classify`].
///
/// # Examples
///
/// ```
/// use facepoint_core::Classifier;
/// use facepoint_sig::SignatureSet;
/// use facepoint_truth::TruthTable;
///
/// let classifier = Classifier::new(SignatureSet::all());
/// let result = classifier.classify(vec![
///     TruthTable::majority(3),
///     TruthTable::majority(3).flip_var(0), // same class
///     TruthTable::parity(3),               // different class
/// ]);
/// assert_eq!(result.num_classes(), 2);
/// assert_eq!(result.label(0), result.label(1));
/// ```
#[derive(Debug, Clone)]
pub struct Classifier {
    set: SignatureSet,
    key_mode: KeyMode,
    threads: usize,
}

/// The 128-bit signature key of one function — the per-function work of
/// Algorithm 1 in digest form: `fnv128(msv(f, set))`.
///
/// This is exactly the key [`Classifier::classify`] buckets on in
/// [`KeyMode::Digest`], exposed so external drivers (the streaming
/// engine, caches, persistent stores) can compute keys without going
/// through a `Classifier`. Equal keys of same-`set` calls are necessary
/// for NPN equivalence (up to the ≈ 10⁻²⁰ digest-collision odds).
///
/// # Examples
///
/// ```
/// use facepoint_core::signature_key;
/// use facepoint_sig::SignatureSet;
/// use facepoint_truth::TruthTable;
///
/// let maj = TruthTable::majority(3);
/// let equiv = maj.flip_var(0);
/// let set = SignatureSet::all();
/// assert_eq!(signature_key(&maj, set), signature_key(&equiv, set));
/// ```
pub fn signature_key(f: &TruthTable, set: SignatureSet) -> u128 {
    SignatureKernel::new(set).key(f)
}

impl Classifier {
    /// Creates a classifier over the given signature families
    /// (digest keys, single-threaded).
    pub fn new(set: SignatureSet) -> Self {
        Classifier {
            set,
            key_mode: KeyMode::Digest,
            threads: 1,
        }
    }

    /// Switches to collision-free full-vector keys.
    #[must_use]
    pub fn with_key_mode(mut self, mode: KeyMode) -> Self {
        self.key_mode = mode;
        self
    }

    /// Computes signatures on `threads` worker threads (the hash join
    /// stays single-threaded). `0` selects the available parallelism.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            threads
        };
        self
    }

    /// The configured signature families.
    pub fn signature_set(&self) -> SignatureSet {
        self.set
    }

    /// Classifies a collection of truth tables into candidate NPN
    /// classes.
    ///
    /// Equal signatures are *necessary* for NPN equivalence, so the
    /// partition can only merge true classes, never split one: the class
    /// count is a lower bound of the exact count, reaching it when the
    /// signature set is discriminating enough (paper Table II: exact for
    /// `n ≤ 7` with `OIV+OSV+OSDV`).
    pub fn classify(&self, fns: impl IntoIterator<Item = TruthTable>) -> Classification {
        let fns: Vec<TruthTable> = fns.into_iter().collect();
        match self.key_mode {
            // The digest path buckets on exactly `signature_key`,
            // streamed off the kernel — the MSV is never materialized.
            // Each worker feeds its whole chunk through the kernel's
            // bit-sliced lane batch (`key_batch`); the keys are
            // bit-identical to per-function `kernel.key` calls.
            KeyMode::Digest => {
                let keys = self.batched_keys(&fns);
                self.group(fns, keys)
            }
            KeyMode::Full => {
                let msvs: Vec<Msv> = self.map_with_kernel(&fns, |kernel, f| kernel.msv(f));
                self.group(fns, msvs)
            }
        }
    }

    /// Digest keys for every table, each worker thread lane-batching
    /// its chunk through one reusable [`SignatureKernel::key_batch`].
    fn batched_keys(&self, fns: &[TruthTable]) -> Vec<u128> {
        if self.threads <= 1 || fns.len() < 2 * self.threads {
            let mut kernel = SignatureKernel::new(self.set);
            let mut keys = Vec::with_capacity(fns.len());
            kernel.key_batch(fns, &mut keys);
            return keys;
        }
        let chunk = fns.len().div_ceil(self.threads);
        let mut out = vec![0u128; fns.len()];
        std::thread::scope(|scope| {
            for (fns_chunk, out_chunk) in fns.chunks(chunk).zip(out.chunks_mut(chunk)) {
                scope.spawn(move || {
                    let mut kernel = SignatureKernel::new(self.set);
                    kernel.key_batch_with(
                        fns_chunk.len(),
                        |i| &fns_chunk[i],
                        |i, key| {
                            out_chunk[i] = key;
                        },
                    );
                });
            }
        });
        out
    }

    /// Applies `per_fn` to every table, giving each worker thread one
    /// reusable [`SignatureKernel`] for the whole chunk (scratch
    /// buffers warm up once per thread, not once per function).
    fn map_with_kernel<T, F>(&self, fns: &[TruthTable], per_fn: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut SignatureKernel, &TruthTable) -> T + Sync,
    {
        if self.threads <= 1 || fns.len() < 2 * self.threads {
            let mut kernel = SignatureKernel::new(self.set);
            return fns.iter().map(|f| per_fn(&mut kernel, f)).collect();
        }
        let chunk = fns.len().div_ceil(self.threads);
        let mut out: Vec<Option<T>> = Vec::with_capacity(fns.len());
        out.resize_with(fns.len(), || None);
        std::thread::scope(|scope| {
            for (fns_chunk, out_chunk) in fns.chunks(chunk).zip(out.chunks_mut(chunk)) {
                let per_fn = &per_fn;
                scope.spawn(move || {
                    let mut kernel = SignatureKernel::new(self.set);
                    for (f, slot) in fns_chunk.iter().zip(out_chunk.iter_mut()) {
                        *slot = Some(per_fn(&mut kernel, f));
                    }
                });
            }
        });
        out.into_iter()
            .map(|m| m.expect("all slots filled"))
            .collect()
    }

    fn group<K: std::hash::Hash + Eq>(
        &self,
        fns: Vec<TruthTable>,
        keys: impl IntoIterator<Item = K>,
    ) -> Classification {
        let mut map: HashMap<K, usize> = HashMap::with_capacity(fns.len());
        let mut classes: Vec<NpnClass> = Vec::new();
        let mut labels = Vec::with_capacity(fns.len());
        for (f, key) in fns.into_iter().zip(keys) {
            let next = classes.len();
            let id = *map.entry(key).or_insert(next);
            if id == next {
                classes.push(NpnClass {
                    id,
                    representative: f,
                    size: 1,
                });
            } else {
                classes[id].size += 1;
            }
            labels.push(id);
        }
        Classification { labels, classes }
    }
}

/// Internal constructor turning raw group assignments into a
/// [`Classification`] (compacts ids to first-occurrence order).
pub(crate) struct NpnClassBuilder;

impl NpnClassBuilder {
    pub(crate) fn build(fns: Vec<TruthTable>, group_of: &[usize]) -> Classification {
        debug_assert_eq!(fns.len(), group_of.len());
        let mut remap: HashMap<usize, usize> = HashMap::with_capacity(fns.len());
        let mut classes: Vec<NpnClass> = Vec::new();
        let mut labels = Vec::with_capacity(fns.len());
        for (f, &g) in fns.into_iter().zip(group_of) {
            let next = classes.len();
            let id = *remap.entry(g).or_insert(next);
            if id == next {
                classes.push(NpnClass {
                    id,
                    representative: f,
                    size: 1,
                });
            } else {
                classes[id].size += 1;
            }
            labels.push(id);
        }
        Classification { labels, classes }
    }
}

/// One candidate NPN class produced by the classifier.
#[derive(Debug, Clone)]
pub struct NpnClass {
    id: usize,
    representative: TruthTable,
    size: usize,
}

impl NpnClass {
    /// Assembles a class record directly — for external classification
    /// drivers (such as the streaming engine) that group functions
    /// themselves and then package the result as a [`Classification`]
    /// via [`Classification::from_parts`].
    pub fn new(id: usize, representative: TruthTable, size: usize) -> Self {
        NpnClass {
            id,
            representative,
            size,
        }
    }

    /// Compact class id (`0..num_classes`, first-occurrence order).
    pub fn id(&self) -> usize {
        self.id
    }

    /// The first function assigned to this class.
    ///
    /// Note this is a *member*, not a canonical form: the signature
    /// classifier never computes canonical representatives (that is the
    /// point of the paper).
    pub fn representative(&self) -> &TruthTable {
        &self.representative
    }

    /// Number of input functions assigned to this class.
    pub fn size(&self) -> usize {
        self.size
    }
}

/// The output of [`Classifier::classify`]: a label per input and a
/// class table.
#[derive(Debug, Clone)]
pub struct Classification {
    labels: Vec<usize>,
    classes: Vec<NpnClass>,
}

impl Classification {
    /// Assembles a classification from a label vector and a class table
    /// — for external drivers (such as the streaming engine) that build
    /// the partition themselves but want the standard result type, so
    /// downstream consumers ([`refine_to_exact`](crate::refine_to_exact),
    /// [`PartitionComparison`](crate::PartitionComparison)) keep working.
    ///
    /// # Panics
    ///
    /// Panics unless `classes[i].id() == i` for all `i`, every label
    /// indexes into `classes`, and each class's `size` equals the number
    /// of labels referring to it — the invariants `classify` guarantees.
    pub fn from_parts(labels: Vec<usize>, classes: Vec<NpnClass>) -> Self {
        let mut counts = vec![0usize; classes.len()];
        for &l in &labels {
            assert!(l < classes.len(), "label {l} out of range");
            counts[l] += 1;
        }
        for (i, class) in classes.iter().enumerate() {
            assert_eq!(class.id, i, "class ids must be dense and in order");
            assert_eq!(
                class.size, counts[i],
                "class {i} size disagrees with its label count"
            );
        }
        Classification { labels, classes }
    }

    /// Number of candidate NPN classes found.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Number of classified functions.
    pub fn num_functions(&self) -> usize {
        self.labels.len()
    }

    /// The class label of input `i` (input order is preserved).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// All labels, parallel to the classified inputs.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// The classes, indexed by label.
    pub fn classes(&self) -> &[NpnClass] {
        &self.classes
    }

    /// Iterates over classes largest-first (useful for reporting).
    pub fn classes_by_size(&self) -> Vec<&NpnClass> {
        let mut v: Vec<&NpnClass> = self.classes.iter().collect();
        v.sort_by(|a, b| b.size.cmp(&a.size).then(a.id.cmp(&b.id)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use facepoint_truth::NpnTransform;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn workload(n: usize, groups: usize, copies: usize, seed: u64) -> Vec<TruthTable> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut fns = Vec::new();
        for _ in 0..groups {
            let f = TruthTable::random(n, &mut rng).unwrap();
            for _ in 0..copies {
                fns.push(NpnTransform::random(n, &mut rng).apply(&f));
            }
        }
        fns
    }

    #[test]
    fn equivalent_functions_collide() {
        let fns = workload(5, 8, 6, 1);
        let c = Classifier::new(SignatureSet::all()).classify(fns);
        assert!(c.num_classes() <= 8);
        assert_eq!(c.num_functions(), 48);
        let total: usize = c.classes().iter().map(NpnClass::size).sum();
        assert_eq!(total, 48);
    }

    #[test]
    fn digest_and_full_keys_agree() {
        let fns = workload(5, 10, 4, 2);
        let a = Classifier::new(SignatureSet::all()).classify(fns.clone());
        let b = Classifier::new(SignatureSet::all())
            .with_key_mode(KeyMode::Full)
            .classify(fns);
        assert_eq!(a.num_classes(), b.num_classes());
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn parallel_matches_sequential() {
        let fns = workload(6, 12, 4, 3);
        let seq = Classifier::new(SignatureSet::all()).classify(fns.clone());
        let par = Classifier::new(SignatureSet::all())
            .with_threads(4)
            .classify(fns);
        assert_eq!(seq.labels(), par.labels());
        assert_eq!(seq.num_classes(), par.num_classes());
    }

    #[test]
    fn weaker_sets_merge_more() {
        let fns = workload(5, 25, 2, 4);
        let weak = Classifier::new(SignatureSet::OIV).classify(fns.clone());
        let strong = Classifier::new(SignatureSet::all()).classify(fns);
        assert!(weak.num_classes() <= strong.num_classes());
    }

    #[test]
    fn labels_match_class_sizes() {
        let fns = workload(4, 6, 5, 5);
        let c = Classifier::new(SignatureSet::all()).classify(fns);
        for class in c.classes() {
            let count = c.labels().iter().filter(|&&l| l == class.id()).count();
            assert_eq!(count, class.size());
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let c = Classifier::new(SignatureSet::all()).classify(Vec::new());
        assert_eq!(c.num_classes(), 0);
        let c = Classifier::new(SignatureSet::all()).classify(vec![TruthTable::majority(3)]);
        assert_eq!(c.num_classes(), 1);
        assert_eq!(c.classes()[0].representative(), &TruthTable::majority(3));
    }

    #[test]
    fn classes_by_size_ordering() {
        let mut fns = workload(4, 1, 7, 6); // 7 copies of one class
        fns.extend(workload(4, 1, 2, 7)); // 2 of another
        let c = Classifier::new(SignatureSet::all()).classify(fns);
        let sizes: Vec<usize> = c.classes_by_size().iter().map(|k| k.size()).collect();
        let mut sorted = sizes.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(sizes, sorted);
    }
}
