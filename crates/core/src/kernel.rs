//! The classifier-side signature kernel: [`SigKernel`] plus digest
//! streaming.
//!
//! [`SignatureKernel`] is what every hot consumer owns — one per
//! `Classifier` worker thread, one per engine worker — and reuses
//! across an entire stream. In digest mode the canonical MSV is hashed
//! word-by-word off the kernel into a rolling [`Fnv128Stream`], so the
//! per-function key computation performs **zero** steady-state heap
//! allocations and never materializes the vector.

use crate::fnv::Fnv128Stream;
use facepoint_sig::{Msv, SigKernel, SignatureSet};
use facepoint_truth::TruthTable;

/// A reusable signature-key computer over a fixed [`SignatureSet`].
///
/// [`signature_key`](crate::signature_key) is the one-shot wrapper;
/// create a `SignatureKernel` whenever more than a handful of functions
/// are keyed.
///
/// # Examples
///
/// ```
/// use facepoint_core::{signature_key, SignatureKernel};
/// use facepoint_sig::SignatureSet;
/// use facepoint_truth::TruthTable;
///
/// let set = SignatureSet::all();
/// let mut kernel = SignatureKernel::new(set);
/// let maj = TruthTable::majority(3);
/// assert_eq!(kernel.key(&maj), signature_key(&maj, set));
/// ```
#[derive(Debug)]
pub struct SignatureKernel {
    set: SignatureSet,
    kernel: SigKernel,
}

impl SignatureKernel {
    /// A kernel keying over `set`.
    pub fn new(set: SignatureSet) -> Self {
        SignatureKernel {
            set,
            kernel: SigKernel::new(),
        }
    }

    /// The configured signature families.
    pub fn signature_set(&self) -> SignatureSet {
        self.set
    }

    /// The 128-bit signature key of `f`: `fnv128` of the canonical MSV,
    /// streamed (allocation-free in steady state).
    // analysis: no_alloc
    pub fn key(&mut self, f: &TruthTable) -> u128 {
        let mut stream = Fnv128Stream::new();
        self.kernel.msv_to(f, self.set, &mut stream);
        stream.finish()
    }

    /// Keys a whole slice, batching maximal same-arity runs of up to
    /// [`facepoint_sig::LANE_WIDTH`] functions through the kernel's
    /// bit-sliced lane pass; keys are appended to `keys` in input
    /// order and are bit-identical to per-function [`Self::key`] calls.
    ///
    /// Steady-state allocation-free once `keys` has warmed up to the
    /// largest batch seen.
    // analysis: no_alloc
    pub fn key_batch(&mut self, fns: &[TruthTable], keys: &mut Vec<u128>) {
        // analysis: allow(no-alloc, "appends into the caller's key buffer, which the zero_alloc test proves warmed after one batch")
        self.key_batch_with(fns.len(), |i| &fns[i], |_, key| keys.push(key));
    }

    /// Accessor-driven form of [`Self::key_batch`]: keys `count` tables
    /// resolved through `at` and hands `(index, key)` pairs to `emit`
    /// in index order — what the engine uses to batch the non-contiguous
    /// cache misses of a chunk without collecting them first.
    // analysis: no_alloc
    pub fn key_batch_with<'a>(
        &mut self,
        count: usize,
        at: impl Fn(usize) -> &'a TruthTable,
        mut emit: impl FnMut(usize, u128),
    ) {
        // Lane batching only pays inside the point-characteristic
        // sweep; sets without OSV/OSDV take the scalar path directly.
        if !self.set.contains(SignatureSet::OSV) && !self.set.contains(SignatureSet::OSDV) {
            for i in 0..count {
                emit(i, self.key(at(i)));
            }
            return;
        }
        let mut start = 0;
        while start < count {
            let n = at(start).num_vars();
            let mut end = start + 1;
            while end < count && end - start < facepoint_sig::LANE_WIDTH && at(end).num_vars() == n
            {
                end += 1;
            }
            if end - start == 1 {
                emit(start, self.key(at(start)));
            } else {
                self.kernel
                    .batch_point_sections_with(end - start, |i| at(start + i));
                for i in start..end {
                    let mut stream = Fnv128Stream::new();
                    self.kernel
                        .msv_to_batched(at(i), i - start, self.set, &mut stream);
                    emit(i, stream.finish());
                }
            }
            start = end;
        }
    }

    /// The canonical MSV words of `f`, written into `out` (reusing its
    /// allocation).
    // analysis: no_alloc
    pub fn msv_into(&mut self, f: &TruthTable, out: &mut Vec<u64>) {
        self.kernel.msv_into(f, self.set, out);
    }

    /// The canonical MSV of `f` as an owned value (allocates the
    /// result; scratch is still reused).
    pub fn msv(&mut self, f: &TruthTable) -> Msv {
        self.kernel.msv(f, self.set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use facepoint_sig::msv_reference;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn streamed_key_equals_hashed_reference_msv() {
        let mut rng = StdRng::seed_from_u64(0xFACE);
        for set in [
            SignatureSet::all(),
            SignatureSet::all_extended(),
            SignatureSet::OIV | SignatureSet::OSV,
            SignatureSet::EMPTY,
        ] {
            let mut kernel = SignatureKernel::new(set);
            for n in 0..=7usize {
                for _ in 0..6 {
                    let f = TruthTable::random(n, &mut rng).unwrap();
                    assert_eq!(
                        kernel.key(&f),
                        crate::fnv128(msv_reference(&f, set).as_words()),
                        "set = {set}, n = {n}, f = {f}"
                    );
                }
            }
        }
    }

    #[test]
    fn kernel_reuse_does_not_leak_state_across_functions() {
        let mut kernel = SignatureKernel::new(SignatureSet::all());
        let a = TruthTable::majority(5);
        let b = TruthTable::parity(5);
        let ka1 = kernel.key(&a);
        let kb = kernel.key(&b);
        let ka2 = kernel.key(&a);
        assert_eq!(ka1, ka2);
        assert_ne!(ka1, kb);
    }
}
