//! Binary wire format for durable class state.
//!
//! The streaming engine journals every class mutation to disk so a
//! census survives restarts; this module defines the records it writes.
//! Each record is exactly the per-class data that
//! [`Classification::from_parts`](crate::Classification::from_parts)
//! consumes on the read side — a digest key, a representative table and
//! a member count — so a recovered store can be turned back into a
//! `Classification` without recomputing a single signature.
//!
//! # Framing
//!
//! Every record travels in a self-delimiting frame:
//!
//! ```text
//! [len: u32 LE] [crc: u32 LE] [payload: len bytes]
//! ```
//!
//! `crc` is the CRC-32 (IEEE) of the payload. A reader walks frames
//! sequentially; the first frame whose length field runs past the end
//! of the file, or whose CRC does not match, marks a **torn tail** —
//! the crash cut a write short — and the reader reports the byte
//! offset of the last good frame so the caller can truncate there and
//! carry on. All integers are little-endian.
//!
//! # Payloads
//!
//! The first payload byte is the record kind:
//!
//! | kind | record | contents |
//! |---|---|---|
//! | 1 | [`Record::Class`] | key `u128`, rep\_seq `u64`, count `u64`, arity `u8`, table words |
//! | 2 | [`Record::Bump`]  | key `u128` |
//! | 3 | [`Record::Epoch`] | epoch `u64` |
//! | 4 | [`Record::CheckpointHeader`] | version `u32`, next\_gen `u64`, classes `u64`, last\_epoch `u64` |
//! | 5 | [`Record::Manifest`] | version `u32`, shards `u32`, set string (`u16` length prefix) |
//! | 6 | [`Record::Request`] | UTF-8 command line (rest of payload) |
//! | 7 | [`Record::Response`] | status `u8`, UTF-8 body (rest of payload) |
//!
//! Kinds 1–5 are the durable-store records. Kinds 6 and 7 are the
//! **service frames** of the `facepoint serve` wire protocol
//! (`docs/PROTOCOL.md` at the repository root): the same
//! `[len][crc][payload]` framing carries request and response lines
//! over a TCP connection, so torn-tail detection and CRC guarding work
//! identically on disk and on the wire.

use facepoint_truth::TruthTable;

/// Version stamped into [`Record::CheckpointHeader`] and
/// [`Record::Manifest`] frames. Bump on any incompatible layout change.
pub const WIRE_VERSION: u32 = 1;

/// Bytes of the `[len][crc]` frame prologue.
pub const FRAME_HEADER_LEN: usize = 8;

/// Upper bound on a single payload. Far beyond any real record (the
/// largest table is 2^16 bits = 8 KiB); a length field above this is
/// treated as corruption rather than trusted as an allocation size.
pub const MAX_PAYLOAD_LEN: usize = 1 << 20;

/// One durable record, as journaled by the engine's shard store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// A full class entry: written when a class is created, when its
    /// representative changes, and for every live class in a
    /// checkpoint. `count` is the member count at write time.
    Class {
        /// The class's 128-bit signature digest.
        key: u128,
        /// Submission number of `representative`.
        rep_seq: u64,
        /// Members recorded at the time of writing.
        count: u64,
        /// The earliest-submitted member seen so far.
        representative: TruthTable,
    },
    /// One more member joined an existing class (no table payload —
    /// the class's identity is already on disk).
    Bump {
        /// The class's 128-bit signature digest.
        key: u128,
    },
    /// An epoch barrier: everything before this frame was flushed (and,
    /// under the default sync policy, fsync'd) as one batch.
    Epoch {
        /// Monotonic barrier number within the store's lifetime.
        epoch: u64,
    },
    /// First frame of a checkpoint segment.
    CheckpointHeader {
        /// Format version ([`WIRE_VERSION`]).
        version: u32,
        /// Generation of the tail log this checkpoint is paired with:
        /// replay resumes from log segment `next_gen`, and any older
        /// log is already folded into the checkpoint.
        next_gen: u64,
        /// Number of `Class` frames that follow.
        classes: u64,
        /// Highest epoch barrier the checkpointed state covers —
        /// compaction deletes the old log (and the `Epoch` markers in
        /// it), so the numbering survives here and stays monotonic
        /// across clean restarts.
        last_epoch: u64,
    },
    /// The store's identity, written once at creation time.
    Manifest {
        /// Format version ([`WIRE_VERSION`]).
        version: u32,
        /// Shard count the key space is split over (fixed for the
        /// store's lifetime — shard assignment is derived from key
        /// bits).
        shards: u32,
        /// Display form of the signature set the keys were computed
        /// under (e.g. `"OCV1+OCV2+OIV+OSV+OSDV"`). Keys from
        /// different sets are incomparable, so mixing is refused.
        set: String,
    },
    /// One client→server command line of the `facepoint serve`
    /// protocol (`docs/PROTOCOL.md`). The payload after the kind byte
    /// is the whole line, UTF-8, no terminator — the frame already
    /// delimits it.
    Request {
        /// The command line, e.g. `"SUBMIT 3:e8"`.
        line: String,
    },
    /// One server→client reply of the `facepoint serve` protocol.
    Response {
        /// `0` for success; protocol error codes otherwise (the code
        /// space is defined by the protocol spec, not by this codec).
        status: u8,
        /// Human- and machine-readable reply body. May span multiple
        /// lines (`TOP` replies do); the frame delimits it.
        body: String,
    },
}

const KIND_CLASS: u8 = 1;
const KIND_BUMP: u8 = 2;
const KIND_EPOCH: u8 = 3;
const KIND_CHECKPOINT: u8 = 4;
const KIND_MANIFEST: u8 = 5;
const KIND_REQUEST: u8 = 6;
const KIND_RESPONSE: u8 = 7;

/// Why a frame or payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The file ends mid-frame, the length field points past the end of
    /// the data, or the CRC does not match: the tail was torn by a
    /// crash. `good_len` is the byte offset of the end of the last
    /// fully-valid frame — truncate there and the rest of the file is
    /// consistent.
    TornTail {
        /// Offset of the end of the last intact frame.
        good_len: usize,
    },
    /// A CRC-valid payload failed structural decoding (unknown kind,
    /// impossible arity, short fields). Indicates real corruption or a
    /// version mismatch rather than a torn write.
    Malformed {
        /// Offset of the start of the offending frame.
        offset: usize,
        /// What was wrong.
        reason: &'static str,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::TornTail { good_len } => {
                write!(f, "torn tail after byte {good_len}")
            }
            WireError::Malformed { offset, reason } => {
                write!(f, "malformed record at byte {offset}: {reason}")
            }
        }
    }
}

impl std::error::Error for WireError {}

// --- CRC-32 (IEEE 802.3, reflected) ---------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `data` — the per-record checksum of the wire
/// format.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// --- encoding --------------------------------------------------------

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u128(buf: &mut Vec<u8>, v: u128) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Frames `write_payload`'s output: reserves the `[len][crc]` header,
/// lets the closure append the payload, then backfills the header.
fn frame(buf: &mut Vec<u8>, write_payload: impl FnOnce(&mut Vec<u8>)) {
    let frame_start = buf.len();
    buf.extend_from_slice(&[0u8; FRAME_HEADER_LEN]); // backfilled
    let payload_start = buf.len();
    write_payload(buf);
    let len = (buf.len() - payload_start) as u32;
    let crc = crc32(&buf[payload_start..]);
    buf[frame_start..frame_start + 4].copy_from_slice(&len.to_le_bytes());
    buf[frame_start + 4..frame_start + 8].copy_from_slice(&crc.to_le_bytes());
}

/// Appends a framed [`Record::Class`] built from borrowed parts — the
/// journal's hot path, writing a class mutation without cloning the
/// table into a `Record` first.
pub fn encode_class_frame(
    buf: &mut Vec<u8>,
    key: u128,
    rep_seq: u64,
    count: u64,
    representative: &TruthTable,
) {
    frame(buf, |buf| {
        buf.push(KIND_CLASS);
        put_u128(buf, key);
        put_u64(buf, rep_seq);
        put_u64(buf, count);
        buf.push(representative.num_vars() as u8);
        for &w in representative.words() {
            put_u64(buf, w);
        }
    });
}

impl Record {
    /// Appends this record to `buf` as one complete frame
    /// (`[len][crc][payload]`).
    pub fn encode(&self, buf: &mut Vec<u8>) {
        if let Record::Class {
            key,
            rep_seq,
            count,
            representative,
        } = self
        {
            return encode_class_frame(buf, *key, *rep_seq, *count, representative);
        }
        frame(buf, |buf| match self {
            Record::Class { .. } => unreachable!("handled above"),
            Record::Bump { key } => {
                buf.push(KIND_BUMP);
                put_u128(buf, *key);
            }
            Record::Epoch { epoch } => {
                buf.push(KIND_EPOCH);
                put_u64(buf, *epoch);
            }
            Record::CheckpointHeader {
                version,
                next_gen,
                classes,
                last_epoch,
            } => {
                buf.push(KIND_CHECKPOINT);
                put_u32(buf, *version);
                put_u64(buf, *next_gen);
                put_u64(buf, *classes);
                put_u64(buf, *last_epoch);
            }
            Record::Manifest {
                version,
                shards,
                set,
            } => {
                buf.push(KIND_MANIFEST);
                put_u32(buf, *version);
                put_u32(buf, *shards);
                let bytes = set.as_bytes();
                assert!(bytes.len() <= u16::MAX as usize, "set name too long");
                put_u16(buf, bytes.len() as u16);
                buf.extend_from_slice(bytes);
            }
            Record::Request { line } => {
                buf.push(KIND_REQUEST);
                buf.extend_from_slice(line.as_bytes());
            }
            Record::Response { status, body } => {
                buf.push(KIND_RESPONSE);
                buf.push(*status);
                buf.extend_from_slice(body.as_bytes());
            }
        });
    }

    /// This record as a standalone frame.
    pub fn to_frame(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf
    }

    /// Decodes one frame *payload* (the bytes after the `[len][crc]`
    /// prologue) whose CRC the caller has already verified — the
    /// incremental-read path of socket consumers, which pull the header
    /// and payload off the stream themselves instead of walking an
    /// in-memory buffer with [`FrameStream`].
    ///
    /// # Errors
    ///
    /// [`WireError::Malformed`] (with offset `0`) on structural
    /// problems; a wrong CRC cannot be detected here.
    pub fn decode_payload(payload: &[u8]) -> Result<Record, WireError> {
        decode_payload(payload, 0)
    }
}

// --- decoding --------------------------------------------------------

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.data.len() {
            return None;
        }
        let s = &self.data[self.pos..end];
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u16(&mut self) -> Option<u16> {
        self.take(2)
            .map(|s| u16::from_le_bytes(s.try_into().unwrap()))
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes(s.try_into().unwrap()))
    }

    fn u128(&mut self) -> Option<u128> {
        self.take(16)
            .map(|s| u128::from_le_bytes(s.try_into().unwrap()))
    }
}

fn decode_payload(payload: &[u8], offset: usize) -> Result<Record, WireError> {
    let malformed = |reason| WireError::Malformed { offset, reason };
    let mut c = Cursor {
        data: payload,
        pos: 0,
    };
    let kind = c.u8().ok_or(malformed("empty payload"))?;
    let record = match kind {
        KIND_CLASS => {
            let key = c.u128().ok_or(malformed("short class key"))?;
            let rep_seq = c.u64().ok_or(malformed("short rep_seq"))?;
            let count = c.u64().ok_or(malformed("short count"))?;
            let num_vars = c.u8().ok_or(malformed("short arity"))? as usize;
            if num_vars > 16 {
                return Err(malformed("arity above 16"));
            }
            let words = facepoint_truth::words::word_count(num_vars);
            let mut w = Vec::with_capacity(words);
            for _ in 0..words {
                w.push(c.u64().ok_or(malformed("short table words"))?);
            }
            let representative = TruthTable::from_words(num_vars, &w)
                .map_err(|_| malformed("invalid table words"))?;
            Record::Class {
                key,
                rep_seq,
                count,
                representative,
            }
        }
        KIND_BUMP => Record::Bump {
            key: c.u128().ok_or(malformed("short bump key"))?,
        },
        KIND_EPOCH => Record::Epoch {
            epoch: c.u64().ok_or(malformed("short epoch"))?,
        },
        KIND_CHECKPOINT => Record::CheckpointHeader {
            version: c.u32().ok_or(malformed("short version"))?,
            next_gen: c.u64().ok_or(malformed("short next_gen"))?,
            classes: c.u64().ok_or(malformed("short class count"))?,
            last_epoch: c.u64().ok_or(malformed("short last_epoch"))?,
        },
        KIND_MANIFEST => {
            let version = c.u32().ok_or(malformed("short version"))?;
            let shards = c.u32().ok_or(malformed("short shard count"))?;
            let len = c.u16().ok_or(malformed("short set length"))? as usize;
            let bytes = c.take(len).ok_or(malformed("short set name"))?;
            let set = std::str::from_utf8(bytes)
                .map_err(|_| malformed("set name not UTF-8"))?
                .to_string();
            Record::Manifest {
                version,
                shards,
                set,
            }
        }
        KIND_REQUEST => {
            let bytes = c.take(payload.len() - c.pos).unwrap_or(&[]);
            let line = std::str::from_utf8(bytes)
                .map_err(|_| malformed("request line not UTF-8"))?
                .to_string();
            Record::Request { line }
        }
        KIND_RESPONSE => {
            let status = c.u8().ok_or(malformed("short response status"))?;
            let bytes = c.take(payload.len() - c.pos).unwrap_or(&[]);
            let body = std::str::from_utf8(bytes)
                .map_err(|_| malformed("response body not UTF-8"))?
                .to_string();
            Record::Response { status, body }
        }
        _ => return Err(malformed("unknown record kind")),
    };
    if c.pos != payload.len() {
        return Err(malformed("trailing payload bytes"));
    }
    Ok(record)
}

/// A sequential reader over a byte buffer of frames.
///
/// `next_record` yields records until a clean end of data (`Ok(None)`),
/// a torn tail ([`WireError::TornTail`], carrying the truncation
/// offset) or a malformed-but-CRC-valid record
/// ([`WireError::Malformed`]).
#[derive(Debug)]
pub struct FrameStream<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> FrameStream<'a> {
    /// A stream over `data`, starting at offset 0.
    pub fn new(data: &'a [u8]) -> Self {
        FrameStream { data, pos: 0 }
    }

    /// Byte offset of the next frame — after an `Ok`, the end of
    /// everything consumed so far.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Decodes the next record.
    pub fn next_record(&mut self) -> Result<Option<Record>, WireError> {
        if self.pos == self.data.len() {
            return Ok(None);
        }
        let torn = WireError::TornTail { good_len: self.pos };
        let rest = &self.data[self.pos..];
        if rest.len() < FRAME_HEADER_LEN {
            return Err(torn);
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
        if len > MAX_PAYLOAD_LEN || rest.len() < FRAME_HEADER_LEN + len {
            return Err(torn);
        }
        let payload = &rest[FRAME_HEADER_LEN..FRAME_HEADER_LEN + len];
        if crc32(payload) != crc {
            return Err(torn);
        }
        let record = decode_payload(payload, self.pos)?;
        self.pos += FRAME_HEADER_LEN + len;
        Ok(Some(record))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<Record> {
        vec![
            Record::Manifest {
                version: WIRE_VERSION,
                shards: 64,
                set: "OCV1+OCV2+OIV+OSV+OSDV".into(),
            },
            Record::CheckpointHeader {
                version: WIRE_VERSION,
                next_gen: 3,
                classes: 2,
                last_epoch: 12,
            },
            Record::Class {
                key: 0xDEAD_BEEF_DEAD_BEEF_0123_4567_89AB_CDEF,
                rep_seq: 7,
                count: 41,
                representative: TruthTable::majority(5),
            },
            Record::Class {
                key: 1,
                rep_seq: 0,
                count: 1,
                representative: TruthTable::from_u64(0, 1).unwrap(),
            },
            Record::Bump { key: u128::MAX },
            Record::Epoch { epoch: 9 },
            Record::Request {
                line: "SUBMIT 3:e8".into(),
            },
            Record::Response {
                status: 0,
                body: "OK seq=0\nwith a second line".into(),
            },
        ]
    }

    #[test]
    fn roundtrip_all_kinds() {
        let records = sample_records();
        let mut buf = Vec::new();
        for r in &records {
            r.encode(&mut buf);
        }
        let mut stream = FrameStream::new(&buf);
        let mut got = Vec::new();
        while let Some(r) = stream.next_record().unwrap() {
            got.push(r);
        }
        assert_eq!(got, records);
        assert_eq!(stream.offset(), buf.len());
    }

    #[test]
    fn crc32_known_vector() {
        // The classic check value of CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn any_corrupt_byte_in_tail_is_a_torn_tail() {
        let records = sample_records();
        let mut clean = Vec::new();
        for r in &records {
            r.encode(&mut clean);
        }
        let tail_start = {
            let mut buf = Vec::new();
            for r in &records[..records.len() - 1] {
                r.encode(&mut buf);
            }
            buf.len()
        };
        for offset in tail_start..clean.len() {
            for flip in [0x01u8, 0xFF] {
                let mut corrupt = clean.clone();
                corrupt[offset] ^= flip;
                let mut stream = FrameStream::new(&corrupt);
                let mut good = 0;
                let err = loop {
                    match stream.next_record() {
                        Ok(Some(_)) => good += 1,
                        Ok(None) => panic!("corruption at {offset} went unnoticed"),
                        Err(e) => break e,
                    }
                };
                assert_eq!(good, records.len() - 1, "corrupt byte {offset}");
                assert_eq!(
                    err,
                    WireError::TornTail {
                        good_len: tail_start
                    }
                );
            }
        }
    }

    #[test]
    fn short_tail_truncates_not_fails() {
        let mut buf = Vec::new();
        for r in sample_records() {
            r.encode(&mut buf);
        }
        // Every proper prefix either ends cleanly on a frame boundary or
        // reports the last good offset.
        let mut boundaries = vec![0usize];
        {
            let mut s = FrameStream::new(&buf);
            while s.next_record().unwrap().is_some() {
                boundaries.push(s.offset());
            }
        }
        for cut in 0..buf.len() {
            let mut s = FrameStream::new(&buf[..cut]);
            let outcome = loop {
                match s.next_record() {
                    Ok(Some(_)) => {}
                    Ok(None) => break None,
                    Err(e) => break Some(e),
                }
            };
            if boundaries.contains(&cut) {
                assert_eq!(outcome, None, "cut {cut} is a clean boundary");
            } else {
                let good = *boundaries.iter().filter(|&&b| b < cut).max().unwrap();
                assert_eq!(
                    outcome,
                    Some(WireError::TornTail { good_len: good }),
                    "cut {cut}"
                );
            }
        }
    }

    #[test]
    fn service_frames_roundtrip_standalone() {
        // Empty line / empty body are legal (the kind byte alone, or
        // kind + status, is a complete payload).
        for r in [
            Record::Request {
                line: String::new(),
            },
            Record::Response {
                status: 4,
                body: String::new(),
            },
            Record::Request {
                line: "TOP 10".into(),
            },
        ] {
            let frame = r.to_frame();
            let payload = &frame[FRAME_HEADER_LEN..];
            assert_eq!(
                crc32(payload),
                u32::from_le_bytes(frame[4..8].try_into().unwrap())
            );
            assert_eq!(Record::decode_payload(payload).unwrap(), r);
        }
    }

    #[test]
    fn non_utf8_service_payload_is_malformed() {
        for payload in [vec![6u8, 0xFF, 0xFE], vec![7u8, 0, 0xFF, 0xFE]] {
            assert!(matches!(
                Record::decode_payload(&payload),
                Err(WireError::Malformed { .. })
            ));
        }
        // A response missing its status byte is short, not empty-body.
        assert!(matches!(
            Record::decode_payload(&[7u8]),
            Err(WireError::Malformed {
                reason: "short response status",
                ..
            })
        ));
    }

    #[test]
    fn unknown_kind_is_malformed() {
        let mut buf = Vec::new();
        Record::Epoch { epoch: 1 }.encode(&mut buf);
        // Hand-build a CRC-valid frame with an unknown kind byte.
        let payload = [0xEEu8, 1, 2, 3];
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&crc32(&payload).to_le_bytes());
        buf.extend_from_slice(&payload);
        let mut s = FrameStream::new(&buf);
        assert!(matches!(s.next_record(), Ok(Some(Record::Epoch { .. }))));
        assert!(matches!(
            s.next_record(),
            Err(WireError::Malformed {
                reason: "unknown record kind",
                ..
            })
        ));
    }

    #[test]
    fn oversized_length_field_is_torn_not_alloc() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&[0u8; 64]);
        let mut s = FrameStream::new(&buf);
        assert_eq!(s.next_record(), Err(WireError::TornTail { good_len: 0 }));
    }
}
