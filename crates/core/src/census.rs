//! One shared spelling of census data.
//!
//! The engine report, the recovered-snapshot report, the CLI `recover`
//! diff and the wire protocol's `CANON` reply all present "classes with
//! keys, sizes and representatives". Before this module each spelled
//! that slightly differently; [`CensusView`] is the single render path
//! they now share.

use facepoint_truth::TruthTable;
use std::fmt::Write as _;

/// One class of a census: its 128-bit key, member count and
/// representative function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CensusEntry {
    /// The class key — a signature digest in digest resolution, a
    /// representative digest in certified resolution.
    pub key: u128,
    /// Members observed in this class.
    pub size: u64,
    /// The class representative.
    pub representative: TruthTable,
}

impl CensusEntry {
    /// The human-facing census line (shared by the CLI `recover`
    /// report and the top-classes block of recovered snapshots).
    pub fn render_line(&self) -> String {
        format!(
            "  class {:032x}  size {:>8}  representative {}:{}",
            self.key,
            self.size,
            self.representative.num_vars(),
            self.representative.to_hex()
        )
    }

    /// The wire spelling of this entry — the space-separated
    /// `key=…/size=…/representative=…` fields of the protocol's
    /// `CANON` reply body (PROTOCOL.md §4).
    pub fn render_wire(&self) -> String {
        format!(
            "key={:032x} size={} representative={}:{}",
            self.key,
            self.size,
            self.representative.num_vars(),
            self.representative.to_hex()
        )
    }
}

/// An ordered view over census classes: largest class first, key as
/// the tie-break, so every consumer ranks and prints identically.
#[derive(Debug, Clone, Default)]
pub struct CensusView {
    entries: Vec<CensusEntry>,
}

impl CensusView {
    /// Builds a view, sorting by descending size then ascending key.
    pub fn new(mut entries: Vec<CensusEntry>) -> Self {
        entries.sort_by(|a, b| b.size.cmp(&a.size).then(a.key.cmp(&b.key)));
        CensusView { entries }
    }

    /// The classes, largest first.
    pub fn entries(&self) -> &[CensusEntry] {
        &self.entries
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.entries.len()
    }

    /// Total members across all classes.
    pub fn members(&self) -> u64 {
        self.entries.iter().map(|e| e.size).sum()
    }

    /// Renders the top `limit` classes, one [`CensusEntry::render_line`]
    /// per class, with a `... and N more` trailer when truncated.
    pub fn render_top(&self, limit: usize) -> String {
        let mut out = String::new();
        for entry in self.entries.iter().take(limit) {
            let _ = writeln!(out, "{}", entry.render_line());
        }
        if self.entries.len() > limit {
            let _ = writeln!(out, "  ... and {} more", self.entries.len() - limit);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(key: u128, size: u64) -> CensusEntry {
        CensusEntry {
            key,
            size,
            representative: TruthTable::majority(3),
        }
    }

    #[test]
    fn view_orders_by_size_then_key() {
        let view = CensusView::new(vec![entry(9, 2), entry(3, 7), entry(1, 2)]);
        let keys: Vec<u128> = view.entries().iter().map(|e| e.key).collect();
        assert_eq!(keys, [3, 1, 9]);
        assert_eq!(view.num_classes(), 3);
        assert_eq!(view.members(), 11);
    }

    #[test]
    fn render_top_truncates_with_trailer() {
        let view = CensusView::new(vec![entry(1, 5), entry(2, 4), entry(3, 3)]);
        let text = view.render_top(2);
        assert_eq!(text.lines().count(), 3, "{text}");
        assert!(text.contains("... and 1 more"), "{text}");
        assert!(text.contains("size        5"), "{text}");
        assert!(text.contains("representative 3:e8"), "{text}");
    }

    #[test]
    fn wire_and_line_spellings_agree_on_fields() {
        let e = entry(0xbeef, 12);
        let wire = e.render_wire();
        assert_eq!(
            wire,
            format!("key={:032x} size=12 representative=3:e8", 0xbeef_u128)
        );
        let line = e.render_line();
        assert!(line.contains("0000000000000000000000000000beef"), "{line}");
        assert!(line.contains("representative 3:e8"), "{line}");
    }
}
