//! # facepoint-core
//!
//! The signature-hash NPN classifier of the DATE 2023 paper *"Rethinking
//! NPN Classification from Face and Point Characteristics of Boolean
//! Functions"* (arXiv:2301.12122) — Algorithm 1.
//!
//! Per truth table the classifier computes the configured signature
//! vectors (see [`facepoint_sig`]), assembles the canonical Mixed
//! Signature Vector, hashes it and groups equal keys. Signature equality
//! is a necessary condition for NPN equivalence, so:
//!
//! * the classifier never *splits* a true class (unlike canonical-form
//!   heuristics, which never *merge* one);
//! * the class count lower-bounds the exact count and reaches it when the
//!   signatures discriminate enough (exact for `n ≤ 7` with
//!   `OIV+OSV+OSDV` in the paper's Table II);
//! * runtime depends only on width and count of the inputs — no
//!   symmetry-dependent canonicalization search (the paper's Fig. 5
//!   stability claim).
//!
//! [`refine_to_exact`] upgrades any signature classification to an exact
//! one by running the pairwise matcher inside each bucket, and
//! [`PartitionComparison`] scores classifiers against ground truth.
//!
//! # Quick start
//!
//! ```
//! use facepoint_core::{Classifier, PartitionComparison};
//! use facepoint_sig::SignatureSet;
//! use facepoint_truth::TruthTable;
//!
//! let fns: Vec<TruthTable> = (0u64..256)
//!     .map(|b| TruthTable::from_u64(3, b).unwrap())
//!     .collect();
//! let result = Classifier::new(SignatureSet::all()).classify(fns);
//! // All 256 3-variable functions form exactly 14 NPN classes, and the
//! // full signature set classifies them exactly.
//! assert_eq!(result.num_classes(), 14);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

mod census;
mod classifier;
mod fnv;
mod hierarchical;
mod kernel;
mod metrics;
mod refine;
pub mod wire;

pub use census::{CensusEntry, CensusView};
pub use classifier::{signature_key, Classification, Classifier, KeyMode, NpnClass};
pub use fnv::{fnv128, Fnv128Stream};
pub use kernel::SignatureKernel;
pub use metrics::PartitionComparison;
pub use refine::refine_to_exact;
