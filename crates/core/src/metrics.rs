//! Accuracy metrics: comparing a signature classification against exact
//! ground truth.
//!
//! The signature classifier can only *merge* exact classes (its keys are
//! necessary conditions), while canonical-form heuristics can only
//! *split* them. [`PartitionComparison`] quantifies both directions so
//! every classifier in the paper's Table III can be scored with the same
//! instrument.

use std::collections::{HashMap, HashSet};

/// Relation of a candidate partition to a reference partition of the same
/// index set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionComparison {
    /// Number of classified items.
    pub num_items: usize,
    /// Classes in the candidate partition.
    pub candidate_classes: usize,
    /// Classes in the reference (exact) partition.
    pub reference_classes: usize,
    /// Candidate classes containing more than one reference class
    /// (under-splitting / merging, the signature-classifier failure mode).
    pub merged_classes: usize,
    /// Reference classes scattered across more than one candidate class
    /// (over-splitting, the canonical-form-heuristic failure mode).
    pub split_classes: usize,
}

impl PartitionComparison {
    /// Compares `candidate` against `reference` (both are class labels
    /// parallel to the same inputs).
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn compare(candidate: &[usize], reference: &[usize]) -> Self {
        assert_eq!(
            candidate.len(),
            reference.len(),
            "partitions must label the same items"
        );
        let mut cand_members: HashMap<usize, HashSet<usize>> = HashMap::new();
        let mut ref_members: HashMap<usize, HashSet<usize>> = HashMap::new();
        for (&c, &r) in candidate.iter().zip(reference) {
            cand_members.entry(c).or_default().insert(r);
            ref_members.entry(r).or_default().insert(c);
        }
        PartitionComparison {
            num_items: candidate.len(),
            candidate_classes: cand_members.len(),
            reference_classes: ref_members.len(),
            merged_classes: cand_members.values().filter(|s| s.len() > 1).count(),
            split_classes: ref_members.values().filter(|s| s.len() > 1).count(),
        }
    }

    /// Whether the partitions are identical (up to label renaming).
    pub fn is_exact(&self) -> bool {
        self.merged_classes == 0 && self.split_classes == 0
    }

    /// Class-count accuracy as the paper reports it: the ratio of class
    /// counts, from whichever side deviates (1.0 = exact count).
    pub fn class_count_ratio(&self) -> f64 {
        if self.reference_classes == 0 {
            return 1.0;
        }
        self.candidate_classes as f64 / self.reference_classes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_partitions() {
        let a = vec![0, 0, 1, 2, 1];
        let cmp = PartitionComparison::compare(&a, &a);
        assert!(cmp.is_exact());
        assert_eq!(cmp.candidate_classes, 3);
        assert_eq!(cmp.class_count_ratio(), 1.0);
    }

    #[test]
    fn merging_detected() {
        // Candidate merges reference classes {0,1} into one.
        let cand = vec![0, 0, 0, 1];
        let refr = vec![0, 0, 1, 2];
        let cmp = PartitionComparison::compare(&cand, &refr);
        assert_eq!(cmp.merged_classes, 1);
        assert_eq!(cmp.split_classes, 0);
        assert!(!cmp.is_exact());
        assert!(cmp.class_count_ratio() < 1.0);
    }

    #[test]
    fn splitting_detected() {
        // Candidate splits reference class 0 across two classes.
        let cand = vec![0, 1, 1, 2];
        let refr = vec![0, 0, 0, 1];
        let cmp = PartitionComparison::compare(&cand, &refr);
        assert_eq!(cmp.split_classes, 1);
        assert_eq!(cmp.merged_classes, 0);
        assert!(cmp.class_count_ratio() > 1.0);
    }

    #[test]
    fn mixed_disagreement() {
        let cand = vec![0, 0, 1, 1];
        let refr = vec![0, 1, 1, 2];
        let cmp = PartitionComparison::compare(&cand, &refr);
        assert!(cmp.merged_classes >= 1);
        assert!(cmp.split_classes >= 1);
    }

    #[test]
    fn empty_partitions() {
        let cmp = PartitionComparison::compare(&[], &[]);
        assert!(cmp.is_exact());
        assert_eq!(cmp.class_count_ratio(), 1.0);
    }

    #[test]
    #[should_panic(expected = "same items")]
    fn length_mismatch_panics() {
        PartitionComparison::compare(&[0], &[0, 1]);
    }
}
