//! Hierarchical (lazy) classification — the "runtime saving" variant the
//! paper sketches in Section IV-B.
//!
//! The flat classifier computes every selected signature for every
//! function. But signatures differ wildly in cost (OIV is a handful of
//! XOR+popcounts; OSDV runs a Walsh transform per sensitivity class) and
//! most functions separate early: once a function sits alone in its
//! bucket, no further signature can change anything. The hierarchical
//! driver therefore refines in *stages*, cheapest signature first
//! ([`facepoint_sig::STAGE_ORDER`]), recomputing only inside buckets
//! that still hold more than one function.
//!
//! # Equivalence with the flat classifier
//!
//! The flat MSV serializes its sections in the same stage order, so for
//! unbalanced functions the staged key sequence is literally the flat
//! vector cut into pieces. Balanced functions need care: the flat MSV
//! takes the lexicographic minimum over the two output polarities of the
//! *whole* vector, which is decided at the first section where the
//! polarities differ. The staged driver reproduces exactly that with a
//! small protocol: while a balanced function's polarity is unresolved,
//! each stage uses the pointwise minimum of the two polarity variants,
//! and the first stage where the variants differ *resolves* the polarity
//! to the smaller side for all later stages. The resulting concatenated
//! key equals the flat MSV, so the partitions coincide.

use crate::classifier::{Classification, Classifier, NpnClassBuilder};
use facepoint_sig::{SigKernel, STAGE_ORDER};
use facepoint_truth::TruthTable;
use std::collections::HashMap;

/// Output-polarity state of one function during staged refinement.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Polarity {
    /// Use the function as given.
    Keep,
    /// Use the complement.
    Negate,
    /// Balanced and still tied: consider both, take the smaller key.
    Ambiguous,
}

impl Classifier {
    /// Classifies like [`Classifier::classify`] but computes signatures
    /// lazily, stage by stage, skipping buckets that are already
    /// singletons.
    ///
    /// Produces the same partition as the flat classifier for the same
    /// [`SignatureSet`](facepoint_sig::SignatureSet) (see the module
    /// docs for the balanced-function
    /// argument); faster when the workload separates early (random
    /// functions), slower only by bookkeeping when it does not (heavily
    /// duplicated classes).
    ///
    /// # Examples
    ///
    /// ```
    /// use facepoint_core::Classifier;
    /// use facepoint_sig::SignatureSet;
    /// use facepoint_truth::TruthTable;
    ///
    /// let fns: Vec<TruthTable> = (0u64..256)
    ///     .map(|b| TruthTable::from_u64(3, b).unwrap())
    ///     .collect();
    /// let flat = Classifier::new(SignatureSet::all()).classify(fns.clone());
    /// let lazy = Classifier::new(SignatureSet::all()).classify_hierarchical(fns);
    /// assert_eq!(flat.num_classes(), lazy.num_classes());
    /// ```
    pub fn classify_hierarchical(
        &self,
        fns: impl IntoIterator<Item = TruthTable>,
    ) -> Classification {
        let fns: Vec<TruthTable> = fns.into_iter().collect();
        // Initial polarity per function (the flat msv() rule).
        let mut polarity: Vec<Polarity> = fns
            .iter()
            .map(|f| {
                let ones = f.count_ones();
                let zeros = f.num_bits() - ones;
                if ones < zeros {
                    Polarity::Keep
                } else if ones > zeros {
                    Polarity::Negate
                } else {
                    Polarity::Ambiguous
                }
            })
            .collect();
        // Initial groups: one per arity (the MSV's implicit prefix).
        let mut group_of: Vec<usize> = vec![0; fns.len()];
        let mut num_groups = {
            let mut map: HashMap<usize, usize> = HashMap::new();
            for (i, f) in fns.iter().enumerate() {
                let next = map.len();
                group_of[i] = *map.entry(f.num_vars()).or_insert(next);
            }
            map.len()
        };

        // One kernel for the whole refinement: sections of `¬f` are
        // derived from `f`'s ingredients (never materialized), and a
        // function's sensitivity profile is shared between its OSV and
        // OSDV stages via the kernel's ingredient cache.
        let mut kernel = SigKernel::new();
        let mut key_buf: Vec<u64> = Vec::new();
        for stage in STAGE_ORDER {
            if !self.signature_set().contains(stage) {
                continue;
            }
            let mut pop = vec![0usize; num_groups];
            for &g in &group_of {
                pop[g] += 1;
            }
            let mut map: HashMap<(usize, Vec<u64>), usize> = HashMap::with_capacity(fns.len());
            let mut singleton_renumber: HashMap<usize, usize> = HashMap::new();
            let mut next_groups = 0usize;
            let mut new_group_of = vec![usize::MAX; fns.len()];
            for (i, f) in fns.iter().enumerate() {
                let g = group_of[i];
                if pop[g] == 1 {
                    // Alone already: no signature (or polarity work)
                    // needed, the partition cannot change.
                    let id = *singleton_renumber.entry(g).or_insert_with(|| {
                        let id = next_groups;
                        next_groups += 1;
                        id
                    });
                    new_group_of[i] = id;
                    continue;
                }
                let key = match polarity[i] {
                    Polarity::Keep => {
                        kernel.stage_sections_into(f, stage, false, &mut key_buf);
                        key_buf.clone()
                    }
                    Polarity::Negate => {
                        kernel.stage_sections_into(f, stage, true, &mut key_buf);
                        key_buf.clone()
                    }
                    Polarity::Ambiguous => {
                        let (a, b) = kernel.stage_sections_dual(f, stage);
                        // The first differing stage fixes the polarity —
                        // exactly the flat MSV's lexicographic choice.
                        match a.cmp(b) {
                            std::cmp::Ordering::Less => {
                                polarity[i] = Polarity::Keep;
                                a.to_vec()
                            }
                            std::cmp::Ordering::Greater => {
                                polarity[i] = Polarity::Negate;
                                b.to_vec()
                            }
                            std::cmp::Ordering::Equal => a.to_vec(),
                        }
                    }
                };
                let id = *map.entry((g, key)).or_insert_with(|| {
                    let id = next_groups;
                    next_groups += 1;
                    id
                });
                new_group_of[i] = id;
            }
            group_of = new_group_of;
            num_groups = next_groups;
        }

        NpnClassBuilder::build(fns, &group_of)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use facepoint_sig::SignatureSet;
    use facepoint_truth::NpnTransform;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn workload(n: usize, groups: usize, copies: usize, seed: u64) -> Vec<TruthTable> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut fns = Vec::new();
        for _ in 0..groups {
            let f = TruthTable::random(n, &mut rng).unwrap();
            for _ in 0..copies {
                fns.push(NpnTransform::random(n, &mut rng).apply(&f));
            }
        }
        fns
    }

    fn same_partition(a: &Classification, b: &Classification) -> bool {
        if a.num_classes() != b.num_classes() || a.num_functions() != b.num_functions() {
            return false;
        }
        for i in 0..a.num_functions() {
            for j in (i + 1)..a.num_functions() {
                if (a.label(i) == a.label(j)) != (b.label(i) == b.label(j)) {
                    return false;
                }
            }
        }
        true
    }

    #[test]
    fn hierarchical_matches_flat_all_sets() {
        let fns = workload(5, 12, 4, 191);
        for (_, set) in SignatureSet::table2_columns() {
            let flat = Classifier::new(set).classify(fns.clone());
            let lazy = Classifier::new(set).classify_hierarchical(fns.clone());
            assert!(same_partition(&flat, &lazy), "set = {set}");
        }
    }

    #[test]
    fn hierarchical_covers_extension_families() {
        let fns = workload(4, 10, 3, 197);
        let set = SignatureSet::all_extended();
        let flat = Classifier::new(set).classify(fns.clone());
        let lazy = Classifier::new(set).classify_hierarchical(fns);
        assert!(same_partition(&flat, &lazy));
    }

    #[test]
    fn hierarchical_handles_balanced_functions() {
        // Balanced functions exercise the polarity-resolution protocol.
        let mut rng = StdRng::seed_from_u64(199);
        let mut fns = Vec::new();
        while fns.len() < 60 {
            let f = TruthTable::random(4, &mut rng).unwrap();
            if f.is_balanced() {
                fns.push(NpnTransform::random(4, &mut rng).apply(&f));
                fns.push(f);
            }
        }
        let flat = Classifier::new(SignatureSet::all()).classify(fns.clone());
        let lazy = Classifier::new(SignatureSet::all()).classify_hierarchical(fns);
        assert!(same_partition(&flat, &lazy));
    }

    #[test]
    fn hierarchical_on_mixed_arity() {
        let mut fns = workload(3, 4, 3, 7);
        fns.extend(workload(5, 4, 3, 8));
        let flat = Classifier::new(SignatureSet::all()).classify(fns.clone());
        let lazy = Classifier::new(SignatureSet::all()).classify_hierarchical(fns);
        assert!(same_partition(&flat, &lazy));
    }

    #[test]
    fn hierarchical_empty_and_singleton() {
        let c = Classifier::new(SignatureSet::all());
        assert_eq!(c.classify_hierarchical(Vec::new()).num_classes(), 0);
        let one = c.classify_hierarchical(vec![TruthTable::majority(3)]);
        assert_eq!(one.num_classes(), 1);
    }

    #[test]
    fn hierarchical_with_empty_set_groups_by_arity() {
        let fns = vec![
            TruthTable::zero(3).unwrap(),
            TruthTable::one(3).unwrap(),
            TruthTable::zero(4).unwrap(),
        ];
        let c = Classifier::new(SignatureSet::EMPTY).classify_hierarchical(fns);
        assert_eq!(c.num_classes(), 2, "arity is always part of the key");
    }
}
