//! Deterministic 128-bit FNV-1a hashing for MSV digests.
//!
//! The classifier buckets functions by a digest of their Mixed Signature
//! Vector (the paper's Algorithm 1, line 7, "class ← hash(MSV)"). A
//! fixed, seedless hash keeps classification results reproducible across
//! runs and platforms; 128 bits make collisions irrelevant at any
//! realistic workload size (≈ 10⁻²⁰ at a million keys). The collision-free
//! alternative is [`KeyMode::Full`](crate::KeyMode::Full).

/// FNV-1a 128-bit offset basis.
const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// FNV-1a 128-bit prime.
const PRIME: u128 = 0x0000000001000000000000000000013b;

/// Hashes a slice of words with FNV-1a/128 (byte-wise, little-endian).
///
/// # Examples
///
/// ```
/// use facepoint_core::fnv128;
///
/// let a = fnv128(&[1, 2, 3]);
/// let b = fnv128(&[1, 2, 3]);
/// let c = fnv128(&[3, 2, 1]);
/// assert_eq!(a, b);
/// assert_ne!(a, c);
/// ```
pub fn fnv128(words: &[u64]) -> u128 {
    let mut stream = Fnv128Stream::new();
    stream.words(words);
    stream.finish()
}

/// A rolling FNV-1a/128 state over a stream of words.
///
/// Feeding words one at a time produces exactly the digest [`fnv128`]
/// computes over the concatenation — this is what lets digest-mode
/// classification hash a Mixed Signature Vector straight off the
/// signature kernel without ever materializing it (the stream
/// implements [`facepoint_sig::MsvSink`]).
///
/// # Examples
///
/// ```
/// use facepoint_core::{fnv128, Fnv128Stream};
///
/// let mut s = Fnv128Stream::new();
/// s.word(1);
/// s.word(2);
/// assert_eq!(s.finish(), fnv128(&[1, 2]));
/// ```
#[derive(Debug, Clone)]
pub struct Fnv128Stream {
    state: u128,
}

impl Default for Fnv128Stream {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv128Stream {
    /// A stream at the FNV-1a offset basis (the empty-input digest).
    pub fn new() -> Self {
        Fnv128Stream { state: OFFSET }
    }

    /// Absorbs one word (byte-wise, little-endian).
    pub fn word(&mut self, w: u64) {
        let mut h = self.state;
        for b in w.to_le_bytes() {
            h ^= b as u128;
            h = h.wrapping_mul(PRIME);
        }
        self.state = h;
    }

    /// Absorbs a run of words.
    pub fn words(&mut self, ws: &[u64]) {
        for &w in ws {
            self.word(w);
        }
    }

    /// The digest of everything absorbed so far.
    pub fn finish(&self) -> u128 {
        self.state
    }
}

impl facepoint_sig::MsvSink for Fnv128Stream {
    fn word(&mut self, w: u64) {
        Fnv128Stream::word(self, w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector_empty() {
        // FNV-1a of the empty input is the offset basis.
        assert_eq!(fnv128(&[]), OFFSET);
    }

    #[test]
    fn deterministic_across_calls() {
        let data = [0xDEAD_BEEFu64, 42, u64::MAX];
        assert_eq!(fnv128(&data), fnv128(&data));
    }

    #[test]
    fn sensitive_to_order_and_content() {
        assert_ne!(fnv128(&[0, 1]), fnv128(&[1, 0]));
        assert_ne!(fnv128(&[0]), fnv128(&[0, 0]));
        assert_ne!(fnv128(&[7]), fnv128(&[8]));
    }

    #[test]
    fn no_collisions_on_small_dense_inputs() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for a in 0u64..64 {
            for b in 0u64..64 {
                assert!(seen.insert(fnv128(&[a, b])), "collision at ({a},{b})");
            }
        }
    }
}
