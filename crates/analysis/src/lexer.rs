//! The lightweight Rust scanner behind every checker.
//!
//! This is deliberately **not** a parser: the checkers need comment
//! text, string-free code text, brace depth and line numbers — nothing
//! that requires an AST. One pass classifies every byte of a source
//! file as code, comment or literal, and two *condensed* views are
//! built on top:
//!
//! * [`Lexed::code`] — code with string/char literal *contents*
//!   dropped (delimiters kept), comments dropped, and whitespace
//!   collapsed (a single space survives only between two identifier
//!   characters, so token boundaries are preserved);
//! * [`Lexed::raw`] — the same, but string literal contents are kept.
//!   Lock-acquisition patterns match against this view because the
//!   `.expect("…poisoned")` messages are the most stable lexical
//!   anchor the lock sites have.
//!
//! Both views carry a parallel line map so every match position
//! resolves back to a 1-based source line.

/// One condensed view of a file: the text plus, per condensed byte,
/// the 1-based source line it came from.
#[derive(Debug, Default)]
pub struct Condensed {
    /// The condensed text.
    pub text: String,
    /// Per condensed byte, the 1-based source line it came from.
    pub lines: Vec<u32>,
}

impl Condensed {
    fn push(&mut self, c: char, line: u32) {
        self.text.push(c);
        for _ in 0..c.len_utf8() {
            self.lines.push(line);
        }
    }

    /// The source line of condensed byte offset `pos`.
    pub fn line_of(&self, pos: usize) -> u32 {
        self.lines
            .get(pos)
            .copied()
            .unwrap_or_else(|| self.lines.last().copied().unwrap_or(1))
    }
}

/// The scan result for one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Condensed code, string contents blanked.
    pub code: Condensed,
    /// Condensed code, string contents kept.
    pub raw: Condensed,
    /// `(line, text)` for every comment, line (`//`) and block
    /// (`/* */`) alike; block comments contribute one entry per
    /// source line so adjacency checks stay line-accurate.
    pub comments: Vec<(u32, String)>,
}

fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Collapses whitespace exactly the way the lexer does, so config
/// patterns written with natural spacing match the condensed views.
pub fn normalize_pattern(p: &str) -> String {
    let mut out = String::new();
    let mut pending_ws = false;
    for c in p.chars() {
        if c.is_whitespace() {
            pending_ws = true;
            continue;
        }
        if pending_ws {
            if out.chars().last().map(is_ident).unwrap_or(false) && is_ident(c) {
                out.push(' ');
            }
            pending_ws = false;
        }
        out.push(c);
    }
    out
}

struct Emitter {
    code: Condensed,
    raw: Condensed,
    pending_ws: bool,
}

impl Emitter {
    /// Emits a code character into one or both condensed views,
    /// resolving the pending-whitespace marker first. Whitespace
    /// itself only arms the marker, so every view is collapsed by one
    /// rule: a single space survives between two identifier characters.
    ///
    /// Literal *contents* (`into_code == false`) additionally drop
    /// braces: the checkers compute brace depth over the raw view, and
    /// a `{len}` inside a `format!` string must not unbalance it.
    fn emit(&mut self, c: char, line: u32, into_code: bool) {
        if c.is_whitespace() {
            self.pending_ws = true;
            return;
        }
        if !into_code && (c == '{' || c == '}') {
            return;
        }
        if self.pending_ws {
            if self.raw.text.chars().last().map(is_ident).unwrap_or(false) && is_ident(c) {
                self.raw.push(' ', line);
                if self.code.text.chars().last().map(is_ident).unwrap_or(false) {
                    self.code.push(' ', line);
                }
            }
            self.pending_ws = false;
        }
        self.raw.push(c, line);
        if into_code {
            self.code.push(c, line);
        }
    }
}

/// Scans `text` into its condensed views and comment list.
pub fn lex(text: &str) -> Lexed {
    let mut em = Emitter {
        code: Condensed::default(),
        raw: Condensed::default(),
        pending_ws: false,
    };
    let mut comments: Vec<(u32, String)> = Vec::new();
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0usize;
    let mut line: u32 = 1;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match c {
            '\n' => {
                line += 1;
                em.pending_ws = true;
                i += 1;
            }
            c if c.is_whitespace() => {
                em.pending_ws = true;
                i += 1;
            }
            '/' if next == Some('/') => {
                let start = i + 2;
                let mut end = start;
                while end < chars.len() && chars[end] != '\n' {
                    end += 1;
                }
                comments.push((line, chars[start..end].iter().collect()));
                em.pending_ws = true;
                i = end;
            }
            '/' if next == Some('*') => {
                // Block comment, nestable, split into per-line entries.
                let mut depth = 1;
                let mut j = i + 2;
                let mut buf = String::new();
                while j < chars.len() && depth > 0 {
                    if chars[j] == '/' && chars.get(j + 1) == Some(&'*') {
                        depth += 1;
                        buf.push_str("/*");
                        j += 2;
                    } else if chars[j] == '*' && chars.get(j + 1) == Some(&'/') {
                        depth -= 1;
                        if depth > 0 {
                            buf.push_str("*/");
                        }
                        j += 2;
                    } else if chars[j] == '\n' {
                        comments.push((line, std::mem::take(&mut buf)));
                        line += 1;
                        j += 1;
                    } else {
                        buf.push(chars[j]);
                        j += 1;
                    }
                }
                if !buf.is_empty() {
                    comments.push((line, buf));
                }
                em.pending_ws = true;
                i = j;
            }
            '"' => {
                em.emit('"', line, true);
                i += 1;
                while i < chars.len() {
                    match chars[i] {
                        '\\' => {
                            if let Some(&e) = chars.get(i + 1) {
                                em.emit('\\', line, false);
                                if e == '\n' {
                                    line += 1;
                                } else {
                                    em.emit(e, line, false);
                                }
                                i += 2;
                            } else {
                                i += 1;
                            }
                        }
                        '"' => {
                            em.emit('"', line, true);
                            i += 1;
                            break;
                        }
                        '\n' => {
                            em.pending_ws = true;
                            line += 1;
                            i += 1;
                        }
                        other => {
                            em.emit(other, line, false);
                            i += 1;
                        }
                    }
                }
            }
            'r' | 'b' if is_raw_string_start(&chars, i) => {
                // r"…", r#"…"#, br"…", b"…" raw/byte strings.
                let mut j = i;
                while chars.get(j) == Some(&'b') || chars.get(j) == Some(&'r') {
                    em.emit(chars[j], line, true);
                    j += 1;
                }
                let mut hashes = 0;
                while chars.get(j) == Some(&'#') {
                    hashes += 1;
                    em.emit('#', line, true);
                    j += 1;
                }
                em.emit('"', line, true);
                j += 1;
                'scan: while j < chars.len() {
                    if chars[j] == '"' {
                        let mut k = 0;
                        while k < hashes && chars.get(j + 1 + k) == Some(&'#') {
                            k += 1;
                        }
                        if k == hashes {
                            em.emit('"', line, true);
                            for _ in 0..hashes {
                                em.emit('#', line, true);
                            }
                            j += 1 + hashes;
                            break 'scan;
                        }
                    }
                    if chars[j] == '\n' {
                        em.pending_ws = true;
                        line += 1;
                    } else {
                        em.emit(chars[j], line, false);
                    }
                    j += 1;
                }
                i = j;
            }
            '\'' => {
                // Char literal vs lifetime: a literal closes with a
                // second quote within a couple of characters.
                if let Some(len) = char_literal_len(&chars, i) {
                    em.emit('\'', line, true);
                    for &c in chars.iter().take(i + len - 1).skip(i + 1) {
                        em.emit(c, line, false);
                    }
                    em.emit('\'', line, true);
                    i += len;
                } else {
                    // Lifetime marker: keep it (it is code).
                    em.emit('\'', line, true);
                    i += 1;
                }
            }
            other => {
                em.emit(other, line, true);
                i += 1;
            }
        }
    }
    Lexed {
        code: em.code,
        raw: em.raw,
        comments,
    }
}

fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    // Not a raw/byte string if the previous char continues an
    // identifier (`attr"x"` can't happen, but `br` inside `abr` could).
    if i > 0 && is_ident(chars[i - 1]) {
        return false;
    }
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        return chars.get(i) == Some(&'b'); // b"…" byte string
    }
    if chars.get(j) != Some(&'r') {
        return false;
    }
    j += 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// `Some(total_len)` when the `'` at `i` opens a char literal.
fn char_literal_len(chars: &[char], i: usize) -> Option<usize> {
    match chars.get(i + 1)? {
        '\\' => {
            // Escapes: '\n', '\'', '\\', '\x41', '\u{…}'.
            let mut j = i + 2;
            match chars.get(j)? {
                'x' => j += 3,
                'u' => {
                    j += 1;
                    while chars.get(j).is_some_and(|&c| c != '\'') {
                        j += 1;
                    }
                    j += 1;
                    return Some(j - i);
                }
                _ => j += 1,
            }
            (chars.get(j) == Some(&'\'')).then_some(j + 1 - i)
        }
        &c => {
            if c != '\'' && chars.get(i + 2) == Some(&'\'') {
                Some(3)
            } else {
                None // lifetime ('a, 'static) or stray quote
            }
        }
    }
}

/// All non-overlapping occurrences of `pat` in `hay`, as byte offsets.
pub fn find_all(hay: &str, pat: &str) -> Vec<usize> {
    let mut out = Vec::new();
    if pat.is_empty() {
        return out;
    }
    let mut from = 0;
    while let Some(off) = hay[from..].find(pat) {
        out.push(from + off);
        from += off + pat.len();
    }
    out
}

/// True when the match at `pos..pos+len` in `hay` is bounded by
/// non-identifier characters (keyword/identifier matching).
pub fn word_bounded(hay: &str, pos: usize, len: usize) -> bool {
    let before = hay[..pos].chars().last();
    let after = hay[pos + len..].chars().next();
    !before.map(is_ident).unwrap_or(false) && !after.map(is_ident).unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_separated_from_code() {
        let lexed = lex(concat!(
            "// top\n",
            "fn f() {\n",
            "    let s = \"Vec::new() inside a string\"; // trailing\n",
            "    let c = 'x'; let l: &'static str = \"\";\n",
            "}\n",
        ));
        assert!(!lexed.code.text.contains("Vec::new"), "{}", lexed.code.text);
        assert!(
            lexed.raw.text.contains("\"Vec::new()inside a string\""),
            "{}",
            lexed.raw.text
        );
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0], (1, " top".to_string()));
        assert_eq!(lexed.comments[1].0, 3);
        // Lifetime survived, char literal contents did not.
        assert!(lexed.code.text.contains("&'static str"));
        assert!(lexed.code.text.contains("''"));
    }

    #[test]
    fn line_map_tracks_multiline_chains() {
        let lexed = lex("a\n  .lock()\n  .expect(\"store shard poisoned\")\n");
        let pos = lexed
            .raw
            .text
            .find("expect(\"store shard poisoned\")")
            .unwrap();
        assert_eq!(lexed.raw.line_of(pos), 3);
        assert_eq!(
            lexed.raw.line_of(lexed.raw.text.find(".lock()").unwrap()),
            2
        );
    }

    #[test]
    fn ident_boundaries_survive_collapsing() {
        let lexed = lex("let mut guard = x;\nreturn  value ;");
        assert_eq!(lexed.code.text, "let mut guard=x;return value;");
        assert_eq!(normalize_pattern("let  mut\n guard"), "let mut guard");
        assert_eq!(normalize_pattern("Vec :: new ("), "Vec::new(");
    }

    #[test]
    fn raw_strings_and_nested_block_comments() {
        let lexed = lex("let x = r#\"a \"quoted\" b\"#; /* outer /* inner */ still */ code()");
        assert!(lexed.code.text.contains("r#\"\"#"));
        assert!(lexed.raw.text.contains("a\"quoted\"b"));
        assert!(lexed.code.text.ends_with("code()"));
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].1.contains("inner"));
    }

    #[test]
    fn keyword_matching_is_word_bounded() {
        let lexed = lex("#![forbid(unsafe_code)]\nunsafe { x() }");
        let hits: Vec<usize> = find_all(&lexed.code.text, "unsafe")
            .into_iter()
            .filter(|&p| word_bounded(&lexed.code.text, p, "unsafe".len()))
            .collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(lexed.code.line_of(hits[0]), 2);
    }
}
