//! `analysis.toml` — the declared invariants the checkers enforce.
//!
//! The parser reads the TOML subset the config actually needs
//! (sections, string values, string arrays — including multi-line
//! arrays), hand-rolled in the same no-new-deps spirit as
//! `facepoint_bench::json`. Unknown sections and keys are errors:
//! a typo in the config must not silently disable a checker.

use std::collections::BTreeMap;

/// One lock class: its name (hierarchy position comes from
/// `[locks] order`) and the lexical patterns that mark an acquisition.
#[derive(Debug, Clone)]
pub struct LockClass {
    /// Class name as declared in `[locks] order`.
    pub name: String,
    /// Normalized (whitespace-collapsed) substrings matched against
    /// the raw condensed view.
    pub patterns: Vec<String>,
}

/// Parsed configuration; see `analysis.toml` at the repo root for the
/// normative instance and `docs/ANALYSIS.md` for the grammar.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Path prefixes (relative to the scan root) excluded from every
    /// checker.
    pub skip: Vec<String>,
    /// Files the lock-discipline checker runs on (it is scoped to the
    /// lock-bearing modules; the other checkers are workspace-wide).
    pub lock_files: Vec<String>,
    /// Outermost-first lock hierarchy.
    pub lock_order: Vec<LockClass>,
    /// Normalized substrings that mark a blocking call (I/O, fsync,
    /// canonicalization walks) which must not run under any guard.
    pub blocking: Vec<String>,
    /// `.clone()` receivers that are `Copy` (or otherwise heap-free)
    /// and therefore legal in `no_alloc` functions.
    pub copy_clone_receivers: Vec<String>,
    /// Files allowed to contain `unsafe` at all (each occurrence still
    /// needs an adjacent `// SAFETY:` comment).
    pub unsafe_allow_files: Vec<String>,
    /// The protocol spec (empty disables the protocol-drift checker).
    pub protocol_doc: String,
    /// The `Status` enum anchor (`proto.rs`).
    pub protocol_impl: String,
    /// The `OP_SERIES`/dispatch anchor (`server.rs`).
    pub protocol_server: String,
}

fn strip_comment(line: &str) -> &str {
    // '#' starts a comment unless inside a quoted string.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string(v: &str, line_no: usize) -> Result<String, String> {
    let v = v.trim();
    let inner = v
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| format!("line {line_no}: expected a quoted string, got {v:?}"))?;
    let mut out = String::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                other => {
                    return Err(format!("line {line_no}: unsupported escape \\{other:?}"));
                }
            }
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

fn parse_array(v: &str, line_no: usize) -> Result<Vec<String>, String> {
    let v = v.trim();
    let inner = v
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| format!("line {line_no}: expected an array"))?;
    let mut out = Vec::new();
    // Split on commas outside quotes.
    let mut item = String::new();
    let mut in_str = false;
    let mut escaped = false;
    for c in inner.chars() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                item.push(c);
            }
            '"' if !escaped => {
                in_str = !in_str;
                item.push(c);
            }
            ',' if !in_str => {
                if !item.trim().is_empty() {
                    out.push(parse_string(&item, line_no)?);
                }
                item.clear();
            }
            c => {
                escaped = false;
                item.push(c);
            }
        }
    }
    if !item.trim().is_empty() {
        out.push(parse_string(&item, line_no)?);
    }
    Ok(out)
}

impl Config {
    /// Parses the config text. Every section/key is checked against
    /// the known schema; the result's lock patterns are already
    /// normalized for condensed matching.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut sections: BTreeMap<String, Vec<(usize, String, String)>> = BTreeMap::new();
        let mut section = String::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let line_no = idx + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                section = name.trim().to_string();
                sections.entry(section.clone()).or_default();
                continue;
            }
            let Some((key, mut value)) = line
                .split_once('=')
                .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
            else {
                return Err(format!(
                    "line {line_no}: expected `key = value` or `[section]`"
                ));
            };
            // Multi-line array: keep consuming until brackets balance.
            while value.starts_with('[') && !balanced(&value) {
                let Some((_, cont)) = lines.next() else {
                    return Err(format!("line {line_no}: unterminated array"));
                };
                value.push(' ');
                value.push_str(strip_comment(cont).trim());
            }
            sections
                .entry(section.clone())
                .or_default()
                .push((line_no, key, value));
        }

        let mut cfg = Config::default();
        let mut order_names: Vec<String> = Vec::new();
        let mut patterns: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for (section, entries) in &sections {
            match section.as_str() {
                "scan" => {
                    for (ln, key, value) in entries {
                        match key.as_str() {
                            "skip" => cfg.skip = parse_array(value, *ln)?,
                            other => return Err(format!("line {ln}: unknown key scan.{other}")),
                        }
                    }
                }
                "locks" => {
                    for (ln, key, value) in entries {
                        match key.as_str() {
                            "files" => cfg.lock_files = parse_array(value, *ln)?,
                            "order" => order_names = parse_array(value, *ln)?,
                            "blocking" => {
                                cfg.blocking = parse_array(value, *ln)?
                                    .iter()
                                    .map(|p| crate::lexer::normalize_pattern(p))
                                    .collect()
                            }
                            other => return Err(format!("line {ln}: unknown key locks.{other}")),
                        }
                    }
                }
                "locks.patterns" => {
                    for (ln, key, value) in entries {
                        patterns.insert(
                            key.clone(),
                            parse_array(value, *ln)?
                                .iter()
                                .map(|p| crate::lexer::normalize_pattern(p))
                                .collect(),
                        );
                    }
                }
                "no_alloc" => {
                    for (ln, key, value) in entries {
                        match key.as_str() {
                            "copy_clone_receivers" => {
                                cfg.copy_clone_receivers = parse_array(value, *ln)?
                            }
                            other => {
                                return Err(format!("line {ln}: unknown key no_alloc.{other}"))
                            }
                        }
                    }
                }
                "unsafe" => {
                    for (ln, key, value) in entries {
                        match key.as_str() {
                            "allow_files" => cfg.unsafe_allow_files = parse_array(value, *ln)?,
                            other => return Err(format!("line {ln}: unknown key unsafe.{other}")),
                        }
                    }
                }
                "protocol" => {
                    for (ln, key, value) in entries {
                        match key.as_str() {
                            "doc" => cfg.protocol_doc = parse_string(value, *ln)?,
                            "impl" => cfg.protocol_impl = parse_string(value, *ln)?,
                            "server" => cfg.protocol_server = parse_string(value, *ln)?,
                            other => {
                                return Err(format!("line {ln}: unknown key protocol.{other}"))
                            }
                        }
                    }
                }
                other => return Err(format!("unknown section [{other}]")),
            }
        }
        for name in &order_names {
            let pats = patterns.remove(name).ok_or_else(|| {
                format!("locks.order names {name:?} but [locks.patterns] does not define it")
            })?;
            cfg.lock_order.push(LockClass {
                name: name.clone(),
                patterns: pats,
            });
        }
        if let Some(extra) = patterns.keys().next() {
            return Err(format!(
                "[locks.patterns] defines {extra:?} which locks.order does not rank"
            ));
        }
        Ok(cfg)
    }

    /// Reads and parses `path`.
    pub fn load(path: &std::path::Path) -> Result<Config, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Config::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

fn balanced(s: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    let mut escaped = false;
    for c in s.chars() {
        match c {
            '\\' if in_str && !escaped => escaped = true,
            '"' if !escaped => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => escaped = false,
        }
    }
    depth == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_shape() {
        let cfg = Config::parse(concat!(
            "[scan]\n",
            "skip = [\"target\", \"vendor\"] # comment\n",
            "\n",
            "[locks]\n",
            "files = [\n",
            "    \"a.rs\",\n",
            "    \"b.rs\",\n",
            "]\n",
            "order = [\"outer\", \"inner\"]\n",
            "blocking = [\".sync_all(\"]\n",
            "[locks.patterns]\n",
            "outer = [\"lock_outer(\"]\n",
            "inner = [\"expect(\\\"inner poisoned\\\")\"]\n",
            "[protocol]\n",
            "doc = \"docs/PROTOCOL.md\"\n",
            "impl = \"crates/serve/src/proto.rs\"\n",
            "server = \"crates/serve/src/server.rs\"\n",
        ))
        .unwrap();
        assert_eq!(cfg.skip, ["target", "vendor"]);
        assert_eq!(cfg.lock_files, ["a.rs", "b.rs"]);
        assert_eq!(cfg.lock_order.len(), 2);
        assert_eq!(cfg.lock_order[0].name, "outer");
        assert_eq!(cfg.lock_order[1].patterns, ["expect(\"inner poisoned\")"]);
        assert_eq!(cfg.protocol_doc, "docs/PROTOCOL.md");
    }

    #[test]
    fn unknown_keys_and_unranked_patterns_are_errors() {
        assert!(Config::parse("[scan]\nskpi = [\"x\"]\n").is_err());
        assert!(Config::parse("[nope]\n").is_err());
        let err = Config::parse(concat!(
            "[locks]\norder = [\"a\"]\n",
            "[locks.patterns]\na = [\"p\"]\nb = [\"q\"]\n"
        ))
        .unwrap_err();
        assert!(err.contains("\"b\""), "{err}");
        let err = Config::parse("[locks]\norder = [\"a\"]\n").unwrap_err();
        assert!(err.contains("does not define"), "{err}");
    }
}
