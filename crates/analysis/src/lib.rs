//! `facepoint-analysis` — the workspace's own static-analysis pass.
//!
//! Four deny-by-default checkers run over every `.rs` file of the
//! workspace (a lightweight lexer, not a parser — see [`lexer`]):
//!
//! * **lock-discipline** — the declared lock hierarchy in
//!   `analysis.toml` is enforced against lexical guard scopes, and no
//!   guard may be held across a blocking call without a recorded
//!   reason ([`checks::locks`]);
//! * **no-alloc** — functions marked `// analysis: no_alloc` must not
//!   lexically reach allocating constructs ([`checks::alloc`]);
//! * **protocol-drift** — `docs/PROTOCOL.md` §4/§5 cross-checked
//!   against `proto.rs` and the dispatcher ([`checks::protocol`]);
//! * **unsafe-audit** — forbid/deny attributes, the unsafe allowlist
//!   and `// SAFETY:` adjacency ([`checks::unsafety`]).
//!
//! The one escape hatch is the pragma
//! `// analysis: allow(<check>, "<reason>")` ([`pragma`]); suppressed
//! findings stay in the report with their reasons, and malformed
//! pragmas are fatal. `docs/ANALYSIS.md` is the user-facing catalogue.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checks;
pub mod config;
pub mod lexer;
pub mod pragma;
pub mod report;

use std::collections::BTreeMap;
use std::path::Path;

use config::Config;
use report::{Allowed, Finding, Report, CHECK_PRAGMA, CHECK_UNSAFE};

/// All `.rs` files under `root` (relative, `/`-separated, sorted),
/// minus the `[scan] skip` prefixes.
fn source_files(root: &Path, cfg: &Config) -> std::io::Result<Vec<String>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let rel = rel_str(root, &path);
            if cfg
                .skip
                .iter()
                .any(|s| rel == *s || rel.starts_with(&format!("{s}/")))
            {
                continue;
            }
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if name.starts_with('.') || name == "target" {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(rel);
            }
        }
    }
    out.sort();
    Ok(out)
}

fn rel_str(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// The crate `src/` prefix a file belongs to, for the
/// forbid-promotion rule.
fn crate_src_prefix(rel: &str) -> Option<&str> {
    rel.find("/src/").map(|i| &rel[..i + 5])
}

/// Runs every checker over the tree at `root` and folds in pragma
/// suppression. This is the whole tool; the binary is argument
/// parsing around it.
pub fn run(root: &Path, cfg: &Config) -> std::io::Result<Report> {
    let mut report = Report::default();
    let files = source_files(root, cfg)?;
    report.files_scanned = files.len();

    // Protocol drift first: it also yields the DocSpec the §4
    // reference scan needs.
    let doc_spec = if cfg.protocol_doc.is_empty() {
        None
    } else {
        let mut texts = Vec::new();
        for rel in [&cfg.protocol_doc, &cfg.protocol_impl, &cfg.protocol_server] {
            match std::fs::read_to_string(root.join(rel)) {
                Ok(text) => texts.push(text),
                Err(e) => {
                    report.findings.push(Finding {
                        check: report::CHECK_PROTOCOL.to_string(),
                        file: rel.clone(),
                        line: 0,
                        message: format!("protocol anchor unreadable: {e}"),
                    });
                    break;
                }
            }
        }
        if let [doc, proto, server] = texts.as_slice() {
            let (spec, findings) = checks::protocol::check_texts(
                doc,
                proto,
                server,
                (&cfg.protocol_doc, &cfg.protocol_impl, &cfg.protocol_server),
            );
            report.findings.extend(findings);
            Some(spec)
        } else {
            None
        }
    };

    // Per-crate state for the forbid-promotion rule.
    let mut deny_roots: BTreeMap<String, Vec<(String, pragma::Pragmas)>> = BTreeMap::new();
    let mut crate_has_unsafe: BTreeMap<String, bool> = BTreeMap::new();

    for rel in &files {
        let text = std::fs::read_to_string(root.join(rel))?;
        let lexed = lexer::lex(&text);
        let pragmas = pragma::collect(rel, &lexed.comments);
        // Malformed pragmas are fatal and never allowable.
        report.findings.extend(pragmas.errors.iter().cloned());

        let mut raw: Vec<Finding> = Vec::new();
        raw.extend(checks::unsafety::check(rel, &lexed, cfg));
        raw.extend(checks::alloc::check(rel, &lexed, &pragmas.no_alloc, cfg));
        if cfg.lock_files.iter().any(|f| f == rel) {
            raw.extend(checks::locks::check(rel, &lexed, cfg));
        }
        if let Some(spec) = &doc_spec {
            raw.extend(checks::protocol::check_references(rel, &text, spec));
        }

        for finding in raw {
            debug_assert_ne!(finding.check, CHECK_PRAGMA);
            match pragmas.allowance(&finding.check, finding.line) {
                Some(allow) => report.allowed.push(Allowed {
                    finding,
                    reason: allow.reason.clone(),
                }),
                None => report.findings.push(finding),
            }
        }

        if let Some(prefix) = crate_src_prefix(rel) {
            let has = crate_has_unsafe.entry(prefix.to_string()).or_default();
            *has |= checks::unsafety::has_unsafe(&lexed);
            if checks::unsafety::is_crate_root(rel)
                && checks::unsafety::root_guard(&lexed) == Some(checks::unsafety::RootGuard::Deny)
            {
                deny_roots
                    .entry(prefix.to_string())
                    .or_default()
                    .push((rel.clone(), pragmas));
            }
        }
    }

    // Forbid-promotion: `deny` is only justified while the crate
    // actually contains unsafe somewhere under its `src/`.
    for (prefix, roots) in &deny_roots {
        if crate_has_unsafe.get(prefix).copied().unwrap_or(false) {
            continue;
        }
        for (rel, pragmas) in roots {
            let finding = Finding {
                check: CHECK_UNSAFE.to_string(),
                file: rel.clone(),
                line: 1,
                message: format!(
                    "`#![deny(unsafe_code)]` but nothing under {prefix} is unsafe \
                     — promote to `#![forbid(unsafe_code)]`"
                ),
            };
            match pragmas.allowance(CHECK_UNSAFE, 1) {
                Some(allow) => report.allowed.push(Allowed {
                    finding,
                    reason: allow.reason.clone(),
                }),
                None => report.findings.push(finding),
            }
        }
    }

    report.sort();
    Ok(report)
}

/// Convenience for tests: run with the config at `root/analysis.toml`.
pub fn run_with_default_config(root: &Path) -> Result<Report, String> {
    let cfg = Config::load(&root.join("analysis.toml"))?;
    run(root, &cfg).map_err(|e| e.to_string())
}
