//! Findings and the machine-readable report.
//!
//! The JSON is hand-serialized in the same style as the bench
//! trajectory files (`facepoint_bench::json` is the read side);
//! `check_bench --analysis-report` validates the schema in CI so the
//! format cannot rot.

use std::collections::BTreeMap;

/// Lock hierarchy + blocking-under-guard violations.
pub const CHECK_LOCKS: &str = "lock-discipline";
/// Allocating constructs inside `no_alloc`-marked functions.
pub const CHECK_ALLOC: &str = "no-alloc";
/// PROTOCOL.md vs `proto.rs`/`server.rs` drift.
pub const CHECK_PROTOCOL: &str = "protocol-drift";
/// Lint attributes, the unsafe allowlist and `SAFETY:` adjacency.
pub const CHECK_UNSAFE: &str = "unsafe-audit";
/// Malformed `// analysis:` pragmas — always fatal, never allowable.
pub const CHECK_PRAGMA: &str = "pragma";

/// Every check name the report's `counts` object carries, in order.
pub const ALL_CHECKS: [&str; 5] = [
    CHECK_LOCKS,
    CHECK_ALLOC,
    CHECK_PROTOCOL,
    CHECK_UNSAFE,
    CHECK_PRAGMA,
];

/// One violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which checker fired (one of [`ALL_CHECKS`]).
    pub check: String,
    /// Path relative to the scan root, `/`-separated.
    pub file: String,
    /// 1-based source line (0 for whole-file findings).
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

/// A finding suppressed by an `allow` pragma, with the recorded
/// reason — kept in the report so allowances stay auditable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allowed {
    /// The suppressed violation.
    pub finding: Finding,
    /// The pragma's mandatory quoted reason.
    pub reason: String,
}

/// The result of one full run.
#[derive(Debug, Default)]
pub struct Report {
    /// How many `.rs` files the walk visited.
    pub files_scanned: usize,
    /// Unsuppressed violations.
    pub findings: Vec<Finding>,
    /// Pragma-suppressed violations, kept auditable.
    pub allowed: Vec<Allowed>,
}

impl Report {
    /// True when the run is clean (suppressed findings do not count).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// True when any finding is a fatal pragma parse error.
    pub fn has_pragma_errors(&self) -> bool {
        self.findings.iter().any(|f| f.check == CHECK_PRAGMA)
    }

    /// Deterministic order: check, then file, then line.
    pub fn sort(&mut self) {
        let key = |f: &Finding| (f.check.clone(), f.file.clone(), f.line);
        self.findings.sort_by_key(key);
        self.allowed.sort_by_key(|a| key(&a.finding));
    }

    /// Findings per check, every known check present (zero included).
    pub fn counts(&self) -> BTreeMap<&'static str, usize> {
        let mut counts: BTreeMap<&'static str, usize> =
            ALL_CHECKS.iter().map(|&c| (c, 0)).collect();
        for f in &self.findings {
            if let Some(slot) = ALL_CHECKS.iter().find(|&&c| c == f.check) {
                *counts.get_mut(slot).unwrap() += 1;
            }
        }
        counts
    }

    /// The machine-readable report (schema version 1).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"tool\": \"facepoint-analysis\",\n");
        out.push_str("  \"version\": 1,\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str("  \"counts\": {");
        let counts = self.counts();
        for (i, (check, n)) in counts.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{}: {n}", json_str(check)));
        }
        out.push_str("},\n");
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(if i > 0 { ",\n    " } else { "\n    " });
            push_finding(&mut out, f, None);
        }
        out.push_str(if self.findings.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"allowed\": [");
        for (i, a) in self.allowed.iter().enumerate() {
            out.push_str(if i > 0 { ",\n    " } else { "\n    " });
            push_finding(&mut out, &a.finding, Some(&a.reason));
        }
        out.push_str(if self.allowed.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        out.push_str("}\n");
        out
    }
}

fn push_finding(out: &mut String, f: &Finding, reason: Option<&str>) {
    out.push_str(&format!(
        "{{\"check\": {}, \"file\": {}, \"line\": {}, \"message\": {}",
        json_str(&f.check),
        json_str(&f.file),
        f.line,
        json_str(&f.message),
    ));
    if let Some(reason) = reason {
        out.push_str(&format!(", \"reason\": {}", json_str(reason)));
    }
    out.push('}');
}

/// JSON string literal with the mandatory escapes.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_shape() {
        let mut report = Report {
            files_scanned: 3,
            findings: vec![Finding {
                check: CHECK_ALLOC.into(),
                file: "b.rs".into(),
                line: 9,
                message: "a \"quoted\" message".into(),
            }],
            allowed: vec![Allowed {
                finding: Finding {
                    check: CHECK_LOCKS.into(),
                    file: "a.rs".into(),
                    line: 2,
                    message: "m".into(),
                },
                reason: "why".into(),
            }],
        };
        report.sort();
        let json = report.to_json();
        assert!(json.contains("\"tool\": \"facepoint-analysis\""));
        assert!(json.contains("\"no-alloc\": 1"));
        assert!(json.contains("\"lock-discipline\": 0"));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"reason\": \"why\""));
        assert_eq!(report.counts()[CHECK_ALLOC], 1);
        assert!(!report.is_clean());
    }
}
