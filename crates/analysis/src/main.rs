//! The `facepoint-analysis` binary.
//!
//! ```text
//! facepoint-analysis [--root DIR] [--config PATH] [--deny] [--report PATH]
//! ```
//!
//! Exit codes:
//!
//! * `0` — clean (or findings present but `--deny` not given: report
//!   mode still prints and writes everything);
//! * `1` — findings under `--deny`;
//! * `2` — malformed `// analysis:` pragmas (always fatal: a typo'd
//!   pragma must not read as a clean run), or a setup error (bad
//!   config, unreadable tree).

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use facepoint_analysis::config::Config;
use facepoint_analysis::report::Report;

struct Args {
    root: PathBuf,
    config: Option<PathBuf>,
    deny: bool,
    report: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        config: None,
        deny: false,
        report: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut path_arg = |name: &str| {
            it.next()
                .map(PathBuf::from)
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--root" => args.root = path_arg("--root")?,
            "--config" => args.config = Some(path_arg("--config")?),
            "--report" => args.report = Some(path_arg("--report")?),
            "--deny" => args.deny = true,
            "--help" | "-h" => {
                println!(
                    "usage: facepoint-analysis [--root DIR] [--config PATH] \
                     [--deny] [--report PATH]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

fn print_summary(report: &Report) {
    for a in &report.allowed {
        let f = &a.finding;
        eprintln!(
            "allowed: {}:{} [{}] {} (reason: {})",
            f.file, f.line, f.check, f.message, a.reason
        );
    }
    for f in &report.findings {
        eprintln!("error: {}:{} [{}] {}", f.file, f.line, f.check, f.message);
    }
    let counts = report.counts();
    let summary: Vec<String> = counts
        .iter()
        .filter(|(_, &n)| n > 0)
        .map(|(c, n)| format!("{c}: {n}"))
        .collect();
    if report.is_clean() {
        eprintln!(
            "analysis: clean ({} files scanned, {} allowed)",
            report.files_scanned,
            report.allowed.len()
        );
    } else {
        eprintln!(
            "analysis: {} finding(s) in {} files scanned ({})",
            report.findings.len(),
            report.files_scanned,
            summary.join(", ")
        );
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("facepoint-analysis: {e}");
            return ExitCode::from(2);
        }
    };
    let config_path = args
        .config
        .unwrap_or_else(|| args.root.join("analysis.toml"));
    let cfg = match Config::load(&config_path) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("facepoint-analysis: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match facepoint_analysis::run(&args.root, &cfg) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("facepoint-analysis: {e}");
            return ExitCode::from(2);
        }
    };
    print_summary(&report);
    if let Some(path) = &args.report {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("facepoint-analysis: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if report.has_pragma_errors() {
        // Unparseable pragmas are fatal even outside --deny: a typo
        // must not silently check nothing.
        ExitCode::from(2)
    } else if args.deny && !report.is_clean() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
