//! The hot-path allocation lint: functions marked `// analysis:
//! no_alloc` must not lexically reach allocating constructs.
//!
//! This statically complements the three runtime counting-allocator
//! proofs (`crates/core/tests/zero_alloc.rs`,
//! `crates/engine/tests/memory.rs`,
//! `crates/telemetry/tests/zero_alloc.rs`): the tests prove a
//! particular workload stays off the heap, the lint refuses the
//! *constructs* that would put a future edit back on it.
//!
//! Denied inside a marked function body: `Vec::new(`, `vec![`,
//! `format!(`, `.to_vec(`, `String::from(`, `String::new(`,
//! `.to_string(`, `.to_owned(`, `Box::new(`, `.push(` (unless
//! `with_capacity` appears in the same body — the warmed-buffer
//! idiom), and `.clone(` (unless the receiver identifier is listed in
//! `[no_alloc] copy_clone_receivers`). Legitimate cold-path
//! exceptions take an `allow(no-alloc, "…")` pragma with the reason
//! on record.

use crate::config::Config;
use crate::lexer::{find_all, word_bounded, Lexed};
use crate::pragma::NoAllocMark;
use crate::report::{Finding, CHECK_ALLOC};

const DENY: [&str; 9] = [
    "Vec::new(",
    "vec![",
    "format!(",
    ".to_vec(",
    "String::from(",
    "String::new(",
    ".to_string(",
    ".to_owned(",
    "Box::new(",
];

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// The body span of the first `fn` after `mark` (exclusive of its
/// braces), or `None` with a finding when no function follows.
fn body_after(lexed: &Lexed, mark: &NoAllocMark) -> Option<(usize, usize)> {
    let text = &lexed.code.text;
    let bytes = text.as_bytes();
    let fn_pos = find_all(text, "fn")
        .into_iter()
        .find(|&p| word_bounded(text, p, 2) && lexed.code.line_of(p) > mark.line)?;
    // The body opens at the first `{` after the signature; a `;` first
    // means a bodiless declaration.
    let open = (fn_pos..bytes.len()).find(|&i| bytes[i] == b'{' || bytes[i] == b';')?;
    if bytes[open] == b';' {
        return None;
    }
    let mut depth = 0i32;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some((open + 1, i));
                }
            }
            _ => {}
        }
    }
    Some((open + 1, bytes.len()))
}

/// The identifier immediately preceding a `.clone(`/`.push(` match.
fn receiver(text: &str, dot_pos: usize) -> &str {
    let bytes = text.as_bytes();
    let end = dot_pos;
    let mut start = end;
    while start > 0 && is_ident_byte(bytes[start - 1]) {
        start -= 1;
    }
    &text[start..end]
}

/// Runs the checker over one file's marks.
pub fn check(file: &str, lexed: &Lexed, marks: &[NoAllocMark], cfg: &Config) -> Vec<Finding> {
    let mut findings = Vec::new();
    let text = &lexed.code.text;
    for mark in marks {
        let Some((start, end)) = body_after(lexed, mark) else {
            findings.push(Finding {
                check: CHECK_ALLOC.to_string(),
                file: file.to_string(),
                line: mark.line,
                message: "`analysis: no_alloc` mark is not followed by a function body".to_string(),
            });
            continue;
        };
        let body = &text[start..end];
        let report = |findings: &mut Vec<Finding>, pos: usize, what: &str| {
            findings.push(Finding {
                check: CHECK_ALLOC.to_string(),
                file: file.to_string(),
                line: lexed.code.line_of(start + pos),
                message: format!(
                    "allocating construct `{what}` in a `no_alloc` function \
                     (marked at line {})",
                    mark.line
                ),
            });
        };
        for pat in DENY {
            for pos in find_all(body, pat) {
                report(&mut findings, pos, pat);
            }
        }
        let has_with_capacity = !find_all(body, "with_capacity").is_empty();
        if !has_with_capacity {
            for pos in find_all(body, ".push(") {
                report(&mut findings, pos, ".push( (no `with_capacity` in scope)");
            }
        }
        for pos in find_all(body, ".clone(") {
            let recv = receiver(body, pos);
            if !cfg.copy_clone_receivers.iter().any(|r| r == recv) {
                report(&mut findings, pos, ".clone(");
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::pragma;

    fn run(src: &str, copy_receivers: &[&str]) -> Vec<Finding> {
        let cfg = Config {
            copy_clone_receivers: copy_receivers.iter().map(|s| s.to_string()).collect(),
            ..Config::default()
        };
        let lexed = lex(src);
        let pragmas = pragma::collect("f.rs", &lexed.comments);
        assert!(pragmas.errors.is_empty(), "{:?}", pragmas.errors);
        check("f.rs", &lexed, &pragmas.no_alloc, &cfg)
    }

    #[test]
    fn allocating_constructs_fire_inside_marked_fns_only() {
        let findings = run(
            concat!(
                "// analysis: no_alloc\n",
                "fn hot(&mut self) {\n",
                "    let v = Vec::new();\n",
                "    let s = format!(\"x{}\", 1);\n",
                "    let t = self.table.clone();\n",
                "}\n",
                "fn cold(&mut self) {\n",
                "    let v = Vec::new(); // unmarked: fine\n",
                "}\n",
            ),
            &[],
        );
        assert_eq!(findings.len(), 3, "{findings:#?}");
        assert_eq!(findings[0].line, 3);
        assert_eq!(findings[1].line, 4);
        assert_eq!(findings[2].line, 5);
    }

    #[test]
    fn push_needs_with_capacity_and_copy_receivers_may_clone() {
        let clean = run(
            concat!(
                "// analysis: no_alloc\n",
                "fn hot(&mut self, out: &mut Vec<u64>) {\n",
                "    out.reserve(0); let cap = Vec::with_capacity(8);\n",
                "    out.push(1);\n",
                "    let k = key.clone();\n",
                "}\n",
            ),
            &["key"],
        );
        assert_eq!(clean, vec![], "{clean:#?}");
        let dirty = run(
            concat!(
                "// analysis: no_alloc\n",
                "fn hot(&mut self, out: &mut Vec<u64>) {\n",
                "    out.push(1);\n",
                "}\n",
            ),
            &[],
        );
        assert_eq!(dirty.len(), 1);
        assert!(dirty[0].message.contains("with_capacity"), "{dirty:#?}");
    }

    #[test]
    fn a_mark_without_a_function_is_a_finding() {
        let findings = run("// analysis: no_alloc\nconst X: u32 = 1;\n", &[]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("not followed"));
    }

    #[test]
    fn string_contents_do_not_trip_the_lint() {
        let findings = run(
            concat!(
                "// analysis: no_alloc\n",
                "fn hot(&self) {\n",
                "    log(\"calls Vec::new() and format!() often\");\n",
                "}\n",
            ),
            &[],
        );
        assert_eq!(findings, vec![]);
    }
}
