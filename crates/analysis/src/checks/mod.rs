//! The four checkers. Each takes one file's [`crate::lexer::Lexed`]
//! (plus whatever config it needs) and returns raw findings; pragma
//! suppression and crate-level aggregation happen in [`crate::run`].

pub mod alloc;
pub mod locks;
pub mod protocol;
pub mod unsafety;
