//! Protocol-drift: `docs/PROTOCOL.md` is the normative wire contract
//! (opcode sections in §4, the status-code table in §5), and this
//! checker cross-references it against the two implementation anchors:
//!
//! * `crates/serve/src/proto.rs` — the `Status` enum discriminants,
//!   `token()` strings and `from_code()` mapping must agree with the
//!   §5 table row by row;
//! * `crates/serve/src/server.rs` — the `OP_SERIES` telemetry table
//!   and the `dispatch` match arms must name exactly the opcodes §4
//!   documents, and §4's section numbering must stay contiguous.
//!
//! Additionally, every `§4.<k> OPCODE` reference in any scanned source
//! comment is resolved against the doc: a renumbered section silently
//! orphans those references, so they are part of the contract too.
//!
//! The checker works on plain text inputs (not file handles) so the
//! fixture tests can mutate a copy of the real spec and prove the
//! drift is caught.

use crate::report::{Finding, CHECK_PROTOCOL};

/// What the markdown spec declares.
#[derive(Debug, Default)]
pub struct DocSpec {
    /// `(section minor, opcode, doc line)` for every `### 4.<k>`
    /// header whose backtick title starts with an opcode token.
    pub opcodes: Vec<(u32, String, u32)>,
    /// `(code, token, doc line)` from the §5 status table.
    pub statuses: Vec<(u32, String, u32)>,
}

impl DocSpec {
    /// The §4 section minor documenting opcode `name`, if any.
    pub fn opcode_section(&self, name: &str) -> Option<u32> {
        self.opcodes
            .iter()
            .find(|(_, n, _)| n == name)
            .map(|(k, _, _)| *k)
    }
}

fn is_opcode_char(c: char) -> bool {
    c.is_ascii_uppercase() || c == '-'
}

/// Leading run of opcode characters, if it is a plausible opcode.
fn opcode_token(s: &str) -> Option<&str> {
    let end = s.find(|c| !is_opcode_char(c)).unwrap_or(s.len());
    (end >= 2).then(|| &s[..end])
}

/// Parses the spec: §4 opcode headers and the §5 status table.
pub fn parse_doc(text: &str) -> DocSpec {
    let mut spec = DocSpec::default();
    let mut in_status_section = false;
    for (idx, line) in text.lines().enumerate() {
        let line_no = (idx + 1) as u32;
        if let Some(rest) = line.strip_prefix("## ") {
            in_status_section = rest.starts_with("5.");
            continue;
        }
        if let Some(rest) = line.strip_prefix("### 4.") {
            // `### 4.8 `CANON <table>`` — a header is an opcode section
            // iff its title is backtick-quoted and starts with a token.
            let Some((minor, title)) = rest.split_once(' ') else {
                continue;
            };
            let Ok(minor) = minor.parse::<u32>() else {
                continue;
            };
            let Some(name) = title.trim().strip_prefix('`').and_then(opcode_token) else {
                continue;
            };
            spec.opcodes.push((minor, name.to_string(), line_no));
            continue;
        }
        if in_status_section && line.starts_with('|') {
            // `| 0 | `OK` | … |`
            let mut cells = line.split('|').map(str::trim);
            cells.next(); // before the leading pipe
            let (Some(code), Some(token)) = (cells.next(), cells.next()) else {
                continue;
            };
            let Ok(code) = code.parse::<u32>() else {
                continue;
            };
            let Some(token) = token.strip_prefix('`').and_then(|t| t.strip_suffix('`')) else {
                continue;
            };
            spec.statuses.push((code, token.to_string(), line_no));
        }
    }
    spec
}

fn line_no_at(text: &str, pos: usize) -> u32 {
    (text[..pos].bytes().filter(|&b| b == b'\n').count() + 1) as u32
}

fn finding(file: &str, line: u32, message: String) -> Finding {
    Finding {
        check: CHECK_PROTOCOL.to_string(),
        file: file.to_string(),
        line,
        message,
    }
}

/// All `"NAME" =>` match arms whose literal looks like an opcode.
fn arm_names(text: &str) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let Some(q) = line.trim_start().strip_prefix('"') else {
            continue;
        };
        let Some((name, rest)) = q.split_once('"') else {
            continue;
        };
        if rest.trim_start().starts_with("=>") && opcode_token(name) == Some(name) {
            out.push((name.to_string(), (idx + 1) as u32));
        }
    }
    out
}

/// Opcode names in the `OP_SERIES` table (the `""` catch-all is not
/// an opcode).
fn op_series_names(text: &str) -> Vec<(String, u32)> {
    let Some(start) = text.find("OP_SERIES") else {
        return Vec::new();
    };
    let Some(end) = text[start..].find("];").map(|e| start + e) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for p in crate::lexer::find_all(&text[start..end], "(\"") {
        let rest = &text[start + p + 2..end];
        let Some((name, _)) = rest.split_once('"') else {
            continue;
        };
        if !name.is_empty() {
            out.push((name.to_string(), line_no_at(text, start + p)));
        }
    }
    out
}

/// `Variant = N,` rows inside `enum Status { … }`.
fn status_discriminants(text: &str) -> Vec<(String, u32)> {
    let Some(start) = text.find("enum Status") else {
        return Vec::new();
    };
    let end = text[start..]
        .find('}')
        .map(|e| start + e)
        .unwrap_or(text.len());
    let mut out = Vec::new();
    for line in text[start..end].lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((name, value)) = line.split_once('=') else {
            continue;
        };
        let name = name.trim();
        if name.chars().all(|c| c.is_ascii_alphanumeric()) && !name.is_empty() {
            if let Ok(v) = value.trim().parse::<u32>() {
                out.push((name.to_string(), v));
            }
        }
    }
    out
}

/// `Status::Variant => "TOKEN"` arms (the `token()` table).
fn status_tokens(text: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(rest) = line.trim().strip_prefix("Status::") else {
            continue;
        };
        let Some((variant, rest)) = rest.split_once("=>") else {
            continue;
        };
        let Some(token) = rest
            .trim()
            .trim_end_matches(',')
            .strip_prefix('"')
            .and_then(|t| t.strip_suffix('"'))
        else {
            continue;
        };
        out.push((variant.trim().to_string(), token.to_string()));
    }
    out
}

/// `N => Some(Status::Variant)` arms (the `from_code()` table).
fn status_from_code(text: &str) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        let Some((code, rest)) = line.split_once("=> Some(Status::") else {
            continue;
        };
        let Ok(code) = code.trim().parse::<u32>() else {
            continue;
        };
        let variant: String = rest
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric())
            .collect();
        out.push((code, variant));
    }
    out
}

/// Cross-checks the three texts. `paths` are `(doc, proto, server)`
/// as they should appear in findings.
pub fn check_texts(
    doc: &str,
    proto: &str,
    server: &str,
    paths: (&str, &str, &str),
) -> (DocSpec, Vec<Finding>) {
    let (doc_path, proto_path, server_path) = paths;
    let spec = parse_doc(doc);
    let mut findings = Vec::new();

    // §4 numbering must be contiguous and ascending.
    for pair in spec.opcodes.windows(2) {
        let ((a, a_name, _), (b, b_name, line)) = (&pair[0], &pair[1]);
        if *b != *a + 1 {
            findings.push(finding(
                doc_path,
                *line,
                format!(
                    "opcode sections must be contiguous: §4.{a} `{a_name}` is \
                     followed by §4.{b} `{b_name}`"
                ),
            ));
        }
    }
    for (i, (_, name, line)) in spec.opcodes.iter().enumerate() {
        if spec.opcodes[..i].iter().any(|(_, n, _)| n == name) {
            findings.push(finding(
                doc_path,
                *line,
                format!("opcode `{name}` is documented twice"),
            ));
        }
    }

    // OP_SERIES and the dispatch arms must both name exactly §4's set.
    let doc_names: Vec<&str> = spec.opcodes.iter().map(|(_, n, _)| n.as_str()).collect();
    for (what, impl_names) in [
        ("OP_SERIES", op_series_names(server)),
        ("dispatch arm", arm_names(server)),
    ] {
        for (name, line) in &impl_names {
            if !doc_names.contains(&name.as_str()) {
                findings.push(finding(
                    server_path,
                    *line,
                    format!("{what} `{name}` has no §4 opcode section in {doc_path}"),
                ));
            }
        }
        for (_, name, line) in &spec.opcodes {
            if !impl_names.iter().any(|(n, _)| n == name) {
                findings.push(finding(
                    doc_path,
                    *line,
                    format!("documented opcode `{name}` has no {what} in {server_path}"),
                ));
            }
        }
    }

    // §5 rows vs the Status enum: discriminant, token() and
    // from_code() must all agree.
    let discr = status_discriminants(proto);
    let tokens = status_tokens(proto);
    let from_code = status_from_code(proto);
    for (code, token, line) in &spec.statuses {
        let Some((variant, _)) = discr.iter().find(|(_, v)| v == code) else {
            findings.push(finding(
                doc_path,
                *line,
                format!(
                    "status code {code} (`{token}`) has no Status discriminant in {proto_path}"
                ),
            ));
            continue;
        };
        match tokens.iter().find(|(v, _)| v == variant) {
            Some((_, t)) if t == token => {}
            Some((_, t)) => findings.push(finding(
                doc_path,
                *line,
                format!(
                    "status code {code}: doc token `{token}` but \
                     Status::{variant}.token() is `{t}`"
                ),
            )),
            None => findings.push(finding(
                doc_path,
                *line,
                format!("Status::{variant} has no token() arm in {proto_path}"),
            )),
        }
        if !from_code.iter().any(|(c, v)| c == code && v == variant) {
            findings.push(finding(
                doc_path,
                *line,
                format!("from_code({code}) does not map back to Status::{variant}"),
            ));
        }
    }
    for (variant, code) in &discr {
        if !spec.statuses.iter().any(|(c, _, _)| c == code) {
            findings.push(finding(
                proto_path,
                0,
                format!("Status::{variant} = {code} is not documented in the §5 table"),
            ));
        }
    }
    (spec, findings)
}

/// Validates `§4.<k> OPCODE` references in one source file's text
/// (original text: the references live in comments).
pub fn check_references(file: &str, text: &str, spec: &DocSpec) -> Vec<Finding> {
    let mut findings = Vec::new();
    for pos in crate::lexer::find_all(text, "\u{a7}4.") {
        let rest = &text[pos + "\u{a7}4.".len()..];
        let digits_end = rest
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(rest.len());
        let Ok(minor) = rest[..digits_end].parse::<u32>() else {
            continue;
        };
        let after = rest[digits_end..].trim_start_matches(' ');
        let Some(token) = opcode_token(after) else {
            continue; // a bare `§4.7` — nothing to cross-check
        };
        let Some(actual) = spec.opcode_section(token) else {
            continue; // not an opcode name (prose in caps)
        };
        if actual != minor {
            findings.push(finding(
                file,
                line_no_at(text, pos),
                format!(
                    "reference `\u{a7}4.{minor} {token}` is stale: `{token}` is \u{a7}4.{actual}"
                ),
            ));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = concat!(
        "## 4. Opcodes\n",
        "### 4.1 Table literals\n",
        "### 4.2 `HELLO <version>`\n",
        "### 4.3 `PING`\n",
        "## 5. Status codes\n",
        "| code | token | meaning |\n",
        "|---|---|---|\n",
        "| 0 | `OK` | success |\n",
        "| 1 | `EPROTO` | violation |\n",
    );
    const PROTO: &str = concat!(
        "pub enum Status {\n",
        "    Ok = 0,\n",
        "    Proto = 1,\n",
        "}\n",
        "fn token() {\n",
        "    Status::Ok => \"OK\",\n",
        "    Status::Proto => \"EPROTO\",\n",
        "}\n",
        "fn from_code() {\n",
        "    0 => Some(Status::Ok),\n",
        "    1 => Some(Status::Proto),\n",
        "}\n",
    );
    const SERVER: &str = concat!(
        "const OP_SERIES: [(&str, &str); 3] = [\n",
        "    (\"HELLO\", \"serve_hello_nanos\"),\n",
        "    (\"PING\", \"serve_ping_nanos\"),\n",
        "    (\"\", \"serve_other_nanos\"),\n",
        "];\n",
        "fn dispatch() {\n",
        "    \"HELLO\" => hello(),\n",
        "    \"PING\" => pong(),\n",
        "}\n",
    );

    fn paths() -> (&'static str, &'static str, &'static str) {
        ("doc.md", "proto.rs", "server.rs")
    }

    #[test]
    fn aligned_spec_and_impl_are_clean() {
        let (spec, findings) = check_texts(DOC, PROTO, SERVER, paths());
        assert_eq!(findings, vec![], "{findings:#?}");
        assert_eq!(spec.opcodes.len(), 2); // 4.1 has no backtick title
        assert_eq!(spec.opcode_section("PING"), Some(3));
        assert_eq!(spec.statuses.len(), 2);
    }

    #[test]
    fn a_mutated_opcode_number_breaks_contiguity() {
        let mutated = DOC.replace("### 4.3 `PING`", "### 4.4 `PING`");
        let (_, findings) = check_texts(&mutated, PROTO, SERVER, paths());
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert!(findings[0].message.contains("contiguous"), "{findings:#?}");
    }

    #[test]
    fn missing_and_extra_opcodes_fire_on_both_sides() {
        let extra_doc = DOC.replace("### 4.3 `PING`", "### 4.3 `PING`\n### 4.4 `RESET`");
        let (_, findings) = check_texts(&extra_doc, PROTO, SERVER, paths());
        // RESET missing from both OP_SERIES and dispatch.
        assert_eq!(findings.len(), 2, "{findings:#?}");
        assert!(findings.iter().all(|f| f.message.contains("RESET")));

        let dropped = SERVER.replace("    (\"PING\", \"serve_ping_nanos\"),\n", "");
        let (_, findings) = check_texts(DOC, PROTO, &dropped, paths());
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert!(
            findings[0].message.contains("no OP_SERIES"),
            "{findings:#?}"
        );
    }

    #[test]
    fn status_token_and_code_drift_fires() {
        let retok = PROTO.replace(
            "Status::Proto => \"EPROTO\"",
            "Status::Proto => \"EPROTO2\"",
        );
        let (_, findings) = check_texts(DOC, &retok, SERVER, paths());
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert!(findings[0].message.contains("EPROTO2"));

        let recode = DOC.replace("| 1 | `EPROTO` |", "| 2 | `EPROTO` |");
        let (_, findings) = check_texts(&recode, PROTO, SERVER, paths());
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("no Status discriminant")),
            "{findings:#?}"
        );
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("not documented")),
            "{findings:#?}"
        );
    }

    #[test]
    fn stale_section_references_fire() {
        let (spec, _) = check_texts(DOC, PROTO, SERVER, paths());
        let src = "// the \u{a7}4.3 PING frame\n// a \u{a7}4.2 PING typo\n// bare \u{a7}4.9 ref\n";
        let findings = check_references("x.rs", src, &spec);
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert_eq!(findings[0].line, 2);
        assert!(findings[0].message.contains("stale"));
    }
}
