//! Unsafe-audit: the workspace is safe Rust by declaration, and this
//! checker keeps the declaration honest.
//!
//! * every crate root (`src/lib.rs`, `src/main.rs`, `src/bin/*.rs`)
//!   must carry `#![forbid(unsafe_code)]` or `#![deny(unsafe_code)]`;
//! * a crate root may keep `deny` (instead of `forbid`) only while
//!   some file under its `src/` actually contains `unsafe` — otherwise
//!   the weaker level is itself a finding (the forbid-promotion rule);
//! * `unsafe` blocks and `#[allow(unsafe_code)]` escapes may appear
//!   only in the `[unsafe] allow_files` allowlist (the signal handler
//!   and the counting-allocator test harness), and each occurrence
//!   needs a `// SAFETY:` comment within the preceding eight lines.

use crate::config::Config;
use crate::lexer::{find_all, word_bounded, Lexed};
use crate::report::{Finding, CHECK_UNSAFE};

/// How many lines above an `unsafe` occurrence a `SAFETY:` comment
/// still counts as adjacent.
const SAFETY_WINDOW: u32 = 8;

/// The crate-root lint attribute, if present.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RootGuard {
    /// `#![forbid(unsafe_code)]` — the required strength.
    Forbid,
    /// `#![deny(unsafe_code)]` — only justified while the crate
    /// actually contains audited unsafe.
    Deny,
}

/// Condensed forms (the code view has all whitespace collapsed).
const FORBID: &str = "#![forbid(unsafe_code)]";
const DENY_ATTR: &str = "#![deny(unsafe_code)]";

/// The crate-root lint attribute present in `lexed`, if any.
pub fn root_guard(lexed: &Lexed) -> Option<RootGuard> {
    let code = &lexed.code.text;
    if code.contains(FORBID) {
        Some(RootGuard::Forbid)
    } else if code.contains(DENY_ATTR) {
        Some(RootGuard::Deny)
    } else {
        None
    }
}

/// Lines of every `unsafe` keyword and `#[allow(unsafe_code)]` escape.
fn unsafe_sites(lexed: &Lexed) -> Vec<(u32, &'static str)> {
    let code = &lexed.code.text;
    let mut sites = Vec::new();
    for pos in find_all(code, "unsafe") {
        // `unsafe_code` inside the lint attributes is not word-bounded,
        // so only real `unsafe` keywords land here.
        if word_bounded(code, pos, "unsafe".len()) {
            sites.push((lexed.code.line_of(pos), "`unsafe`"));
        }
    }
    for pos in find_all(code, "#[allow(unsafe_code)]") {
        sites.push((lexed.code.line_of(pos), "`#[allow(unsafe_code)]`"));
    }
    sites.sort_unstable();
    sites
}

/// True when the file contains any `unsafe` keyword or escape.
pub fn has_unsafe(lexed: &Lexed) -> bool {
    !unsafe_sites(lexed).is_empty()
}

/// True for files that are their own crate/binary root and therefore
/// must carry the lint attribute.
pub fn is_crate_root(rel_path: &str) -> bool {
    rel_path.ends_with("src/lib.rs")
        || rel_path.ends_with("src/main.rs")
        || rel_path.contains("/src/bin/")
}

/// Runs the per-file part of the audit (the crate-wide
/// forbid-promotion rule lives in [`crate::run`], which sees every
/// file of a crate together).
pub fn check(file: &str, lexed: &Lexed, cfg: &Config) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut push = |line: u32, message: String| {
        findings.push(Finding {
            check: CHECK_UNSAFE.to_string(),
            file: file.to_string(),
            line,
            message,
        });
    };
    if is_crate_root(file) && root_guard(lexed).is_none() {
        push(
            1,
            "crate root carries neither `#![forbid(unsafe_code)]` nor \
             `#![deny(unsafe_code)]`"
                .to_string(),
        );
    }
    let allowed_file = cfg.unsafe_allow_files.iter().any(|f| f == file);
    for (line, what) in unsafe_sites(lexed) {
        if !allowed_file {
            push(
                line,
                format!("{what} outside the `[unsafe] allow_files` allowlist"),
            );
        }
        let documented = lexed
            .comments
            .iter()
            .any(|(l, text)| *l <= line && line - *l <= SAFETY_WINDOW && text.contains("SAFETY:"));
        if !documented {
            push(
                line,
                format!(
                    "{what} without a `// SAFETY:` comment in the preceding \
                     {SAFETY_WINDOW} lines"
                ),
            );
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn cfg_allowing(files: &[&str]) -> Config {
        Config {
            unsafe_allow_files: files.iter().map(|s| s.to_string()).collect(),
            ..Config::default()
        }
    }

    #[test]
    fn missing_root_attr_fires_only_on_crate_roots() {
        let lexed = lex("pub fn f() {}\n");
        let findings = check("crates/x/src/lib.rs", &lexed, &cfg_allowing(&[]));
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("crate root"));
        assert_eq!(
            check("crates/x/src/util.rs", &lexed, &cfg_allowing(&[])),
            vec![]
        );

        let guarded = lex("#![forbid(unsafe_code)]\npub fn f() {}\n");
        assert_eq!(
            check("crates/x/src/lib.rs", &guarded, &cfg_allowing(&[])),
            vec![]
        );
        assert_eq!(root_guard(&guarded), Some(RootGuard::Forbid));
    }

    #[test]
    fn unsafe_needs_allowlist_and_safety_comment() {
        let src = concat!(
            "#![deny(unsafe_code)]\n",
            "#[allow(unsafe_code)]\n",
            "fn f() { unsafe { g() } }\n",
        );
        let lexed = lex(src);
        assert!(has_unsafe(&lexed));
        // Off the allowlist: every site is two findings (location + doc).
        let findings = check("crates/x/src/lib.rs", &lexed, &cfg_allowing(&[]));
        assert_eq!(findings.len(), 4, "{findings:#?}");
        // On the allowlist but undocumented: still the SAFETY findings.
        let findings = check(
            "crates/x/src/lib.rs",
            &lexed,
            &cfg_allowing(&["crates/x/src/lib.rs"]),
        );
        assert_eq!(findings.len(), 2, "{findings:#?}");
        assert!(findings.iter().all(|f| f.message.contains("SAFETY")));

        let documented = lex(concat!(
            "#![deny(unsafe_code)]\n",
            "// SAFETY: the harness only counts, it never frees.\n",
            "#[allow(unsafe_code)]\n",
            "fn f() { unsafe { g() } }\n",
        ));
        assert_eq!(
            check(
                "crates/x/src/lib.rs",
                &documented,
                &cfg_allowing(&["crates/x/src/lib.rs"]),
            ),
            vec![]
        );
    }

    #[test]
    fn strings_and_attr_mentions_are_not_unsafe_sites() {
        let lexed = lex(concat!(
            "#![forbid(unsafe_code)]\n",
            "const M: &str = \"unsafe is banned here\";\n",
        ));
        assert!(!has_unsafe(&lexed));
        assert_eq!(
            check("crates/x/src/lib.rs", &lexed, &cfg_allowing(&[])),
            vec![]
        );
    }
}
